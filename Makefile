# Tier-1 verification: the build may never regress to unbuildable again.
# `make check` is what CI (.github/workflows/ci.yml) and any contributor
# runs before merging; `make race` and `make cover` are the other two CI
# entry points.

GO ?= go

.PHONY: check fmt vet build test lint wflint race cover bench bench-baseline bench-gate e2e e2e-shard e2e-diskfault gauntlet sim golden

check: lint build test bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full static-analysis gate: format, vet, staticcheck (when installed;
# CI pins and installs it), and the repository's own invariant checkers.
lint: fmt vet wflint
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; 	else echo "lint: staticcheck not installed; skipping"; fi

# Build cmd/wflint and run the invariant suite (clockinject,
# persistorder, locksafe, goroutinestop — see docs/INVARIANTS.md) over
# the whole module. Exits non-zero on any violation.
wflint:
	$(GO) build -o bin/wflint ./cmd/wflint
	./bin/wflint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled pass over the whole module; the CI race job runs exactly
# this, so local reproduction is one command.
race:
	$(GO) test -race ./...

# Coverage profile plus a printed total (the last line of cover -func).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One iteration per benchmark: exercises every scenario end to end
# without turning CI into a measurement run.
bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Refresh the committed benchmark baseline the CI bench-gate compares
# against (same flags as the gate run, so scenario labels match).
bench-baseline:
	$(GO) run ./cmd/wfbench -iters 3 -quick -json BENCH_baseline.json

# The CI bench-regression gate: fail if any S1/S2/S3 row is >30% slower
# than the committed baseline. One automatic re-run absorbs machine
# noise spikes; a real regression fails both passes.
bench-gate:
	$(GO) run ./cmd/wfbench -iters 3 -quick -json BENCH_ci.json -compare BENCH_baseline.json || \
		{ echo "bench-gate: retrying once to rule out machine noise"; \
		  $(GO) run ./cmd/wfbench -iters 3 -quick -json BENCH_ci.json -compare BENCH_baseline.json; }

# End-to-end smokes against real daemons:
#  - multinode: naming + 2 executors + wfexec, SIGKILL one executor
#    mid-run, assert the instance completes via failover;
#  - timers: SIGKILL wfexec mid-delay, restart with -recover, assert the
#    durable timer fires exactly once at its original absolute deadline,
#    plus a `wfadmin schedule` recurring-instantiation smoke.
e2e:
	bash scripts/e2e_multinode.sh
	bash scripts/e2e_timers.sh

# The kill-a-coordinator gauntlet: naming + executors + 2 sharded
# coordinators (wfexec -shard), a load generator spread across both,
# SIGKILL one coordinator mid-run, assert the survivor takes over its
# partitions' leases, re-materializes the orphaned instances from the
# shared store, and every instance still completes. Real daemons and
# real timing, so (like bench-gate) one automatic re-run absorbs
# machine-noise flakes; a real regression fails both passes.
e2e-shard:
	bash scripts/e2e_shardkill.sh || \
		{ echo "e2e-shard: retrying once to rule out machine noise"; \
		  bash scripts/e2e_shardkill.sh; }

# The crash-consistency gauntlet (see docs/INVARIANTS.md, "Storage"):
# a recorded ≥1k-op WAL workload re-materialized truncated at EVERY
# record boundary plus hundreds of seeded intra-record cuts (no
# acknowledged write may be lost, torn tails recover silently), seeded
# mid-log bit-flips (must fail loudly with ErrCorrupt), and the
# engine-level recover-from-every-boundary no-double-fire sweep.
# Verbose output lands in GAUNTLET.log; on failure the log carries the
# failing byte offset and workload seed — the two numbers that ARE the
# repro — and the CI gauntlet job uploads it as the artifact.
gauntlet:
	@$(GO) test -count=1 -run Gauntlet -v ./internal/store ./internal/engine > GAUNTLET.log 2>&1 \
		|| { cat GAUNTLET.log; exit 1; }
	@grep -E "^(--- PASS|ok  )" GAUNTLET.log

# Disk-fault graceful-degradation e2e: two sharded coordinators over
# one state root, SIGUSR1 wedges every partition store one of them has
# mounted mid-run (the daemon stays up), and the script asserts the
# whole chain: quarantine, lease release, healthy-peer takeover and
# re-materialization, every instance completing, and the sick
# coordinator's health surface reporting released-due-to-fault. Real
# daemons and real timing, so one automatic re-run absorbs machine
# noise (same idiom as e2e-shard).
e2e-diskfault:
	bash scripts/e2e_diskfault.sh || \
		{ echo "e2e-diskfault: retrying once to rule out machine noise"; \
		  bash scripts/e2e_diskfault.sh; }

# Deterministic simulation: run the golden-trace scenario catalog
# through wfsim, then the harness's own test suite (scenario replay
# determinism, crash-mid-delay on virtual time, 200-seed fuzz). All on
# a fake clock — the whole target takes seconds. See docs/SCENARIOS.md.
sim:
	$(GO) run ./cmd/wfsim run scenarios/*.scn
	$(GO) test ./internal/sim

# Refresh the checked-in golden traces after an intended behavior
# change; the resulting diff is the review artifact.
golden:
	$(GO) run ./cmd/wfsim golden -update scenarios/*.scn
