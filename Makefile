# Tier-1 verification: the build may never regress to unbuildable again.
# `make check` is what CI (and any contributor) runs before merging.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration per benchmark: exercises every scenario end to end
# without turning CI into a measurement run.
bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...
