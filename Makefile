# Tier-1 verification: the build may never regress to unbuildable again.
# `make check` is what CI (.github/workflows/ci.yml) and any contributor
# runs before merging; `make race` and `make cover` are the other two CI
# entry points.

GO ?= go

.PHONY: check fmt vet build test race cover bench

check: fmt vet build test bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled pass over the whole module; the CI race job runs exactly
# this, so local reproduction is one command.
race:
	$(GO) test -race ./...

# Coverage profile plus a printed total (the last line of cover -func).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One iteration per benchmark: exercises every scenario end to end
# without turning CI into a measurement run.
bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...
