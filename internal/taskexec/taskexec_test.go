package taskexec_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/taskexec"
	"repro/internal/txn"
)

// remoteScript places one task at a named location; the engine must
// dispatch its activation to the remote executor.
const remoteScript = `
class D;

taskclass Crunch
{
    inputs { input main { in of class D } };
    outputs
    {
        outcome done { out of class D };
        abort outcome crunchFailed { }
    }
};

taskclass App
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D }; outcome failed { } }
};

compoundtask app of taskclass App
{
    task crunch of taskclass Crunch
    {
        implementation { "code" is "crunch"; "location" is "worker-1" };
        inputs { input main { inputobject in from { in of task app if input main } } }
    };
    outputs
    {
        outcome done { outputobject out from { out of task crunch if output done } };
        outcome failed { notification from { task crunch if output crunchFailed } }
    }
};
`

// world wires an engine whose remote activations resolve through a
// naming table to one executor server.
type world struct {
	eng      *engine.Engine
	naming   *orb.Naming
	executor *orb.Server
	invoker  *taskexec.Invoker
	remote   *registry.Registry
}

func newWorld(t *testing.T) *world {
	t.Helper()
	// Executor node with its own implementation registry.
	remoteImpls := registry.New()
	exec := taskexec.NewExecutor(remoteImpls)
	execSrv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(execSrv.Close)
	execSrv.Register(taskexec.ObjectName, exec.Servant())

	naming := orb.NewNaming()
	naming.BindEntry("worker-1", execSrv.Addr())

	invoker := taskexec.NewInvoker(naming.Resolve, orb.ClientConfig{})
	t.Cleanup(invoker.Close)

	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	localImpls := registry.New()
	eng := engine.New(preg, localImpls, engine.Config{
		MaxRetries:    1,
		RemoteInvoker: invoker.Invoke,
	})
	t.Cleanup(eng.Close)
	return &world{eng: eng, naming: naming, executor: execSrv, invoker: invoker, remote: remoteImpls}
}

func runRemote(t *testing.T, w *world, id string) engine.Result {
	t.Helper()
	schema := sema.MustCompileSource("remote.wf", []byte(remoteScript))
	inst, err := w.eng.Instantiate(id, schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", registry.Objects{"in": {Class: "D", Data: "payload"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v (events: %v)", err, inst.Events())
	}
	return res
}

func TestRemoteExecution(t *testing.T) {
	w := newWorld(t)
	var sawPath string
	w.remote.Bind("crunch", func(ctx registry.Context) (registry.Result, error) {
		sawPath = ctx.TaskPath()
		in := ctx.Inputs()["in"].Data.(string)
		return registry.Result{Output: "done", Objects: registry.Objects{
			"out": {Class: "D", Data: strings.ToUpper(in)},
		}}, nil
	})
	res := runRemote(t, w, "remote-1")
	if res.Output != "done" || res.Objects["out"].Data.(string) != "PAYLOAD" {
		t.Fatalf("result = %+v", res)
	}
	if sawPath != "app/crunch" {
		t.Fatalf("remote context path = %q", sawPath)
	}
}

func TestRemoteUnboundCodeRetriesThenAborts(t *testing.T) {
	w := newWorld(t)
	// Nothing bound remotely: system failures, retried once, then the
	// declared abort outcome (crunchFailed) -> compound outcome failed.
	res := runRemote(t, w, "remote-2")
	if res.Output != "failed" {
		t.Fatalf("outcome = %q, want failed", res.Output)
	}
}

func TestRemoteUnknownLocationFails(t *testing.T) {
	w := newWorld(t)
	w.naming.UnbindEntry("worker-1")
	res := runRemote(t, w, "remote-3")
	if res.Output != "failed" {
		t.Fatalf("outcome = %q, want failed (unresolvable location)", res.Output)
	}
}

func TestRemoteExecutorMovedHealedByRetry(t *testing.T) {
	// The location resolves to a dead endpoint on the first activation
	// and to the real executor afterwards — a moved service healed by the
	// engine's automatic retry, with no timing dependence.
	remoteImpls := registry.New()
	remoteImpls.Bind("crunch", registry.Fixed("done", registry.Objects{"out": {Class: "D", Data: "ok"}}))
	execSrv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer execSrv.Close()
	execSrv.Register(taskexec.ObjectName, taskexec.NewExecutor(remoteImpls).Servant())

	calls := 0
	resolver := func(location string) (string, error) {
		calls++
		if calls == 1 {
			return "127.0.0.1:1", nil // nothing listens here
		}
		return execSrv.Addr(), nil
	}
	invoker := taskexec.NewInvoker(resolver, orb.ClientConfig{Retries: 1, RetryDelay: time.Millisecond})
	defer invoker.Close()

	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	eng := engine.New(preg, registry.New(), engine.Config{MaxRetries: 2, RemoteInvoker: invoker.Invoke})
	defer eng.Close()

	schema := sema.MustCompileSource("remote.wf", []byte(remoteScript))
	inst, err := eng.Instantiate("remote-4", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", registry.Objects{"in": {Class: "D", Data: "x"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.Output != "done" {
		t.Fatalf("outcome = %q, want done after the location healed", res.Output)
	}
	retried := false
	for _, e := range inst.Events() {
		if e.Kind == engine.EventTaskRetried {
			retried = true
		}
	}
	if !retried {
		t.Error("expected at least one automatic retry")
	}
}
