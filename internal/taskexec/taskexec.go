// Package taskexec implements remote task executors: orb servants that
// host task implementations and run activations dispatched to them by
// the workflow engine when a task carries a "location" implementation
// property (Section 4.3 lists "location" and "agent" among the
// implementation keywords; this realises them over the orb substrate).
//
// Deployment shape: each executor node registers its implementation
// registry under the well-known "task-executor" object and binds its
// location name in the naming service; the engine-side Invoker resolves
// locations through naming and dispatches activations. Remote failures
// surface as system-level failures, so the engine's automatic retry and
// abort mapping apply unchanged.
package taskexec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/registry"
	"repro/internal/timers"
	"repro/internal/txn"
)

// ObjectName is the executor's well-known servant name.
const ObjectName = "task-executor"

// executeReq is one remote activation.
type executeReq struct {
	Code      string
	Instance  string
	TaskPath  string
	InputSet  string
	Attempt   int
	Iteration int
	Inputs    registry.Objects
}

// executeResp carries the implementation's result. SysErr reports a
// system-level failure (unbound code, panic) distinct from application
// outcomes. Spans carries the executor-side trace spans of this
// activation back to the dispatching coordinator, where they are
// imported into its tracer — that is how a cross-process activation
// reads as one stitched trace (gob decodes a missing field as nil, so
// older executors interoperate).
type executeResp struct {
	Output  string
	Objects registry.Objects
	SysErr  string
	Spans   []obs.Span
}

// remoteCtx adapts an executeReq to registry.Context on the executor
// side. Marks are unavailable remotely (single request/reply), and
// remote tasks run non-atomically from the executor's point of view —
// atomicity is coordinated by the engine's side.
type remoteCtx struct {
	req  executeReq
	done chan struct{}
}

var _ registry.Context = (*remoteCtx)(nil)

func (c *remoteCtx) Instance() string         { return c.req.Instance }
func (c *remoteCtx) TaskPath() string         { return c.req.TaskPath }
func (c *remoteCtx) InputSet() string         { return c.req.InputSet }
func (c *remoteCtx) Inputs() registry.Objects { return c.req.Inputs }
func (c *remoteCtx) Attempt() int             { return c.req.Attempt }
func (c *remoteCtx) Iteration() int           { return c.req.Iteration }
func (c *remoteCtx) Txn() *txn.Txn            { return nil }
func (c *remoteCtx) Done() <-chan struct{}    { return c.done }

func (c *remoteCtx) Mark(name string, _ registry.Objects) error {
	return fmt.Errorf("mark %s: remote activations cannot produce marks", name)
}

// Executor hosts implementations and serves remote activations.
type Executor struct {
	impls *registry.Registry

	clk             timers.Clock
	tracer          *obs.Tracer
	mExecutions     *obs.Counter
	mExecuteSeconds *obs.Histogram
}

// NewExecutor returns an executor over the given implementation
// registry, instrumented against the process-default observability
// (override with SetObservability before Servant).
func NewExecutor(impls *registry.Registry) *Executor {
	e := &Executor{impls: impls}
	e.SetObservability(obs.Default(), obs.DefaultTracer(), nil)
	return e
}

// SetObservability re-points the executor's metrics registry, tracer
// and span clock (nil clk selects wall time). Call before Servant.
func (e *Executor) SetObservability(reg *obs.Registry, tr *obs.Tracer, clk timers.Clock) {
	if clk == nil {
		clk = timers.WallClock{}
	}
	e.clk = clk
	e.tracer = tr
	e.mExecutions = reg.Counter(obs.MTaskExecutions)
	e.mExecuteSeconds = reg.Histogram(obs.MTaskExecuteSeconds, nil)
}

// Impls exposes the executor's registry (for binding implementations).
func (e *Executor) Impls() *registry.Registry { return e.impls }

// Servant exports the executor over the orb.
func (e *Executor) Servant() *orb.Servant {
	sv := orb.NewServant()
	orb.MethodMeta(sv, "execute", func(meta map[string]string, req executeReq) (executeResp, error) {
		start := e.clk.Now()
		e.mExecutions.Inc()
		resp := e.execute(req)
		e.mExecuteSeconds.ObserveSince(e.clk, start)
		// The execution span joins the dispatching coordinator's trace:
		// the rpc span's IDs ride the call metadata, and the span rides
		// the reply back (plus the local tracer, for this process's own
		// debug endpoint).
		if tid := meta["trace-id"]; tid != "" {
			sp := obs.Span{
				TraceID: tid, SpanID: obs.NewID(), Parent: meta["span-id"],
				Name: "execute", Instance: req.Instance, Task: req.TaskPath,
				Start: start, End: e.clk.Now(), Err: resp.SysErr,
				Attrs: map[string]string{"code": req.Code, "attempt": fmt.Sprint(req.Attempt)},
			}
			e.tracer.Record(sp)
			resp.Spans = append(resp.Spans, sp)
		}
		return resp, nil
	})
	return sv
}

// execute runs one remote activation through the bound implementation.
func (e *Executor) execute(req executeReq) executeResp {
	f, err := e.impls.Lookup(req.Code)
	if err != nil {
		return executeResp{SysErr: err.Error()}
	}
	ctx := &remoteCtx{req: req, done: make(chan struct{})}
	res, err := runSafely(f, ctx)
	if err != nil {
		return executeResp{SysErr: err.Error()}
	}
	return executeResp{Output: res.Output, Objects: res.Objects}
}

// runSafely converts implementation panics into errors so a bad remote
// implementation cannot kill the executor.
func runSafely(f registry.Func, ctx registry.Context) (res registry.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("implementation panic: %v", p)
		}
	}()
	return f(ctx)
}

// Resolver maps a location name to a single endpoint address; kept for
// single-endpoint deployments (see SetResolver in pool.go for
// pool-aware resolution).
type Resolver func(location string) (string, error)

// Invoker is the engine-side dispatcher: it resolves a task's location
// to the set of executor endpoints currently serving it, balances
// activations across the set (round-robin or least-inflight), tracks
// per-endpoint health (failed members are evicted and temporarily
// blacklisted) and fails a dispatch over to surviving members before
// surfacing a system-level failure to the engine's retry/abort mapping.
type Invoker struct {
	resolveSet SetResolver
	cfg        PoolConfig

	mDispatchSeconds *obs.Histogram
	mFailovers       *obs.Counter

	mu        sync.Mutex
	endpoints map[string]*endpoint
	resolved  map[string]*resolvedSet
	rr        uint64
	closed    bool
}

// NewInvoker builds an engine.RemoteInvoker-compatible dispatcher over a
// single-endpoint resolver (a pool of one per location).
func NewInvoker(resolve Resolver, cfg orb.ClientConfig) *Invoker {
	inv, err := NewPoolInvoker(singleResolver(resolve), PoolConfig{Client: cfg})
	if err != nil {
		// Unreachable: the zero Balance is always valid.
		panic(err)
	}
	return inv
}

// Close drops every cached client and retires the invoker: dispatches
// that wake after Close — including one mid-failover whose current
// member just died — stop instead of re-running the activation on the
// next member. Without this, a dispatch abandoned by its (shut down)
// owner could keep re-dispatching on someone else's executors.
func (inv *Invoker) Close() {
	inv.mu.Lock()
	inv.closed = true
	clients := make([]*orb.Client, 0, len(inv.endpoints))
	for _, ep := range inv.endpoints {
		if ep.client != nil {
			clients = append(clients, ep.client)
			ep.client = nil
		}
	}
	inv.endpoints = make(map[string]*endpoint)
	inv.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// Invoke implements engine.RemoteInvoker. One call is one activation
// dispatch: resolve the member set, try members in balance order, and
// return the first member's verdict — failing over to the next member
// only on transport-level failures (the activation never reached an
// implementation), so the engine's at-least-once retry accounting is
// preserved.
func (inv *Invoker) Invoke(req engine.RemoteRequest) (registry.Result, error) {
	addrs, err := inv.resolve(req.Location)
	if err != nil {
		return registry.Result{}, fmt.Errorf("resolve location %q: %w", req.Location, err)
	}
	if len(addrs) == 0 {
		return registry.Result{}, fmt.Errorf("resolve location %q: empty member set", req.Location)
	}
	order := inv.plan(addrs, fmt.Sprintf("%s|%s|%s|%d|%d", req.Location, req.Instance, req.TaskPath, req.Attempt, req.Iteration))
	if inv.cfg.MaxFailover > 0 && len(order) > inv.cfg.MaxFailover {
		order = order[:inv.cfg.MaxFailover]
	}
	var lastErr error
	for nth, addr := range order {
		inv.mu.Lock()
		closed := inv.closed
		inv.mu.Unlock()
		if closed {
			if lastErr == nil {
				lastErr = errors.New("invoker closed")
			}
			return registry.Result{}, fmt.Errorf("remote execute at %q: invoker closed: %w", req.Location, lastErr)
		}
		if nth > 0 {
			// Reaching a second member means the previous one failed at
			// the transport level: a pool failover.
			inv.mFailovers.Inc()
		}
		// The rpc span covers one member round-trip and parents the
		// executor-side execute span; its IDs ride the call metadata.
		// Untraced dispatches skip span minting entirely.
		start := inv.cfg.Clock.Now()
		var sp obs.Span
		var meta map[string]string
		if req.TraceID != "" {
			sp = obs.Span{
				TraceID: req.TraceID, SpanID: obs.NewID(), Parent: req.SpanID,
				Name: "rpc", Instance: req.Instance, Task: req.TaskPath,
				Start: start,
				Attrs: map[string]string{"endpoint": addr, "code": req.Code},
			}
			meta = map[string]string{"trace-id": req.TraceID, "span-id": sp.SpanID}
		}
		ep, client := inv.acquire(addr)
		resp, err := orb.CallMeta[executeReq, executeResp](client, ObjectName, "execute", meta, executeReq{
			Code: req.Code, Instance: req.Instance, TaskPath: req.TaskPath,
			InputSet: req.InputSet, Attempt: req.Attempt, Iteration: req.Iteration,
			Inputs: req.Inputs,
		})
		inv.release(ep, err != nil)
		inv.mDispatchSeconds.ObserveSince(inv.cfg.Clock, start)
		if req.TraceID != "" {
			sp.End = inv.cfg.Clock.Now()
			if err != nil {
				sp.Err = err.Error()
			}
			inv.cfg.Tracer.Record(sp)
			inv.cfg.Tracer.Import(resp.Spans)
		}
		if err != nil {
			lastErr = fmt.Errorf("member %s: %w", addr, err)
			continue
		}
		if resp.SysErr != "" {
			// The executor ran (or refused) the activation: an
			// executor-level system failure, not a membership problem —
			// surface it to the engine rather than re-running elsewhere.
			return registry.Result{}, errors.New(resp.SysErr)
		}
		return registry.Result{Output: resp.Output, Objects: resp.Objects}, nil
	}
	return registry.Result{}, fmt.Errorf("remote execute at %q: all %d members failed: %w", req.Location, len(order), lastErr)
}

// Ensure the adapter satisfies the engine's hook type.
var _ engine.RemoteInvoker = (*Invoker)(nil).Invoke
