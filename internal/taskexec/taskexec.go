// Package taskexec implements remote task executors: orb servants that
// host task implementations and run activations dispatched to them by
// the workflow engine when a task carries a "location" implementation
// property (Section 4.3 lists "location" and "agent" among the
// implementation keywords; this realises them over the orb substrate).
//
// Deployment shape: each executor node registers its implementation
// registry under the well-known "task-executor" object and binds its
// location name in the naming service; the engine-side Invoker resolves
// locations through naming and dispatches activations. Remote failures
// surface as system-level failures, so the engine's automatic retry and
// abort mapping apply unchanged.
package taskexec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/orb"
	"repro/internal/registry"
	"repro/internal/txn"
)

// ObjectName is the executor's well-known servant name.
const ObjectName = "task-executor"

// executeReq is one remote activation.
type executeReq struct {
	Code      string
	Instance  string
	TaskPath  string
	InputSet  string
	Attempt   int
	Iteration int
	Inputs    registry.Objects
}

// executeResp carries the implementation's result. SysErr reports a
// system-level failure (unbound code, panic) distinct from application
// outcomes.
type executeResp struct {
	Output  string
	Objects registry.Objects
	SysErr  string
}

// remoteCtx adapts an executeReq to registry.Context on the executor
// side. Marks are unavailable remotely (single request/reply), and
// remote tasks run non-atomically from the executor's point of view —
// atomicity is coordinated by the engine's side.
type remoteCtx struct {
	req  executeReq
	done chan struct{}
}

var _ registry.Context = (*remoteCtx)(nil)

func (c *remoteCtx) Instance() string         { return c.req.Instance }
func (c *remoteCtx) TaskPath() string         { return c.req.TaskPath }
func (c *remoteCtx) InputSet() string         { return c.req.InputSet }
func (c *remoteCtx) Inputs() registry.Objects { return c.req.Inputs }
func (c *remoteCtx) Attempt() int             { return c.req.Attempt }
func (c *remoteCtx) Iteration() int           { return c.req.Iteration }
func (c *remoteCtx) Txn() *txn.Txn            { return nil }
func (c *remoteCtx) Done() <-chan struct{}    { return c.done }

func (c *remoteCtx) Mark(name string, _ registry.Objects) error {
	return fmt.Errorf("mark %s: remote activations cannot produce marks", name)
}

// Executor hosts implementations and serves remote activations.
type Executor struct {
	impls *registry.Registry
}

// NewExecutor returns an executor over the given implementation
// registry.
func NewExecutor(impls *registry.Registry) *Executor {
	return &Executor{impls: impls}
}

// Impls exposes the executor's registry (for binding implementations).
func (e *Executor) Impls() *registry.Registry { return e.impls }

// Servant exports the executor over the orb.
func (e *Executor) Servant() *orb.Servant {
	sv := orb.NewServant()
	orb.Method(sv, "execute", func(req executeReq) (executeResp, error) {
		f, err := e.impls.Lookup(req.Code)
		if err != nil {
			return executeResp{SysErr: err.Error()}, nil
		}
		ctx := &remoteCtx{req: req, done: make(chan struct{})}
		res, err := runSafely(f, ctx)
		if err != nil {
			return executeResp{SysErr: err.Error()}, nil
		}
		return executeResp{Output: res.Output, Objects: res.Objects}, nil
	})
	return sv
}

// runSafely converts implementation panics into errors so a bad remote
// implementation cannot kill the executor.
func runSafely(f registry.Func, ctx registry.Context) (res registry.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("implementation panic: %v", p)
		}
	}()
	return f(ctx)
}

// Resolver maps a location name to an endpoint address; usually a naming
// client's Resolve.
type Resolver func(location string) (string, error)

// Invoker dispatches engine activations to executors, caching one client
// per resolved endpoint.
type Invoker struct {
	resolve Resolver
	cfg     orb.ClientConfig

	mu      sync.Mutex
	clients map[string]*orb.Client
}

// NewInvoker builds an engine.RemoteInvoker-compatible dispatcher.
func NewInvoker(resolve Resolver, cfg orb.ClientConfig) *Invoker {
	return &Invoker{resolve: resolve, cfg: cfg, clients: make(map[string]*orb.Client)}
}

// Close drops all cached clients.
func (inv *Invoker) Close() {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	for _, c := range inv.clients {
		c.Close()
	}
	inv.clients = make(map[string]*orb.Client)
}

// client returns (creating if needed) the client for an endpoint.
func (inv *Invoker) client(addr string) *orb.Client {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if c, ok := inv.clients[addr]; ok {
		return c
	}
	c := orb.Dial(addr, inv.cfg)
	inv.clients[addr] = c
	return c
}

// Invoke implements engine.RemoteInvoker.
func (inv *Invoker) Invoke(req engine.RemoteRequest) (registry.Result, error) {
	addr, err := inv.resolve(req.Location)
	if err != nil {
		return registry.Result{}, fmt.Errorf("resolve location %q: %w", req.Location, err)
	}
	resp, err := orb.Call[executeReq, executeResp](inv.client(addr), ObjectName, "execute", executeReq{
		Code: req.Code, Instance: req.Instance, TaskPath: req.TaskPath,
		InputSet: req.InputSet, Attempt: req.Attempt, Iteration: req.Iteration,
		Inputs: req.Inputs,
	})
	if err != nil {
		return registry.Result{}, fmt.Errorf("remote execute at %q: %w", req.Location, err)
	}
	if resp.SysErr != "" {
		return registry.Result{}, errors.New(resp.SysErr)
	}
	return registry.Result{Output: resp.Output, Objects: resp.Objects}, nil
}

// Ensure the adapter satisfies the engine's hook type.
var _ engine.RemoteInvoker = (*Invoker)(nil).Invoke
