package taskexec_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/taskexec"
	"repro/internal/txn"
)

// newExecNode starts one executor server whose "work" implementation
// records the node's identity and forwards its input.
func newExecNode(t *testing.T, name string, hook func(registry.Context)) *orb.Server {
	t.Helper()
	impls := registry.New()
	impls.Bind("work", func(ctx registry.Context) (registry.Result, error) {
		if hook != nil {
			hook(ctx)
		}
		return registry.Result{Output: "done", Objects: registry.Objects{
			"out": {Class: "D", Data: name},
		}}, nil
	})
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.Register(taskexec.ObjectName, taskexec.NewExecutor(impls).Servant())
	return srv
}

// req builds a minimal remote activation for direct Invoke tests.
func req() engine.RemoteRequest {
	return engine.RemoteRequest{
		Location: "pool", Code: "work", Instance: "i", TaskPath: "app/t",
		InputSet: "main", Inputs: registry.Objects{"in": {Class: "D", Data: "x"}},
	}
}

func fixedSet(addrs ...string) taskexec.SetResolver {
	return func(string) ([]string, error) { return addrs, nil }
}

func TestRoundRobinSpreadsDispatches(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	hook := func(name string) func(registry.Context) {
		return func(registry.Context) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
		}
	}
	a := newExecNode(t, "a", hook("a"))
	b := newExecNode(t, "b", hook("b"))
	c := newExecNode(t, "c", hook("c"))

	inv, err := taskexec.NewPoolInvoker(fixedSet(a.Addr(), b.Addr(), c.Addr()), taskexec.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()
	for k := 0; k < 30; k++ {
		if _, err := inv.Invoke(req()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range []string{"a", "b", "c"} {
		if counts[name] != 10 {
			t.Fatalf("counts = %v, want a perfect 10/10/10 rotation", counts)
		}
	}
}

func TestLeastInflightAvoidsBusyMember(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := newExecNode(t, "slow", func(ctx registry.Context) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	})
	var mu sync.Mutex
	idleCalls := 0
	idle := newExecNode(t, "idle", func(registry.Context) {
		mu.Lock()
		idleCalls++
		mu.Unlock()
	})

	inv, err := taskexec.NewPoolInvoker(fixedSet(slow.Addr(), idle.Addr()), taskexec.PoolConfig{
		Balance: taskexec.BalanceLeastInflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	// Park one dispatch on the slow member...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := inv.Invoke(req()); err != nil {
			t.Errorf("slow dispatch: %v", err)
		}
	}()
	<-started
	// ...then every further dispatch must pick the idle member.
	for k := 0; k < 10; k++ {
		res, err := inv.Invoke(req())
		if err != nil {
			t.Fatal(err)
		}
		if res.Objects["out"].Data.(string) != "idle" {
			t.Fatalf("dispatch %d went to %q, want the idle member", k, res.Objects["out"].Data)
		}
	}
	mu.Lock()
	if idleCalls != 10 {
		t.Fatalf("idle calls = %d, want 10", idleCalls)
	}
	mu.Unlock()
	close(release)
	wg.Wait()
}

func TestFailoverToSurvivingMember(t *testing.T) {
	live := newExecNode(t, "live", nil)
	dead, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close() // nothing listens here any more

	inv, err := taskexec.NewPoolInvoker(fixedSet(deadAddr, live.Addr()), taskexec.PoolConfig{
		Client:       orb.ClientConfig{Retries: 1, RetryDelay: time.Millisecond},
		BlacklistFor: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	// Every dispatch completes despite the dead member being first in
	// the set; after the first failure the dead member is blacklisted so
	// subsequent dispatches do not even try it.
	for k := 0; k < 8; k++ {
		res, err := inv.Invoke(req())
		if err != nil {
			t.Fatalf("dispatch %d: %v", k, err)
		}
		if res.Objects["out"].Data.(string) != "live" {
			t.Fatalf("dispatch %d served by %q", k, res.Objects["out"].Data)
		}
	}
	var deadDispatched, deadFailures int64
	for _, st := range inv.Stats() {
		if st.Addr == deadAddr {
			deadDispatched, deadFailures = st.Dispatched, st.Failures
			if st.Connected {
				t.Error("dead member still holds a cached client")
			}
			if !st.Blacklisted {
				t.Error("dead member not blacklisted")
			}
		}
	}
	if deadFailures == 0 {
		t.Fatal("dead member never recorded a failure")
	}
	if deadDispatched > 2 {
		t.Fatalf("dead member dispatched %d times; blacklist did not deprioritise it", deadDispatched)
	}
}

func TestAllMembersBlacklistedStillTried(t *testing.T) {
	srv := newExecNode(t, "only", nil)
	inv, err := taskexec.NewPoolInvoker(fixedSet(srv.Addr()), taskexec.PoolConfig{
		Client:       orb.ClientConfig{Retries: 0, RetryDelay: time.Millisecond},
		BlacklistFor: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	// Blacklist the only member by failing a dispatch against a closed
	// server... we cannot close and reopen the same port reliably, so
	// instead force a failure through a resolver that points at a dead
	// address once.
	deadSrv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadSrv.Addr()
	deadSrv.Close()
	deadInv, err := taskexec.NewPoolInvoker(fixedSet(deadAddr), taskexec.PoolConfig{
		Client:       orb.ClientConfig{Retries: 0, RetryDelay: time.Millisecond},
		BlacklistFor: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer deadInv.Close()
	if _, err := deadInv.Invoke(req()); err == nil {
		t.Fatal("dispatch against a dead-only pool must fail")
	}
	// The member is blacklisted for an hour, yet the next dispatch still
	// tries it (last resort) rather than failing without any attempt.
	if _, err := deadInv.Invoke(req()); err == nil {
		t.Fatal("still dead")
	}
	for _, st := range deadInv.Stats() {
		if st.Addr == deadAddr && st.Dispatched < 2 {
			t.Fatalf("blacklisted last-resort member not retried: %+v", st)
		}
	}

	// And a healthy pool with a long blacklist keeps serving.
	if _, err := inv.Invoke(req()); err != nil {
		t.Fatal(err)
	}
}

// TestKilledAndReboundServantPickedUp is the regression test for the
// cached-client eviction fix: an executor dies, its location is rebound
// to a new address, and the invoker must pick up the new endpoint on
// the next dispatch instead of clinging to the dead cached client.
func TestKilledAndReboundServantPickedUp(t *testing.T) {
	naming := orb.NewNaming()
	first := newExecNode(t, "first", nil)
	naming.BindEntry("pool", first.Addr())

	inv, err := taskexec.NewPoolInvoker(naming.ResolveAll, taskexec.PoolConfig{
		Client:       orb.ClientConfig{Retries: 1, RetryDelay: time.Millisecond},
		BlacklistFor: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	res, err := inv.Invoke(req())
	if err != nil || res.Objects["out"].Data.(string) != "first" {
		t.Fatalf("warm-up dispatch: %v %v", res, err)
	}

	// Kill the executor. A dispatch while the location still names the
	// dead address fails — and must evict the cached client.
	firstAddr := first.Addr()
	first.Close()
	if _, err := inv.Invoke(req()); err == nil {
		t.Fatal("dispatch against the killed executor must fail")
	}
	for _, st := range inv.Stats() {
		if st.Addr == firstAddr && st.Connected {
			t.Fatal("dead endpoint's client not evicted after call failure")
		}
	}

	// The executor restarts at a NEW address and re-registers; the next
	// dispatch must reach it through re-resolution.
	second := newExecNode(t, "second", nil)
	naming.BindEntry("pool", second.Addr())
	res, err = inv.Invoke(req())
	if err != nil {
		t.Fatalf("dispatch after rebind: %v", err)
	}
	if res.Objects["out"].Data.(string) != "second" {
		t.Fatalf("dispatch served by %q, want the rebound executor", res.Objects["out"].Data)
	}
}

// locatedPoolScript pins one task to the pooled location.
const locatedPoolScript = `
class D;

taskclass Crunch
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D } }
};

taskclass App
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D } }
};

compoundtask app of taskclass App
{
    task crunch of taskclass Crunch
    {
        implementation { "code" is "work"; "location" is "pool" };
        inputs { input main { inputobject in from { in of task app if input main } } }
    };
    outputs { outcome done { outputobject out from { out of task crunch if output done } } }
};
`

// TestEngineFailoverMasksDeadMember pins the paper-facing semantics: a
// system-level failure of one pool member is masked by failover inside
// ONE dispatch, so the engine sees no failure at all (MaxRetries
// effectively untouched, no retry events).
func TestEngineFailoverMasksDeadMember(t *testing.T) {
	live := newExecNode(t, "live", nil)
	deadSrv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadSrv.Addr()
	deadSrv.Close()

	inv, err := taskexec.NewPoolInvoker(fixedSet(deadAddr, live.Addr()), taskexec.PoolConfig{
		Client: orb.ClientConfig{Retries: 0, RetryDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	eng := engine.New(preg, registry.New(), engine.Config{
		// MaxRetries 0 would be defaulted to 3; use a canary value and
		// assert no retry events instead.
		MaxRetries:    1,
		RemoteInvoker: inv.Invoke,
	})
	defer eng.Close()

	schema := sema.MustCompileSource("pool.wf", []byte(locatedPoolScript))
	inst, err := eng.Instantiate("pool-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", registry.Objects{"in": {Class: "D", Data: "x"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.Output != "done" {
		t.Fatalf("outcome = %q", res.Output)
	}
	for _, e := range inst.Events() {
		if e.Kind == engine.EventTaskRetried {
			t.Fatalf("engine retried despite pool failover: %+v", e)
		}
	}
}

// TestResolveCacheAndStaleFallback pins the ResolveCache contract: a
// fresh set is served from cache without re-resolving, an expired cache
// refreshes, and a failed refresh falls back to the last known set.
func TestResolveCacheAndStaleFallback(t *testing.T) {
	srv := newExecNode(t, "n1", nil)
	var mu sync.Mutex
	resolves, fail := 0, false
	resolver := func(string) ([]string, error) {
		mu.Lock()
		defer mu.Unlock()
		resolves++
		if fail {
			return nil, fmt.Errorf("naming service down")
		}
		return []string{srv.Addr()}, nil
	}
	inv, err := taskexec.NewPoolInvoker(resolver, taskexec.PoolConfig{
		ResolveCache: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	// A burst within the cache window costs exactly one resolve.
	for k := 0; k < 10; k++ {
		if _, err := inv.Invoke(req()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	if resolves != 1 {
		t.Fatalf("resolves = %d during cache window, want 1", resolves)
	}
	// The naming service "goes down"; once the cache expires, dispatch
	// must keep working off the stale set.
	fail = true
	mu.Unlock()
	time.Sleep(250 * time.Millisecond)
	if _, err := inv.Invoke(req()); err != nil {
		t.Fatalf("dispatch must fall back to the stale set: %v", err)
	}
	mu.Lock()
	if resolves < 2 {
		t.Fatalf("resolves = %d, expected an (attempted) refresh after expiry", resolves)
	}
	mu.Unlock()
}

// TestPoolInvokerValidatesBalance pins the constructor contract.
func TestPoolInvokerValidatesBalance(t *testing.T) {
	if _, err := taskexec.NewPoolInvoker(fixedSet("x"), taskexec.PoolConfig{Balance: "fastest"}); err == nil {
		t.Fatal("unknown balance strategy must be rejected")
	}
	for _, b := range []string{"", taskexec.BalanceRoundRobin, taskexec.BalanceLeastInflight} {
		if _, err := taskexec.NewPoolInvoker(fixedSet("x"), taskexec.PoolConfig{Balance: b}); err != nil {
			t.Fatalf("balance %q rejected: %v", b, err)
		}
	}
}

// TestConcurrentDispatches hammers one pool from many goroutines to give
// the race detector surface over acquire/release/plan.
func TestConcurrentDispatches(t *testing.T) {
	a := newExecNode(t, "a", nil)
	b := newExecNode(t, "b", nil)
	inv, err := taskexec.NewPoolInvoker(fixedSet(a.Addr(), b.Addr()), taskexec.PoolConfig{
		Balance: taskexec.BalanceLeastInflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if _, err := inv.Invoke(req()); err != nil {
					errs <- fmt.Errorf("dispatch: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var total int64
	for _, st := range inv.Stats() {
		total += st.Dispatched
		if st.Inflight != 0 {
			t.Fatalf("inflight %d after quiesce: %+v", st.Inflight, st)
		}
	}
	if total != 64 {
		t.Fatalf("total dispatched = %d, want 64", total)
	}
}
