package taskexec

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/timers"
)

// SetResolver maps a location name to the set of endpoint addresses
// currently serving it; usually a naming client's ResolveAll. The set is
// re-resolved on every dispatch, so membership changes (heartbeat
// expiry, re-registration at a new address) take effect immediately.
type SetResolver func(location string) ([]string, error)

// Balancing strategies for picking a member of a location's pool.
const (
	// BalanceRoundRobin rotates dispatches across the resolve set.
	BalanceRoundRobin = "roundrobin"
	// BalanceLeastInflight picks the member with the fewest dispatches
	// currently in flight (ties broken by resolve-set order).
	BalanceLeastInflight = "leastinflight"
	// BalanceHash starts the rotation at a member chosen by hashing the
	// activation's identity (instance, task path, attempt, iteration):
	// the same activation always lands on the same member regardless of
	// how concurrent dispatches interleave. Round-robin and
	// least-inflight both depend on dispatch arrival order, so they are
	// unusable where replay must be bit-identical — the deterministic
	// simulation harness (internal/sim) requires this strategy.
	BalanceHash = "hash"
)

// PoolConfig tunes the pool-aware dispatcher.
type PoolConfig struct {
	// Client is the per-endpoint orb client configuration (its Retries
	// bound same-endpoint transport retries; pool failover across members
	// is on top of them).
	Client orb.ClientConfig
	// Balance selects the member-picking strategy; default
	// BalanceRoundRobin.
	Balance string
	// BlacklistFor is how long a member that failed a connect or call is
	// deprioritised (tried only after every healthy member). Default 2s.
	BlacklistFor time.Duration
	// MaxFailover bounds how many distinct members one dispatch tries
	// before surfacing the failure to the engine's retry/abort mapping.
	// 0 tries every resolved member.
	MaxFailover int
	// ResolveCache caches a location's resolved member set for this
	// long, so dispatch rate is not capped by round-trips to a remote
	// naming service (one mutex-serialised RPC per dispatch otherwise).
	// A failed refresh falls back to the last known set — a naming
	// service restart does not stop dispatch to cached members. 0
	// disables caching (every dispatch re-resolves; right for
	// in-process resolvers). Keep it at or below the executors'
	// heartbeat interval so membership changes are still seen promptly.
	ResolveCache time.Duration
	// Clock paces blacklist expiry and the resolve cache. Default
	// timers.WallClock; the simulation harness injects its shared
	// timers.FakeClock so endpoint health moves with virtual time.
	Clock timers.Clock
	// Metrics receives the dispatcher's per-endpoint counters and
	// latency histograms. Default: a private registry (daemons pass
	// their scrape registry; the default keeps unwired invokers from
	// cross-talking through the process-global one).
	Metrics *obs.Registry
	// Tracer records dispatch (rpc) spans and imports the executor-side
	// execution spans returned in replies. Default obs.DefaultTracer().
	Tracer *obs.Tracer

	// now is the blacklist clock, derived from Clock.
	now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Balance == "" {
		c.Balance = BalanceRoundRobin
	}
	if c.BlacklistFor == 0 {
		c.BlacklistFor = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = timers.WallClock{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
	if c.now == nil {
		c.now = c.Clock.Now
	}
	return c
}

// endpoint is the per-address dispatch state: the cached client (nil
// after an eviction), the health view, and the dispatch instruments.
// The counters live in the pool's metrics registry (labelled by
// endpoint address) — Stats() is a snapshot view over them, and a
// pruned-then-recreated endpoint resumes its counts instead of
// resetting them.
type endpoint struct {
	addr             string
	client           *orb.Client
	mDispatched      *obs.Counter
	mFailures        *obs.Counter
	mInflight        *obs.Gauge
	blacklistedUntil time.Time
	// lastSeen is the last time a resolve set contained this address;
	// entries that drop out of every resolve set (executors restarted
	// at new ephemeral ports) are pruned once idle and stale, so a
	// long-lived dispatcher does not accumulate dead endpoints forever.
	lastSeen time.Time
}

// endpointEvictAfter is how long an endpoint may go unseen by any
// resolve set before an idle entry is pruned.
const endpointEvictAfter = 5 * time.Minute

// EndpointStats is one row of a pool observability snapshot.
type EndpointStats struct {
	Addr string
	// Dispatched counts activations sent to the endpoint (including ones
	// that subsequently failed).
	Dispatched int64
	// Failures counts connect/call failures observed at the endpoint.
	Failures int64
	// Inflight is the number of dispatches currently outstanding.
	Inflight int
	// Connected reports whether a client is cached for the endpoint
	// (false after a failure evicted it).
	Connected bool
	// Blacklisted reports whether the endpoint is currently
	// deprioritised.
	Blacklisted bool
}

// Stats returns a per-endpoint snapshot, sorted by address. It is a
// back-compat view over the pool's metrics registry: the counters
// themselves live there (taskexec_dispatches_total{endpoint=...} and
// friends), this just re-shapes the current endpoints' series.
func (inv *Invoker) Stats() []EndpointStats {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	now := inv.cfg.now()
	out := make([]EndpointStats, 0, len(inv.endpoints))
	for _, ep := range inv.endpoints {
		out = append(out, EndpointStats{
			Addr:        ep.addr,
			Dispatched:  ep.mDispatched.Value(),
			Failures:    ep.mFailures.Value(),
			Inflight:    int(ep.mInflight.Value()),
			Connected:   ep.client != nil,
			Blacklisted: ep.blacklistedUntil.After(now),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// plan orders the resolved members for one dispatch: the balancing
// strategy ranks them, then currently blacklisted members are moved to
// the back (kept as last resort, so an all-blacklisted pool still gets
// tried rather than failing outright). key is the activation identity
// BalanceHash seeds its rotation with; the other strategies ignore it.
func (inv *Invoker) plan(addrs []string, key string) []string {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	now := inv.cfg.now()
	for _, addr := range addrs {
		if ep, ok := inv.endpoints[addr]; ok {
			ep.lastSeen = now
		}
	}
	inv.pruneStale(now)
	ordered := make([]string, len(addrs))
	copy(ordered, addrs)
	switch inv.cfg.Balance {
	case BalanceLeastInflight:
		// Stable sort keeps resolve-set order among equally loaded
		// members (deterministic when idle).
		sort.SliceStable(ordered, func(i, j int) bool {
			return inv.inflightOf(ordered[i]) < inv.inflightOf(ordered[j])
		})
	case BalanceHash:
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		start := int(h.Sum64() % uint64(len(ordered)))
		rotated := make([]string, 0, len(ordered))
		rotated = append(rotated, ordered[start:]...)
		rotated = append(rotated, ordered[:start]...)
		ordered = rotated
	default: // BalanceRoundRobin
		start := int(inv.rr % uint64(len(ordered)))
		inv.rr++
		rotated := make([]string, 0, len(ordered))
		rotated = append(rotated, ordered[start:]...)
		rotated = append(rotated, ordered[:start]...)
		ordered = rotated
	}
	healthy := make([]string, 0, len(ordered))
	var benched []string
	for _, addr := range ordered {
		if ep, ok := inv.endpoints[addr]; ok && ep.blacklistedUntil.After(now) {
			benched = append(benched, addr)
			continue
		}
		healthy = append(healthy, addr)
	}
	return append(healthy, benched...)
}

// pruneStale drops idle endpoints that no resolve set has mentioned
// for endpointEvictAfter (their clients, if any, are closed out of
// band). Callers hold mu.
func (inv *Invoker) pruneStale(now time.Time) {
	for addr, ep := range inv.endpoints {
		if ep.mInflight.Value() == 0 && !ep.lastSeen.IsZero() && now.Sub(ep.lastSeen) > endpointEvictAfter {
			if ep.client != nil {
				// Bounded: Close only waits out the client's current
				// invocation. Detaching keeps the pool lock free.
				//wflint:allow goroutinestop bounded detached Close; waits at most one in-flight invocation
				go ep.client.Close()
				ep.client = nil
			}
			delete(inv.endpoints, addr)
		}
	}
}

// inflightOf reads an endpoint's inflight count; unknown endpoints are
// idle. Callers hold mu.
func (inv *Invoker) inflightOf(addr string) int {
	if ep, ok := inv.endpoints[addr]; ok {
		return int(ep.mInflight.Value())
	}
	return 0
}

// acquire returns (creating if needed) the endpoint and its client,
// counting the dispatch as inflight.
func (inv *Invoker) acquire(addr string) (*endpoint, *orb.Client) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	ep, ok := inv.endpoints[addr]
	if !ok {
		reg := inv.cfg.Metrics
		ep = &endpoint{
			addr:        addr,
			lastSeen:    inv.cfg.now(),
			mDispatched: reg.Counter(obs.MTaskDispatches, "endpoint", addr),
			mFailures:   reg.Counter(obs.MTaskFailures, "endpoint", addr),
			mInflight:   reg.Gauge(obs.MTaskInflight, "endpoint", addr),
		}
		inv.endpoints[addr] = ep
	}
	if ep.client == nil {
		ep.client = orb.Dial(addr, inv.cfg.Client)
	}
	ep.mInflight.Add(1)
	ep.mDispatched.Inc()
	return ep, ep.client
}

// release ends one dispatch. On failure the endpoint's cached client is
// evicted (a restarted executor gets a fresh dial; the dead connection
// is not held forever) and the endpoint is temporarily blacklisted so
// the next dispatches prefer surviving members.
func (inv *Invoker) release(ep *endpoint, failed bool) {
	inv.mu.Lock()
	ep.mInflight.Add(-1)
	var evicted *orb.Client
	if failed {
		ep.mFailures.Inc()
		ep.blacklistedUntil = inv.cfg.now().Add(inv.cfg.BlacklistFor)
		evicted, ep.client = ep.client, nil
	}
	inv.mu.Unlock()
	if evicted != nil {
		// Close outside the pool lock: Close waits for the client's
		// in-flight invocation (if any) to finish.
		//wflint:allow goroutinestop bounded detached Close; waits at most one in-flight invocation
		go evicted.Close()
	}
}

// singleResolver adapts the legacy one-endpoint Resolver.
func singleResolver(resolve Resolver) SetResolver {
	return func(location string) ([]string, error) {
		addr, err := resolve(location)
		if err != nil {
			return nil, err
		}
		return []string{addr}, nil
	}
}

// validBalance reports whether s names a balancing strategy.
func validBalance(s string) bool {
	switch s {
	case "", BalanceRoundRobin, BalanceLeastInflight, BalanceHash:
		return true
	default:
		return false
	}
}

// NewPoolInvoker builds a pool-aware engine.RemoteInvoker-compatible
// dispatcher over a set resolver.
func NewPoolInvoker(resolve SetResolver, cfg PoolConfig) (*Invoker, error) {
	if !validBalance(cfg.Balance) {
		return nil, fmt.Errorf("taskexec: unknown balance strategy %q (want %s, %s or %s)", cfg.Balance, BalanceRoundRobin, BalanceLeastInflight, BalanceHash)
	}
	cfg = cfg.withDefaults()
	return &Invoker{
		resolveSet:       resolve,
		cfg:              cfg,
		endpoints:        make(map[string]*endpoint),
		resolved:         make(map[string]*resolvedSet),
		mDispatchSeconds: cfg.Metrics.Histogram(obs.MTaskDispatchSeconds, nil),
		mFailovers:       cfg.Metrics.Counter(obs.MTaskFailovers),
	}, nil
}

// resolvedSet is one location's cached member set.
type resolvedSet struct {
	addrs []string
	at    time.Time
}

// resolve returns the location's member set, serving from the cache
// within ResolveCache and falling back to the last known set when a
// refresh fails.
func (inv *Invoker) resolve(location string) ([]string, error) {
	ttl := inv.cfg.ResolveCache
	if ttl <= 0 {
		return inv.resolveSet(location)
	}
	now := inv.cfg.now()
	inv.mu.Lock()
	if c, ok := inv.resolved[location]; ok && now.Sub(c.at) < ttl {
		addrs := c.addrs
		inv.mu.Unlock()
		return addrs, nil
	}
	inv.mu.Unlock()
	addrs, err := inv.resolveSet(location)
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if err != nil {
		if c, ok := inv.resolved[location]; ok {
			// Stale beats stuck: the members may well still be alive
			// (per-endpoint health handles the ones that are not).
			return c.addrs, nil
		}
		return nil, err
	}
	inv.resolved[location] = &resolvedSet{addrs: addrs, at: now}
	return addrs, nil
}
