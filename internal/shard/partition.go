// Package shard partitions workflow instances across a tier of
// coordinator engines. Instances map to a fixed set of partitions by
// consistent hash of the instance name; partitions map to live
// coordinators by rendezvous hashing over the coordinator membership
// set; and a coordinator's right to evaluate a partition's instances is
// a lease handed out by the naming service (internal/orb/lease.go).
// The three layers keep their jobs separate: the hash layer is pure and
// stable, the preference layer is a deterministic function of who is
// alive, and the lease layer is the only mutable arbiter.
package shard

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"strings"

	"repro/internal/store"
)

// CoordTier is the naming-service member set through which coordinator
// engines announce themselves (heartbeat-kept, like an executor pool
// location). The live resolve set of this name is the input to
// Preferred.
const CoordTier = "coordinators"

// DefaultPartitions is the partition count used when a topology does
// not choose one. Partition count is a deployment constant: it must be
// identical across every coordinator sharing a state root (keys route
// by hash mod partitions), so it is set once at boot, not negotiated.
const DefaultPartitions = 8

// PartitionOf maps an instance name to its partition by FNV-1a hash.
// Every layer of the system — key routing, lease naming, request
// routing — derives ownership from this one function, so an instance
// belongs to exactly one partition everywhere.
func PartitionOf(instance string, partitions int) int {
	if partitions <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(instance))
	return int(h.Sum32() % uint32(partitions))
}

// LeaseName is the naming-service lease name guarding partition p.
func LeaseName(p int) string { return fmt.Sprintf("wf-partition/%d", p) }

// PartitionDir is the subdirectory holding partition p's durable state
// under a shared state root. Each partition gets its own store (WAL
// segment files are single-writer), and the lease is what ensures at
// most one coordinator has a partition's store open.
func PartitionDir(p int) string { return fmt.Sprintf("part-%03d", p) }

// Preferred picks the preferred owner of partition p among the live
// coordinator addresses by rendezvous (highest-random-weight) hashing:
// each (peer, partition) pair gets a hash weight, the max wins. Any two
// nodes that agree on the live set agree on the assignment, no
// coordination needed; when a peer dies only its partitions move, and
// when it returns exactly those move back. Returns "" for an empty
// peer set.
func Preferred(peers []string, p int) string {
	best, bestW := "", uint64(0)
	for _, peer := range peers {
		h := fnv.New64a()
		_, _ = h.Write([]byte(peer))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(fmt.Sprintf("%d", p)))
		w := mix64(h.Sum64())
		if best == "" || w > bestW || (w == bestW && peer < best) {
			best, bestW = peer, w
		}
	}
	return best
}

// mix64 is a finalizing avalanche (splitmix64's) over the FNV weight:
// raw FNV of near-identical short strings ("a:1" vs "b:2") does not mix
// enough for fair rendezvous comparisons, and an unfair weight would
// concentrate partitions on one coordinator.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// InstanceOf extracts the owning instance from a store key, reporting
// whether the key is instance-scoped. Two namespaces route: engine
// state ("inst/<instance>/...") and transaction intentions
// ("txlog/<tx>/<url-escaped object id>", whose object ids are
// themselves engine keys). Decision records ("txdecision/<tx>") and
// service metadata ("sched/...") are not instance-scoped.
func InstanceOf(id store.ID) (string, bool) {
	s := string(id)
	if rest, ok := strings.CutPrefix(s, "inst/"); ok {
		inst, _, _ := strings.Cut(rest, "/")
		if inst != "" {
			return inst, true
		}
		return "", false
	}
	if rest, ok := strings.CutPrefix(s, "txlog/"); ok {
		_, obj, found := strings.Cut(rest, "/")
		if !found {
			return "", false
		}
		unescaped, err := url.QueryUnescape(obj)
		if err != nil {
			return "", false
		}
		return InstanceOf(store.ID(unescaped))
	}
	return "", false
}
