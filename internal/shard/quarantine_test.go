package shard_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/orb"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/timers"
)

// wedgeMounts mounts each acquired partition as a WedgeStore view over
// its own MemStore, so a test can condemn one coordinator's view of a
// partition while the underlying state stays healthy.
type wedgeMounts struct {
	ps *shard.PartitionedStore

	mu    sync.Mutex
	views map[int]*failure.WedgeStore
}

func (wm *wedgeMounts) onAcquire(p int) error {
	ws := failure.NewWedgeStore(store.NewMemStore())
	wm.mu.Lock()
	wm.views[p] = ws
	wm.mu.Unlock()
	wm.ps.Mount(p, ws)
	return nil
}

func (wm *wedgeMounts) onLose(p int) { wm.ps.Unmount(p) }

func (wm *wedgeMounts) view(p int) *failure.WedgeStore {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	return wm.views[p]
}

func newWedgeManager(t *testing.T, id, addr string, naming *orb.Naming, clk timers.Clock, peers func() ([]string, error)) (*shard.Manager, *shard.PartitionedStore, *wedgeMounts) {
	t.Helper()
	ps := shard.NewPartitionedStore(8)
	wm := &wedgeMounts{ps: ps, views: make(map[int]*failure.WedgeStore)}
	m, err := shard.NewManager(shard.ManagerConfig{
		ID: id, Addr: addr, Partitions: 8,
		TTL: 4 * time.Second, Renew: time.Second,
		Clock: clk, Leases: shard.LocalLeases{N: naming}, Peers: peers,
		OnAcquire: wm.onAcquire, OnLose: wm.onLose,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps.SetHealthSink(m.Quarantine)
	return m, ps, wm
}

// keyInPartition fabricates an instance-scoped key routing to p.
func keyInPartition(t *testing.T, p int) store.ID {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("inst-%d", i)
		if shard.PartitionOf(name, 8) == p {
			return store.ID("inst/" + name + "/state")
		}
	}
	t.Fatalf("no instance name found for partition %d", p)
	return ""
}

// TestWedgedPartitionHandsOffToHealthyPeer drives the whole degradation
// chain: a write into a wedged partition store trips the health sink,
// the sink quarantines the partition (fence closes immediately), the
// next round releases the lease and declares avoidance, and the healthy
// peer — no longer seeing the sick node as preferred — takes the
// partition over. The quarantine then holds: further rounds never hand
// the partition back.
func TestWedgedPartitionHandsOffToHealthyPeer(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	live := func() ([]string, error) { return []string{"a:1", "b:2"}, nil }
	ma, psa, wma := newWedgeManager(t, "coord-a", "a:1", naming, clk, live)
	mb, _, _ := newWedgeManager(t, "coord-b", "b:2", naming, clk, live)
	ma.Tick()
	mb.Tick()
	if len(ma.Held()) == 0 {
		t.Fatal("coordinator a owns nothing; test needs both to own partitions")
	}
	p0 := ma.Held()[0]
	key := keyInPartition(t, p0)
	if err := psa.Write(key, []byte("acked")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	// The store wedges (failed fsync). The next write surfaces ErrWedged
	// AND trips the sink: the partition leaves the held set before the
	// write call returns.
	wma.view(p0).Wedge(nil)
	if err := psa.Write(key, []byte("lost")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("write on wedged partition = %v, want ErrWedged", err)
	}
	if ma.Holds(p0) {
		t.Fatal("quarantined partition still reported held — fence did not close")
	}
	if got := ma.Health()[p0]; got != "wedged" {
		t.Fatalf("health before teardown round = %q, want wedged", got)
	}
	// The lease is NOT yet released (teardown is deferred to the round),
	// so the peer cannot have stolen a live lease in the meantime.
	if holder, _, held := naming.LeaseHolder(shard.LeaseName(p0)); !held || holder != "coord-a" {
		t.Fatalf("lease holder before teardown round = %q held=%v", holder, held)
	}

	// a's next round: teardown, release, avoidance declaration.
	ma.Tick()
	if got := ma.Health()[p0]; got != "released-due-to-fault" {
		t.Fatalf("health after teardown round = %q, want released-due-to-fault", got)
	}
	for _, p := range psa.Mounted() {
		if p == p0 {
			t.Fatal("quarantined partition still mounted after teardown round")
		}
	}
	if _, _, held := naming.LeaseHolder(shard.LeaseName(p0)); held {
		t.Fatal("lease not released by teardown round")
	}

	// b's next round: with a:1 avoiding the lease, b is the preferred
	// owner and takes over immediately — no TTL wait, this is graceful
	// degradation, not crash failover.
	mb.Tick()
	if !mb.Holds(p0) {
		t.Fatalf("healthy peer did not take over partition %d (held %v)", p0, mb.Held())
	}

	// No flapping: across several more rounds the sick node never takes
	// the partition back, even though rendezvous preference would pick
	// it absent the avoidance declaration.
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		ma.Tick()
		mb.Tick()
	}
	if ma.Holds(p0) {
		t.Fatal("quarantined partition handed back to the sick node")
	}
	if !mb.Holds(p0) {
		t.Fatalf("healthy peer lost partition %d again (held %v)", p0, mb.Held())
	}
	// The healthy partitions on a are untouched throughout.
	if len(ma.Held()) == 0 {
		t.Fatal("quarantine of one partition took down the coordinator's healthy partitions")
	}
}

// TestHealthSinkLatchesPerMount: the sink fires once per mount, and a
// remount re-arms it.
func TestHealthSinkLatchesPerMount(t *testing.T) {
	ps := shard.NewPartitionedStore(1)
	var fired []error
	ps.SetHealthSink(func(p int, err error) { fired = append(fired, err) })
	ws := failure.NewWedgeStore(store.NewMemStore())
	ps.Mount(0, ws)
	ws.Wedge(nil)
	for i := 0; i < 3; i++ {
		if err := ps.Write("inst/a/x", []byte("no")); !errors.Is(err, store.ErrWedged) {
			t.Fatalf("write %d = %v, want ErrWedged", i, err)
		}
	}
	if len(fired) != 1 {
		t.Fatalf("sink fired %d times, want 1 (latched)", len(fired))
	}
	if !errors.Is(fired[0], store.ErrWedged) {
		t.Fatalf("sink cause = %v, want ErrWedged", fired[0])
	}
	// Remount on a healthy store re-arms the latch.
	ps.Unmount(0)
	ws2 := failure.NewWedgeStore(store.NewMemStore())
	ps.Mount(0, ws2)
	if err := ps.Write("inst/a/x", []byte("ok")); err != nil {
		t.Fatalf("write after remount: %v", err)
	}
	ws2.Wedge(nil)
	_ = ps.Write("inst/a/y", []byte("no"))
	if len(fired) != 2 {
		t.Fatalf("sink fired %d times after remount, want 2", len(fired))
	}
}

// TestAvoidLeaseExpires: an avoidance declaration lapses at its TTL
// unless refreshed, so a node that restarts healthy becomes eligible
// again without any explicit clear.
func TestAvoidLeaseExpires(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	naming.AvoidLease("part-000", "a:1", 2*time.Second)
	if got := naming.LeaseAvoiders(); len(got["part-000"]) != 1 {
		t.Fatalf("avoiders = %v, want a:1 recorded", got)
	}
	clk.Advance(3 * time.Second)
	if got := naming.LeaseAvoiders(); len(got) != 0 {
		t.Fatalf("avoiders after ttl = %v, want empty", got)
	}
}
