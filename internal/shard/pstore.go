package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
)

// ErrNotMounted is returned when an operation routes to a partition
// this coordinator does not currently own. Callers above the store
// (execsvc's ownership guard) normally reject foreign instances before
// any store traffic; this error is the backstop that keeps a routing
// bug from silently writing into another owner's partition.
var ErrNotMounted = errors.New("partition not mounted")

// ErrFenced is returned when a write reaches a partition that is still
// mounted but whose lease can no longer be proven held: the local fence
// window has lapsed. It is the store-layer half of self-fencing — even
// if the lease manager has not yet run its teardown tick, no write
// lands in a partition a peer may already own.
var ErrFenced = errors.New("partition lease fence expired")

// PartitionedStore multiplexes one store.Store view over the per-
// partition stores a coordinator currently holds leases for. Keys route
// by the instance they belong to (InstanceOf → PartitionOf); partitions
// mount when a lease is acquired (after scoped recovery) and unmount
// when it is lost. Every store capability the engine stack relies on —
// Batcher group commit, LazyBatcher cleanup — is preserved per
// partition.
//
// Routing rules:
//   - instance-scoped keys ("inst/...", "txlog/...") go to their
//     partition's store;
//   - a batch's non-routable ops (the "txdecision/<tx>" record of a
//     commit) inherit the partition of the batch's routable ops, so a
//     transaction's intentions and decision always land in the same
//     store and its recovery sees them together;
//   - a decision-only batch (a transaction with no logged intentions)
//     lands in the lowest mounted partition — see unroutedBatch;
//   - a non-routable single Delete broadcasts to every mounted
//     partition (transaction-log cleanup of a decision record); the
//     record being absent everywhere is success, not ErrNotFound — its
//     partition may have been handed off since the decision was logged,
//     and the new owner's recovery garbage-collects inert decision
//     records;
//   - a non-routable Read tries every mounted partition; List merges
//     across them.
//
// Non-routable single-key writes are refused: nothing in the sharded
// deployment writes unpartitioned state (the instantiation scheduler,
// whose "sched/" records are global, stays on the single-coordinator
// topology).
//
// SetFence installs a per-partition write fence (the lease manager's
// Holds): every write-path operation re-checks it at apply time, so a
// coordinator whose fence window lapsed mid-flight stops mutating the
// partition even before its manager's next tick unmounts it.
type PartitionedStore struct {
	parts   int
	mu      sync.RWMutex
	mounted map[int]store.Store
	fence   func(p int) bool

	// healthMu guards the sink and the per-partition trip latch; it is
	// separate from mu so firing the sink never holds the routing lock.
	healthMu sync.Mutex
	sink     func(p int, err error)
	tripped  map[int]bool
}

var (
	_ store.Store       = (*PartitionedStore)(nil)
	_ store.Batcher     = (*PartitionedStore)(nil)
	_ store.LazyBatcher = (*PartitionedStore)(nil)
)

// NewPartitionedStore returns a store view over partitions partitions,
// none mounted.
func NewPartitionedStore(partitions int) *PartitionedStore {
	if partitions < 1 {
		partitions = 1
	}
	return &PartitionedStore{parts: partitions, mounted: make(map[int]store.Store), tripped: make(map[int]bool)}
}

// Partitions returns the topology's partition count.
func (ps *PartitionedStore) Partitions() int { return ps.parts }

// SetFence installs the write fence: fence(p) must report whether this
// coordinator still provably owns partition p (the lease manager's
// Holds). Install once at boot, before traffic; a nil fence (the
// default, and the simulator's configuration) admits every write to a
// mounted partition. Reads are not fenced — the ownership guard refuses
// foreign requests at the service layer, and a stale read cannot
// corrupt durable state the new owner recovers from.
func (ps *PartitionedStore) SetFence(fence func(p int) bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.fence = fence
}

// SetHealthSink installs the durability-fault observer: sink(p, err)
// fires the first time a write into partition p fails with a fault that
// condemns the whole store — store.ErrWedged (a failed fsync wedged the
// log) or store.ErrCorrupt — as opposed to a per-op error. The latch is
// per mount: Unmount re-arms it, so a partition re-mounted on a healthy
// store reports a fresh fault. The sink runs on the writer's goroutine
// and must not block; the lease manager's Quarantine (the intended
// sink) only flips maps.
func (ps *PartitionedStore) SetHealthSink(sink func(p int, err error)) {
	ps.healthMu.Lock()
	defer ps.healthMu.Unlock()
	ps.sink = sink
}

// noteErr passes a write-path error through, firing the health sink
// once per mount when the error condemns the partition's store.
func (ps *PartitionedStore) noteErr(p int, err error) error {
	if err == nil || (!errors.Is(err, store.ErrWedged) && !errors.Is(err, store.ErrCorrupt)) {
		return err
	}
	ps.healthMu.Lock()
	sink := ps.sink
	fire := sink != nil && !ps.tripped[p]
	if fire {
		ps.tripped[p] = true
	}
	ps.healthMu.Unlock()
	if fire {
		sink(p, err)
	}
	return err
}

// writable reports whether partition p may be written right now.
func (ps *PartitionedStore) writable(p int) bool {
	ps.mu.RLock()
	fence := ps.fence
	ps.mu.RUnlock()
	return fence == nil || fence(p)
}

// Mount attaches partition p's store (called after the lease is won and
// the partition's state has been recovered onto st).
func (ps *PartitionedStore) Mount(p int, st store.Store) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.mounted[p] = st
}

// Unmount detaches partition p, returning its store so the caller can
// close it (lease lost or released).
func (ps *PartitionedStore) Unmount(p int) store.Store {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := ps.mounted[p]
	delete(ps.mounted, p)
	ps.healthMu.Lock()
	delete(ps.tripped, p)
	ps.healthMu.Unlock()
	return st
}

// Mounted lists the currently mounted partitions in ascending order.
func (ps *PartitionedStore) Mounted() []int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make([]int, 0, len(ps.mounted))
	for p := range ps.mounted {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// route resolves id to its partition, reporting whether the key is
// instance-scoped at all.
func (ps *PartitionedStore) route(id store.ID) (int, bool) {
	inst, ok := InstanceOf(id)
	if !ok {
		return 0, false
	}
	return PartitionOf(inst, ps.parts), true
}

// partFor returns the mounted store for a routable key.
func (ps *PartitionedStore) partFor(id store.ID) (store.Store, int, bool, error) {
	p, routable := ps.route(id)
	if !routable {
		return nil, 0, false, nil
	}
	ps.mu.RLock()
	st := ps.mounted[p]
	ps.mu.RUnlock()
	if st == nil {
		return nil, p, true, fmt.Errorf("shard: key %s routes to partition %d: %w", id, p, ErrNotMounted)
	}
	return st, p, true, nil
}

// mountedPart pairs a mounted partition with its store.
type mountedPart struct {
	p  int
	st store.Store
}

// snapshot returns the mounted partitions and stores in partition order.
func (ps *PartitionedStore) snapshot() []mountedPart {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	parts := make([]int, 0, len(ps.mounted))
	for p := range ps.mounted {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	out := make([]mountedPart, len(parts))
	for i, p := range parts {
		out[i] = mountedPart{p: p, st: ps.mounted[p]}
	}
	return out
}

// Read implements store.Store.
func (ps *PartitionedStore) Read(id store.ID) ([]byte, error) {
	st, _, routable, err := ps.partFor(id)
	if err != nil {
		return nil, err
	}
	if routable {
		return st.Read(id)
	}
	for _, m := range ps.snapshot() {
		data, err := m.st.Read(id)
		if err == nil {
			return data, nil
		}
		if !errors.Is(err, store.ErrNotFound) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("read %s: %w", id, store.ErrNotFound)
}

// Write implements store.Store.
func (ps *PartitionedStore) Write(id store.ID, data []byte) error {
	st, p, routable, err := ps.partFor(id)
	if err != nil {
		return err
	}
	if !routable {
		return fmt.Errorf("shard: write of non-partitioned key %s refused", id)
	}
	if !ps.writable(p) {
		return fmt.Errorf("shard: write %s to partition %d: %w", id, p, ErrFenced)
	}
	return ps.noteErr(p, st.Write(id, data))
}

// Delete implements store.Store. A non-routable delete (a transaction
// decision record) broadcasts across the mounted, un-fenced partitions:
// the record lives wherever its transaction committed, and deleting it
// from stores that never had it is a no-op. Nowhere-found is success —
// the record's partition may have been handed off to another owner
// since the decision was logged, and decision records without
// intentions are recovery-inert, so the new owner's cleanup covers it.
func (ps *PartitionedStore) Delete(id store.ID) error {
	st, p, routable, err := ps.partFor(id)
	if err != nil {
		return err
	}
	if routable {
		if !ps.writable(p) {
			return fmt.Errorf("shard: delete %s from partition %d: %w", id, p, ErrFenced)
		}
		return ps.noteErr(p, st.Delete(id))
	}
	for _, m := range ps.snapshot() {
		if !ps.writable(m.p) {
			continue
		}
		if err := m.st.Delete(id); err != nil && !errors.Is(err, store.ErrNotFound) {
			return ps.noteErr(m.p, err)
		}
	}
	return nil
}

// List implements store.Store, merging the mounted partitions' listings
// in lexical order.
func (ps *PartitionedStore) List(prefix store.ID) ([]store.ID, error) {
	var out []store.ID
	for _, m := range ps.snapshot() {
		ids, err := m.st.List(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// batchTarget resolves the single partition a batch belongs to: every
// routable op must agree (batches are per-instance by construction —
// one flush, one transaction), and non-routable ops (decision records)
// inherit that partition. A batch with no routable ops at all has no
// home and is refused, except the all-deletes case which broadcasts.
func (ps *PartitionedStore) batchTarget(ops []store.BatchOp) (store.Store, int, bool, error) {
	target, have := -1, false
	for _, op := range ops {
		p, routable := ps.route(op.ID)
		if !routable {
			continue
		}
		if have && p != target {
			return nil, 0, false, fmt.Errorf("shard: batch spans partitions %d and %d (key %s)", target, p, op.ID)
		}
		target, have = p, true
	}
	if !have {
		return nil, 0, false, nil
	}
	ps.mu.RLock()
	st := ps.mounted[target]
	ps.mu.RUnlock()
	if st == nil {
		return nil, 0, false, fmt.Errorf("shard: batch routes to partition %d: %w", target, ErrNotMounted)
	}
	if !ps.writable(target) {
		return nil, 0, false, fmt.Errorf("shard: batch routes to partition %d: %w", target, ErrFenced)
	}
	return st, target, true, nil
}

// ApplyBatch implements store.Batcher.
func (ps *PartitionedStore) ApplyBatch(ops []store.BatchOp) error {
	st, p, routed, err := ps.batchTarget(ops)
	if err != nil {
		return err
	}
	if routed {
		return ps.noteErr(p, store.ApplyBatch(st, ops))
	}
	return ps.unroutedBatch(ops, store.ApplyBatch)
}

// ApplyBatchLazy implements store.LazyBatcher.
func (ps *PartitionedStore) ApplyBatchLazy(ops []store.BatchOp) error {
	st, p, routed, err := ps.batchTarget(ops)
	if err != nil {
		return err
	}
	if routed {
		return ps.noteErr(p, store.ApplyBatchBestEffort(st, ops))
	}
	return ps.unroutedBatch(ops, store.ApplyBatchBestEffort)
}

// unroutedBatch handles a batch with no routable op. Pure cleanup
// (deletes of decision records) broadcasts to every mounted, un-fenced
// partition. A batch that writes — the decision record of a transaction
// with no logged intentions, i.e. a transaction whose effects were all
// in-memory — lands in the lowest mounted partition still inside its
// fence window: such a record is recovery-inert (there are no
// intentions for a decision to roll forward), it only needs to exist
// somewhere until its cleanup delete broadcasts.
func (ps *PartitionedStore) unroutedBatch(ops []store.BatchOp, apply func(store.Store, []store.BatchOp) error) error {
	allDeletes := true
	for _, op := range ops {
		if !op.Delete {
			allDeletes = false
			break
		}
	}
	var writableParts []mountedPart
	for _, m := range ps.snapshot() {
		if ps.writable(m.p) {
			writableParts = append(writableParts, m)
		}
	}
	if allDeletes {
		for _, m := range writableParts {
			if err := apply(m.st, ops); err != nil {
				return ps.noteErr(m.p, err)
			}
		}
		return nil
	}
	if len(writableParts) == 0 {
		return fmt.Errorf("shard: batch of non-partitioned keys with no writable partition mounted: %w", ErrNotMounted)
	}
	return ps.noteErr(writableParts[0].p, apply(writableParts[0].st, ops))
}
