package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/orb"
	"repro/internal/timers"
)

// LeaseAPI is the slice of the naming service's lease verbs the manager
// needs. orb.NamingClient implements it remotely; LocalLeases adapts an
// in-process orb.Naming for the simulator and self-hosted topologies.
type LeaseAPI interface {
	AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string, err error)
	ReleaseLease(name, holder string) (released bool, err error)
}

// LocalLeases adapts an in-process naming table to LeaseAPI.
type LocalLeases struct{ N *orb.Naming }

// AcquireLease implements LeaseAPI.
func (l LocalLeases) AcquireLease(name, holder, addr string, ttl time.Duration) (bool, string, string, error) {
	granted, h, a := l.N.AcquireLease(name, holder, addr, ttl)
	return granted, h, a, nil
}

// ReleaseLease implements LeaseAPI.
func (l LocalLeases) ReleaseLease(name, holder string) (bool, error) {
	return l.N.ReleaseLease(name, holder), nil
}

// ManagerConfig configures one coordinator's lease manager.
type ManagerConfig struct {
	// ID names this coordinator as a lease holder; Addr is the dialable
	// endpoint recorded with each lease (clients route requests to it)
	// and the identity used for rendezvous preference, so it must match
	// the address announced in the CoordTier member set.
	ID   string
	Addr string
	// Partitions is the topology's partition count.
	Partitions int
	// TTL bounds each lease; Renew is the tick interval (must be well
	// under TTL — the renewal has to land before the lease lapses).
	TTL   time.Duration
	Renew time.Duration
	// Clock paces Run and anchors the self-fencing deadlines.
	Clock timers.Clock
	// Leases is the arbiter; Peers returns the live coordinator
	// addresses (the CoordTier resolve set, self included).
	Leases LeaseAPI
	Peers  func() ([]string, error)
	// OnAcquire mounts a freshly won partition (open its store, run
	// scoped recovery, re-materialize its instances). An error abandons
	// the acquisition: the lease is released so a healthy peer can take
	// the partition. OnLose tears a partition down (stop its instances,
	// unmount its store); it runs before any release, so the coordinator
	// has stopped acting as owner by the time a peer can win the lease.
	OnAcquire func(p int) error
	OnLose    func(p int)
}

// Manager runs one coordinator's side of the partition-lease protocol.
// Each Tick it renews the partitions it holds, self-fences any it can
// no longer prove it holds, releases those whose preferred owner is a
// different live peer (graceful rebalancing), and tries to acquire the
// partitions it is the preferred owner of. All ownership transitions
// funnel through OnAcquire/OnLose, so the engine above mounts and
// unmounts partitions in lockstep with the leases.
type Manager struct {
	cfg ManagerConfig

	mu sync.Mutex
	// held maps held partitions to their self-fencing deadline: the
	// local-clock instant after which, absent a successful renewal, this
	// coordinator must stop acting as owner even without hearing the
	// arbiter say so.
	held   map[int]time.Time
	closed bool

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// NewManager validates cfg and returns an idle manager (no leases held;
// call Tick or Run).
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.ID == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("shard: manager needs an ID and an Addr")
	}
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("shard: partition count %d < 1", cfg.Partitions)
	}
	if cfg.Leases == nil || cfg.Peers == nil {
		return nil, fmt.Errorf("shard: manager needs Leases and Peers")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Second
	}
	if cfg.Renew <= 0 || cfg.Renew >= cfg.TTL {
		cfg.Renew = cfg.TTL / 3
	}
	if cfg.Clock == nil {
		cfg.Clock = timers.WallClock{}
	}
	return &Manager{
		cfg:    cfg,
		held:   make(map[int]time.Time),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}, nil
}

// Held returns the partitions currently held, ascending.
func (m *Manager) Held() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.held))
	for p := range m.held {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Holds reports whether partition p is currently held and un-fenced.
func (m *Manager) Holds(p int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline, ok := m.held[p]
	return ok && m.cfg.Clock.Now().Before(deadline)
}

// Tick runs one round of the protocol. It is synchronous and
// serialized; Run calls it on every renew interval, and deterministic
// harnesses (sim, experiments) call it directly under a FakeClock.
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	peers, err := m.cfg.Peers()
	if err != nil {
		// Membership unreadable (naming unreachable): renew what we
		// hold — the renewals will fail the same way and the fencing
		// deadlines decide — but claim nothing new.
		peers = nil
	}
	for p := 0; p < m.cfg.Partitions; p++ {
		pref := Preferred(peers, p)
		if deadline, ok := m.held[p]; ok {
			m.tickHeldLocked(p, deadline, pref)
		} else if pref == m.cfg.Addr {
			m.tryAcquireLocked(p)
		}
	}
}

// tickHeldLocked renews, hands off, or fences one held partition.
func (m *Manager) tickHeldLocked(p int, deadline time.Time, pref string) {
	if pref != "" && pref != m.cfg.Addr {
		// A different live peer is preferred: hand the partition off
		// gracefully. Teardown first — only after this coordinator has
		// stopped acting as owner may the lease go back to the pool.
		m.loseLocked(p)
		_, _ = m.cfg.Leases.ReleaseLease(LeaseName(p), m.cfg.ID)
		return
	}
	// The fencing deadline is computed from the clock reading taken
	// before the renewal request: however long the round trip takes, the
	// local validity window can only be shorter than the arbiter's.
	next := m.cfg.Clock.Now().Add(m.cfg.TTL)
	granted, _, _, err := m.cfg.Leases.AcquireLease(LeaseName(p), m.cfg.ID, m.cfg.Addr, m.cfg.TTL)
	switch {
	case err == nil && granted:
		m.held[p] = next
	case err == nil && !granted:
		// The arbiter says someone else holds it: we already lost.
		m.loseLocked(p)
	default:
		// Renewal unreachable: keep acting as owner only inside the
		// window the last successful renewal bought.
		if !m.cfg.Clock.Now().Before(deadline) {
			m.loseLocked(p)
		}
	}
}

// tryAcquireLocked claims one unheld partition this coordinator is the
// preferred owner of.
func (m *Manager) tryAcquireLocked(p int) {
	deadline := m.cfg.Clock.Now().Add(m.cfg.TTL)
	granted, _, _, err := m.cfg.Leases.AcquireLease(LeaseName(p), m.cfg.ID, m.cfg.Addr, m.cfg.TTL)
	if err != nil || !granted {
		return
	}
	if m.cfg.OnAcquire != nil {
		if err := m.cfg.OnAcquire(p); err != nil {
			// Mounting failed; don't sit on a partition we can't serve.
			_, _ = m.cfg.Leases.ReleaseLease(LeaseName(p), m.cfg.ID)
			return
		}
	}
	m.held[p] = deadline
}

// loseLocked drops partition p and runs the teardown hook.
func (m *Manager) loseLocked(p int) {
	delete(m.held, p)
	if m.cfg.OnLose != nil {
		m.cfg.OnLose(p)
	}
}

// Start launches Run on its own goroutine; Close (or Abandon) stops
// it.
func (m *Manager) Start() { go m.Run() }

// Run ticks the protocol every Renew interval until Close. The first
// tick is immediate, so a booting coordinator claims its partitions
// without waiting out an interval.
func (m *Manager) Run() {
	defer close(m.doneCh)
	m.Tick()
	for {
		wake := m.cfg.Clock.Wake(m.cfg.Clock.Now().Add(m.cfg.Renew))
		select {
		case <-wake:
			m.Tick()
		case <-m.stopCh:
			return
		}
	}
}

// Abandon stops the manager the way a crash would: the run loop halts
// and every held partition is forgotten without teardown or release.
// The leases lapse at their TTL and a peer steals them — exactly the
// sequence a SIGKILLed coordinator goes through. Harnesses (experiments,
// load tools) use it to emulate coordinator death in-process.
func (m *Manager) Abandon() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.held = make(map[int]time.Time)
}

// Close stops Run (if running), tears down every held partition and
// releases its lease. Safe to call whether or not Run was started.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	select {
	case <-m.doneCh:
	default:
		// Run may never have been started; don't wait on it, just make
		// sure no tick is in flight by taking the lock below.
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for p := range m.held {
		m.loseLocked(p)
		_, _ = m.cfg.Leases.ReleaseLease(LeaseName(p), m.cfg.ID)
	}
}
