package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/timers"
)

// LeaseAPI is the slice of the naming service's lease verbs the manager
// needs. orb.NamingClient implements it remotely; LocalLeases adapts an
// in-process orb.Naming for the simulator and self-hosted topologies.
type LeaseAPI interface {
	AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string, err error)
	ReleaseLease(name, holder string) (released bool, err error)
	// AvoidLease declares addr unfit to hold name for ttl (refreshed
	// while the condition persists); LeaseAvoiders fetches the live
	// declarations, keyed by lease name. Peers subtract a lease's
	// avoiders from the rendezvous candidate set, so a partition whose
	// preferred owner quarantined it is re-placed on a healthy peer
	// instead of orbiting back to the sick one.
	AvoidLease(name, addr string, ttl time.Duration) error
	LeaseAvoiders() (map[string][]string, error)
}

// LocalLeases adapts an in-process naming table to LeaseAPI.
type LocalLeases struct{ N *orb.Naming }

// AcquireLease implements LeaseAPI.
func (l LocalLeases) AcquireLease(name, holder, addr string, ttl time.Duration) (bool, string, string, error) {
	granted, h, a := l.N.AcquireLease(name, holder, addr, ttl)
	return granted, h, a, nil
}

// ReleaseLease implements LeaseAPI.
func (l LocalLeases) ReleaseLease(name, holder string) (bool, error) {
	return l.N.ReleaseLease(name, holder), nil
}

// AvoidLease implements LeaseAPI.
func (l LocalLeases) AvoidLease(name, addr string, ttl time.Duration) error {
	l.N.AvoidLease(name, addr, ttl)
	return nil
}

// LeaseAvoiders implements LeaseAPI.
func (l LocalLeases) LeaseAvoiders() (map[string][]string, error) {
	return l.N.LeaseAvoiders(), nil
}

// errLeaseRPCTimeout marks a lease RPC that outlived its local bound;
// the manager treats it like any other unreachable-arbiter error (keep
// acting as owner only inside the fence window).
var errLeaseRPCTimeout = errors.New("shard: lease RPC exceeded its local time bound")

// ManagerConfig configures one coordinator's lease manager.
type ManagerConfig struct {
	// ID names this coordinator as a lease holder; Addr is the dialable
	// endpoint recorded with each lease (clients route requests to it)
	// and the identity used for rendezvous preference, so it must match
	// the address announced in the CoordTier member set.
	ID   string
	Addr string
	// Partitions is the topology's partition count.
	Partitions int
	// TTL bounds each lease; Renew is the tick interval (must be well
	// under TTL — the renewal has to land before the lease lapses).
	TTL   time.Duration
	Renew time.Duration
	// FenceMargin shortens the local validity window relative to the
	// arbiter's: a renewal stamped at t fences at t+TTL-FenceMargin,
	// while the arbiter holds the lease until at least t+TTL. The margin
	// absorbs tick jitter, the lease-RPC bound and the teardown drain, so
	// a partitioned-but-alive coordinator has provably stopped acting as
	// owner (Holds false, partition writes fenced) before a peer can win
	// the lease. Default TTL/4; must stay under TTL-Renew so a renewal
	// still fits inside the window.
	FenceMargin time.Duration
	// RPCTimeout bounds each lease RPC on the manager's own clock. It
	// must sit well under Renew: a renewal blocking on a partitioned
	// naming service must not stall the tick past the fence deadline.
	// Default Renew/2.
	RPCTimeout time.Duration
	// Clock paces Run and anchors the self-fencing deadlines.
	Clock timers.Clock
	// Leases is the arbiter; Peers returns the live coordinator
	// addresses (the CoordTier resolve set, self included).
	Leases LeaseAPI
	Peers  func() ([]string, error)
	// OnAcquire mounts a freshly won partition (open its store, run
	// scoped recovery, re-materialize its instances). It runs with the
	// partition already published as held, so the recovery's own writes
	// pass the store fence; requests arriving mid-mount fail with
	// "instance not found", which the routing client retries. An error
	// abandons the acquisition: the lease is released so a healthy peer
	// can take the partition. OnLose tears a partition down (stop its
	// instances, unmount its store); it runs after every successful
	// OnAcquire — and before any release, so the coordinator has stopped
	// acting as owner by the time a peer can win the lease. Both hooks
	// run outside the manager's locks: a slow mount never blocks Holds.
	OnAcquire func(p int) error
	OnLose    func(p int)
	// Metrics receives the manager's lease-protocol counters
	// (shard_lease_*). Default: a private registry; daemons pass their
	// scrape registry. The lease-steal counter is the OnAcquire hook's
	// to increment — only the mount knows whether the acquisition
	// re-materialized a dead peer's instances.
	Metrics *obs.Registry
}

// Manager runs one coordinator's side of the partition-lease protocol.
// Each Tick it renews the partitions it holds, self-fences any it can
// no longer prove it holds, releases those whose preferred owner is a
// different live peer (graceful rebalancing), and tries to acquire the
// partitions it is the preferred owner of. All ownership transitions
// funnel through OnAcquire/OnLose, so the engine above mounts and
// unmounts partitions in lockstep with the leases.
//
// Fencing is enforced at three independent points, not just at tick
// granularity: Holds compares the fence deadline against the clock on
// every call (the execsvc ownership guard consults it per request, and
// PartitionedStore.SetFence consults it per write), each lease RPC is
// bounded by RPCTimeout so a hung renewal cannot pin a stale tick, and
// the deadline itself is stamped FenceMargin short of the arbiter's
// TTL. A partitioned-but-alive coordinator therefore stops admitting
// partition writes the instant its window lapses, strictly before the
// arbiter can re-grant the lease.
type Manager struct {
	cfg ManagerConfig

	// tickMu serializes protocol rounds (Tick, Close): at most one round
	// mutates ownership at a time. Holds/Held never take it, so a round
	// blocked on the network cannot stall the request path.
	tickMu sync.Mutex

	// mu guards the ownership table only; it is held for map operations,
	// never across an RPC or a hook.
	mu sync.Mutex
	// held maps held partitions to their self-fencing deadline: the
	// local-clock instant after which, absent a successful renewal, this
	// coordinator must stop acting as owner even without hearing the
	// arbiter say so.
	held   map[int]time.Time
	closed bool

	// quar maps quarantined partitions to their state. Quarantine flips
	// the maps immediately (the partition leaves held, so Holds and the
	// store fence close at once) and defers the teardown and lease
	// release to the next protocol round — the health sink fires on the
	// engine's own flush goroutine, where running OnLose (which stops
	// that engine's instances) would deadlock.
	quar map[int]*quarState

	stopOnce sync.Once
	stopCh   chan struct{}

	// Lease-protocol instruments (resolved once at construction; the
	// partitions-held gauge is updated under mu at every held-map
	// mutation, the rest move at their protocol events).
	mAcquisitions   *obs.Counter
	mRenewals       *obs.Counter
	mRenewSeconds   *obs.Histogram
	mLosses         *obs.Counter
	mQuarantines    *obs.Counter
	mPartitionsHeld *obs.Gauge
}

// NewManager validates cfg and returns an idle manager (no leases held;
// call Tick or Run).
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.ID == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("shard: manager needs an ID and an Addr")
	}
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("shard: partition count %d < 1", cfg.Partitions)
	}
	if cfg.Leases == nil || cfg.Peers == nil {
		return nil, fmt.Errorf("shard: manager needs Leases and Peers")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Second
	}
	if cfg.Renew <= 0 || cfg.Renew >= cfg.TTL {
		cfg.Renew = cfg.TTL / 3
	}
	if cfg.FenceMargin <= 0 {
		cfg.FenceMargin = cfg.TTL / 4
	}
	if cfg.FenceMargin >= cfg.TTL-cfg.Renew {
		return nil, fmt.Errorf("shard: fence margin %v leaves no renewal window inside ttl %v with renew %v",
			cfg.FenceMargin, cfg.TTL, cfg.Renew)
	}
	if cfg.RPCTimeout <= 0 || cfg.RPCTimeout > cfg.Renew {
		cfg.RPCTimeout = cfg.Renew / 2
	}
	if cfg.Clock == nil {
		cfg.Clock = timers.WallClock{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return &Manager{
		cfg:             cfg,
		held:            make(map[int]time.Time),
		quar:            make(map[int]*quarState),
		stopCh:          make(chan struct{}),
		mAcquisitions:   cfg.Metrics.Counter(obs.MShardLeaseAcquisitions),
		mRenewals:       cfg.Metrics.Counter(obs.MShardLeaseRenewals),
		mRenewSeconds:   cfg.Metrics.Histogram(obs.MShardLeaseRenewSeconds, nil),
		mLosses:         cfg.Metrics.Counter(obs.MShardLeaseLosses),
		mQuarantines:    cfg.Metrics.Counter(obs.MShardQuarantines),
		mPartitionsHeld: cfg.Metrics.Gauge(obs.MShardPartitionsHeld),
	}, nil
}

// quarState tracks one quarantined partition.
type quarState struct {
	cause error
	// teardown is set while OnLose + release are still owed (cleared by
	// the round — or Close — that runs them).
	teardown bool
	// released is set once the lease has been handed back to the pool;
	// Health reports the partition as released-due-to-fault from then on.
	released bool
}

// Quarantine marks partition p's store condemned (wedged or corrupt):
// the partition leaves the held set immediately — Holds(p) turns false,
// so the ownership guard and the store fence stop admitting work before
// this call returns — and the next protocol round tears the partition
// down, releases its lease, and begins refreshing an avoidance
// declaration so placement prefers a healthy peer. Safe to call from
// the engine's flush path (it only flips maps); idempotent per
// partition. The quarantine is permanent for this process — recovering
// the store requires reopening it from disk, which is a restart.
func (m *Manager) Quarantine(p int, cause error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || p < 0 || p >= m.cfg.Partitions {
		return
	}
	if _, already := m.quar[p]; already {
		return
	}
	_, was := m.held[p]
	delete(m.held, p)
	m.quar[p] = &quarState{cause: cause, teardown: was}
	m.mQuarantines.Inc()
	m.mPartitionsHeld.Set(int64(len(m.held)))
}

// Health reports per-partition store health for every partition this
// coordinator holds or has condemned: "ok" (held, un-quarantined),
// "wedged" (condemned, teardown still pending), or
// "released-due-to-fault" (condemned and handed back to the pool).
func (m *Manager) Health() map[int]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]string, len(m.held)+len(m.quar))
	for p := range m.held {
		out[p] = "ok"
	}
	for p, q := range m.quar {
		if q.released {
			out[p] = "released-due-to-fault"
		} else {
			out[p] = "wedged"
		}
	}
	return out
}

// quarantined reports whether p is condemned.
func (m *Manager) quarantined(p int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.quar[p]
	return ok
}

// takeTeardowns claims the quarantined partitions whose teardown is
// still owed, ascending.
func (m *Manager) takeTeardowns() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for p, q := range m.quar {
		if q.teardown {
			q.teardown = false
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// quarantinedParts lists every condemned partition, ascending.
func (m *Manager) quarantinedParts() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.quar))
	for p := range m.quar {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// markReleased records that p's lease went back to the pool.
func (m *Manager) markReleased(p int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q, ok := m.quar[p]; ok {
		q.released = true
	}
}

// tickQuarantined runs the deferred degradation work: teardown and
// lease release for freshly condemned partitions, and an avoidance
// refresh for every condemned partition (TTL-scoped, so the
// declaration dies with the process and a healthy restart becomes
// eligible again).
func (m *Manager) tickQuarantined() {
	for _, p := range m.takeTeardowns() {
		if m.cfg.OnLose != nil {
			m.cfg.OnLose(p)
		}
		m.releaseLease(p)
		m.markReleased(p)
	}
	for _, p := range m.quarantinedParts() {
		name := LeaseName(p)
		_ = m.bounded(func() error {
			return m.cfg.Leases.AvoidLease(name, m.cfg.Addr, m.cfg.TTL)
		})
	}
}

// Held returns the partitions currently held, ascending.
func (m *Manager) Held() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.held))
	for p := range m.held {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Holds reports whether partition p is currently held and un-fenced. It
// never blocks on a protocol round in flight: the ownership table is
// only ever locked for map operations, so the per-request guard and the
// per-write store fence read it contention-free even while a tick is
// waiting on the network.
func (m *Manager) Holds(p int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline, ok := m.held[p]
	return ok && m.cfg.Clock.Now().Before(deadline)
}

// isClosed reports whether the manager has been closed or abandoned.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// deadlineOf returns partition p's recorded fence deadline, if held.
func (m *Manager) deadlineOf(p int) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline, ok := m.held[p]
	return deadline, ok
}

// claim publishes p as held with the given fence deadline; it refuses
// after Close/Abandon (a grant racing a shutdown is not kept) and for
// quarantined partitions (a grant racing the quarantine must not re-
// publish a condemned store as owned).
func (m *Manager) claim(p int, deadline time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if _, condemned := m.quar[p]; condemned {
		return false
	}
	m.held[p] = deadline
	m.mAcquisitions.Inc()
	m.mPartitionsHeld.Set(int64(len(m.held)))
	return true
}

// extend records a successful renewal's new fence deadline; a partition
// dropped while the renewal was in flight stays dropped.
func (m *Manager) extend(p int, deadline time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, ok := m.held[p]; ok {
		m.held[p] = deadline
	}
}

// drop forgets p without running OnLose (a failed mount: there is
// nothing to tear down).
func (m *Manager) drop(p int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.held, p)
	m.mPartitionsHeld.Set(int64(len(m.held)))
}

// lose drops p and, if it was held, runs the teardown hook — outside
// the ownership lock, so a slow drain never blocks Holds.
func (m *Manager) lose(p int) {
	m.mu.Lock()
	_, was := m.held[p]
	delete(m.held, p)
	m.mPartitionsHeld.Set(int64(len(m.held)))
	m.mu.Unlock()
	if was {
		m.mLosses.Inc()
	}
	if was && m.cfg.OnLose != nil {
		m.cfg.OnLose(p)
	}
}

// bounded runs fn on its own goroutine and waits at most RPCTimeout on
// the manager's clock for it to finish. On timeout the call's eventual
// result is discarded and errLeaseRPCTimeout returned; the goroutine
// itself ends when the RPC does (its send can never block: the channel
// is buffered and it is the sole sender).
func (m *Manager) bounded(fn func() error) error {
	ch := make(chan error, 1)
	go func() {
		err := fn()
		select {
		case ch <- err:
		default:
		}
	}()
	select {
	case err := <-ch:
		return err
	case <-m.cfg.Clock.Wake(m.cfg.Clock.Now().Add(m.cfg.RPCTimeout)):
		return errLeaseRPCTimeout
	}
}

// acquireLease claims/renews partition p's lease within the RPC bound.
func (m *Manager) acquireLease(p int) (bool, error) {
	var granted bool
	err := m.bounded(func() error {
		g, _, _, err := m.cfg.Leases.AcquireLease(LeaseName(p), m.cfg.ID, m.cfg.Addr, m.cfg.TTL)
		granted = g
		return err
	})
	return granted, err
}

// releaseLease withdraws partition p's lease within the RPC bound;
// failures are ignored (an unreleased lease simply lapses at TTL).
func (m *Manager) releaseLease(p int) {
	_ = m.bounded(func() error {
		_, err := m.cfg.Leases.ReleaseLease(LeaseName(p), m.cfg.ID)
		return err
	})
}

// Tick runs one round of the protocol. Rounds are serialized; Run calls
// it on every renew interval, and deterministic harnesses (sim,
// experiments) call it directly under a FakeClock.
func (m *Manager) Tick() {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.isClosed() {
		return
	}
	m.tickQuarantined()
	var peers []string
	err := m.bounded(func() error {
		p, err := m.cfg.Peers()
		peers = p
		return err
	})
	if err != nil {
		// Membership unreadable (naming unreachable): renew what we
		// hold — the renewals will fail the same way and the fencing
		// deadlines decide — but claim nothing new.
		peers = nil
	}
	// One avoiders fetch covers the whole round; on failure the round
	// proceeds unfiltered (placement merely loses its health bias).
	var avoiders map[string][]string
	_ = m.bounded(func() error {
		a, err := m.cfg.Leases.LeaseAvoiders()
		avoiders = a
		return err
	})
	for p := 0; p < m.cfg.Partitions; p++ {
		if m.isClosed() {
			return
		}
		pref := Preferred(eligible(peers, avoiders[LeaseName(p)]), p)
		if deadline, ok := m.deadlineOf(p); ok {
			m.tickHeld(p, deadline, pref)
		} else if pref == m.cfg.Addr && !m.quarantined(p) {
			m.tryAcquire(p)
		}
	}
}

// eligible subtracts a lease's avoiders from the peer set, so
// rendezvous preference skips coordinators that have declared
// themselves unfit for it. An avoidance set covering every live peer
// yields the unfiltered set: a wrong placement beats an orphaned
// partition.
func eligible(peers, avoid []string) []string {
	if len(avoid) == 0 {
		return peers
	}
	out := make([]string, 0, len(peers))
	for _, addr := range peers {
		skip := false
		for _, a := range avoid {
			if a == addr {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, addr)
		}
	}
	if len(out) == 0 {
		return peers
	}
	return out
}

// tickHeld renews, hands off, or fences one held partition.
func (m *Manager) tickHeld(p int, deadline time.Time, pref string) {
	if pref != "" && pref != m.cfg.Addr {
		// A different live peer is preferred: hand the partition off
		// gracefully. Teardown first — only after this coordinator has
		// stopped acting as owner may the lease go back to the pool.
		m.lose(p)
		m.releaseLease(p)
		return
	}
	// The fencing deadline is computed from the clock reading taken
	// before the renewal request, and FenceMargin short of the arbiter's
	// TTL: however long the round trip takes, the local validity window
	// ends strictly before the arbiter can re-grant. If the old deadline
	// passes while the RPC is in flight, Holds and the store fence have
	// already stopped admitting work — the tick merely catches up.
	renewStart := m.cfg.Clock.Now()
	next := renewStart.Add(m.cfg.TTL - m.cfg.FenceMargin)
	granted, err := m.acquireLease(p)
	switch {
	case err == nil && granted:
		m.extend(p, next)
		m.mRenewals.Inc()
		m.mRenewSeconds.ObserveSince(m.cfg.Clock, renewStart)
	case err == nil && !granted:
		// The arbiter says someone else holds it: we already lost.
		m.lose(p)
	default:
		// Renewal unreachable (or over its bound): keep acting as owner
		// only inside the window the last successful renewal bought.
		if !m.cfg.Clock.Now().Before(deadline) {
			m.lose(p)
		}
	}
}

// tryAcquire claims one unheld partition this coordinator is the
// preferred owner of.
func (m *Manager) tryAcquire(p int) {
	deadline := m.cfg.Clock.Now().Add(m.cfg.TTL - m.cfg.FenceMargin)
	granted, err := m.acquireLease(p)
	if err != nil || !granted {
		return
	}
	// Publish the claim before mounting: the partition's recovery writes
	// must pass the store fence, and requests that arrive mid-mount get
	// "instance not found" (retried by the routing client) instead of a
	// stale not-owner redirect.
	if !m.claim(p, deadline) {
		// Closed/abandoned while the grant was in flight.
		m.releaseLease(p)
		return
	}
	if m.cfg.OnAcquire != nil {
		if err := m.cfg.OnAcquire(p); err != nil {
			// Mounting failed; don't sit on a partition we can't serve.
			m.drop(p)
			m.releaseLease(p)
			return
		}
	}
	if _, still := m.deadlineOf(p); !still {
		// Abandon raced with the mount: unwind it so a crash-emulating
		// harness is not left with a zombie mount. No release — abandon
		// means crash, the lease lapses at TTL.
		if m.cfg.OnLose != nil {
			m.cfg.OnLose(p)
		}
	}
}

// Start launches Run on its own goroutine; Close (or Abandon) stops
// it.
func (m *Manager) Start() { go m.Run() }

// Run ticks the protocol every Renew interval until Close. The first
// tick is immediate, so a booting coordinator claims its partitions
// without waiting out an interval.
func (m *Manager) Run() {
	m.Tick()
	for {
		wake := m.cfg.Clock.Wake(m.cfg.Clock.Now().Add(m.cfg.Renew))
		select {
		case <-wake:
			m.Tick()
		case <-m.stopCh:
			return
		}
	}
}

// Abandon stops the manager the way a crash would: the run loop halts
// and every held partition is forgotten without teardown or release.
// It does not wait for a round in flight — like a SIGKILL, it takes
// effect immediately (the round observes the abandonment and unwinds).
// The leases lapse at their TTL and a peer steals them — exactly the
// sequence a SIGKILLed coordinator goes through. Harnesses (experiments,
// load tools) use it to emulate coordinator death in-process.
func (m *Manager) Abandon() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.held = make(map[int]time.Time)
	m.mPartitionsHeld.Set(0)
}

// Close stops Run (if running), waits out any round in flight (bounded,
// since every lease RPC is), then tears down every held partition and
// releases its lease. Safe to call whether or not Run was started.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	held := make([]int, 0, len(m.held))
	for p := range m.held {
		held = append(held, p)
	}
	// A quarantine whose deferred teardown never got a round still owes
	// its OnLose and release; run them with the shutdown teardowns.
	for p, q := range m.quar {
		if q.teardown {
			q.teardown = false
			held = append(held, p)
		}
	}
	m.held = make(map[int]time.Time)
	m.mPartitionsHeld.Set(0)
	m.mu.Unlock()
	sort.Ints(held)
	for _, p := range held {
		if m.cfg.OnLose != nil {
			m.cfg.OnLose(p)
		}
		m.releaseLease(p)
	}
}
