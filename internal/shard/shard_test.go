package shard_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/timers"
)

func TestPartitionOfStableAndInRange(t *testing.T) {
	for _, name := range []string{"order-1", "order-2", "cc", "trip", "a/b"} {
		p := shard.PartitionOf(name, 8)
		if p < 0 || p >= 8 {
			t.Fatalf("PartitionOf(%q, 8) = %d out of range", name, p)
		}
		if q := shard.PartitionOf(name, 8); q != p {
			t.Fatalf("PartitionOf(%q) unstable: %d then %d", name, p, q)
		}
	}
	if shard.PartitionOf("anything", 1) != 0 {
		t.Fatal("single-partition topology must map everything to 0")
	}
	// Sanity: 256 instances over 8 partitions leave no partition empty.
	seen := make(map[int]int)
	for i := 0; i < 256; i++ {
		seen[shard.PartitionOf(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('A'+i%13)), 8)]++
	}
	for p := 0; p < 8; p++ {
		if seen[p] == 0 {
			t.Fatalf("partition %d got no instances out of 256 (skewed hash?): %v", p, seen)
		}
	}
}

func TestPreferredRendezvousMinimalDisruption(t *testing.T) {
	peers := []string{"addr-a", "addr-b", "addr-c"}
	const parts = 32
	owner := make([]string, parts)
	byPeer := make(map[string]int)
	for p := 0; p < parts; p++ {
		owner[p] = shard.Preferred(peers, p)
		byPeer[owner[p]]++
	}
	for _, peer := range peers {
		if byPeer[peer] == 0 {
			t.Fatalf("peer %s owns nothing across %d partitions: %v", peer, parts, byPeer)
		}
	}
	// Removing one peer moves ONLY that peer's partitions.
	survivors := []string{"addr-a", "addr-c"}
	for p := 0; p < parts; p++ {
		after := shard.Preferred(survivors, p)
		if owner[p] != "addr-b" && after != owner[p] {
			t.Fatalf("partition %d moved from %s to %s though its owner survived", p, owner[p], after)
		}
		if owner[p] == "addr-b" && (after != "addr-a" && after != "addr-c") {
			t.Fatalf("orphaned partition %d went to %q", p, after)
		}
	}
	if shard.Preferred(nil, 0) != "" {
		t.Fatal("empty peer set must prefer nobody")
	}
}

func TestInstanceOfRouting(t *testing.T) {
	cases := []struct {
		id   store.ID
		inst string
		ok   bool
	}{
		{"inst/cc/run/app", "cc", true},
		{"inst/cc/meta", "cc", true},
		{"inst/order-7/timer/a%2Fb", "order-7", true},
		{"txlog/tx12/inst%2Fcc%2Frun%2Fapp", "cc", true},
		{"txdecision/tx12", "", false},
		{"sched/nightly", "", false},
		{"inst/", "", false},
	}
	for _, c := range cases {
		inst, ok := shard.InstanceOf(c.id)
		if inst != c.inst || ok != c.ok {
			t.Fatalf("InstanceOf(%s) = (%q, %v), want (%q, %v)", c.id, inst, ok, c.inst, c.ok)
		}
	}
}

func TestPartitionedStoreRoutingAndBatches(t *testing.T) {
	const parts = 4
	ps := shard.NewPartitionedStore(parts)
	backing := make([]*store.MemStore, parts)
	for p := 0; p < parts; p++ {
		backing[p] = store.NewMemStore()
		ps.Mount(p, backing[p])
	}
	instA, instB := "cc", "trip"
	pa, pb := shard.PartitionOf(instA, parts), shard.PartitionOf(instB, parts)
	if pa == pb {
		t.Fatalf("test instances hash to the same partition (%d); pick different names", pa)
	}

	// Writes land in the owning partition's store.
	keyA := store.ID("inst/" + instA + "/meta")
	keyB := store.ID("inst/" + instB + "/meta")
	if err := ps.Write(keyA, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := ps.Write(keyB, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := backing[pa].Read(keyA); err != nil {
		t.Fatalf("keyA not in partition %d: %v", pa, err)
	}
	if _, err := backing[pb].Read(keyB); err != nil {
		t.Fatalf("keyB not in partition %d: %v", pb, err)
	}

	// A commit batch: intentions (routable through the escaping) and the
	// decision record (not routable) must land in the SAME store.
	batch := []store.BatchOp{
		{ID: store.ID("txlog/tx1/inst%2F" + instA + "%2Frun%2Fapp"), Data: []byte("intent")},
		{ID: store.ID("txdecision/tx1"), Data: []byte("committed")},
	}
	if err := ps.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := backing[pa].Read("txdecision/tx1"); err != nil {
		t.Fatal("decision record did not inherit its intentions' partition")
	}

	// The decision's later single-key delete has no route: it broadcasts.
	if err := ps.Delete("txdecision/tx1"); err != nil {
		t.Fatal(err)
	}
	if _, err := backing[pa].Read("txdecision/tx1"); !errors.Is(err, store.ErrNotFound) {
		t.Fatal("broadcast delete missed the decision record")
	}

	// List merges across partitions in lexical order.
	ids, err := ps.List("inst/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []store.ID{keyA, keyB}) && !reflect.DeepEqual(ids, []store.ID{keyB, keyA}) {
		if len(ids) != 2 {
			t.Fatalf("merged List = %v", ids)
		}
	}
	if ids[0] > ids[1] {
		t.Fatalf("merged List not sorted: %v", ids)
	}

	// Cross-partition batches cannot happen in this engine (batches are
	// per-instance); the store refuses rather than splitting silently.
	if err := ps.ApplyBatch([]store.BatchOp{
		{ID: keyA, Data: []byte("x")},
		{ID: keyB, Data: []byte("y")},
	}); err == nil {
		t.Fatal("cross-partition batch accepted")
	}

	// An unmounted partition is a hard error, not a silent drop.
	ps.Unmount(pa)
	if err := ps.Write(keyA, []byte("z")); !errors.Is(err, shard.ErrNotMounted) {
		t.Fatalf("write to unmounted partition: %v", err)
	}
	if _, err := ps.Read(keyA); !errors.Is(err, shard.ErrNotMounted) {
		t.Fatalf("read of unmounted partition: %v", err)
	}
}

// managerPair wires two managers to one in-process naming table on one
// FakeClock, recording mount/unmount transitions.
type mountLog struct {
	ps *shard.PartitionedStore
}

func (ml *mountLog) onAcquire(p int) error {
	ml.ps.Mount(p, store.NewMemStore())
	return nil
}

func (ml *mountLog) onLose(p int) { ml.ps.Unmount(p) }

func newManager(t *testing.T, id, addr string, naming *orb.Naming, clk timers.Clock, peers func() ([]string, error)) (*shard.Manager, *shard.PartitionedStore) {
	t.Helper()
	ps := shard.NewPartitionedStore(8)
	ml := &mountLog{ps: ps}
	m, err := shard.NewManager(shard.ManagerConfig{
		ID: id, Addr: addr, Partitions: 8,
		TTL: 4 * time.Second, Renew: time.Second,
		Clock: clk, Leases: shard.LocalLeases{N: naming}, Peers: peers,
		OnAcquire: ml.onAcquire, OnLose: ml.onLose,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, ps
}

func TestManagerSplitsPartitionsByPreference(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	live := func() ([]string, error) { return []string{"a:1", "b:2"}, nil }
	ma, psa := newManager(t, "coord-a", "a:1", naming, clk, live)
	mb, psb := newManager(t, "coord-b", "b:2", naming, clk, live)
	ma.Tick()
	mb.Tick()

	helds := map[int]int{}
	for _, p := range ma.Held() {
		helds[p]++
	}
	for _, p := range mb.Held() {
		helds[p]++
	}
	if len(helds) != 8 {
		t.Fatalf("only %d of 8 partitions owned: a=%v b=%v", len(helds), ma.Held(), mb.Held())
	}
	for p, n := range helds {
		if n != 1 {
			t.Fatalf("partition %d held by %d coordinators", p, n)
		}
		want := shard.Preferred([]string{"a:1", "b:2"}, p)
		holder, _, held := naming.LeaseHolder(shard.LeaseName(p))
		if !held {
			t.Fatalf("no lease recorded for partition %d", p)
		}
		if (want == "a:1") != (holder == "coord-a") {
			t.Fatalf("partition %d: preferred %s but lease held by %s", p, want, holder)
		}
	}
	if !reflect.DeepEqual(psa.Mounted(), ma.Held()) || !reflect.DeepEqual(psb.Mounted(), mb.Held()) {
		t.Fatalf("mounts out of sync with leases: a %v/%v b %v/%v",
			psa.Mounted(), ma.Held(), psb.Mounted(), mb.Held())
	}
}

func TestManagerFailoverAfterMissedRenewals(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	// Membership tracks who is "alive" in the test's eyes.
	alive := map[string]bool{"a:1": true, "b:2": true}
	live := func() ([]string, error) {
		var out []string
		for _, a := range []string{"a:1", "b:2"} {
			if alive[a] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	ma, _ := newManager(t, "coord-a", "a:1", naming, clk, live)
	mb, psb := newManager(t, "coord-b", "b:2", naming, clk, live)
	ma.Tick()
	mb.Tick()
	lost := ma.Held()
	if len(lost) == 0 {
		t.Fatal("coordinator a owns nothing; test needs both to own partitions")
	}

	// a dies: no more ticks from it, membership drops it. Its leases
	// must lapse before b may take over — immediately after death, b
	// still owns only its own partitions.
	alive["a:1"] = false
	mb.Tick()
	for _, p := range lost {
		if psb.Mounted() != nil {
			for _, q := range psb.Mounted() {
				if q == p {
					t.Fatalf("partition %d taken over before the lease lapsed", p)
				}
			}
		}
	}
	// Past the TTL, b's next tick steals everything.
	clk.Advance(5 * time.Second)
	mb.Tick()
	if got := mb.Held(); len(got) != 8 {
		t.Fatalf("survivor holds %v, want all 8 partitions", got)
	}
	if got := psb.Mounted(); len(got) != 8 {
		t.Fatalf("survivor mounted %v, want all 8 partitions", got)
	}
	// The dead coordinator self-fences: its local validity windows have
	// lapsed even though nobody told it anything.
	for _, p := range lost {
		if ma.Holds(p) {
			t.Fatalf("dead coordinator still believes it holds partition %d", p)
		}
	}
}

func TestManagerGracefulRebalanceOnRejoin(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	alive := map[string]bool{"a:1": true}
	live := func() ([]string, error) {
		var out []string
		for _, a := range []string{"a:1", "b:2"} {
			if alive[a] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	ma, _ := newManager(t, "coord-a", "a:1", naming, clk, live)
	mb, _ := newManager(t, "coord-b", "b:2", naming, clk, live)
	ma.Tick()
	if got := ma.Held(); len(got) != 8 {
		t.Fatalf("sole coordinator holds %v, want all 8", got)
	}

	// b joins. a's next tick releases b's preferred partitions
	// (teardown before release), and b's tick claims them.
	alive["b:2"] = true
	clk.Advance(time.Second)
	ma.Tick()
	mb.Tick()
	wantB := 0
	for p := 0; p < 8; p++ {
		if shard.Preferred([]string{"a:1", "b:2"}, p) == "b:2" {
			wantB++
		}
	}
	if len(mb.Held()) != wantB || len(ma.Held()) != 8-wantB {
		t.Fatalf("after rejoin: a=%v b=%v, want split %d/%d", ma.Held(), mb.Held(), 8-wantB, wantB)
	}
	// No partition is double-held.
	for _, p := range ma.Held() {
		for _, q := range mb.Held() {
			if p == q {
				t.Fatalf("partition %d double-held after rebalance", p)
			}
		}
	}
}

func TestManagerCloseReleasesEverything(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	live := func() ([]string, error) { return []string{"a:1"}, nil }
	ma, psa := newManager(t, "coord-a", "a:1", naming, clk, live)
	ma.Tick()
	if len(ma.Held()) != 8 {
		t.Fatalf("holds %v", ma.Held())
	}
	ma.Close()
	if len(ma.Held()) != 0 || len(psa.Mounted()) != 0 {
		t.Fatalf("after Close: held=%v mounted=%v", ma.Held(), psa.Mounted())
	}
	if got := naming.Leases(); len(got) != 0 {
		t.Fatalf("leases survive Close: %v", got)
	}
}

func TestManagerFenceMarginBeforeArbiterExpiry(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	live := func() ([]string, error) { return []string{"a:1"}, nil }
	ma, _ := newManager(t, "coord-a", "a:1", naming, clk, live)
	defer ma.Close()
	ma.Tick()
	if len(ma.Held()) != 8 {
		t.Fatalf("holds %v", ma.Held())
	}

	// TTL 4s, default fence margin TTL/4 = 1s: the local validity window
	// ends at t0+3s, strictly before the arbiter's expiry at t0+4s. In
	// the gap the coordinator has already fenced itself even though the
	// arbiter still reports it as the holder — so there is no instant at
	// which a peer could win the lease while the old owner still admits
	// writes.
	clk.Advance(3 * time.Second)
	for p := 0; p < 8; p++ {
		if ma.Holds(p) {
			t.Fatalf("partition %d still un-fenced at TTL-margin", p)
		}
		_, _, held := naming.LeaseHolder(shard.LeaseName(p))
		if !held {
			t.Fatalf("arbiter already expired partition %d's lease inside the margin", p)
		}
	}
	// Held (the mount view) still lists them: the fence lapsing is what
	// stops traffic; the next tick is what tears down.
	if len(ma.Held()) != 8 {
		t.Fatalf("fence lapse should not unmount by itself: %v", ma.Held())
	}
}

// hangingLeases delegates to an in-process lease table but can be made
// to block inside AcquireLease, emulating a renewal RPC stuck on a
// partitioned naming service.
type hangingLeases struct {
	inner   shard.LocalLeases
	mu      sync.Mutex
	hang    bool
	entered chan struct{} // signalled when a hanging call arrives
	release chan struct{} // closed to let hanging calls return
}

func (h *hangingLeases) AcquireLease(name, holder, addr string, ttl time.Duration) (bool, string, string, error) {
	h.mu.Lock()
	hang := h.hang
	h.mu.Unlock()
	if hang {
		h.entered <- struct{}{}
		<-h.release
		return false, "", "", errors.New("naming unreachable")
	}
	return h.inner.AcquireLease(name, holder, addr, ttl)
}

func (h *hangingLeases) ReleaseLease(name, holder string) (bool, error) {
	return h.inner.ReleaseLease(name, holder)
}

func (h *hangingLeases) AvoidLease(name, addr string, ttl time.Duration) error {
	return h.inner.AvoidLease(name, addr, ttl)
}

func (h *hangingLeases) LeaseAvoiders() (map[string][]string, error) {
	return h.inner.LeaseAvoiders()
}

func (h *hangingLeases) setHang(v bool) {
	h.mu.Lock()
	h.hang = v
	h.mu.Unlock()
}

func TestManagerHoldsNotBlockedByHungRenewal(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	leases := &hangingLeases{
		inner:   shard.LocalLeases{N: naming},
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	defer close(leases.release)
	ps := shard.NewPartitionedStore(1)
	m, err := shard.NewManager(shard.ManagerConfig{
		ID: "coord-a", Addr: "a:1", Partitions: 1,
		TTL: 4 * time.Second, Renew: time.Second,
		Clock: clk, Leases: leases,
		Peers:     func() ([]string, error) { return []string{"a:1"}, nil },
		OnAcquire: func(p int) error { ps.Mount(p, store.NewMemStore()); return nil },
		OnLose:    func(p int) { ps.Unmount(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Tick()
	if !m.Holds(0) {
		t.Fatal("first tick did not acquire partition 0")
	}

	// The renewal hangs. Pre-fix, the tick held the manager's only mutex
	// across the blocked RPC, so Holds — and with it every request the
	// ownership guard vets — deadlocked behind it, and no fencing
	// deadline could fire because the tick never finished. Now the tick
	// serializes on its own mutex and each RPC is bounded on the clock.
	leases.setHang(true)
	done := make(chan struct{})
	go func() {
		m.Tick()
		close(done)
	}()
	<-leases.entered

	// Request path is live mid-hang: Holds answers from the table.
	if !m.Holds(0) {
		t.Fatal("Holds went false while the fence window is still open")
	}

	// Advance past both the RPC bound (500ms) and the fence deadline
	// (t0+3s): the bounded call gives up, the tick observes the lapsed
	// window and tears the partition down — while the arbiter, whose
	// clock says the lease runs to t0+4s, still shows the old holder.
	clk.Advance(3 * time.Second)
	<-done
	if m.Holds(0) || len(m.Held()) != 0 {
		t.Fatalf("partition survived a hung renewal past its fence: held=%v", m.Held())
	}
	if got := ps.Mounted(); len(got) != 0 {
		t.Fatalf("store still mounted after self-fence: %v", got)
	}
	if _, _, held := naming.LeaseHolder(shard.LeaseName(0)); !held {
		t.Fatal("arbiter lease should still be live; self-fencing must lead its expiry")
	}
}

func TestManagerReleasesLeaseWhenMountFails(t *testing.T) {
	clk := timers.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	naming := orb.NewNaming()
	naming.SetClock(clk.Now)
	m, err := shard.NewManager(shard.ManagerConfig{
		ID: "coord-a", Addr: "a:1", Partitions: 2,
		TTL: 4 * time.Second, Renew: time.Second,
		Clock: clk, Leases: shard.LocalLeases{N: naming},
		Peers:     func() ([]string, error) { return []string{"a:1"}, nil },
		OnAcquire: func(p int) error { return errors.New("recovery failed") },
		OnLose:    func(p int) { t.Errorf("OnLose(%d) ran for a partition that never mounted", p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Tick()
	if got := m.Held(); len(got) != 0 {
		t.Fatalf("failed mounts left partitions held: %v", got)
	}
	// The leases went back to the pool immediately — a healthy peer need
	// not wait out the TTL.
	if got := naming.Leases(); len(got) != 0 {
		t.Fatalf("failed mounts left leases registered: %v", got)
	}
}

func TestPartitionedStoreWriteFence(t *testing.T) {
	const parts = 4
	ps := shard.NewPartitionedStore(parts)
	backing := make([]*store.MemStore, parts)
	for p := 0; p < parts; p++ {
		backing[p] = store.NewMemStore()
		ps.Mount(p, backing[p])
	}
	var mu sync.Mutex
	open := map[int]bool{}
	for p := 0; p < parts; p++ {
		open[p] = true
	}
	ps.SetFence(func(p int) bool {
		mu.Lock()
		defer mu.Unlock()
		return open[p]
	})

	inst := "cc"
	p := shard.PartitionOf(inst, parts)
	key := store.ID("inst/" + inst + "/meta")
	if err := ps.Write(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Fence the partition: every write-path verb must refuse with
	// ErrFenced, while reads keep serving (stale reads cannot corrupt
	// what the new owner recovers from).
	mu.Lock()
	open[p] = false
	mu.Unlock()
	if err := ps.Write(key, []byte("v2")); !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("fenced Write = %v, want ErrFenced", err)
	}
	if err := ps.Delete(key); !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("fenced Delete = %v, want ErrFenced", err)
	}
	if err := ps.ApplyBatch([]store.BatchOp{{ID: key, Data: []byte("v2")}}); !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("fenced ApplyBatch = %v, want ErrFenced", err)
	}
	if data, err := ps.Read(key); err != nil || string(data) != "v1" {
		t.Fatalf("fenced Read = %q, %v; want the pre-fence state", data, err)
	}

	// A broadcast decision-record delete skips the fenced partition
	// instead of erroring: the other partitions' cleanup proceeds.
	if err := backing[p].Write("txdecision/tx1", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := ps.Delete("txdecision/tx1"); err != nil {
		t.Fatalf("broadcast delete with a fenced partition: %v", err)
	}
	if _, err := backing[p].Read("txdecision/tx1"); err != nil {
		t.Fatal("broadcast delete wrote through a fence")
	}

	// Re-opening the fence re-admits writes (a renewed lease).
	mu.Lock()
	open[p] = true
	mu.Unlock()
	if err := ps.Write(key, []byte("v3")); err != nil {
		t.Fatalf("write after fence re-opened: %v", err)
	}
}

func TestPartitionedStoreBroadcastDeleteAfterHandoff(t *testing.T) {
	const parts = 4
	ps := shard.NewPartitionedStore(parts)
	for p := 0; p < parts; p++ {
		ps.Mount(p, store.NewMemStore())
	}
	// A decision-only batch lands in the lowest mounted partition.
	if err := ps.ApplyBatch([]store.BatchOp{{ID: "txdecision/tx9", Data: []byte("committed")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Read("txdecision/tx9"); err != nil {
		t.Fatal(err)
	}

	// That partition is handed off before the cleanup delete runs. The
	// record now lives with the new owner, whose recovery garbage-
	// collects inert decisions; nowhere-found here is success, not
	// ErrNotFound.
	ps.Unmount(0)
	if err := ps.Delete("txdecision/tx9"); err != nil {
		t.Fatalf("broadcast delete after handoff = %v, want nil", err)
	}
	// Even with nothing mounted at all, cleanup of a non-routable record
	// is a no-op, not an error.
	for p := 1; p < parts; p++ {
		ps.Unmount(p)
	}
	if err := ps.Delete("txdecision/tx9"); err != nil {
		t.Fatalf("broadcast delete with nothing mounted = %v, want nil", err)
	}
}
