package engine_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/workload"
)

// The tests in this file pin the dependency-indexed dirty-set scheduler
// to the legacy full-rescan strategy (Config.FullRescan): identical
// run-state trajectories on deterministic workloads, and sub-quadratic
// evaluator work asserted through the scan counter.

// schedOutcome captures everything observable about one execution.
type schedOutcome struct {
	result engine.Result
	// traces maps each task path to its ordered event signature; global
	// event order is timing-dependent for parallel workloads, per-task
	// order is not.
	traces map[string][]string
	rows   []engine.TaskStatus
	scans  int64
}

// runSched executes one generated workload to completion under cfg.
func runSched(t *testing.T, name, src string, cfg engine.Config) schedOutcome {
	t.Helper()
	cfg.Ephemeral = true
	r := newRig(t, cfg)
	workload.Bind(r.impls)
	schema := workload.MustCompile(name, src)
	inst, err := r.eng.Instantiate(name, schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	rows, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	traces := make(map[string][]string)
	for _, e := range inst.Events() {
		sig := fmt.Sprintf("%s output=%s set=%s iter=%d attempt=%d", e.Kind, e.Output, e.InputSet, e.Iteration, e.Attempt)
		traces[e.Task] = append(traces[e.Task], sig)
	}
	scans := inst.Scans()
	inst.Stop()
	return schedOutcome{result: res, traces: traces, rows: rows, scans: scans}
}

// diffOutcomes fails the test unless both schedulers produced the same
// run-state trajectory.
func diffOutcomes(t *testing.T, dirty, full schedOutcome) {
	t.Helper()
	if dirty.result.Output != full.result.Output || dirty.result.State != full.result.State {
		t.Fatalf("result diverged: dirty-set %+v, full-rescan %+v", dirty.result, full.result)
	}
	if len(dirty.traces) != len(full.traces) {
		t.Fatalf("traced task sets diverged: %d vs %d", len(dirty.traces), len(full.traces))
	}
	for task, want := range full.traces {
		got := dirty.traces[task]
		if len(got) != len(want) {
			t.Fatalf("%q: %d events under dirty-set, %d under full-rescan\n got: %v\nwant: %v", task, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q event %d diverged:\n got: %s\nwant: %s", task, i, got[i], want[i])
			}
		}
	}
	if len(dirty.rows) != len(full.rows) {
		t.Fatalf("snapshots diverged: %d vs %d rows", len(dirty.rows), len(full.rows))
	}
	for i := range full.rows {
		d, f := dirty.rows[i], full.rows[i]
		if d.Path != f.Path || d.State != f.State || d.ChosenSet != f.ChosenSet ||
			d.Attempt != f.Attempt || d.Iteration != f.Iteration || len(d.Outputs) != len(f.Outputs) {
			t.Fatalf("snapshot row %d diverged:\n got: %+v\nwant: %+v", i, d, f)
		}
	}
}

// TestDifferentialDirtySetVsFullRescan runs deterministic workloads under
// both schedulers (the dirty-set instance additionally carries the
// in-situ fixed-point oracle via newRig) and requires identical
// trajectories.
func TestDifferentialDirtySetVsFullRescan(t *testing.T) {
	cases := []struct{ name, src string }{
		{"chain", workload.Chain(12)},
		{"diamond", workload.Diamond(6)},
		{"fanin", workload.FanIn(8)},
		{"nested", workload.Nested(3, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dirty := runSched(t, tc.name+"-dirty", tc.src, engine.Config{})
			full := runSched(t, tc.name+"-full", tc.src, engine.Config{FullRescan: true})
			diffOutcomes(t, dirty, full)
		})
	}
}

// cyclerScript exercises the full Fig. 3 transition set: marks, repeat
// outcomes with self-feedback, and a retried system failure.
const cyclerScript = `
class D;

taskclass Cycler
{
    inputs { input main { seed of class D } };
    outputs
    {
        outcome finished { out of class D };
        repeat outcome again { counter of class D };
        mark progress { snapshot of class D }
    }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome finished { out of class D } }
};

compoundtask app of taskclass App
{
    task cycler of taskclass Cycler
    {
        implementation { "code" is "cycler" };
        inputs
        {
            input main
            {
                inputobject seed from
                {
                    counter of task cycler if output again;
                    seed of task app if input main
                }
            }
        }
    };
    outputs { outcome finished { outputobject out from { out of task cycler if output finished } } }
};
`

// TestDifferentialRepeatMarkRetry compares trajectories through marks,
// repeats and automatic retries — the transitions beyond plain dataflow
// that the dirty worklist must also propagate.
func TestDifferentialRepeatMarkRetry(t *testing.T) {
	run := func(cfg engine.Config) schedOutcome {
		cfg.MaxRetries = 1
		r := newRig(t, cfg)
		r.impls.Bind("cycler", func(ctx registry.Context) (registry.Result, error) {
			n := ctx.Inputs()["seed"].Data.(int)
			if n == 1 && ctx.Attempt() == 0 {
				return registry.Result{}, errors.New("transient")
			}
			if err := ctx.Mark("progress", registry.Objects{"snapshot": {Class: "D", Data: n}}); err != nil {
				return registry.Result{}, err
			}
			if n < 3 {
				return registry.Result{Output: "again", Objects: registry.Objects{"counter": {Class: "D", Data: n + 1}}}, nil
			}
			return registry.Result{Output: "finished", Objects: registry.Objects{"out": {Class: "D", Data: n}}}, nil
		})
		inst := r.run(t, cyclerScript, fmt.Sprintf("cycler-rescan=%v", cfg.FullRescan), "main", registry.Objects{"seed": val("D", 0)})
		res := waitResult(t, inst)
		traces := make(map[string][]string)
		for _, e := range inst.Events() {
			traces[e.Task] = append(traces[e.Task], fmt.Sprintf("%s output=%s iter=%d attempt=%d", e.Kind, e.Output, e.Iteration, e.Attempt))
		}
		rows, err := inst.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return schedOutcome{result: res, traces: traces, rows: rows}
	}
	diffOutcomes(t, run(engine.Config{}), run(engine.Config{FullRescan: true}))
}

// TestDirtySetScansLinear asserts the asymptotic win of the index on a
// deep chain: total evaluator scans stay linear in the task count, while
// the full-rescan baseline performs quadratic work.
func TestDirtySetScansLinear(t *testing.T) {
	const n = 48
	src := workload.Chain(n)
	dirty := runSched(t, "scans-dirty", src, engine.Config{})
	full := runSched(t, "scans-full", src, engine.Config{FullRescan: true})
	if dirty.scans > 8*n {
		t.Errorf("dirty-set scheduler examined %d runs on a %d-task chain, want <= %d (linear)", dirty.scans, n, 8*n)
	}
	if full.scans < n*n/2 {
		t.Errorf("full-rescan baseline examined %d runs, expected quadratic >= %d (is the oracle still a full rescan?)", full.scans, n*n/2)
	}
	if full.scans < 5*dirty.scans {
		t.Errorf("expected >= 5x scan reduction, got full=%d dirty=%d", full.scans, dirty.scans)
	}
}

// TestCompletionReexaminesOnlyConsumers gates every stage of a chain and
// measures the evaluator scans attributable to each single completion
// event: only the completed task's indexed consumers may be re-examined,
// independent of instance size.
func TestCompletionReexaminesOnlyConsumers(t *testing.T) {
	const n = 32
	r := newRig(t, engine.Config{Ephemeral: true})
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	schema := workload.MustCompile("gated", workload.Chain(n))
	inst, err := r.eng.Instantiate("gated", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sync := func(task string) {
		t.Helper()
		if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
			return e.Kind == engine.EventTaskStarted && e.Task == task
		}); err != nil {
			t.Fatal(err)
		}
		// Snapshot round-trips through the controller, guaranteeing the
		// drain that emitted the event has finished before Scans is read.
		if _, err := inst.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	sync("app/t1")
	prev := inst.Scans()
	for i := 1; i < n; i++ {
		gate <- struct{}{} // let t<i> complete
		sync(fmt.Sprintf("app/t%d", i+1))
		scans := inst.Scans()
		if delta := scans - prev; delta > 4 {
			t.Fatalf("completion of t%d re-examined %d runs, want <= 4 (indexed consumers only)", i, delta)
		}
		prev = scans
	}
	gate <- struct{}{} // final stage
	if _, err := inst.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	inst.Stop()
}
