// Package engine implements the workflow execution service core: it
// coordinates the execution of workflow instances compiled from scripts,
// "recording inter-task dependencies in persistent atomic objects and
// using atomic transactions for propagating coordination information to
// ensure that tasks are scheduled to run respecting their dependencies"
// (Section 3 of the paper).
//
// Semantics implemented here, all from the paper:
//
//   - A task starts when one of its input sets is fully satisfied; among
//     simultaneously satisfiable sets the first in declaration order wins,
//     and among alternative sources of one input the first available in
//     declaration order wins (Section 2, Fig. 2).
//   - Task runs follow the Fig. 3 state machine: Wait, Execute, named
//     outcomes, abort outcomes (no side effects, transactional), repeat
//     outcomes (re-enter execution), and mark outputs (early release;
//     a task that has marked can no longer abort).
//   - System-level failures of implementations are retried automatically
//     a finite number of times, then mapped to an abort outcome.
//   - Compound tasks activate their constituents when they start and
//     terminate when one of their output mappings becomes satisfied.
//   - The structure of a running instance can be changed transactionally
//     (dynamic reconfiguration; see Reconfigure).
//   - Instances survive crashes: run states live in persistent atomic
//     objects and Engine.Recover rebuilds and resumes an instance.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/timers"
)

// Config tunes an Engine.
type Config struct {
	// MaxRetries bounds the automatic retries of a task whose
	// implementation reports a system-level failure. Default 3.
	MaxRetries int
	// MaxRepeats bounds repeat-outcome iterations per task as a runaway
	// protection. Default 1000.
	MaxRepeats int
	// DefaultDeadline bounds each implementation activation when the
	// task declares no "deadline" implementation property. Zero means no
	// bound. Deadlines are tracked on the engine's shared timing wheel.
	DefaultDeadline time.Duration
	// Clock supplies time to the whole engine: event timestamps, output
	// records, first-class delays, deadlines. Nil selects the wall
	// clock; tests inject timers.FakeClock to drive temporal behaviour
	// without sleeping.
	Clock timers.Clock
	// TimerTick is the timing-wheel granularity (worst-case fire
	// lateness; timers never fire early). Zero selects the wheel's
	// default (1ms).
	TimerTick time.Duration
	// Ephemeral disables persistence of run states (no transactions on
	// the store, no crash recovery). It exists as the ablation baseline
	// for the paper's design decision to record dependencies in
	// persistent atomic objects; see the ablation benchmarks.
	Ephemeral bool
	// RemoteInvoker, when set, executes activations of tasks that carry a
	// "location" implementation property on a remote task executor
	// (Section 4.3 lists "location" and "agent" among the implementation
	// keywords). Remote failures are system-level failures: retried, then
	// mapped to an abort outcome. See internal/taskexec.
	RemoteInvoker RemoteInvoker
	// MaxRemoteInflight bounds how many remote activations of one
	// instance may be dispatched concurrently: excess activations wait
	// for a slot instead of piling unbounded concurrent calls onto the
	// executor pool (backpressure for wide fan-outs). 0 means unbounded.
	MaxRemoteInflight int
	// PersistPerTransition selects the legacy persistence strategy that
	// commits one transaction per run-state transition instead of
	// coalescing every write of one evaluation drain into a single
	// multi-object batch commit. It exists as the ablation baseline for
	// the group-commit design decision; see the PersistChain benchmarks
	// and the wfbench S2 rows.
	PersistPerTransition bool
	// FullRescan selects the legacy evaluation strategy that rescans
	// every run in the instance to a fixed point after each event,
	// instead of the dependency-indexed dirty-set scheduler. It exists as
	// an ablation baseline and as the oracle of the scheduler's
	// differential tests; see the Scheduler benchmarks.
	FullRescan bool
	// VerifyScheduler runs a read-only full-rescan satisfiability probe
	// after every dirty-set drain and panics if the probe finds progress
	// the worklist missed. Debug assertion for tests; ignored when
	// FullRescan is set.
	VerifyScheduler bool
	// Probe, when set, receives park/wake notifications from every
	// instance controller: Park fires just before a controller blocks
	// with no queued input, Wake as soon as it unblocks. The
	// deterministic simulation harness (internal/sim) combines the pair
	// with QueuedWork to detect global quiescence; leave nil otherwise.
	Probe Probe
	// EventTap, when set, receives a copy of every event immediately
	// after it is recorded, on the emitting goroutine (per-instance
	// event order is preserved). The simulation harness streams its
	// cross-instance trace through it; leave nil otherwise.
	EventTap func(Event)
	// Metrics receives every counter, gauge and histogram the engine
	// records (see internal/obs and docs/OBSERVABILITY.md). Nil selects
	// the process-global obs.Default() registry; deterministic harnesses
	// inject their own so counters aggregate across simulated
	// coordinator generations.
	Metrics *obs.Registry
	// Tracer receives the engine's activation spans. Nil selects the
	// process-global obs.DefaultTracer().
	Tracer *obs.Tracer
}

// Probe observes instance-controller quiescence (see Config.Probe).
// Both methods are called from controller goroutines and must not
// block on engine state.
type Probe interface {
	// Park reports that the controller for instance id is about to
	// block waiting for input: no buffered completions, no queued timer
	// fires, inflight implementation workers still executing and armed
	// pending delay timers.
	Park(id string, inflight, armed int)
	// Wake reports that the controller resumed after a Park.
	Wake(id string)
}

// RemoteRequest describes one task activation to be executed elsewhere.
type RemoteRequest struct {
	Location  string
	Code      string
	Instance  string
	TaskPath  string
	InputSet  string
	Attempt   int
	Iteration int
	Inputs    registry.Objects
	// TraceID/SpanID identify the activation span dispatching this
	// request; the invoker propagates them as orb call metadata so the
	// executor's spans parent into the instance's trace.
	TraceID string
	SpanID  string
}

// RemoteInvoker executes a task activation at req.Location and returns
// its result. Implementations must be safe for concurrent use.
type RemoteInvoker func(req RemoteRequest) (registry.Result, error)

func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRepeats == 0 {
		c.MaxRepeats = 1000
	}
	return c
}

// Engine runs workflow instances over a persistent object registry and a
// task-implementation registry.
type Engine struct {
	preg  *persist.Registry
	impls *registry.Registry
	cfg   Config
	// clock and timers are the temporal substrate: every instance's
	// delays and activation deadlines share one timing wheel.
	clock  timers.Clock
	timers *timers.Service
	// reg/tracer/met are the observability substrate (see obs.go).
	reg    *obs.Registry
	tracer *obs.Tracer
	met    engMetrics

	mu        sync.Mutex
	instances map[string]*Instance
	closed    bool
}

// New returns an engine. preg supplies the persistent atomic objects and
// transactions; impls supplies late-bound task implementations.
func New(preg *persist.Registry, impls *registry.Registry, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	clock := cfg.Clock
	if clock == nil {
		clock = timers.WallClock{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	return &Engine{
		preg:      preg,
		impls:     impls,
		cfg:       cfg,
		clock:     clock,
		timers:    timers.New(clock, timers.Config{Tick: cfg.TimerTick}),
		reg:       reg,
		tracer:    tracer,
		met:       newEngMetrics(reg),
		instances: make(map[string]*Instance),
	}
}

// Impls returns the implementation registry (for rebinding/upgrades).
func (e *Engine) Impls() *registry.Registry { return e.impls }

// Clock returns the engine's clock (shared with embedding services, e.g.
// the instantiation scheduler).
func (e *Engine) Clock() timers.Clock { return e.clock }

// Timers returns the engine's shared timing-wheel service.
func (e *Engine) Timers() *timers.Service { return e.timers }

// ErrInstanceExists is returned when instantiating a duplicate ID.
var ErrInstanceExists = errors.New("instance already exists")

// ErrInstanceNotFound is returned when looking up an unknown instance.
var ErrInstanceNotFound = errors.New("instance not found")

// ErrStalled is returned by Wait when the instance can make no further
// progress without intervention (the paper's failure exception surfaced
// to the application level).
var ErrStalled = errors.New("instance stalled: no task executing and none can start")

// ErrStopped is returned by Wait when the instance was stopped.
var ErrStopped = errors.New("instance stopped")

// Instantiate creates a new instance of the schema rooted at rootName
// (empty selects the single top-level task) and starts its controller.
// The instance is persisted immediately so it can be recovered.
func (e *Engine) Instantiate(id string, schema *core.Schema, rootName string) (*Instance, error) {
	root, err := schema.Root(rootName)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, errors.New("engine is closed")
	}
	if _, dup := e.instances[id]; dup {
		return nil, fmt.Errorf("instantiate %s: %w", id, ErrInstanceExists)
	}
	inst := e.newInstance(id, schema, root)
	// The trace ID is minted here, once, and persisted in the meta: every
	// span of this instance's lifetime — across crashes, lease steals and
	// remote executors — carries it, so the pieces stitch into one tree.
	meta := instanceMeta{
		ID: id, SchemaName: schema.Name, SchemaSource: schema.Source,
		RootName: root.Name, TraceID: obs.NewID(),
	}
	if err := inst.saveMeta(meta); err != nil {
		return nil, err
	}
	inst.meta = meta
	// The root run exists from the start, in Waiting.
	rootRun := inst.newRun(root, runState{Path: root.Path(), State: RunWaiting})
	inst.runs[root.Path()] = rootRun
	inst.markDirty(root.Path())
	if err := inst.persistRunDirect(rootRun); err != nil {
		return nil, err
	}
	// Root span: SpanID == TraceID by convention, so later spans parent
	// to it without extra state.
	now := e.clock.Now()
	e.tracer.Record(obs.Span{
		TraceID: meta.TraceID, SpanID: meta.TraceID,
		Name: "instantiate", Instance: id, Start: now, End: now,
		Attrs: map[string]string{"schema": schema.Name},
	})
	e.instances[id] = inst
	e.met.instancesLive.Set(int64(len(e.instances)))
	go inst.loop()
	return inst, nil
}

// SchemaCompiler turns persisted schema source back into a compiled
// schema during recovery; callers pass sema.CompileSource (the engine
// does not import the front end).
type SchemaCompiler func(name string, src []byte) (*core.Schema, error)

// Instance returns a running instance by ID.
func (e *Engine) Instance(id string) (*Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inst, ok := e.instances[id]
	if !ok {
		return nil, fmt.Errorf("instance %s: %w", id, ErrInstanceNotFound)
	}
	return inst, nil
}

// Instances lists the IDs of live instances.
func (e *Engine) Instances() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.instances))
	for id := range e.instances {
		out = append(out, id)
	}
	return out
}

// drop removes a stopped instance from the table.
func (e *Engine) drop(id string) {
	e.mu.Lock()
	delete(e.instances, id)
	e.met.instancesLive.Set(int64(len(e.instances)))
	e.mu.Unlock()
}

// Close stops every instance controller and waits for their workers.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	insts := make([]*Instance, 0, len(e.instances))
	for _, i := range e.instances {
		insts = append(insts, i)
	}
	e.mu.Unlock()
	for _, i := range insts {
		i.Stop()
	}
	e.timers.Close()
}

// InstanceStatus is the lifecycle state of a workflow instance.
type InstanceStatus int

// Instance states.
const (
	// StatusCreated: instantiated, root not yet started.
	StatusCreated InstanceStatus = iota + 1
	// StatusRunning: root started, work pending or executing.
	StatusRunning
	// StatusStalled: no progress possible without intervention.
	StatusStalled
	// StatusCompleted: root terminated in a non-abort outcome.
	StatusCompleted
	// StatusAborted: root terminated in an abort state.
	StatusAborted
	// StatusFailed: root failed (contract violation / retries exhausted).
	StatusFailed
	// StatusStopped: controller stopped by request.
	StatusStopped
)

// String names the status.
func (s InstanceStatus) String() string {
	switch s {
	case StatusCreated:
		return "created"
	case StatusRunning:
		return "running"
	case StatusStalled:
		return "stalled"
	case StatusCompleted:
		return "completed"
	case StatusAborted:
		return "aborted"
	case StatusFailed:
		return "failed"
	case StatusStopped:
		return "stopped"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result is the terminal outcome of an instance's root task.
type Result struct {
	Output  string
	Kind    core.OutputKind
	Objects registry.Objects
	State   RunState
}

// TaskStatus is one row of a status snapshot.
type TaskStatus struct {
	Path      string
	State     RunState
	ChosenSet string
	Attempt   int
	Iteration int
	Outputs   []string
}

// Instance is one running workflow: the unit the execution service
// coordinates.
type Instance struct {
	eng    *Engine
	id     string
	schema *core.Schema
	root   *core.Task
	meta   instanceMeta

	// Controller plumbing. runs is owned by the loop goroutine after
	// construction; external access goes through reqCh.
	runs     map[string]*run
	order    []string       // task paths in schema DFS order
	orderIdx map[string]int // path -> position in order
	// deps is the reverse-dependency index and dirty the worklist it
	// feeds (dirtyHeap holds the same entries as schema-order indexes);
	// all owned by the goroutine owning runs. See depindex.go.
	deps      map[string]*consumers
	dirty     map[string]struct{}
	dirtyHeap []int
	// pendingRuns buffers run-state writes (nil value = delete) between
	// batch flushes, pendingOrder their first-buffered order; both owned
	// by the loop goroutine. See persistRun/flushRuns in loop.go.
	pendingRuns  map[string]*run
	pendingOrder []string
	// pendingTimers buffers delay-record writes (nil = delete), flushed
	// in the same batch as the run states they belong to; owned by the
	// loop goroutine. See timers.go.
	pendingTimers     map[string]*delayRec
	pendingTimerOrder []string
	// armedTimers counts pending delay timers; a non-zero count means
	// the instance is not quiescent even with nothing executing.
	armedTimers int
	// scans counts run examinations by the evaluator; the scheduler
	// regression tests read it through Scans.
	scans atomic.Int64
	// remoteGate is the bounded-concurrency semaphore for remote
	// dispatches (Config.MaxRemoteInflight); nil when unbounded.
	remoteGate chan struct{}
	evCh       chan completionMsg
	// timerQ is the unbounded ordered queue of delay fires. The shared
	// wheel goroutine must never block delivering into a busy instance
	// (one slow instance would stall every other instance's timers and
	// deadlines), so fire callbacks append under timerQMu and nudge
	// timerSig instead of sending on a bounded channel.
	timerQMu sync.Mutex
	timerQ   []timerMsg
	timerSig chan struct{}
	markCh   chan markMsg
	reqCh    chan func()
	stopCh   chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	inflight int

	reconfigSeq int
	// genSeq issues run generations; touched only by the goroutine that
	// owns runs (the loop, or construction/recovery before the loop).
	genSeq int

	// Observable state, guarded by mu; changed is closed and replaced on
	// every update so waiters can select against contexts.
	mu      sync.Mutex
	changed chan struct{}
	events  []Event
	seq     int
	status  InstanceStatus
	result  *Result
}

func (e *Engine) newInstance(id string, schema *core.Schema, root *core.Task) *Instance {
	inst := &Instance{
		eng:           e,
		id:            id,
		schema:        schema,
		root:          root,
		runs:          make(map[string]*run),
		dirty:         make(map[string]struct{}),
		pendingRuns:   make(map[string]*run),
		pendingTimers: make(map[string]*delayRec),
		evCh:          make(chan completionMsg, 64),
		timerSig:      make(chan struct{}, 1),
		markCh:        make(chan markMsg),
		reqCh:         make(chan func()),
		stopCh:        make(chan struct{}),
		loopDone:      make(chan struct{}),
		changed:       make(chan struct{}),
		status:        StatusCreated,
	}
	if n := e.cfg.MaxRemoteInflight; n > 0 {
		inst.remoteGate = make(chan struct{}, n)
	}
	inst.rebuildOrder()
	return inst
}

// ID returns the instance identifier.
func (i *Instance) ID() string { return i.id }

// newRun allocates a run with a fresh generation. Must be called from the
// goroutine owning the run map.
func (i *Instance) newRun(task *core.Task, st runState) *run {
	i.genSeq++
	return &run{task: task, st: st, gen: i.genSeq, cancel: make(chan struct{})}
}

// Schema returns the instance's (possibly reconfigured) schema.
func (i *Instance) Schema() *core.Schema { return i.schema }

// rebuildOrder recomputes the deterministic evaluation order (schema DFS
// from the root) and the reverse-dependency index derived from it.
// Called at construction and after reconfiguration, on the loop
// goroutine.
func (i *Instance) rebuildOrder() {
	i.order = i.order[:0]
	i.root.Walk(func(t *core.Task) { i.order = append(i.order, t.Path()) })
	i.orderIdx = make(map[string]int, len(i.order))
	for idx, path := range i.order {
		i.orderIdx[path] = idx
	}
	i.rebuildDepIndex()
}

// Scans returns the cumulative number of run examinations performed by
// the evaluator. The scheduler regression tests assert that a completion
// event re-examines only the indexed consumers of the completed task.
func (i *Instance) Scans() int64 { return i.scans.Load() }

// notify closes the change channel (under mu) so waiters re-check.
func (i *Instance) notifyLocked() {
	close(i.changed)
	i.changed = make(chan struct{})
}

// emit appends an event to the trace, stamped by the engine clock.
func (i *Instance) emit(ev Event) {
	i.mu.Lock()
	i.seq++
	ev.Seq = i.seq
	ev.Time = i.eng.clock.Now()
	ev.Instance = i.id
	i.events = append(i.events, ev)
	i.notifyLocked()
	i.mu.Unlock()
	if tap := i.eng.cfg.EventTap; tap != nil {
		tap(ev)
	}
}

// QueuedWork reports how much input is queued for the controller but
// not yet consumed: buffered worker completions plus queued timer
// fires. Safe from any goroutine; the simulation harness polls it
// (together with Config.Probe) to detect quiescence.
func (i *Instance) QueuedWork() int {
	i.timerQMu.Lock()
	n := len(i.timerQ)
	i.timerQMu.Unlock()
	return n + len(i.evCh)
}

// Events returns a snapshot of the event trace.
func (i *Instance) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Event, len(i.events))
	copy(out, i.events)
	return out
}

// Status returns the instance status.
func (i *Instance) Status() InstanceStatus {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.status
}

// setStatus transitions the observable status.
func (i *Instance) setStatus(s InstanceStatus) {
	i.mu.Lock()
	if i.status != s {
		i.status = s
		i.notifyLocked()
	}
	i.mu.Unlock()
}

// Result returns the terminal result, if any.
func (i *Instance) Result() (Result, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.result == nil {
		return Result{}, false
	}
	return *i.result, true
}

// Start begins execution of the root task with the given input set and
// objects, validated against the root task class. Start persists the
// request so recovery restarts an instance whose root had been started.
func (i *Instance) Start(set string, inputs registry.Objects) error {
	decl := i.root.Class.InputSet(set)
	if decl == nil {
		return fmt.Errorf("start %s: root taskclass %s has no input set %q", i.id, i.root.Class.Name, set)
	}
	for _, f := range decl.Objects {
		v, ok := inputs[f.Name]
		if !ok {
			return fmt.Errorf("start %s: missing input object %q (class %s)", i.id, f.Name, f.Class)
		}
		if !i.schema.AssignableTo(v.Class, f.Class) {
			return fmt.Errorf("start %s: input %q has class %s, want %s", i.id, f.Name, v.Class, f.Class)
		}
	}
	errCh := make(chan error, 1)
	select {
	case i.reqCh <- func() { errCh <- i.startRoot(set, inputs) }:
	case <-i.loopDone:
		return ErrStopped
	}
	select {
	case err := <-errCh:
		return err
	case <-i.loopDone:
		return ErrStopped
	}
}

// waitPred blocks until pred (evaluated under mu) is true or ctx ends.
func (i *Instance) waitPred(ctx context.Context, pred func() bool) error {
	i.mu.Lock()
	for !pred() {
		ch := i.changed
		i.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		i.mu.Lock()
	}
	i.mu.Unlock()
	return nil
}

// Wait blocks until the instance settles: terminal root (Result, nil),
// stalled (ErrStalled), stopped (ErrStopped), or context end.
func (i *Instance) Wait(ctx context.Context) (Result, error) {
	var settled InstanceStatus
	err := i.waitPred(ctx, func() bool {
		switch i.status {
		case StatusCompleted, StatusAborted, StatusFailed, StatusStalled, StatusStopped:
			settled = i.status
			return true
		default:
			return false
		}
	})
	if err != nil {
		return Result{}, err
	}
	switch settled {
	case StatusStalled:
		return Result{}, ErrStalled
	case StatusStopped:
		return Result{}, ErrStopped
	default:
		i.mu.Lock()
		defer i.mu.Unlock()
		if i.result == nil {
			return Result{}, fmt.Errorf("instance %s settled (%s) without result", i.id, settled)
		}
		return *i.result, nil
	}
}

// WaitEvent blocks until an event satisfying pred has been emitted and
// returns the first such event.
func (i *Instance) WaitEvent(ctx context.Context, pred func(Event) bool) (Event, error) {
	var found Event
	scanned := 0
	err := i.waitPred(ctx, func() bool {
		for ; scanned < len(i.events); scanned++ {
			if pred(i.events[scanned]) {
				found = i.events[scanned]
				return true
			}
		}
		return false
	})
	return found, err
}

// Snapshot returns the status of every known task run, in schema order.
func (i *Instance) Snapshot() ([]TaskStatus, error) {
	type reply struct {
		rows []TaskStatus
	}
	ch := make(chan reply, 1)
	select {
	case i.reqCh <- func() {
		rows := make([]TaskStatus, 0, len(i.runs))
		for _, path := range i.order {
			r, ok := i.runs[path]
			if !ok {
				continue
			}
			row := TaskStatus{
				Path: path, State: r.st.State, ChosenSet: r.st.ChosenSet,
				Attempt: r.st.Attempt, Iteration: r.st.Iteration,
			}
			for _, rec := range r.st.Outputs {
				row.Outputs = append(row.Outputs, rec.Output)
			}
			rows = append(rows, row)
		}
		ch <- reply{rows: rows}
	}:
	case <-i.loopDone:
		return i.offlineSnapshot(), nil
	}
	select {
	case rep := <-ch:
		return rep.rows, nil
	case <-i.loopDone:
		return i.offlineSnapshot(), nil
	}
}

// offlineSnapshot reads run state after the loop has exited (safe: no
// more concurrent mutation).
func (i *Instance) offlineSnapshot() []TaskStatus {
	rows := make([]TaskStatus, 0, len(i.runs))
	for _, path := range i.order {
		r, ok := i.runs[path]
		if !ok {
			continue
		}
		row := TaskStatus{
			Path: path, State: r.st.State, ChosenSet: r.st.ChosenSet,
			Attempt: r.st.Attempt, Iteration: r.st.Iteration,
		}
		for _, rec := range r.st.Outputs {
			row.Outputs = append(row.Outputs, rec.Output)
		}
		rows = append(rows, row)
	}
	return rows
}

// AbortTask force-aborts a task run (user-initiated abort of Fig. 3).
// outcome optionally names the abort outcome to terminate in; empty
// selects the first declared abort outcome, if any.
func (i *Instance) AbortTask(path, outcome string) error {
	errCh := make(chan error, 1)
	select {
	case i.reqCh <- func() { errCh <- i.abortTask(path, outcome) }:
	case <-i.loopDone:
		return ErrStopped
	}
	select {
	case err := <-errCh:
		return err
	case <-i.loopDone:
		return ErrStopped
	}
}

// Stop halts the controller, cancelling executing implementations. The
// instance's persistent state remains recoverable.
func (i *Instance) Stop() {
	i.stopOnce.Do(func() { close(i.stopCh) })
	<-i.loopDone
	i.wg.Wait()
	i.eng.drop(i.id)
	i.setStatus(StatusStopped)
}

// saveMeta persists the instance header in a transaction.
func (i *Instance) saveMeta(meta instanceMeta) error {
	if i.eng.cfg.Ephemeral {
		return nil
	}
	tx := i.eng.preg.Manager().Begin()
	if err := i.eng.preg.Object(metaKey(i.id)).Set(tx, meta); err != nil {
		_ = tx.Abort()
		return fmt.Errorf("save meta %s: %w", i.id, err)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("save meta %s: %w", i.id, err)
	}
	return nil
}

// persistRunDirect writes a run state in its own transaction (used at
// instantiation, before the loop owns the run map).
func (i *Instance) persistRunDirect(r *run) error {
	tx := i.eng.preg.Manager().Begin()
	// The drain batch does not exist yet at instantiation: the loop that
	// owns runBuf starts only after the initial run map is durable.
	//wflint:allow persistorder pre-loop instantiation write; the drain batch is not running yet
	if err := i.eng.preg.Object(runKey(i.id, r.st.Path)).Set(tx, r.st); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}
