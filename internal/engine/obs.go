package engine

import (
	"repro/internal/obs"
)

// This file wires the engine into the observability core (internal/obs):
// the instrument set every hot seam observes through, and the span
// recording that traces an instance's lifecycle.
//
// Two rules govern every site (see docs/OBSERVABILITY.md):
//
//   - Instruments are resolved once, here, and observed through struct
//     pointers: a hot-path observation is a single atomic op, never a
//     registry lookup, and never under an engine lock.
//   - Spans are observability, not state: they live in the bounded
//     in-memory ring only and never touch the durable store — an extra
//     record per activation in the flush batch would tax every fsync
//     path for data recovery never reads. Only the trace ID is durable
//     (it rides the instance meta), so spans recorded before and after
//     a crash or lease steal still share one trace.

// engMetrics is the engine's pre-resolved instrument set.
type engMetrics struct {
	activations     *obs.Counter   // task activations (startRun)
	completions     *obs.Counter   // terminal task completions
	retries         *obs.Counter   // automatic system-failure retries
	drainRuns       *obs.Histogram // dirty-set size per evaluation drain
	flushOps        *obs.Histogram // records per flush batch
	flushSeconds    *obs.Histogram // flush batch commit latency
	timerArms       *obs.Counter   // delay timers armed (incl. recovery re-arms)
	timerFires      *obs.Counter   // delay timers fired (post-staleness)
	timerFireLag    *obs.Histogram // fire instant minus armed deadline
	recoverySeconds *obs.Histogram // per-instance re-materialization time
	remoteWaiting   *obs.Gauge     // activations queued on the remote gate
	remoteInflight  *obs.Gauge     // activations holding a remote-gate slot
	instancesLive   *obs.Gauge     // registered live instances
}

func newEngMetrics(reg *obs.Registry) engMetrics {
	return engMetrics{
		activations:     reg.Counter(obs.MEngineActivations),
		completions:     reg.Counter(obs.MEngineCompletions),
		retries:         reg.Counter(obs.MEngineRetries),
		drainRuns:       reg.Histogram(obs.MEngineDrainRuns, obs.DefSizeBuckets),
		flushOps:        reg.Histogram(obs.MEngineFlushOps, obs.DefSizeBuckets),
		flushSeconds:    reg.Histogram(obs.MEngineFlushSeconds, nil),
		timerArms:       reg.Counter(obs.MEngineTimerArms),
		timerFires:      reg.Counter(obs.MEngineTimerFires),
		timerFireLag:    reg.Histogram(obs.MEngineTimerFireLag, nil),
		recoverySeconds: reg.Histogram(obs.MEngineRecoverySeconds, nil),
		remoteWaiting:   reg.Gauge(obs.MEngineRemoteWaiting),
		remoteInflight:  reg.Gauge(obs.MEngineRemoteInflight),
		instancesLive:   reg.Gauge(obs.MEngineInstancesLive),
	}
}

// Metrics returns the registry the engine records into (Config.Metrics,
// or the process default). Embedding services expose it over their debug
// and admin surfaces.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Tracer returns the span store the engine records into (Config.Tracer,
// or the process default).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// finishActSpan closes the run's open activation span and records it.
// errText annotates a failed activation.
func (i *Instance) finishActSpan(r *run, errText string) {
	if r.actSpan.SpanID == "" {
		return
	}
	sp := r.actSpan
	r.actSpan = obs.Span{}
	sp.End = i.eng.clock.Now()
	sp.Err = errText
	i.eng.tracer.Record(sp)
}
