package engine_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/timers"
	"repro/internal/txn"
)

// --- First-class delays: the "delay" implementation property ----------

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// delayScript holds a single first-class delay task: app seeds it, it
// fires after 5s, echoing d through.
const delayScript = `
class D;

taskclass TStage
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};

taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};

compoundtask app of taskclass App
{
    task t1 of taskclass TStage
    {
        implementation { "delay" is "5s" };
        inputs { input main { inputobject d from { d of task app if input main } } }
    };
    outputs { outcome done { outputobject d from { d of task t1 if output done } } }
};
`

func waitEventKind(t *testing.T, inst *engine.Instance, kind engine.EventKind) engine.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := inst.WaitEvent(ctx, func(e engine.Event) bool { return e.Kind == kind })
	if err != nil {
		t.Fatalf("wait for %v: %v (events: %v)", kind, err, inst.Events())
	}
	return ev
}

func TestDelayTaskFiresAtAbsoluteDeadline(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock})
	inst := r.run(t, delayScript, "delay-1", "main", registry.Objects{"d": val("D", "x")})

	armed := waitEventKind(t, inst, engine.EventTimerArmed)
	if want := epoch.Add(5 * time.Second); !armed.Deadline.Equal(want) {
		t.Fatalf("armed deadline = %v, want %v", armed.Deadline, want)
	}
	// Just before the deadline nothing may fire.
	clock.Advance(4999 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if st := inst.Status(); st != engine.StatusRunning {
		t.Fatalf("status %v before the deadline", st)
	}
	clock.Advance(time.Millisecond)
	res := waitResult(t, inst)
	if res.Output != "done" || res.Objects["d"].Data != "x" {
		t.Fatalf("result = %+v, want done echoing d=x", res)
	}
	fired := eventsByKind(inst.Events(), engine.EventTimerFired)
	if len(fired) != 1 {
		t.Fatalf("timer fired %d times, want exactly once", len(fired))
	}
}

// TestDelayCrashRecoveryAbsoluteDeadline is the regression test for the
// crashed-over-delay bug class: the timer record survives the crash and
// recovery re-arms it at the ORIGINAL absolute deadline — the remaining
// 6s of a 10s delay, not a fresh 10s.
func TestDelayCrashRecoveryAbsoluteDeadline(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	st := store.NewMemStore()

	src := `
class D;
taskclass TStage
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
compoundtask app of taskclass App
{
    task t1 of taskclass TStage
    {
        implementation { "delay" is "10s" };
        inputs { input main { inputobject d from { d of task app if input main } } }
    };
    outputs { outcome done { outputobject d from { d of task t1 if output done } } }
};
`
	// Phase 1: start the delay, then crash 4s in.
	preg1 := persist.NewRegistry(st, txn.NewManager(st), nil)
	eng1 := engine.New(preg1, registry.New(), engine.Config{Clock: clock, VerifyScheduler: true})
	schema := sema.MustCompileSource("delay.wf", []byte(src))
	inst1, err := eng1.Instantiate("crashdelay", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst1.Start("main", registry.Objects{"d": val("D", "x")}); err != nil {
		t.Fatal(err)
	}
	waitEventKind(t, inst1, engine.EventTimerArmed)
	clock.Advance(4 * time.Second)
	eng1.Close() // the crash: controller gone, store survives

	// Phase 2: recover on a fresh engine over the same store and clock.
	preg2 := persist.NewRegistry(st, txn.NewManager(st), nil)
	if _, err := preg2.Recover(); err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(preg2, registry.New(), engine.Config{Clock: clock, VerifyScheduler: true})
	t.Cleanup(eng2.Close)
	inst2, err := eng2.Recover("crashdelay", sema.CompileSource)
	if err != nil {
		t.Fatal(err)
	}
	armed := waitEventKind(t, inst2, engine.EventTimerArmed)
	if want := epoch.Add(10 * time.Second); !armed.Deadline.Equal(want) {
		t.Fatalf("re-armed deadline = %v, want the original %v", armed.Deadline, want)
	}
	// 9.9s after the original start: 100ms short of the deadline. A
	// restarted-from-zero delay would need until t=14s.
	clock.Advance(5900 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if st := inst2.Status(); st != engine.StatusRunning {
		t.Fatalf("status %v at t=9.9s: fired too early", st)
	}
	clock.Advance(100 * time.Millisecond)
	res := waitResult(t, inst2)
	if res.Output != "done" {
		t.Fatalf("result = %+v", res)
	}
	if n := len(eventsByKind(inst2.Events(), engine.EventTimerFired)); n != 1 {
		t.Fatalf("timer fired %d times after recovery, want exactly once", n)
	}
	if n := len(eventsByKind(inst1.Events(), engine.EventTimerFired)); n != 0 {
		t.Fatalf("timer fired %d times before the crash", n)
	}
	// The fire deleted its durable record.
	if ids, _ := st.List("inst/crashdelay/timer/"); len(ids) != 0 {
		t.Fatalf("timer records left after fire: %v", ids)
	}
}

// --- Timeout input sets built from first-class delays ------------------

// raceScript: consumer prefers the "normal" set (declared first) over
// the "timeout" set; both producers are delay tasks.
const raceScript = `
class D;
class Tick;

taskclass Producer
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};

taskclass Timer
{
    inputs { input main { d of class D } };
    outputs { outcome expired { d of class D } }
};

taskclass Consumer
{
    inputs
    {
        input normal { d of class D };
        input timeout { d of class D }
    };
    outputs { outcome gotValue { }; outcome timedOut { } }
};

taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome ok { }; outcome late { } }
};

compoundtask app of taskclass App
{
    task slow of taskclass Producer
    {
        implementation { "delay" is "SLOW" };
        inputs { input main { inputobject d from { d of task app if input main } } }
    };
    task timer of taskclass Timer
    {
        implementation { "delay" is "TIMEOUT"; "outcome" is "expired" };
        inputs { input main { inputobject d from { d of task app if input main } } }
    };
    task consumer of taskclass Consumer
    {
        implementation { "code" is "consume" };
        inputs
        {
            input normal { inputobject d from { d of task slow if output done } };
            input timeout { inputobject d from { d of task timer if output expired } }
        }
    };
    outputs
    {
        outcome ok { notification from { task consumer if output gotValue } };
        outcome late { notification from { task consumer if output timedOut } }
    }
};
`

func bindConsumer(impls *registry.Registry) {
	impls.Bind("consume", func(ctx registry.Context) (registry.Result, error) {
		if ctx.InputSet() == "normal" {
			return registry.Result{Output: "gotValue"}, nil
		}
		return registry.Result{Output: "timedOut"}, nil
	})
}

func raceSrc(slow, timeout string) string {
	src := raceScript
	src = replaceOne(src, "SLOW", slow)
	src = replaceOne(src, "TIMEOUT", timeout)
	return src
}

func replaceOne(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

func TestDelayTimeoutSetWins(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock})
	bindConsumer(r.impls)
	inst := r.run(t, raceSrc("10s", "50ms"), "timeout-wins", "main", registry.Objects{"d": val("D", 0)})
	clock.Advance(50 * time.Millisecond)
	res := waitResult(t, inst)
	if res.Output != "late" {
		t.Fatalf("outcome = %q, want late (timeout fired first)", res.Output)
	}
}

func TestDelayNormalSetWins(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock})
	bindConsumer(r.impls)
	inst := r.run(t, raceSrc("50ms", "10s"), "normal-wins", "main", registry.Objects{"d": val("D", 0)})
	clock.Advance(50 * time.Millisecond)
	res := waitResult(t, inst)
	if res.Output != "ok" {
		t.Fatalf("outcome = %q, want ok (normal input arrived first)", res.Output)
	}
}

// TestDelayRaceDeterministic is the satellite determinism property: when
// a timer and a "normal" input become available at the SAME instant, the
// outcome is decided by declaration order, every time. Both producers
// are delays with identical deadlines; the wheel fires them in arm order
// (schema order), and the consumer's first-declared set wins.
func TestDelayRaceDeterministic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		clock := timers.NewFakeClock(epoch)
		r := newRig(t, engine.Config{Clock: clock})
		bindConsumer(r.impls)
		inst := r.run(t, raceSrc("1s", "1s"), "tie", "main", registry.Objects{"d": val("D", 0)})
		// Wait until both delays are armed, then release the tie.
		waitBothArmed(t, inst)
		clock.Advance(time.Second)
		res := waitResult(t, inst)
		if res.Output != "ok" {
			t.Fatalf("trial %d: outcome = %q, want ok every time (declaration order)", trial, res.Output)
		}
		inst.Stop()
	}
}

func waitBothArmed(t *testing.T, inst *engine.Instance) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	seen := 0
	_, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		if e.Kind == engine.EventTimerArmed {
			seen++
		}
		return seen == 2
	})
	if err != nil {
		t.Fatalf("both delays armed: %v (events: %v)", err, inst.Events())
	}
}

// --- Aborting and repeating delay runs ---------------------------------

func TestAbortPendingDelay(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock})
	inst := r.run(t, delayScript, "abort-delay", "main", registry.Objects{"d": val("D", "x")})
	waitEventKind(t, inst, engine.EventTimerArmed)
	if err := inst.AbortTask("app/t1", ""); err != nil {
		t.Fatalf("abort: %v", err)
	}
	waitEventKind(t, inst, engine.EventTaskAborted)
	// A Snapshot round trip serialises behind the abort's evaluate+flush,
	// so the record deletion is durable before we look.
	if _, err := inst.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The record is gone and advancing the clock must not fire anything.
	if ids, _ := r.st.List("inst/abort-delay/timer/"); len(ids) != 0 {
		t.Fatalf("timer records left after abort: %v", ids)
	}
	clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond)
	if n := len(eventsByKind(inst.Events(), engine.EventTimerFired)); n != 0 {
		t.Fatalf("aborted delay fired %d times", n)
	}
}

// TestDelayPerTransitionAblation runs the delay path under the legacy
// per-transition persistence discipline, which must stay equivalent.
func TestDelayPerTransitionAblation(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock, PersistPerTransition: true})
	inst := r.run(t, delayScript, "delay-ptx", "main", registry.Objects{"d": val("D", "x")})
	waitEventKind(t, inst, engine.EventTimerArmed)
	clock.Advance(5 * time.Second)
	res := waitResult(t, inst)
	if res.Output != "done" {
		t.Fatalf("result = %+v", res)
	}
	if ids, _ := r.st.List("inst/delay-ptx/timer/"); len(ids) != 0 {
		t.Fatalf("timer records left: %v", ids)
	}
}

// TestDelayCrashRecoveryProperty crashes a timer chain at random points
// (real clock, short delays) and checks the temporal invariants across
// recovery: the instance completes, no engine life fires one task's
// timer twice, and a task whose completion was durable before the crash
// never re-fires after it.
func TestDelayCrashRecoveryProperty(t *testing.T) {
	const chainLen = 4
	src := buildDelayChain(chainLen, "20ms")
	for trial := 0; trial < 6; trial++ {
		st := store.NewMemStore()
		preg1 := persist.NewRegistry(st, txn.NewManager(st), nil)
		eng1 := engine.New(preg1, registry.New(), engine.Config{VerifyScheduler: true})
		schema := sema.MustCompileSource("chain.wf", []byte(src))
		inst1, err := eng1.Instantiate("prop", schema, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst1.Start("main", registry.Objects{"d": val("D", "x")}); err != nil {
			t.Fatal(err)
		}
		// Crash somewhere inside the ~80ms the chain needs.
		time.Sleep(time.Duration(5+trial*13) * time.Millisecond)
		eng1.Close()
		firesBefore := fireCountByTask(inst1.Events())

		preg2 := persist.NewRegistry(st, txn.NewManager(st), nil)
		if _, err := preg2.Recover(); err != nil {
			t.Fatal(err)
		}
		eng2 := engine.New(preg2, registry.New(), engine.Config{VerifyScheduler: true})
		inst2, err := eng2.Recover("prop", sema.CompileSource)
		if err != nil {
			eng2.Close()
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		res := waitResult(t, inst2)
		if res.Output != "done" {
			t.Fatalf("trial %d: outcome %q", trial, res.Output)
		}
		firesAfter := fireCountByTask(inst2.Events())
		for task, n := range firesBefore {
			if n > 1 {
				t.Fatalf("trial %d: %s fired %d times before the crash", trial, task, n)
			}
		}
		for task, n := range firesAfter {
			if n > 1 {
				t.Fatalf("trial %d: %s fired %d times after recovery", trial, task, n)
			}
		}
		// A fire whose terminal state became durable before the crash
		// must not repeat: recovery re-arms only Executing runs with a
		// surviving record, so such a task shows neither an armed nor a
		// fired event in its second life.
		for task := range firesBefore {
			rearmed := false
			for _, ev := range inst2.Events() {
				if ev.Kind == engine.EventTimerArmed && ev.Task == task {
					rearmed = true
				}
			}
			if !rearmed && firesAfter[task] > 0 {
				t.Fatalf("trial %d: %s completed durably pre-crash but re-fired post-crash", trial, task)
			}
		}
		eng2.Close()
	}
}

func buildDelayChain(n int, delay string) string {
	src := `
class D;
taskclass TStage
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
compoundtask app of taskclass App
{`
	prev := ""
	for i := 1; i <= n; i++ {
		from := "d of task app if input main"
		if prev != "" {
			from = "d of task " + prev + " if output done"
		}
		src += `
    task t` + itoa(i) + ` of taskclass TStage
    {
        implementation { "delay" is "` + delay + `" };
        inputs { input main { inputobject d from { ` + from + ` } } }
    };`
		prev = "t" + itoa(i)
	}
	src += `
    outputs { outcome done { outputobject d from { d of task ` + prev + ` if output done } } }
};
`
	return src
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func fireCountByTask(events []engine.Event) map[string]int {
	out := make(map[string]int)
	for _, e := range events {
		if e.Kind == engine.EventTimerFired {
			out[e.Task]++
		}
	}
	return out
}

// --- Activation deadlines on the wheel ---------------------------------

// TestDeadlinePropertyOnWheel pins that the "deadline" implementation
// property (now a wheel entry) still bounds activations: a blocked
// implementation is failed over to retries, then the abortless class
// fails.
func TestDeadlinePropertyOnWheel(t *testing.T) {
	clock := timers.NewFakeClock(epoch)
	r := newRig(t, engine.Config{Clock: clock, MaxRetries: 1})
	src := `
class D;
taskclass Stuck
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
compoundtask app of taskclass App
{
    task t1 of taskclass Stuck
    {
        implementation { "code" is "block"; "deadline" is "100ms" };
        inputs { input main { inputobject d from { d of task app if input main } } }
    };
    outputs { outcome done { outputobject d from { d of task t1 if output done } } }
};
`
	r.impls.Bind("block", func(ctx registry.Context) (registry.Result, error) {
		<-ctx.Done()
		return registry.Result{}, context.Canceled
	})
	inst := r.run(t, src, "deadline-1", "main", registry.Objects{"d": val("D", 0)})
	// First activation times out, is retried once, times out again.
	clock.Advance(150 * time.Millisecond)
	waitEventKind(t, inst, engine.EventTaskRetried)
	clock.Advance(150 * time.Millisecond)
	waitEventKind(t, inst, engine.EventTaskFailed)
}
