package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestRecoverAfterReconfigureKeepsAddedTask guards the recovery path
// against losing reconfiguration-added tasks: Recover derives the
// evaluation order and dependency index only after re-applying the
// persisted reconfiguration records, so a task added to a running
// instance is still evaluated and listed after a crash.
func TestRecoverAfterReconfigureKeepsAddedTask(t *testing.T) {
	r := newRig(t, engine.Config{})
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	schema := workload.MustCompile("rc", workload.Chain(2))
	inst, err := r.eng.Instantiate("rc", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	// app is executing, t1 blocked on the gate: reconfigure live.
	if err := inst.Reconfigure(&engine.AddTaskOp{ScopePath: "app", Fragment: `
task t9 of taskclass Stage
{
    implementation { "code" is "stage" };
    inputs { input main { inputobject in from { in of task t1 if input main } } }
}`}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		for {
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				return
			}
		}
	}()
	if _, err := inst.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rows, _ := inst.Snapshot()
	found := false
	for _, row := range rows {
		if row.Path == "app/t9" {
			found = true
		}
	}
	if !found {
		t.Fatal("t9 missing from live snapshot")
	}
	inst.Stop()
	r.eng.Close()

	r2 := rigOver(t, r)
	workload.Bind(r2.impls)
	if _, err := r2.preg.Recover(); err != nil {
		t.Fatal(err)
	}
	inst2, err := r2.eng.Recover("rc", mustCompileSource)
	if err != nil {
		t.Fatal(err)
	}
	rows2, _ := inst2.Snapshot()
	found2 := false
	for _, row := range rows2 {
		t.Logf("row: %+v", row)
		if row.Path == "app/t9" {
			found2 = true
		}
	}
	if !found2 {
		t.Fatal("t9 missing from post-recovery snapshot")
	}
}

// TestRecoverActivatesMissingConstituents guards the other recovery
// hole: a crash can land between a compound's start persisting and its
// constituents' first persists, leaving an Executing compound with no
// member runs on disk. Recovery must re-run constituent activation or
// the instance stalls forever.
func TestRecoverActivatesMissingConstituents(t *testing.T) {
	r := newRig(t, engine.Config{})
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	schema := workload.MustCompile("cc", workload.Chain(2))
	inst, err := r.eng.Instantiate("cc", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// "Crash" while the compound is executing: t1 is blocked on the gate.
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskStarted && e.Task == "app/t1"
	}); err != nil {
		t.Fatal(err)
	}
	inst.Stop()
	r.eng.Close()

	// Simulate the crash window: the compound started (and persisted) but
	// no constituent state ever reached the store.
	for _, path := range []string{"app%2Ft1", "app%2Ft2"} {
		tx := r.preg.Manager().Begin()
		if err := r.preg.Object(store.ID("inst/cc/run/" + path)).Delete(tx); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	r2 := rigOver(t, r)
	workload.Bind(r2.impls)
	if _, err := r2.preg.Recover(); err != nil {
		t.Fatal(err)
	}
	inst2, err := r2.eng.Recover("cc", mustCompileSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	res, err := inst2.Wait(ctx2)
	if err != nil {
		t.Fatalf("recovered instance did not finish (stalled recovery hole): %v", err)
	}
	if res.Output != "done" || res.Objects["out"].Data.(string) != "seed" {
		t.Fatalf("recovered result: %+v", res)
	}
}

// TestRecoverUnstartedInstanceAwaitsStart guards the takeover window:
// an instance persisted by Instantiate whose Start had not yet been
// applied must come back Waiting. The post-recovery evaluation pass
// must not auto-start the root — roots bind no input sets, so without
// the guard in trySatisfy the root would start with an empty chosen
// set, its constituents (which read "if input main") would never
// become satisfiable, and the client's retried Start would be refused
// as a duplicate. The instance would sit at StatusCreated forever.
func TestRecoverUnstartedInstanceAwaitsStart(t *testing.T) {
	r := newRig(t, engine.Config{})
	workload.Bind(r.impls)
	schema := workload.MustCompile("us", workload.Chain(2))
	if _, err := r.eng.Instantiate("us", schema, ""); err != nil {
		t.Fatal(err)
	}
	// Crash before Start: only meta (Started=false) and the Waiting
	// root run are durable.
	r.eng.Close()

	r2 := rigOver(t, r)
	workload.Bind(r2.impls)
	if _, err := r2.preg.Recover(); err != nil {
		t.Fatal(err)
	}
	inst, err := r2.eng.Recover("us", mustCompileSource)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot goes through the controller, so by the time it returns
	// the post-recovery evaluation has drained: the root must still be
	// Waiting with no chosen set.
	rows, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Path == "app" && (row.State != engine.RunWaiting || row.ChosenSet != "") {
			t.Fatalf("recovered unstarted root auto-started: %+v", row)
		}
	}
	if got := inst.Status(); got != engine.StatusCreated {
		t.Fatalf("status = %v, want created", got)
	}
	// The redelivered Start lands normally and the chain completes.
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, inst)
	if res.Output != "done" || res.Objects["out"].Data.(string) != "seed" {
		t.Fatalf("result after recovered start: %+v", res)
	}
}
