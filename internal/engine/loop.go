package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/txn"
)

// completionMsg is sent by a worker when an implementation returns.
type completionMsg struct {
	path string
	gen  int
	res  registry.Result
	err  error
}

// markMsg is sent by a worker when an implementation releases a mark.
type markMsg struct {
	path    string
	gen     int
	name    string
	objects registry.Objects
	reply   chan error
}

// errCancelled marks a worker interrupted by force-abort or shutdown.
var errCancelled = errors.New("task execution cancelled")

// loop is the instance controller: a single goroutine that owns the run
// map, serialises all state transitions (which makes input-set and
// alternative selection deterministic), and persists every transition
// through transactions on the persistent run objects.
func (i *Instance) loop() {
	defer close(i.loopDone)
	probe := i.eng.cfg.Probe
	wake := func() {
		if probe != nil {
			probe.Wake(i.id)
		}
	}
	for {
		// Park/Wake bracket the blocking select for the simulation
		// harness's quiescence barrier: Park fires only when no queued
		// input remains, so "every controller parked with empty queues
		// and every inflight worker accounted for" means the system
		// cannot progress without an external action. inflight and
		// armedTimers are loop-owned, so reading them here is safe.
		if probe != nil && i.QueuedWork() == 0 {
			probe.Park(i.id, i.inflight, i.armedTimers)
		}
		select {
		case <-i.stopCh:
			wake()
			i.cancelAllExecuting()
			return
		case msg := <-i.evCh:
			wake()
			i.handleCompletion(msg)
		case <-i.timerSig:
			wake()
			for _, msg := range i.drainTimerQ() {
				i.handleTimer(msg)
			}
		case msg := <-i.markCh:
			wake()
			msg.reply <- i.handleMark(msg)
		case f := <-i.reqCh:
			wake()
			f()
		}
		i.evaluate()
	}
}

// cancelAllExecuting interrupts running implementations at shutdown.
// Pending delay timers are disarmed from the engine-wide wheel (which
// outlives the instance); their durable records remain, so recovery
// re-arms them at their original deadlines.
func (i *Instance) cancelAllExecuting() {
	for _, r := range i.runs {
		if r.st.State != RunExecuting || r.task.Compound {
			continue
		}
		if r.delayArmed {
			r.delayArmed = false
			i.armedTimers--
			i.eng.timers.Cancel(delayID(i.id, r.st.Path))
			continue
		}
		select {
		case <-r.cancel:
		default:
			close(r.cancel)
		}
	}
}

// startRoot starts the root task with externally supplied inputs.
func (i *Instance) startRoot(set string, inputs registry.Objects) error {
	r := i.runs[i.root.Path()]
	if r.st.State != RunWaiting {
		return fmt.Errorf("start %s: root is %s", i.id, r.st.State)
	}
	i.meta.Started, i.meta.StartSet, i.meta.StartInputs = true, set, inputs.Clone()
	if err := i.saveMeta(i.meta); err != nil {
		return err
	}
	i.setStatus(StatusRunning)
	i.startRun(r, set, inputs.Clone())
	i.evaluate()
	return nil
}

// resumeExecuting re-activates implementations that were executing when
// the instance crashed, then runs an evaluation pass. Called once after
// Recover, off the loop goroutine.
func (i *Instance) resumeExecuting() {
	done := make(chan struct{})
	select {
	case i.reqCh <- func() {
		if i.meta.Started {
			i.setStatus(StatusRunning)
		}
		root := i.runs[i.root.Path()]
		if i.meta.Started && root.st.State == RunWaiting && root.st.ChosenSet == "" {
			// Crashed between Start persisting meta and the root run
			// starting: redo the start.
			i.startRun(root, i.meta.StartSet, i.meta.StartInputs.Clone())
		}
		for _, path := range i.order {
			r, ok := i.runs[path]
			if !ok {
				continue
			}
			if r.st.State == RunExecuting && !r.task.Compound {
				if _, isDelay, _ := delayOf(r.task); !isDelay {
					i.spawnWorker(r)
				}
				// Delay runs were re-armed from their durable records by
				// Recover; re-activating them here would restart the
				// delay from zero.
			}
			if r.st.State.Terminal() && r.task == i.root {
				i.finishInstance(r)
			}
		}
		close(done)
	}:
		<-done
	case <-i.loopDone:
	}
}

// evaluate propagates the state transitions recorded since the last
// call: waiting tasks whose dependencies are met start, executing
// compound tasks whose output mappings are met produce outputs. The
// dirty worklist holds exactly the runs whose dependencies may have
// gained availability (see depindex.go); draining it in schema-DFS
// declaration order keeps input-set and alternative selection
// deterministic and identical to the full-rescan baseline.
func (i *Instance) evaluate() {
	if n := len(i.dirty); n > 0 {
		i.eng.met.drainRuns.Observe(float64(n))
	}
	if i.eng.cfg.FullRescan {
		i.evaluateFullRescan()
	} else {
		i.drainDirty()
		if i.eng.cfg.VerifyScheduler {
			i.verifyFixedPoint()
		}
	}
	i.checkQuiescence()
	// All run-state transitions of this pass become durable together. A
	// failed flush already surfaced as per-task failure events; the
	// in-memory state stays authoritative for the live controller and
	// recovery replays from the last durable prefix.
	_ = i.flushRuns()
}

// evaluateFullRescan is the legacy strategy: satisfaction passes over
// every run until a fixed point, O(tasks) per event. Kept as the
// ablation baseline and the oracle the dirty-set scheduler is verified
// against.
func (i *Instance) evaluateFullRescan() {
	// State transitions feed the worklist even when this strategy ignores
	// it; drop the entries so the map stays bounded.
	clear(i.dirty)
	i.dirtyHeap = i.dirtyHeap[:0]
	progress := true
	for progress {
		progress = false
		for _, path := range i.order {
			r, ok := i.runs[path]
			if !ok {
				continue
			}
			i.scans.Add(1)
			if !i.active(r) {
				continue
			}
			switch {
			case r.st.State == RunWaiting:
				if i.trySatisfy(r) {
					progress = true
				}
			case r.st.State == RunExecuting && r.task.Compound:
				if i.tryCompoundOutputs(r) {
					progress = true
				}
			}
		}
	}
}

// active reports whether a run's enclosing compounds are all executing
// (constituents of a terminated or reset compound are dormant).
func (i *Instance) active(r *run) bool {
	for t := r.task.Parent; t != nil; t = t.Parent {
		pr, ok := i.runs[t.Path()]
		if !ok || pr.st.State != RunExecuting {
			return false
		}
	}
	return true
}

// trySatisfy checks a waiting task's input sets in declaration order and
// starts the task on the first satisfiable one.
func (i *Instance) trySatisfy(r *run) bool {
	// The root starts only through the client's Start (recorded in meta
	// and redone by recovery) — its inputs come from the caller, not
	// from dependency satisfaction. Roots bind no input sources, so
	// without this guard a recovered instance whose Start had not been
	// applied yet would fall into the no-input-sets branch below and
	// start with no chosen set, leaving constituents that read
	// "if input <set>" unsatisfiable forever while the retried Start is
	// rejected as a duplicate.
	if r.task == i.root && !i.meta.Started {
		return false
	}
	// A task binding no input sets (its class demands no inputs) starts
	// as soon as its scope is active.
	if len(r.task.InputSets) == 0 {
		i.startRun(r, "", nil)
		return true
	}
	for _, set := range r.task.InputSets {
		vals, ok := i.satisfiedSet(r, set)
		if ok {
			i.startRun(r, set.Name, vals)
			return true
		}
	}
	return false
}

// satisfiedSet resolves every dependency of one input set, honouring
// first-available alternative order.
func (i *Instance) satisfiedSet(r *run, set *core.InputSetBinding) (registry.Objects, bool) {
	vals := make(registry.Objects, len(set.Objects))
	for _, od := range set.Objects {
		v, ok := i.resolveObject(r, od)
		if !ok {
			return nil, false
		}
		vals[od.Name] = v
	}
	for _, nd := range set.Notifications {
		if !i.resolveNotification(r, nd) {
			return nil, false
		}
	}
	return vals, true
}

// resolveObject finds the first available alternative source of an
// object dependency.
func (i *Instance) resolveObject(r *run, od *core.ObjectDep) (registry.Value, bool) {
	for _, s := range od.Sources {
		if v, ok := i.sourceValue(r, s); ok {
			return v, true
		}
	}
	return registry.Value{}, false
}

// resolveNotification reports whether any alternative source has fired.
func (i *Instance) resolveNotification(r *run, nd *core.NotificationDep) bool {
	for _, s := range nd.Sources {
		if _, ok := i.sourceValue(r, s); ok {
			return true
		}
	}
	return false
}

// sourceValue resolves one source against current run states. For
// notification sources (s.Object == "") the value is ignored.
func (i *Instance) sourceValue(r *run, s *core.Source) (registry.Value, bool) {
	pr, ok := i.runs[s.Task.Path()]
	if !ok {
		return registry.Value{}, false
	}
	switch s.Cond {
	case core.CondInput:
		// Available once the producer consumed (started with) that set.
		if pr.st.ChosenSet != s.CondName || pr.st.State == RunWaiting {
			return registry.Value{}, false
		}
		if s.Object == "" {
			return registry.Value{}, true
		}
		v, ok := pr.st.Inputs[s.Object]
		return v, ok
	case core.CondOutput:
		out := s.Task.Class.Output(s.CondName)
		if out != nil && out.Kind == core.RepeatOutcome {
			// Repeat feedback: visible only to the producing task itself
			// (sema guarantees s.Task == r.task here).
			if pr.st.LastRepeat == nil || pr.st.LastRepeat.Output != s.CondName {
				return registry.Value{}, false
			}
			if s.Object == "" {
				return registry.Value{}, true
			}
			v, ok := pr.st.LastRepeat.Objects[s.Object]
			return v, ok
		}
		rec := pr.findOutput(s.CondName)
		if rec == nil {
			return registry.Value{}, false
		}
		if s.Object == "" {
			return registry.Value{}, true
		}
		v, ok := rec.Objects[s.Object]
		return v, ok
	default: // CondNone
		if s.Object == "" {
			// Bare notification: fires on any terminal state.
			if pr.st.State.Terminal() {
				return registry.Value{}, true
			}
			return registry.Value{}, false
		}
		// Any produced output (including marks) carrying the object.
		for idx := range pr.st.Outputs {
			rec := &pr.st.Outputs[idx]
			if v, ok := rec.Objects[s.Object]; ok {
				return v, true
			}
		}
		return registry.Value{}, false
	}
}

// startRun transitions a waiting run to executing: plain tasks get a
// worker, compound tasks activate their constituents.
func (i *Instance) startRun(r *run, set string, inputs registry.Objects) {
	r.st.State = RunExecuting
	r.st.ChosenSet = set
	r.st.Inputs = inputs
	if r.st.MarksEmitted == nil {
		r.st.MarksEmitted = make(map[string]bool)
	}
	i.genSeq++
	r.gen = i.genSeq
	r.cancel = make(chan struct{})
	i.persistRun(r)
	i.eng.met.activations.Inc()
	i.emit(Event{Task: r.st.Path, Kind: EventTaskStarted, InputSet: set, Attempt: r.st.Attempt, Iteration: r.st.Iteration})
	i.noteStarted(r.st.Path)
	if r.task.Compound {
		// The compound's own output mappings may already be satisfiable
		// (e.g. sourced from its freshly consumed inputs).
		i.markDirty(r.st.Path)
		i.activateConstituents(r.task)
		return
	}
	if d, isDelay, err := delayOf(r.task); isDelay {
		// First-class delay: no worker, just an absolute deadline on the
		// durable timing wheel (see timers.go).
		if err != nil {
			i.failRun(r, err)
			return
		}
		i.armDelay(r, i.eng.clock.Now().Add(d))
		return
	}
	i.spawnWorker(r)
}

// activateConstituents creates waiting runs for a compound's members.
func (i *Instance) activateConstituents(t *core.Task) {
	for _, c := range t.Constituents {
		path := c.Path()
		// Every constituent just became active (its scope is executing) and
		// must be evaluated, whether its run is new or reloaded by recovery.
		i.markDirty(path)
		if _, exists := i.runs[path]; exists {
			continue
		}
		r := i.newRun(c, runState{Path: path, State: RunWaiting, MarksEmitted: make(map[string]bool)})
		i.runs[path] = r
		i.persistRun(r)
		i.emit(Event{Task: path, Kind: EventTaskWaiting})
	}
}

// tryCompoundOutputs checks an executing compound's output mappings in
// declaration order; the first satisfied terminal mapping ends the
// compound, satisfied mark mappings are released once each.
func (i *Instance) tryCompoundOutputs(r *run) bool {
	progress := false
	for _, ob := range r.task.Outputs {
		if ob.Output.Kind == core.Mark && r.st.MarksEmitted[ob.Output.Name] {
			continue
		}
		vals, ok := i.satisfiedOutput(r, ob)
		if !ok {
			continue
		}
		rec := OutputRec{
			Output: ob.Output.Name, Kind: ob.Output.Kind,
			Objects: vals, Iteration: r.st.Iteration, At: i.eng.clock.Now(),
		}
		switch ob.Output.Kind {
		case core.Mark:
			r.st.MarksEmitted[ob.Output.Name] = true
			r.st.Outputs = append(r.st.Outputs, rec)
			i.persistRun(r)
			i.emit(Event{Task: r.st.Path, Kind: EventTaskMarked, Output: rec.Output, Objects: vals, Iteration: r.st.Iteration})
			i.noteOutput(r.st.Path)
			progress = true
			continue
		case core.RepeatOutcome:
			i.repeatRun(r, rec)
			return true
		default:
			i.completeRun(r, rec)
			return true
		}
	}
	return progress
}

// satisfiedOutput resolves one output mapping of a compound.
func (i *Instance) satisfiedOutput(r *run, ob *core.OutputBinding) (registry.Objects, bool) {
	vals := make(registry.Objects, len(ob.Objects))
	for _, od := range ob.Objects {
		v, ok := i.resolveObject(r, od)
		if !ok {
			return nil, false
		}
		vals[od.Name] = v
	}
	for _, nd := range ob.Notifications {
		if !i.resolveNotification(r, nd) {
			return nil, false
		}
	}
	return vals, true
}

// repeatRun re-enters a task into Wait after a repeat outcome: counters
// advance, current-iteration outputs are discarded, and for compounds the
// constituent subtree is reset (cancelling any stragglers).
func (i *Instance) repeatRun(r *run, rec OutputRec) {
	r.st.LastRepeat = &rec
	r.st.Iteration++
	r.st.Attempt = 0
	r.st.State = RunWaiting
	r.st.ChosenSet = ""
	r.st.Inputs = nil
	r.st.Outputs = nil
	r.st.MarksEmitted = make(map[string]bool)
	if r.task.Compound {
		i.resetSubtree(r.task)
	}
	i.persistRun(r)
	i.emit(Event{Task: r.st.Path, Kind: EventTaskRepeated, Output: rec.Output, Objects: rec.Objects, Iteration: r.st.Iteration})
	// The run is waiting again and its repeat feedback may satisfy its own
	// input sets; consumers see the repeat record and discarded outputs.
	i.markDirty(r.st.Path)
	i.noteOutput(r.st.Path)
	if r.st.Iteration >= i.eng.cfg.MaxRepeats {
		i.failRun(r, fmt.Errorf("repeat limit %d reached", i.eng.cfg.MaxRepeats))
	}
}

// resetSubtree removes the runs of a compound's constituents (they are
// recreated fresh when the compound restarts), cancelling any that were
// executing; late completions are dropped by generation check.
func (i *Instance) resetSubtree(t *core.Task) {
	for _, c := range t.Constituents {
		path := c.Path()
		r, ok := i.runs[path]
		if !ok {
			continue
		}
		if r.st.State == RunExecuting && !c.Compound {
			i.cancelDelay(r)
			select {
			case <-r.cancel:
			default:
				close(r.cancel)
			}
		}
		if c.Compound {
			i.resetSubtree(c)
		}
		delete(i.runs, path)
		i.deleteRunState(path)
	}
}

// completeRun finalises a run in a terminal outcome.
func (i *Instance) completeRun(r *run, rec OutputRec) {
	r.st.Outputs = append(r.st.Outputs, rec)
	kind := EventTaskCompleted
	if rec.Kind == core.AbortOutcome {
		r.st.State = RunAborted
		kind = EventTaskAborted
	} else {
		r.st.State = RunCompleted
	}
	i.persistRun(r)
	i.eng.met.completions.Inc()
	i.emit(Event{Task: r.st.Path, Kind: kind, Output: rec.Output, Objects: rec.Objects, Iteration: r.st.Iteration, Attempt: r.st.Attempt})
	i.noteOutput(r.st.Path)
	if r.task == i.root {
		i.finishInstance(r)
	}
}

// failRun marks a run failed (contract violation or retries exhausted
// with no abort outcome).
func (i *Instance) failRun(r *run, cause error) {
	r.st.State = RunFailed
	i.persistRun(r)
	i.emit(Event{Task: r.st.Path, Kind: EventTaskFailed, Err: cause.Error(), Attempt: r.st.Attempt, Iteration: r.st.Iteration})
	i.noteOutput(r.st.Path) // bare notifications fire on any terminal state
	if r.task == i.root {
		i.finishInstance(r)
	}
}

// finishInstance records the instance result from the root's terminal
// record.
func (i *Instance) finishInstance(r *run) {
	// Waiters observe the terminal status as soon as it is set: flush the
	// buffered transitions (including the root's terminal state) so an
	// acknowledged completion survives a crash.
	if err := i.flushRuns(); err != nil {
		// The terminal state did not reach the disk (wedged or fenced
		// store): completing anyway would acknowledge a result a
		// takeover peer recovers without. Stay un-completed — the
		// degradation path hands the partition to a healthy owner,
		// whose recovery resumes from the durable prefix and finishes
		// the instance there.
		return
	}
	var res Result
	if rec := r.terminalRec(); rec != nil {
		res = Result{Output: rec.Output, Kind: rec.Kind, Objects: rec.Objects, State: r.st.State}
	} else {
		res = Result{State: r.st.State}
	}
	i.mu.Lock()
	i.result = &res
	i.mu.Unlock()
	switch r.st.State {
	case RunCompleted:
		i.setStatus(StatusCompleted)
	case RunAborted:
		i.setStatus(StatusAborted)
	default:
		i.setStatus(StatusFailed)
	}
	// The completion span closes the trace on whichever coordinator saw
	// the root terminate; in-memory only — the instance's durable story
	// is over by here.
	now := i.eng.clock.Now()
	i.eng.tracer.Record(obs.Span{
		TraceID: i.meta.TraceID, SpanID: obs.NewID(), Parent: i.meta.TraceID,
		Name: "complete", Instance: i.id, Start: now, End: now,
		Attrs: map[string]string{"status": r.st.State.String(), "output": res.Output},
	})
	i.emit(Event{Kind: EventInstanceCompleted, Output: res.Output})
}

// checkQuiescence detects stalls: root not terminal, nothing executing,
// nothing satisfiable. The status is surfaced as the paper's failure
// exception; a reconfiguration or forced abort can revive the instance.
func (i *Instance) checkQuiescence() {
	if i.Status() != StatusRunning {
		return
	}
	root := i.runs[i.root.Path()]
	if root == nil || root.st.State.Terminal() || i.inflight > 0 || i.armedTimers > 0 {
		return
	}
	i.setStatus(StatusStalled)
	i.emit(Event{Kind: EventInstanceStalled})
}

// workerInfo is the immutable snapshot a worker needs.
type workerInfo struct {
	path      string
	gen       int
	code      string
	location  string
	atomic    bool
	attempt   int
	iteration int
	set       string
	inputs    registry.Objects
	deadline  time.Duration
	// deadlineCh is closed by the timing wheel when the activation
	// deadline passes; deadlineID disarms it on completion.
	deadlineCh <-chan struct{}
	deadlineID string
	cancel     chan struct{}
	// traceID/spanID identify the attempt's activation span, forwarded
	// to remote executors so their spans parent into the trace.
	traceID string
	spanID  string
}

// spawnWorker launches the implementation of a plain task run. The
// activation deadline, when one applies, is an entry on the engine's
// shared timing wheel rather than a per-worker timer; it is volatile by
// design — a recovered activation is a fresh attempt with a fresh
// deadline.
func (i *Instance) spawnWorker(r *run) {
	deadline := i.eng.cfg.DefaultDeadline
	if d, ok := r.task.Implementation["deadline"]; ok {
		if parsed, err := time.ParseDuration(d); err == nil {
			deadline = parsed
		}
	}
	// One span per activation attempt: retries open a fresh span, so the
	// trace shows each attempt with its own timing and error.
	r.actSpan = obs.Span{
		TraceID: i.meta.TraceID, SpanID: obs.NewID(), Parent: i.meta.TraceID,
		Name: "activate", Instance: i.id, Task: r.st.Path,
		Start: i.eng.clock.Now(),
		Attrs: map[string]string{
			"attempt": fmt.Sprint(r.st.Attempt), "set": r.st.ChosenSet,
		},
	}
	w := workerInfo{
		path: r.st.Path, gen: r.gen, code: r.task.Code(), atomic: r.task.Atomic(),
		location: r.task.Implementation["location"],
		attempt:  r.st.Attempt, iteration: r.st.Iteration, set: r.st.ChosenSet,
		inputs: r.st.Inputs.Clone(), deadline: deadline, cancel: r.cancel,
		traceID: r.actSpan.TraceID, spanID: r.actSpan.SpanID,
	}
	if deadline > 0 {
		// The id carries gen AND attempt: retries of one generation must
		// not let a finished attempt's disarm cancel its successor's
		// deadline.
		ch := make(chan struct{})
		w.deadlineID = fmt.Sprintf("deadline|%s|%s|%d|%d", i.id, w.path, w.gen, w.attempt)
		w.deadlineCh = ch
		i.eng.timers.Arm(w.deadlineID, i.eng.clock.Now().Add(deadline), func() { close(ch) })
	}
	i.inflight++
	i.wg.Add(1)
	go i.worker(w)
}

// worker executes one activation of a task implementation off the loop
// goroutine. Atomic tasks run inside a transaction committed only for
// non-abort outcomes, so an abort outcome truly has no effects.
func (i *Instance) worker(w workerInfo) {
	defer i.wg.Done()
	send := func(res registry.Result, err error) {
		select {
		case i.evCh <- completionMsg{path: w.path, gen: w.gen, res: res, err: err}:
		case <-i.stopCh:
		}
	}
	var f registry.Func
	if w.location != "" && i.eng.cfg.RemoteInvoker != nil {
		// The "location" implementation property routes the activation to
		// a remote task executor; marks are not available remotely (one
		// request/reply per activation).
		invoke := i.eng.cfg.RemoteInvoker
		// abandoned is closed when this worker stops listening (deadline
		// fired, cancel, shutdown): an activation still queued on the
		// backpressure gate must give up its wait instead of later
		// burning a slot on a zombie dispatch whose result nobody reads.
		abandoned := make(chan struct{})
		defer close(abandoned)
		f = func(ctx registry.Context) (registry.Result, error) {
			if gate := i.remoteGate; gate != nil {
				// Backpressure: wide fan-outs queue here instead of
				// flooding the executor pool with unbounded concurrent
				// dispatches. The waiting gauge must come back down on
				// EVERY exit from the wait — including the abandoned
				// path, where a deadline fired while the activation was
				// still queued and nobody will ever read its result.
				met := &i.eng.met
				met.remoteWaiting.Add(1)
				select {
				case gate <- struct{}{}:
					met.remoteWaiting.Add(-1)
					met.remoteInflight.Add(1)
					defer func() {
						<-gate
						met.remoteInflight.Add(-1)
					}()
				case <-w.cancel:
					met.remoteWaiting.Add(-1)
					return registry.Result{}, errCancelled
				case <-abandoned:
					met.remoteWaiting.Add(-1)
					return registry.Result{}, errCancelled
				case <-i.stopCh:
					met.remoteWaiting.Add(-1)
					return registry.Result{}, ErrStopped
				}
			}
			return invoke(RemoteRequest{
				Location: w.location, Code: w.code,
				Instance: i.id, TaskPath: w.path, InputSet: w.set,
				Attempt: w.attempt, Iteration: w.iteration,
				Inputs:  w.inputs,
				TraceID: w.traceID, SpanID: w.spanID,
			})
		}
	} else {
		local, err := i.eng.impls.Lookup(w.code)
		if err != nil {
			send(registry.Result{}, err)
			return
		}
		f = local
	}
	var tx *txn.Txn
	if w.atomic {
		tx = i.eng.preg.Manager().Begin()
	}
	ctx := &taskCtx{inst: i, w: w, tx: tx}
	type wres struct {
		res registry.Result
		err error
	}
	resCh := make(chan wres, 1)
	// Bounded by f returning: implementations observe taskCtx.Done, and
	// the 1-buffered resCh means the send never blocks after abandonment.
	//wflint:allow goroutinestop bounded by f's return; taskCtx cancellation reaches f and resCh is buffered
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- wres{err: fmt.Errorf("implementation panic: %v", p)}
			}
		}()
		res, err := f(ctx)
		resCh <- wres{res: res, err: err}
	}()
	if w.deadlineID != "" {
		defer i.eng.timers.Cancel(w.deadlineID)
	}
	var out wres
	select {
	case out = <-resCh:
	case <-w.deadlineCh:
		out = wres{err: fmt.Errorf("deadline %v exceeded", w.deadline)}
	case <-w.cancel:
		out = wres{err: errCancelled}
	case <-i.stopCh:
		if tx != nil {
			_ = tx.Abort()
		}
		return
	}
	if tx != nil {
		// Commit application effects only for non-abort terminations.
		if out.err == nil && !isAbortOutput(i, w.path, out.res.Output) {
			if err := tx.Commit(); err != nil {
				out = wres{err: fmt.Errorf("commit task transaction: %w", err)}
			}
		} else {
			_ = tx.Abort()
		}
	}
	send(out.res, out.err)
}

// isAbortOutput reports whether the named output of the task at path is
// an abort outcome (schema reads are safe: the schema's class data is
// immutable during execution).
func isAbortOutput(i *Instance, path, output string) bool {
	t := i.schema.Lookup(path)
	if t == nil {
		return false
	}
	o := t.Class.Output(output)
	return o != nil && o.Kind == core.AbortOutcome
}

// handleCompletion processes a worker result on the loop goroutine.
func (i *Instance) handleCompletion(msg completionMsg) {
	i.inflight--
	r, ok := i.runs[msg.path]
	if !ok || r.gen != msg.gen || r.st.State != RunExecuting {
		return // stale: the run was reset, aborted or reconfigured away
	}
	var errText string
	if msg.err != nil {
		errText = msg.err.Error()
	}
	i.finishActSpan(r, errText)
	if r.pendingAbort != "" || errors.Is(msg.err, errCancelled) {
		i.forceAbortNow(r)
		return
	}
	if msg.err != nil {
		i.systemFailure(r, msg.err)
		return
	}
	out := r.task.Class.Output(msg.res.Output)
	if out == nil {
		i.failRun(r, fmt.Errorf("implementation produced unknown output %q", msg.res.Output))
		return
	}
	objects, err := i.conformObjects(out, msg.res.Objects)
	if err != nil {
		i.failRun(r, err)
		return
	}
	rec := OutputRec{Output: out.Name, Kind: out.Kind, Objects: objects, Iteration: r.st.Iteration, At: i.eng.clock.Now()}
	switch out.Kind {
	case core.Mark:
		i.failRun(r, fmt.Errorf("mark output %q returned as final result", out.Name))
	case core.RepeatOutcome:
		i.repeatRun(r, rec)
	case core.AbortOutcome:
		if len(r.st.MarksEmitted) > 0 {
			// Section 4.2: a task which produced a mark cannot abort.
			i.failRun(r, fmt.Errorf("abort outcome %q after mark output", out.Name))
			return
		}
		i.completeRun(r, rec)
	default:
		i.completeRun(r, rec)
	}
}

// conformObjects validates produced objects against the output's declared
// fields and stamps their classes.
func (i *Instance) conformObjects(out *core.Output, produced registry.Objects) (registry.Objects, error) {
	objects := make(registry.Objects, len(out.Objects))
	for _, f := range out.Objects {
		v, ok := produced[f.Name]
		if !ok {
			return nil, fmt.Errorf("output %q missing declared object %q (class %s)", out.Name, f.Name, f.Class)
		}
		if v.Class == "" {
			v.Class = f.Class
		} else if !i.schema.AssignableTo(v.Class, f.Class) {
			return nil, fmt.Errorf("output %q object %q has class %s, want %s", out.Name, f.Name, v.Class, f.Class)
		}
		objects[f.Name] = v
	}
	return objects, nil
}

// systemFailure applies the automatic retry policy to a failed
// activation; exhausted retries map to the first declared abort outcome
// (Fig. 3's system-restartable aborts), else the run fails.
func (i *Instance) systemFailure(r *run, cause error) {
	if r.st.Attempt < i.eng.cfg.MaxRetries {
		r.st.Attempt++
		i.persistRun(r)
		i.eng.met.retries.Inc()
		i.emit(Event{Task: r.st.Path, Kind: EventTaskRetried, Err: cause.Error(), Attempt: r.st.Attempt, Iteration: r.st.Iteration})
		i.spawnWorker(r)
		return
	}
	if len(r.st.MarksEmitted) > 0 {
		i.failRun(r, fmt.Errorf("retries exhausted after mark output: %w", cause))
		return
	}
	aborts := r.task.Class.Outcomes(core.AbortOutcome)
	if len(aborts) == 0 {
		i.failRun(r, fmt.Errorf("retries exhausted: %w", cause))
		return
	}
	rec := OutputRec{Output: aborts[0].Name, Kind: core.AbortOutcome, Iteration: r.st.Iteration, At: i.eng.clock.Now()}
	i.completeRun(r, rec)
}

// forceAbortNow terminates a run in response to AbortTask.
func (i *Instance) forceAbortNow(r *run) {
	outcome := r.pendingAbort
	r.pendingAbort = ""
	if outcome == "forced" {
		outcome = ""
	}
	if outcome == "" {
		if aborts := r.task.Class.Outcomes(core.AbortOutcome); len(aborts) > 0 {
			outcome = aborts[0].Name
		}
	}
	if outcome != "" {
		rec := OutputRec{Output: outcome, Kind: core.AbortOutcome, Iteration: r.st.Iteration, At: i.eng.clock.Now()}
		i.completeRun(r, rec)
		return
	}
	// No declared abort outcome: terminal abort state without an output.
	r.st.State = RunAborted
	i.persistRun(r)
	i.emit(Event{Task: r.st.Path, Kind: EventTaskAborted, Iteration: r.st.Iteration})
	i.noteOutput(r.st.Path) // bare notifications fire on any terminal state
	if r.task == i.root {
		i.finishInstance(r)
	}
}

// handleMark records a mark released by a running implementation.
func (i *Instance) handleMark(msg markMsg) error {
	r, ok := i.runs[msg.path]
	if !ok || r.gen != msg.gen || r.st.State != RunExecuting {
		return fmt.Errorf("mark %s: task is not executing", msg.name)
	}
	out := r.task.Class.Output(msg.name)
	if out == nil || out.Kind != core.Mark {
		return fmt.Errorf("mark %s: taskclass %s declares no such mark", msg.name, r.task.Class.Name)
	}
	if r.st.MarksEmitted[msg.name] {
		return fmt.Errorf("mark %s: already produced (marks may be produced once)", msg.name)
	}
	objects, err := i.conformObjects(out, msg.objects)
	if err != nil {
		return err
	}
	rec := OutputRec{Output: out.Name, Kind: core.Mark, Objects: objects, Iteration: r.st.Iteration, At: i.eng.clock.Now()}
	r.st.MarksEmitted[msg.name] = true
	r.st.Outputs = append(r.st.Outputs, rec)
	i.persistRun(r)
	// The reply acknowledges the mark to the implementation, which is
	// then barred from aborting (Section 4.2): make it durable first. A
	// mark that failed to persist must NOT be acknowledged — the
	// implementation would consider itself bar-from-abort on the
	// strength of a record recovery will never see — so roll it back in
	// memory and report the failure instead.
	if err := i.flushRuns(); err != nil {
		delete(r.st.MarksEmitted, msg.name)
		r.st.Outputs = r.st.Outputs[:len(r.st.Outputs)-1]
		return fmt.Errorf("mark %s: persist: %w", msg.name, err)
	}
	i.emit(Event{Task: r.st.Path, Kind: EventTaskMarked, Output: out.Name, Objects: objects, Iteration: r.st.Iteration})
	i.noteOutput(r.st.Path)
	return nil
}

// abortTask implements AbortTask on the loop goroutine.
func (i *Instance) abortTask(path, outcome string) error {
	r, ok := i.runs[path]
	if !ok {
		return fmt.Errorf("abort task %s: no run", path)
	}
	if outcome != "" {
		o := r.task.Class.Output(outcome)
		if o == nil || o.Kind != core.AbortOutcome {
			return fmt.Errorf("abort task %s: %q is not an abort outcome of taskclass %s", path, outcome, r.task.Class.Name)
		}
	}
	switch r.st.State {
	case RunWaiting:
		if outcome == "" {
			r.pendingAbort = "forced"
		} else {
			r.pendingAbort = outcome
		}
		i.forceAbortNow(r)
		return nil
	case RunExecuting:
		if r.task.Compound {
			return fmt.Errorf("abort task %s: aborting executing compound tasks is not supported; abort a constituent", path)
		}
		if len(r.st.MarksEmitted) > 0 {
			return fmt.Errorf("abort task %s: task has produced a mark and can no longer abort", path)
		}
		if outcome == "" {
			r.pendingAbort = "forced"
		} else {
			r.pendingAbort = outcome
		}
		if r.delayArmed {
			// Delay runs have no worker to interrupt: disarm the wheel
			// and terminate immediately.
			i.cancelDelay(r)
			i.forceAbortNow(r)
			return nil
		}
		select {
		case <-r.cancel:
		default:
			close(r.cancel)
		}
		return nil
	default:
		return fmt.Errorf("abort task %s: task is %s", path, r.st.State)
	}
}

// persistRun records a run-state transition for persistence. In the
// default batched mode the write is buffered and flushed together with
// every other transition of the current evaluation drain as one
// transaction batch (see flushRuns); with Config.PersistPerTransition it
// commits immediately in its own transaction, the legacy discipline of
// one atomic update per transition. Persistence failures are surfaced as
// events (the in-memory state remains authoritative for the live
// controller; recovery replays from the last successfully persisted
// state).
func (i *Instance) persistRun(r *run) {
	if i.eng.cfg.Ephemeral {
		return
	}
	if !i.eng.cfg.PersistPerTransition {
		i.bufferRun(r.st.Path, r)
		return
	}
	tx := i.eng.preg.Manager().Begin()
	//wflint:allow persistorder gated legacy path: Config.PersistPerTransition ablation writes one txn per transition by design
	err := i.eng.preg.Object(runKey(i.id, r.st.Path)).Set(tx, r.st)
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Abort()
	}
	if err != nil {
		i.emit(Event{Task: r.st.Path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist run: %v", err)})
	}
}

// deleteRunState removes a reset constituent's persisted state (same
// batching discipline as persistRun).
func (i *Instance) deleteRunState(path string) {
	if i.eng.cfg.Ephemeral {
		return
	}
	if !i.eng.cfg.PersistPerTransition {
		i.bufferRun(path, nil)
		return
	}
	tx := i.eng.preg.Manager().Begin()
	//wflint:allow persistorder gated legacy path: Config.PersistPerTransition ablation writes one txn per transition by design
	err := i.eng.preg.Object(runKey(i.id, path)).Delete(tx)
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Abort()
	}
	if err != nil {
		i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("delete run state: %v", err)})
	}
}

// bufferRun stages one run-state write (r == nil: delete) for the next
// flush. Later stagings of the same path supersede earlier ones — only
// the state at flush time is durable, exactly the state recovery should
// resume from. Owned by the loop goroutine.
func (i *Instance) bufferRun(path string, r *run) {
	if _, ok := i.pendingRuns[path]; !ok {
		i.pendingOrder = append(i.pendingOrder, path)
	}
	i.pendingRuns[path] = r
}

// flushRuns commits every buffered run-state transition as one
// multi-object transaction batch: one decision record — and, on a store
// with batch support, one group-committed fsync for all intentions and
// one for all states — per evaluation drain instead of per transition.
// Crash-wise this moves the recovery point from "after any transition"
// to "after any drain": an intermediate state a crash loses is
// re-derived by recovery from the same inputs, which the crash-recovery
// property tests pin. Called on the loop goroutine at the end of every
// evaluation pass and before externally visible acknowledgements (mark
// replies, instance completion).
//
// A commit failure (wedged store, lapsed lease fence) is surfaced twice:
// as per-task failure events, and as the returned error so
// acknowledgement points refuse to ack state that never became durable.
func (i *Instance) flushRuns() error {
	if len(i.pendingOrder) == 0 && len(i.pendingTimerOrder) == 0 {
		return nil
	}
	start := i.eng.clock.Now()
	b := i.eng.preg.NewBatch()
	paths := i.pendingOrder
	timerPaths := i.pendingTimerOrder
	for _, path := range paths {
		r := i.pendingRuns[path]
		if r == nil {
			b.Delete(runKey(i.id, path))
			continue
		}
		if err := b.Set(runKey(i.id, path), r.st); err != nil {
			i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist run: %v", err)})
		}
	}
	// Timer records ride the same batch, AFTER the run states: a torn
	// batch tail can lose an arm record (recovery restarts that delay
	// from zero, conservatively) but can never persist a fire's record
	// deletion without the terminal run state it acknowledges.
	for _, path := range i.pendingTimerOrder {
		rec := i.pendingTimers[path]
		if rec == nil {
			b.Delete(timerRecKey(i.id, path))
			continue
		}
		if err := b.Set(timerRecKey(i.id, path), *rec); err != nil {
			i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist timer: %v", err)})
		}
	}
	i.pendingOrder = nil
	clear(i.pendingRuns)
	i.pendingTimerOrder = nil
	clear(i.pendingTimers)
	if err := b.Commit(); err != nil {
		for _, path := range paths {
			i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist run: %v", err)})
		}
		// A batch can carry only timer records (recovery re-arms stage
		// no run states), so the failure must surface on those too.
		for _, path := range timerPaths {
			i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist timer: %v", err)})
		}
		return err
	}
	i.eng.met.flushOps.Observe(float64(len(paths) + len(timerPaths)))
	i.eng.met.flushSeconds.ObserveSince(i.eng.clock, start)
	return nil
}

// taskCtx implements registry.Context.
type taskCtx struct {
	inst *Instance
	w    workerInfo
	tx   *txn.Txn
}

var _ registry.Context = (*taskCtx)(nil)

func (c *taskCtx) Instance() string         { return c.inst.id }
func (c *taskCtx) TaskPath() string         { return c.w.path }
func (c *taskCtx) InputSet() string         { return c.w.set }
func (c *taskCtx) Inputs() registry.Objects { return c.w.inputs }
func (c *taskCtx) Attempt() int             { return c.w.attempt }
func (c *taskCtx) Iteration() int           { return c.w.iteration }
func (c *taskCtx) Txn() *txn.Txn            { return c.tx }
func (c *taskCtx) Done() <-chan struct{}    { return c.w.cancel }

func (c *taskCtx) Mark(name string, objects registry.Objects) error {
	if c.w.atomic {
		return fmt.Errorf("mark %s: atomic tasks cannot produce marks", name)
	}
	reply := make(chan error, 1)
	select {
	case c.inst.markCh <- markMsg{path: c.w.path, gen: c.w.gen, name: name, objects: objects, reply: reply}:
	case <-c.inst.stopCh:
		return ErrStopped
	}
	select {
	case err := <-reply:
		return err
	case <-c.inst.stopCh:
		return ErrStopped
	}
}
