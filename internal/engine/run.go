package engine

import (
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// RunState is the lifecycle state of one task run, matching the task
// transition diagram of Fig. 3.
type RunState int

// Run states.
const (
	// RunWaiting: input dependencies not yet satisfied.
	RunWaiting RunState = iota + 1
	// RunExecuting: the implementation is running (or, for compound
	// tasks, constituents are active).
	RunExecuting
	// RunCompleted: terminated in a non-abort outcome.
	RunCompleted
	// RunAborted: terminated in an abort state (no side effects).
	RunAborted
	// RunFailed: implementation contract violation, or retries exhausted
	// with no abort outcome declared to absorb the failure.
	RunFailed
)

// String names the state.
func (s RunState) String() string {
	switch s {
	case RunWaiting:
		return "waiting"
	case RunExecuting:
		return "executing"
	case RunCompleted:
		return "completed"
	case RunAborted:
		return "aborted"
	case RunFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == RunCompleted || s == RunAborted || s == RunFailed
}

// OutputRec records one produced output of a run within the current
// repeat iteration.
type OutputRec struct {
	Output  string
	Kind    core.OutputKind
	Objects registry.Objects
	// Iteration is the repeat iteration during which the output was
	// produced.
	Iteration int
	// At is the production time.
	At time.Time
}

// runState is the persisted state of one task run. It lives in a
// persistent atomic object ("inter-task dependencies recorded in
// persistent shared objects"), keyed by instance and task path.
type runState struct {
	Path      string
	State     RunState
	ChosenSet string
	Inputs    registry.Objects
	// Outputs holds the current-iteration outputs (marks first, then the
	// terminal record). Cleared when the task repeats.
	Outputs []OutputRec
	// LastRepeat is the most recent repeat-outcome record; visible only
	// to the task's own input sources (Section 4.2: repeat objects are
	// not usable by any other task).
	LastRepeat *OutputRec
	// MarksEmitted tracks which marks were released this iteration.
	MarksEmitted map[string]bool
	Attempt      int
	Iteration    int
}

// run is the in-memory controller state for one task instance run.
type run struct {
	task *core.Task
	st   runState
	// gen is an instance-unique generation number; completions carry the
	// generation of the run that spawned them so late results of reset or
	// cancelled activations are dropped.
	gen int
	// cancel is closed to interrupt an executing implementation (force
	// abort, shutdown).
	cancel chan struct{}
	// delayArmed reports a pending first-class delay timer on the wheel
	// (see timers.go); such runs execute without a worker.
	delayArmed bool
	// delayDeadline is the armed delay's absolute deadline; handleTimer
	// derives the fire-lag observation from it.
	delayDeadline time.Time
	// actSpan is the open span of the current activation attempt (zero
	// when none); closed by finishActSpan on completion. See obs.go.
	actSpan obs.Span
	// pendingAbort holds the abort outcome requested by AbortTask while
	// the task was executing.
	pendingAbort string
}

// findOutput returns the current-iteration record of the named output.
func (r *run) findOutput(name string) *OutputRec {
	for i := range r.st.Outputs {
		if r.st.Outputs[i].Output == name {
			return &r.st.Outputs[i]
		}
	}
	return nil
}

// terminalRec returns the terminal output record, if the run is terminal
// and produced one.
func (r *run) terminalRec() *OutputRec {
	if !r.st.State.Terminal() || len(r.st.Outputs) == 0 {
		return nil
	}
	last := &r.st.Outputs[len(r.st.Outputs)-1]
	if last.Kind == core.Mark {
		return nil
	}
	return last
}

// runKey is the store ID of a run's persistent state. The task path is
// collapsed into a single key segment ("/" becomes "%2F") because a
// path-per-segment store (FileStore) would otherwise need the compound's
// own run object ("inst/i/run/app", a file) to double as the directory
// holding its constituents ("inst/i/run/app/t1") — constituent states
// silently failed to persist.
func runKey(instance, path string) store.ID {
	return store.ID("inst/" + instance + "/run/" + strings.ReplaceAll(path, "/", "%2F"))
}

// metaKey is the store ID of an instance's metadata.
func metaKey(instance string) store.ID {
	return store.ID("inst/" + instance + "/meta")
}

// reconfigKey is the store ID of the n-th reconfiguration record.
func reconfigKey(instance string, seq int) store.ID {
	return store.ID(fmt.Sprintf("inst/%s/reconfig/%06d", instance, seq))
}

// instanceMeta is the persisted instance header used by recovery.
type instanceMeta struct {
	ID           string
	SchemaName   string
	SchemaSource string
	RootName     string
	Started      bool
	StartSet     string
	StartInputs  registry.Objects
	ReconfigSeq  int
	// TraceID is the activation-trace identifier minted at
	// instantiation; it survives crashes with the meta so spans recorded
	// before and after a takeover share one trace. Metas persisted
	// before tracing existed decode it empty; recovery re-mints then.
	TraceID string
}

// Register payload types commonly carried by Values so run states survive
// gob encoding. Applications register their own concrete types the same
// way.
func init() { //nolint:gochecknoinits // gob type registration is the documented use of init
	gob.Register("")
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register(0.0)
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]string(nil))
	gob.Register(map[string]string(nil))
	gob.Register(time.Time{})
}
