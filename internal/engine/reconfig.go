package engine

import (
	"encoding/gob"
	"errors"
	"fmt"

	"strings"

	"repro/internal/core"
	"repro/internal/script/sema"
)

// Dynamic reconfiguration (Sections 2 and 3): the structure of a running
// application can be changed by adding/deleting tasks, notifications and
// dependencies. Operations are expressed in the scripting language itself
// (task fragments and source specifications), persisted as records, and
// applied atomically: the batch is applied to a clone of the schema which
// is swapped in only if every operation validates — changes are "carried
// out atomically with respect to normal processing" because the swap
// happens on the instance's controller goroutine between evaluation
// steps, under the same transaction that persists the record.

// Op is one reconfiguration operation. Implementations are gob-encodable
// so records replay during recovery.
type Op interface {
	// Apply validates and performs the operation against the schema.
	Apply(schema *core.Schema, root *core.Task) error
	// Describe renders the operation for event traces and the admin tool.
	Describe() string
}

// AddTaskOp inserts a new task, written as a script fragment, into the
// compound task at ScopePath (empty adds a top-level task).
type AddTaskOp struct {
	ScopePath string
	Fragment  string
}

// Apply implements Op.
func (op *AddTaskOp) Apply(schema *core.Schema, _ *core.Task) error {
	var scope *core.Task
	if op.ScopePath != "" {
		scope = schema.Lookup(op.ScopePath)
		if scope == nil {
			return fmt.Errorf("add task: no scope %q", op.ScopePath)
		}
		if !scope.Compound {
			return fmt.Errorf("add task: scope %q is not a compound task", op.ScopePath)
		}
	}
	t, err := sema.CompileTaskFragment(schema, scope, []byte(op.Fragment))
	if err != nil {
		return fmt.Errorf("add task in %q: %w", op.ScopePath, err)
	}
	return schema.AddTask(scope, t)
}

// Describe implements Op.
func (op *AddTaskOp) Describe() string {
	return fmt.Sprintf("add task in %q", op.ScopePath)
}

// RemoveTaskOp removes the named constituent of the compound at
// ScopePath. Removal fails while other tasks depend on it.
type RemoveTaskOp struct {
	ScopePath string
	Name      string
}

// Apply implements Op.
func (op *RemoveTaskOp) Apply(schema *core.Schema, _ *core.Task) error {
	var scope *core.Task
	if op.ScopePath != "" {
		scope = schema.Lookup(op.ScopePath)
		if scope == nil {
			return fmt.Errorf("remove task: no scope %q", op.ScopePath)
		}
	}
	return schema.RemoveTask(scope, op.Name)
}

// Describe implements Op.
func (op *RemoveTaskOp) Describe() string {
	return fmt.Sprintf("remove task %s from %q", op.Name, op.ScopePath)
}

// AddObjectSourceOp appends an alternative source (concrete syntax, e.g.
// "o1 of task t4 if output oc1") for an input object of the task at
// TaskPath — the paper's canonical way to add a redundant data source.
type AddObjectSourceOp struct {
	TaskPath string
	Set      string
	Object   string
	Source   string
}

// Apply implements Op.
func (op *AddObjectSourceOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("add source: no task %q", op.TaskPath)
	}
	src, err := sema.ResolveSourceSpec(schema, t, op.Set, op.Object, op.Source)
	if err != nil {
		return err
	}
	return schema.AddObjectSource(t, op.Set, op.Object, src)
}

// Describe implements Op.
func (op *AddObjectSourceOp) Describe() string {
	return fmt.Sprintf("add source %q for %s.%s:%s", op.Source, op.TaskPath, op.Set, op.Object)
}

// AddNotificationOp appends a notification dependency (alternatives in
// concrete syntax, e.g. "task t2 if output done") to an input set of the
// task at TaskPath. Notifications compose as AND-of-ORs: Extend = -1 (or
// the zero value with ExtendSet false... use NewGate) adds a new ANDed
// gate; Extend >= 0 adds OR alternatives to the Extend-th existing gate.
type AddNotificationOp struct {
	TaskPath string
	Set      string
	Sources  []string
	// Extend selects an existing notification to extend with
	// alternatives; negative adds a new (ANDed) notification. Note the
	// zero value extends gate 0 — use NewNotificationGate for clarity
	// when adding a gate.
	Extend int
}

// NewNotificationGate marks an AddNotificationOp as adding a new ANDed
// gate rather than extending an existing one.
const NewNotificationGate = -1

// Apply implements Op.
func (op *AddNotificationOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("add notification: no task %q", op.TaskPath)
	}
	srcs := make([]*core.Source, 0, len(op.Sources))
	for _, spec := range op.Sources {
		src, err := sema.ResolveSourceSpec(schema, t, op.Set, "", spec)
		if err != nil {
			return err
		}
		srcs = append(srcs, src)
	}
	if op.Extend >= 0 {
		return schema.ExtendNotification(t, op.Set, op.Extend, srcs...)
	}
	return schema.AddNotification(t, op.Set, srcs...)
}

// Describe implements Op.
func (op *AddNotificationOp) Describe() string {
	return fmt.Sprintf("add notification to %s.%s", op.TaskPath, op.Set)
}

// RemoveObjectSourceOp deletes the Index-th alternative source of an
// input object.
type RemoveObjectSourceOp struct {
	TaskPath string
	Set      string
	Object   string
	Index    int
}

// Apply implements Op.
func (op *RemoveObjectSourceOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("remove source: no task %q", op.TaskPath)
	}
	return schema.RemoveObjectSource(t, op.Set, op.Object, op.Index)
}

// Describe implements Op.
func (op *RemoveObjectSourceOp) Describe() string {
	return fmt.Sprintf("remove source %d of %s.%s:%s", op.Index, op.TaskPath, op.Set, op.Object)
}

// RemoveNotificationOp deletes the Index-th notification dependency of an
// input set.
type RemoveNotificationOp struct {
	TaskPath string
	Set      string
	Index    int
}

// Apply implements Op.
func (op *RemoveNotificationOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("remove notification: no task %q", op.TaskPath)
	}
	return schema.RemoveNotification(t, op.Set, op.Index)
}

// Describe implements Op.
func (op *RemoveNotificationOp) Describe() string {
	return fmt.Sprintf("remove notification %d of %s.%s", op.Index, op.TaskPath, op.Set)
}

// AddOutputSourceOp appends an alternative source for an object of a
// compound task's output mapping — the Section 5.2 modification
// scenario: a compound's outcome gains a new way to be produced (e.g.
// a dispatch note from a supplier's direct-dispatch task).
type AddOutputSourceOp struct {
	TaskPath string
	Output   string
	Object   string
	Source   string
}

// Apply implements Op.
func (op *AddOutputSourceOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("add output source: no task %q", op.TaskPath)
	}
	src, err := sema.ResolveOutputSourceSpec(schema, t, op.Output, op.Object, op.Source)
	if err != nil {
		return err
	}
	return schema.AddOutputSource(t, op.Output, op.Object, src)
}

// Describe implements Op.
func (op *AddOutputSourceOp) Describe() string {
	return fmt.Sprintf("add output source %q for %s outputs/%s:%s", op.Source, op.TaskPath, op.Output, op.Object)
}

// AddOutputNotificationOp appends a notification dependency to a compound
// output mapping, or — when Extend is >= 0 — appends alternative sources
// to the Extend-th existing notification (an extra way for an existing
// gate to fire, e.g. one more cancellation alternative).
type AddOutputNotificationOp struct {
	TaskPath string
	Output   string
	Sources  []string
	// Extend selects an existing notification to extend with
	// alternatives; -1 adds a new (ANDed) notification.
	Extend int
}

// Apply implements Op.
func (op *AddOutputNotificationOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("add output notification: no task %q", op.TaskPath)
	}
	srcs := make([]*core.Source, 0, len(op.Sources))
	for _, spec := range op.Sources {
		src, err := sema.ResolveOutputSourceSpec(schema, t, op.Output, "", spec)
		if err != nil {
			return err
		}
		srcs = append(srcs, src)
	}
	if op.Extend >= 0 {
		return schema.ExtendOutputNotification(t, op.Output, op.Extend, srcs...)
	}
	return schema.AddOutputNotification(t, op.Output, srcs...)
}

// Describe implements Op.
func (op *AddOutputNotificationOp) Describe() string {
	return fmt.Sprintf("add output notification to %s outputs/%s", op.TaskPath, op.Output)
}

// RemoveOutputNotificationSourceOp deletes one alternative source of an
// output-mapping notification (the gate disappears when its last
// alternative is removed).
type RemoveOutputNotificationSourceOp struct {
	TaskPath     string
	Output       string
	Notification int
	Index        int
}

// Apply implements Op.
func (op *RemoveOutputNotificationSourceOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("remove output notification source: no task %q", op.TaskPath)
	}
	return schema.RemoveOutputNotificationSource(t, op.Output, op.Notification, op.Index)
}

// Describe implements Op.
func (op *RemoveOutputNotificationSourceOp) Describe() string {
	return fmt.Sprintf("remove source %d of notification %d of %s outputs/%s", op.Index, op.Notification, op.TaskPath, op.Output)
}

// SetImplementationOp rewrites an implementation property of a task (for
// example rebinding "code" — the script-level half of online upgrade).
type SetImplementationOp struct {
	TaskPath string
	Key      string
	Value    string
}

// Apply implements Op.
func (op *SetImplementationOp) Apply(schema *core.Schema, _ *core.Task) error {
	t := schema.Lookup(op.TaskPath)
	if t == nil {
		return fmt.Errorf("set implementation: no task %q", op.TaskPath)
	}
	if t.Implementation == nil {
		t.Implementation = make(map[string]string, 1)
	}
	t.Implementation[op.Key] = op.Value
	return nil
}

// Describe implements Op.
func (op *SetImplementationOp) Describe() string {
	return fmt.Sprintf("set %s.%s = %q", op.TaskPath, op.Key, op.Value)
}

// reconfigRecord is the persisted form of one applied batch.
type reconfigRecord struct {
	Ops []Op
}

func init() { //nolint:gochecknoinits // gob type registration
	gob.Register(&AddTaskOp{})
	gob.Register(&RemoveTaskOp{})
	gob.Register(&AddObjectSourceOp{})
	gob.Register(&AddNotificationOp{})
	gob.Register(&AddOutputSourceOp{})
	gob.Register(&AddOutputNotificationOp{})
	gob.Register(&RemoveObjectSourceOp{})
	gob.Register(&RemoveNotificationOp{})
	gob.Register(&RemoveOutputNotificationSourceOp{})
	gob.Register(&SetImplementationOp{})
}

// Reconfigure applies a batch of operations to the running instance.
// The batch is atomic: it either fully applies (and is durably recorded
// for recovery) or the instance is unchanged.
func (i *Instance) Reconfigure(ops ...Op) error {
	if len(ops) == 0 {
		return errors.New("reconfigure: no operations")
	}
	errCh := make(chan error, 1)
	select {
	case i.reqCh <- func() { errCh <- i.reconfigure(ops) }:
	case <-i.loopDone:
		return ErrStopped
	}
	select {
	case err := <-errCh:
		return err
	case <-i.loopDone:
		return ErrStopped
	}
}

// reconfigure runs on the loop goroutine, between evaluation steps.
func (i *Instance) reconfigure(ops []Op) error {
	rootPath := i.root.Path()
	clone := i.schema.Clone()
	cloneRoot := clone.Lookup(rootPath)
	if cloneRoot == nil {
		return fmt.Errorf("reconfigure: root %q lost in clone", rootPath)
	}
	for _, op := range ops {
		if err := op.Apply(clone, cloneRoot); err != nil {
			return fmt.Errorf("reconfigure: %s: %w", op.Describe(), err)
		}
	}

	// Durably record the batch together with the bumped sequence number.
	seq := i.reconfigSeq
	meta := i.meta
	meta.ReconfigSeq = seq + 1
	tx := i.eng.preg.Manager().Begin()
	err := i.eng.preg.Object(reconfigKey(i.id, seq)).Set(tx, reconfigRecord{Ops: ops})
	if err == nil {
		err = i.eng.preg.Object(metaKey(i.id)).Set(tx, meta)
	}
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Abort()
	}
	if err != nil {
		return fmt.Errorf("reconfigure: persist record: %w", err)
	}
	i.meta = meta
	i.reconfigSeq = meta.ReconfigSeq

	// Swap the schema in and remap live runs onto the new task graph.
	i.schema = clone
	i.root = cloneRoot
	i.rebuildOrder()
	for path, r := range i.runs {
		nt := clone.Lookup(path)
		if nt == nil {
			// The task was removed: cancel and drop its run (including
			// any pending delay timer and its durable record).
			if r.st.State == RunExecuting && !r.task.Compound {
				i.cancelDelay(r)
				select {
				case <-r.cancel:
				default:
					close(r.cancel)
				}
			}
			delete(i.runs, path)
			i.deleteRunState(path)
			continue
		}
		r.task = nt
	}
	// Newly added tasks inside executing compounds become waiting runs.
	for _, path := range i.order {
		if _, exists := i.runs[path]; exists {
			continue
		}
		t := clone.Lookup(path)
		if t == nil || t.Parent == nil {
			continue
		}
		if pr, ok := i.runs[t.Parent.Path()]; ok && pr.st.State == RunExecuting {
			r := i.newRun(t, runState{Path: path, State: RunWaiting, MarksEmitted: make(map[string]bool)})
			i.runs[path] = r
			i.persistRun(r)
			i.emit(Event{Task: path, Kind: EventTaskWaiting})
		}
	}
	// rebuildOrder above recomputed the reverse-dependency index for the
	// new schema; a changed dependency may be satisfiable by state that
	// produced no fresh event, so every live run re-enters the worklist.
	// Any entries enqueued before the swap hold stale schema-order
	// indexes; reset the worklist first (markAllDirty re-covers them).
	clear(i.dirty)
	i.dirtyHeap = i.dirtyHeap[:0]
	i.markAllDirty()
	descs := make([]string, len(ops))
	for idx, op := range ops {
		descs[idx] = op.Describe()
	}
	i.emit(Event{Kind: EventReconfigured, Output: strings.Join(descs, "; ")})
	// A stalled instance may be revived by the new structure.
	if i.Status() == StatusStalled {
		i.setStatus(StatusRunning)
	}
	return nil
}
