package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/scripts"
	"repro/internal/store"
	"repro/internal/txn"
)

// rig bundles an engine with its substrate for tests.
type rig struct {
	st    *store.MemStore
	mgr   *txn.Manager
	preg  *persist.Registry
	impls *registry.Registry
	eng   *engine.Engine
}

func newRig(t *testing.T, cfg engine.Config) *rig {
	t.Helper()
	// Every engine test doubles as a differential scheduler test: after
	// each dirty-set drain the full-rescan oracle asserts the same fixed
	// point was reached.
	cfg.VerifyScheduler = true
	st := store.NewMemStore()
	mgr := txn.NewManager(st)
	preg := persist.NewRegistry(st, mgr, nil)
	impls := registry.New()
	eng := engine.New(preg, impls, cfg)
	t.Cleanup(eng.Close)
	return &rig{st: st, mgr: mgr, preg: preg, impls: impls, eng: eng}
}

func (r *rig) run(t *testing.T, src, instanceID, inputSet string, inputs registry.Objects) *engine.Instance {
	t.Helper()
	schema := sema.MustCompileSource(instanceID+".wf", []byte(src))
	inst, err := r.eng.Instantiate(instanceID, schema, "")
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if err := inst.Start(inputSet, inputs); err != nil {
		t.Fatalf("start: %v", err)
	}
	return inst
}

func waitResult(t *testing.T, inst *engine.Instance) engine.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v (events: %v)", err, inst.Events())
	}
	return res
}

func val(class string, data any) registry.Value { return registry.Value{Class: class, Data: data} }

func eventsByKind(events []engine.Event, kind engine.EventKind) []engine.Event {
	var out []engine.Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// --- Fig. 1: the dependency diamond ---

func bindDiamond(impls *registry.Registry) {
	pass := func(in, out string) registry.Func {
		return func(ctx registry.Context) (registry.Result, error) {
			v := ctx.Inputs()[in]
			return registry.Result{Output: "done", Objects: registry.Objects{out: v}}, nil
		}
	}
	impls.Bind("produce", pass("seed", "d"))
	impls.Bind("stage", pass("in", "d"))
	impls.Bind("join", func(ctx registry.Context) (registry.Result, error) {
		l := ctx.Inputs()["left"].Data.(string)
		r := ctx.Inputs()["right"].Data.(string)
		return registry.Result{Output: "done", Objects: registry.Objects{"d": val("Data", l+"+"+r)}}, nil
	})
}

func TestFig1DiamondCompletes(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	inst := r.run(t, scripts.Fig1Diamond, "diamond-1", "main", registry.Objects{"seed": val("Data", "s")})
	res := waitResult(t, inst)
	if res.Output != "done" {
		t.Fatalf("outcome = %q, want done", res.Output)
	}
	if got := res.Objects["d"].Data.(string); got != "s+s" {
		t.Fatalf("joined = %q, want s+s (both branches fed t4)", got)
	}
	// Dependency order: t1 before t2 and t3, which are before t4.
	started := map[string]int{}
	for _, e := range eventsByKind(inst.Events(), engine.EventTaskStarted) {
		started[e.Task] = e.Seq
	}
	for _, pair := range [][2]string{
		{"diamond/t1", "diamond/t2"},
		{"diamond/t1", "diamond/t3"},
		{"diamond/t2", "diamond/t4"},
		{"diamond/t3", "diamond/t4"},
	} {
		if started[pair[0]] >= started[pair[1]] {
			t.Errorf("start order violated: %s (#%d) should precede %s (#%d)", pair[0], started[pair[0]], pair[1], started[pair[1]])
		}
	}
}

func TestFig1StallWhenSourceFails(t *testing.T) {
	r := newRig(t, engine.Config{MaxRetries: 1})
	bindDiamond(r.impls)
	// t1 always fails at the system level; Producer has no abort outcome,
	// so the run fails and nothing downstream can ever start.
	r.impls.Bind("produce", func(registry.Context) (registry.Result, error) {
		return registry.Result{}, errors.New("boom")
	})
	inst := r.run(t, scripts.Fig1Diamond, "diamond-stall", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := inst.Wait(ctx)
	if !errors.Is(err, engine.ErrStalled) {
		t.Fatalf("wait err = %v, want ErrStalled", err)
	}
	if got := len(eventsByKind(inst.Events(), engine.EventTaskRetried)); got != 1 {
		t.Errorf("retries = %d, want 1 (MaxRetries)", got)
	}
}

// --- Fig. 2: input sets and alternative selection ---

const fig2Script = `
class A;
class B;

taskclass Feeder
{
    inputs { input main { a of class A } };
    outputs { outcome done { x of class A; y of class A } }
};

taskclass Chooser
{
    inputs
    {
        input first { p of class A };
        input second { q of class A }
    };
    outputs { outcome done { } }
};

taskclass App
{
    inputs { input main { a of class A } };
    outputs { outcome done { } }
};

compoundtask app of taskclass App
{
    task feeder of taskclass Feeder
    {
        implementation { "code" is "feeder" };
        inputs { input main { inputobject a from { a of task app if input main } } }
    };
    task chooser of taskclass Chooser
    {
        implementation { "code" is "chooser" };
        inputs
        {
            input first
            {
                inputobject p from { x of task feeder if output done; y of task feeder if output done }
            };
            input second
            {
                inputobject q from { y of task feeder if output done }
            }
        }
    };
    outputs { outcome done { notification from { task chooser if output done } } }
};
`

func TestFig2DeterministicSelection(t *testing.T) {
	// Both input sets become satisfiable in the same instant (one feeder
	// outcome carries both objects). The first-declared set must win, and
	// within it the first-declared alternative (x, not y).
	for trial := 0; trial < 20; trial++ {
		r := newRig(t, engine.Config{})
		r.impls.Bind("feeder", registry.Fixed("done", registry.Objects{
			"x": val("A", "fromX"), "y": val("A", "fromY"),
		}))
		var mu sync.Mutex
		var chosenSet, chosenVal string
		r.impls.Bind("chooser", func(ctx registry.Context) (registry.Result, error) {
			mu.Lock()
			chosenSet = ctx.InputSet()
			if v, ok := ctx.Inputs()["p"]; ok {
				chosenVal = v.Data.(string)
			}
			mu.Unlock()
			return registry.Result{Output: "done"}, nil
		})
		inst := r.run(t, fig2Script, fmt.Sprintf("fig2-%d", trial), "main", registry.Objects{"a": val("A", "seed")})
		waitResult(t, inst)
		mu.Lock()
		set, v := chosenSet, chosenVal
		mu.Unlock()
		if set != "first" {
			t.Fatalf("trial %d: chosen set = %q, want first (declaration order)", trial, set)
		}
		if v != "fromX" {
			t.Fatalf("trial %d: chosen alternative = %q, want fromX (first available in declaration order)", trial, v)
		}
	}
}

// --- Fig. 3: state transitions ---

const fig3Script = `
class D;

taskclass Cycler
{
    inputs { input main { seed of class D } };
    outputs
    {
        outcome finished { out of class D };
        repeat outcome again { counter of class D };
        mark progress { snapshot of class D }
    }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome finished { out of class D } }
};

compoundtask app of taskclass App
{
    task cycler of taskclass Cycler
    {
        implementation { "code" is "cycler" };
        inputs
        {
            input main
            {
                inputobject seed from
                {
                    counter of task cycler if output again;
                    seed of task app if input main
                }
            }
        }
    };
    outputs { outcome finished { outputobject out from { out of task cycler if output finished } } }
};
`

func TestFig3MarkRepeatRetryOutcome(t *testing.T) {
	r := newRig(t, engine.Config{MaxRetries: 2})
	var fails int
	var mu sync.Mutex
	r.impls.Bind("cycler", func(ctx registry.Context) (registry.Result, error) {
		n := ctx.Inputs()["seed"].Data.(int)
		mu.Lock()
		injectFail := n == 1 && fails == 0
		if injectFail {
			fails++
		}
		mu.Unlock()
		if injectFail {
			return registry.Result{}, errors.New("transient failure")
		}
		if err := ctx.Mark("progress", registry.Objects{"snapshot": val("D", n)}); err != nil {
			return registry.Result{}, err
		}
		if n < 3 {
			return registry.Result{Output: "again", Objects: registry.Objects{"counter": val("D", n+1)}}, nil
		}
		return registry.Result{Output: "finished", Objects: registry.Objects{"out": val("D", n)}}, nil
	})
	inst := r.run(t, fig3Script, "fig3", "main", registry.Objects{"seed": val("D", 0)})
	res := waitResult(t, inst)
	if res.Output != "finished" || res.Objects["out"].Data.(int) != 3 {
		t.Fatalf("result = %+v, want finished/3", res)
	}
	ev := inst.Events()
	if got := len(eventsByKind(ev, engine.EventTaskRepeated)); got != 3 {
		t.Errorf("repeats = %d, want 3 (0->1->2->3)", got)
	}
	if got := len(eventsByKind(ev, engine.EventTaskRetried)); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	// One mark per successful iteration (the retried activation marked
	// nothing because it failed before marking).
	if got := len(eventsByKind(ev, engine.EventTaskMarked)); got != 4 {
		t.Errorf("marks = %d, want 4", got)
	}
	// Repeat feedback used the repeat alternative (first in declaration
	// order once available): iterations observed seeds 1,2,3 from
	// counter.
	var repeats []int
	for _, e := range eventsByKind(ev, engine.EventTaskRepeated) {
		repeats = append(repeats, e.Objects["counter"].Data.(int))
	}
	for i, want := range []int{1, 2, 3} {
		if repeats[i] != want {
			t.Errorf("repeat %d carried counter %d, want %d", i, repeats[i], want)
		}
	}
}

func TestForcedAbortWhileWaiting(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	// Block t1 so t4 stays waiting, then force-abort t4 (Fig. 3 permits
	// aborts from the wait state, e.g. a user forcing an abort).
	release := make(chan struct{})
	r.impls.Bind("produce", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"d": val("Data", "s")}}, nil
	})
	inst := r.run(t, scripts.Fig1Diamond, "abort-wait", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskWaiting && e.Task == "diamond/t4"
	}); err != nil {
		t.Fatalf("t4 never became waiting: %v", err)
	}
	if err := inst.AbortTask("diamond/t4", ""); err != nil {
		t.Fatalf("abort t4: %v", err)
	}
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	// Diamond's only outcome needs t4's output, which aborted without
	// producing one: the instance stalls (failure surfaced to the
	// application, Section 2).
	if _, err := inst.Wait(ctx2); !errors.Is(err, engine.ErrStalled) {
		t.Fatalf("wait err = %v, want ErrStalled", err)
	}
}

// --- Atomic tasks: abort means no effects ---

const atomicScript = `
class D;

taskclass Mutator
{
    inputs { input main { seed of class D } };
    outputs
    {
        outcome changed { out of class D };
        abort outcome unchanged { }
    }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome done { }; outcome undone { } }
};

compoundtask app of taskclass App
{
    task mutator of taskclass Mutator
    {
        implementation { "code" is "mutate" };
        inputs { input main { inputobject seed from { seed of task app if input main } } }
    };
    outputs
    {
        outcome done { notification from { task mutator if output changed } };
        outcome undone { notification from { task mutator if output unchanged } }
    }
};
`

func TestAtomicTaskAbortHasNoEffects(t *testing.T) {
	r := newRig(t, engine.Config{})
	appState := r.preg.Object("app/balance")

	// Seed the application object.
	tx := r.mgr.Begin()
	if err := appState.Set(tx, 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	bindMutator := func(abort bool) {
		r.impls.Bind("mutate", func(ctx registry.Context) (registry.Result, error) {
			wtx := ctx.Txn()
			if wtx == nil {
				return registry.Result{}, errors.New("atomic task got no transaction")
			}
			var bal int
			if err := appState.Get(wtx, &bal); err != nil {
				return registry.Result{}, err
			}
			if err := appState.Set(wtx, bal+1); err != nil {
				return registry.Result{}, err
			}
			if abort {
				return registry.Result{Output: "unchanged"}, nil
			}
			return registry.Result{Output: "changed", Objects: registry.Objects{"out": val("D", bal+1)}}, nil
		})
	}

	// Run 1: the task aborts; its write must not be visible.
	bindMutator(true)
	inst := r.run(t, atomicScript, "atomic-abort", "main", registry.Objects{"seed": val("D", 0)})
	res := waitResult(t, inst)
	if res.Output != "undone" {
		t.Fatalf("outcome = %q, want undone", res.Output)
	}
	var bal int
	if err := appState.Peek(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance after abort = %d, want 100 (abort outcome must have no side effects)", bal)
	}

	// Run 2: the task commits; the write must be visible.
	bindMutator(false)
	inst2 := r.run(t, atomicScript, "atomic-commit", "main", registry.Objects{"seed": val("D", 0)})
	res2 := waitResult(t, inst2)
	if res2.Output != "done" {
		t.Fatalf("outcome = %q, want done", res2.Output)
	}
	if err := appState.Peek(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 101 {
		t.Fatalf("balance after commit = %d, want 101", bal)
	}
}

// --- Section 5.2: process order application ---

func bindProcessOrder(impls *registry.Registry, authorise, stock, dispatchOK bool) {
	if authorise {
		impls.Bind("refPaymentAuthorisation", registry.Fixed("authorised", registry.Objects{"paymentInfo": val("PaymentInfo", "visa")}))
	} else {
		impls.Bind("refPaymentAuthorisation", registry.Fixed("notAuthorised", nil))
	}
	if stock {
		impls.Bind("refCheckStock", registry.Fixed("stockAvailable", registry.Objects{"stockInfo": val("StockInfo", "warehouse-7")}))
	} else {
		impls.Bind("refCheckStock", registry.Fixed("stockNotAvailable", nil))
	}
	if dispatchOK {
		impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": val("DispatchNote", "note-1")}))
	} else {
		impls.Bind("refDispatch", registry.Fixed("dispatchFailed", nil))
	}
	impls.Bind("refPaymentCapture", registry.Fixed("done", nil))
}

func TestProcessOrderPaths(t *testing.T) {
	cases := []struct {
		name                         string
		authorise, stock, dispatchOK bool
		want                         string
	}{
		{"completed", true, true, true, "orderCompleted"},
		{"not_authorised", false, true, true, "orderCancelled"},
		{"no_stock", true, false, true, "orderCancelled"},
		{"dispatch_failed", true, true, false, "orderCancelled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, engine.Config{})
			bindProcessOrder(r.impls, tc.authorise, tc.stock, tc.dispatchOK)
			inst := r.run(t, scripts.ProcessOrder, "order-"+tc.name, "main", registry.Objects{"order": val("Order", "o-42")})
			res := waitResult(t, inst)
			if res.Output != tc.want {
				t.Fatalf("outcome = %q, want %q (events: %v)", res.Output, tc.want, inst.Events())
			}
			if tc.want == "orderCompleted" {
				if res.Objects["dispatchNote"].Data.(string) != "note-1" {
					t.Errorf("dispatchNote missing from compound outcome")
				}
			}
			if tc.name == "dispatch_failed" {
				aborted := eventsByKind(inst.Events(), engine.EventTaskAborted)
				if len(aborted) != 1 || aborted[0].Output != "dispatchFailed" {
					t.Errorf("expected exactly the dispatch abort, got %v", aborted)
				}
			}
		})
	}
}

func TestProcessOrderConcurrency(t *testing.T) {
	// paymentAuthorisation and checkStock must overlap: both started
	// before either completes (the paper runs them concurrently).
	r := newRig(t, engine.Config{})
	var mu sync.Mutex
	var bothRunning bool
	running := map[string]bool{}
	slow := func(name, output string, objs registry.Objects) registry.Func {
		return func(registry.Context) (registry.Result, error) {
			mu.Lock()
			running[name] = true
			if running["auth"] && running["stock"] {
				bothRunning = true
			}
			mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			running[name] = false
			mu.Unlock()
			return registry.Result{Output: output, Objects: objs}, nil
		}
	}
	r.impls.Bind("refPaymentAuthorisation", slow("auth", "authorised", registry.Objects{"paymentInfo": val("PaymentInfo", "p")}))
	r.impls.Bind("refCheckStock", slow("stock", "stockAvailable", registry.Objects{"stockInfo": val("StockInfo", "s")}))
	r.impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": val("DispatchNote", "n")}))
	r.impls.Bind("refPaymentCapture", registry.Fixed("done", nil))
	inst := r.run(t, scripts.ProcessOrder, "order-conc", "main", registry.Objects{"order": val("Order", "o")})
	waitResult(t, inst)
	mu.Lock()
	defer mu.Unlock()
	if !bothRunning {
		t.Error("paymentAuthorisation and checkStock never ran concurrently")
	}
}

// --- Section 5.1: service impact application ---

func bindServiceImpact(impls *registry.Registry, corrOut, analysisOut, resolutionOut string) {
	impls.Bind("refAlarmCorrelator", registry.Fixed(corrOut, registry.Objects{"faultReport": val("FaultReport", "link-loss")}))
	impls.Bind("refServiceImpactAnalysis", registry.Fixed(analysisOut, registry.Objects{"serviceImpactReports": val("ServiceImpactReports", "impacts")}))
	impls.Bind("refServiceImpactResolution", registry.Fixed(resolutionOut, registry.Objects{"resolutionReport": val("ResolutionReport", "reroute")}))
}

func TestServiceImpactOutcomes(t *testing.T) {
	cases := []struct {
		name                 string
		corr, analysis, reso string
		want                 string
	}{
		{"resolved", "foundFault", "foundImpacts", "foundResolution", "resolved"},
		{"not_resolved", "foundFault", "foundImpacts", "foundNoResolution", "notResolved"},
		{"correlator_failure", "alarmCorrelatorFailure", "foundImpacts", "foundResolution", "serviceImpactApplicationFailure"},
		{"analysis_failure", "foundFault", "serviceImpactAnalysisFailure", "foundResolution", "serviceImpactApplicationFailure"},
		{"resolution_failure", "foundFault", "foundImpacts", "serviceImpactResolutionFailure", "serviceImpactApplicationFailure"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, engine.Config{})
			bindServiceImpact(r.impls, tc.corr, tc.analysis, tc.reso)
			inst := r.run(t, scripts.ServiceImpact, "svc-"+tc.name, "main", registry.Objects{"alarmsSource": val("AlarmsSource", "net-alarms")})
			res := waitResult(t, inst)
			if res.Output != tc.want {
				t.Fatalf("outcome = %q, want %q", res.Output, tc.want)
			}
			if tc.want == "resolved" && res.Objects["resolutionReport"].Data.(string) != "reroute" {
				t.Error("resolution report not propagated to the compound outcome")
			}
		})
	}
}

// --- Section 5.3: business trip with compensation, repeat and mark ---

func bindBusinessTrip(impls *registry.Registry, offers [3]bool, hotelFailures int) *int32 {
	impls.Bind("refDataAcquisition", registry.Fixed("acquired", registry.Objects{"tripSpec": val("TripSpec", "AMS 26-29 May, < 500")}))
	for i, ok := range offers {
		name := fmt.Sprintf("refQueryAirline%d", i+1)
		if ok {
			impls.Bind(name, registry.Fixed("offer", registry.Objects{"flightOffer": val("FlightOffer", fmt.Sprintf("KL-%d", i+1))}))
		} else {
			impls.Bind(name, registry.Fixed("noOffer", nil))
		}
	}
	impls.Bind("refFlightReservation", func(ctx registry.Context) (registry.Result, error) {
		offer := ctx.Inputs()["flightOffer"].Data.(string)
		return registry.Result{Output: "reserved", Objects: registry.Objects{
			"plane": val("Plane", "plane:"+offer),
			"cost":  val("Cost", 423),
		}}, nil
	})
	var mu sync.Mutex
	remaining := hotelFailures
	var cancellations int32
	impls.Bind("refHotelReservation", func(registry.Context) (registry.Result, error) {
		mu.Lock()
		defer mu.Unlock()
		if remaining > 0 {
			remaining--
			return registry.Result{Output: "failed"}, nil
		}
		return registry.Result{Output: "booked", Objects: registry.Objects{"hotel": val("Hotel", "Krasnapolsky")}}, nil
	})
	impls.Bind("refFlightCancellation", func(registry.Context) (registry.Result, error) {
		mu.Lock()
		defer mu.Unlock()
		cancellations++
		return registry.Result{Output: "cancelled"}, nil
	})
	impls.Bind("refPrintTickets", registry.Fixed("printed", registry.Objects{"tickets": val("Tickets", "TK-1")}))
	return &cancellations
}

func TestBusinessTripSuccessFirstTry(t *testing.T) {
	r := newRig(t, engine.Config{})
	cancels := bindBusinessTrip(r.impls, [3]bool{true, true, true}, 0)
	inst := r.run(t, scripts.BusinessTrip, "trip-ok", "main", registry.Objects{"user": val("User", "fred")})
	res := waitResult(t, inst)
	if res.Output != "tripBooked" {
		t.Fatalf("outcome = %q, want tripBooked", res.Output)
	}
	if *cancels != 0 {
		t.Errorf("flight cancelled %d times on the happy path", *cancels)
	}
	// The mark toPay must have been released with the flight cost, before
	// the terminal outcome (early release, Fig. 8).
	ev := inst.Events()
	marks := eventsByKind(ev, engine.EventTaskMarked)
	var toPaySeq int
	for _, m := range marks {
		if m.Task == "tripReservation" && m.Output == "toPay" {
			toPaySeq = m.Seq
			if m.Objects["cost"].Data.(int) != 423 {
				t.Errorf("toPay cost = %v, want 423", m.Objects["cost"].Data)
			}
		}
	}
	if toPaySeq == 0 {
		t.Fatal("mark toPay never emitted")
	}
	completed := eventsByKind(ev, engine.EventInstanceCompleted)
	if len(completed) != 1 || toPaySeq >= completed[0].Seq {
		t.Error("toPay mark must precede instance completion")
	}
	// First-available alternative: flight offer came from queryAirline1.
	for _, e := range eventsByKind(ev, engine.EventTaskStarted) {
		if e.Task == "tripReservation/businessReservation/flightReservation" {
			// Input was flightFound mapping, whose first source is
			// queryAirline1.
		}
	}
	if res.Objects["tickets"].Data.(string) != "TK-1" {
		t.Error("tickets not propagated")
	}
}

func TestBusinessTripCompensationAndRetry(t *testing.T) {
	r := newRig(t, engine.Config{})
	cancels := bindBusinessTrip(r.impls, [3]bool{false, true, true}, 2)
	inst := r.run(t, scripts.BusinessTrip, "trip-retry", "main", registry.Objects{"user": val("User", "fred")})
	res := waitResult(t, inst)
	if res.Output != "tripBooked" {
		t.Fatalf("outcome = %q, want tripBooked (events: %v)", res.Output, inst.Events())
	}
	// Two hotel failures -> two compensating flight cancellations -> two
	// repeat iterations of businessReservation before success.
	if *cancels != 2 {
		t.Errorf("flight cancellations = %d, want 2 (compensation per failed attempt)", *cancels)
	}
	repeats := 0
	for _, e := range eventsByKind(inst.Events(), engine.EventTaskRepeated) {
		if e.Task == "tripReservation/businessReservation" {
			repeats++
		}
	}
	if repeats != 2 {
		t.Errorf("businessReservation repeats = %d, want 2", repeats)
	}
}

func TestBusinessTripNoFlight(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindBusinessTrip(r.impls, [3]bool{false, false, false}, 0)
	inst := r.run(t, scripts.BusinessTrip, "trip-nofly", "main", registry.Objects{"user": val("User", "fred")})
	res := waitResult(t, inst)
	if res.Output != "tripFailed" {
		t.Fatalf("outcome = %q, want tripFailed", res.Output)
	}
}

// --- Crash recovery ---

func TestCrashRecoveryResumesWorkflow(t *testing.T) {
	st := store.NewMemStore()

	// Engine 1: t4's implementation blocks forever; stop mid-flight.
	mgr1 := txn.NewManager(st)
	preg1 := persist.NewRegistry(st, mgr1, nil)
	impls1 := registry.New()
	bindDiamond(impls1)
	blocked := make(chan struct{})
	impls1.Bind("join", func(ctx registry.Context) (registry.Result, error) {
		close(blocked)
		<-ctx.Done()
		return registry.Result{}, errors.New("cancelled")
	})
	eng1 := engine.New(preg1, impls1, engine.Config{})
	schema := sema.MustCompileSource("diamond.wf", []byte(scripts.Fig1Diamond))
	inst1, err := eng1.Instantiate("recover-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst1.Start("main", registry.Objects{"seed": val("Data", "s")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("t4 never started")
	}
	inst1.Stop()
	eng1.Close()

	// Engine 2 over the same store: recovery must resume and finish.
	mgr2 := txn.NewManager(st)
	preg2 := persist.NewRegistry(st, mgr2, nil)
	if _, err := preg2.Recover(); err != nil {
		t.Fatalf("registry recover: %v", err)
	}
	impls2 := registry.New()
	bindDiamond(impls2)
	eng2 := engine.New(preg2, impls2, engine.Config{})
	defer eng2.Close()
	inst2, err := eng2.Recover("recover-1", sema.CompileSource)
	if err != nil {
		t.Fatalf("engine recover: %v", err)
	}
	res := waitResult(t, inst2)
	if res.Output != "done" || res.Objects["d"].Data.(string) != "s+s" {
		t.Fatalf("recovered result = %+v, want done/s+s", res)
	}
	// t1..t3 must NOT have re-executed: their completions were persisted.
	startedT1 := 0
	for _, e := range eventsByKind(inst2.Events(), engine.EventTaskStarted) {
		if e.Task == "diamond/t1" {
			startedT1++
		}
	}
	if startedT1 != 0 {
		t.Errorf("t1 re-executed after recovery; completed tasks must not rerun")
	}
}

// --- Dynamic reconfiguration (the paper's t5 example) ---

const t5Fragment = `
task t5 of taskclass Join
{
    implementation { "code" is "join" };
    inputs
    {
        input main
        {
            inputobject left from { d of task t2 if output done };
            inputobject right from { d of task t1 if output done }
        }
    }
};
`

func TestReconfigureAddTaskWhileRunning(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	// Hold t3 so the workflow cannot finish before we reconfigure.
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		if ctx.TaskPath() == "diamond/t3" {
			<-gate
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"d": ctx.Inputs()["in"]}}, nil
	})
	inst := r.run(t, scripts.Fig1Diamond, "reconf-1", "main", registry.Objects{"seed": val("Data", "s")})

	// Wait for t2 to complete, then add t5 depending on t2 and t1 (the
	// paper's scenario, adapted to the diamond's classes).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskCompleted && e.Task == "diamond/t2"
	}); err != nil {
		t.Fatalf("t2 never completed: %v", err)
	}
	if err := inst.Reconfigure(&engine.AddTaskOp{ScopePath: "diamond", Fragment: t5Fragment}); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	// t5's dependencies are already satisfied; it should start and finish
	// while t3 is still gated.
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskCompleted && e.Task == "diamond/t5"
	}); err != nil {
		t.Fatalf("t5 never completed after reconfiguration: %v", err)
	}
	close(gate)
	res := waitResult(t, inst)
	if res.Output != "done" {
		t.Fatalf("outcome = %q, want done", res.Output)
	}
}

func TestReconfigureValidation(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	gate := make(chan struct{})
	defer close(gate)
	r.impls.Bind("produce", func(ctx registry.Context) (registry.Result, error) {
		<-gate
		return registry.Result{}, errors.New("cancelled")
	})
	inst := r.run(t, scripts.Fig1Diamond, "reconf-bad", "main", registry.Objects{"seed": val("Data", "s")})

	// Removing a task that others depend on must fail.
	err := inst.Reconfigure(&engine.RemoveTaskOp{ScopePath: "diamond", Name: "t1"})
	if err == nil || !errors.Is(err, core.ErrHasDependents) {
		t.Fatalf("remove depended-upon task: err = %v, want ErrHasDependents", err)
	}
	// A batch with one bad op must apply nothing (atomicity).
	err = inst.Reconfigure(
		&engine.AddTaskOp{ScopePath: "diamond", Fragment: t5Fragment},
		&engine.RemoveTaskOp{ScopePath: "diamond", Name: "no-such-task"},
	)
	if err == nil {
		t.Fatal("batch with invalid op must fail")
	}
	if got := inst.Schema().Lookup("diamond/t5"); got != nil {
		t.Error("failed batch leaked t5 into the schema (not atomic)")
	}
	// Duplicate add must fail cleanly.
	if err := inst.Reconfigure(&engine.AddTaskOp{ScopePath: "diamond", Fragment: t5Fragment}); err != nil {
		t.Fatalf("valid add failed: %v", err)
	}
	if err := inst.Reconfigure(&engine.AddTaskOp{ScopePath: "diamond", Fragment: t5Fragment}); err == nil {
		t.Fatal("duplicate add must fail")
	}
}

// --- Online upgrade: rebinding implementations at run time ---

func TestOnlineUpgradeRebind(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		if ctx.TaskPath() == "diamond/t2" {
			<-gate
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"d": ctx.Inputs()["in"]}}, nil
	})
	inst := r.run(t, scripts.Fig1Diamond, "upgrade-1", "main", registry.Objects{"seed": val("Data", "s")})

	// While the workflow runs, upgrade "join" (t4 has not started yet: it
	// needs t2). The new version must be picked up because binding is
	// resolved at activation time.
	r.impls.Bind("join", func(ctx registry.Context) (registry.Result, error) {
		return registry.Result{Output: "done", Objects: registry.Objects{"d": val("Data", "v2")}}, nil
	})
	close(gate)
	res := waitResult(t, inst)
	if res.Objects["d"].Data.(string) != "v2" {
		t.Fatalf("join result = %v, want v2 (late binding at activation)", res.Objects["d"].Data)
	}
	if r.impls.Version("join") != 2 {
		t.Errorf("join version = %d, want 2", r.impls.Version("join"))
	}
}

// --- Deadline enforcement ---

const deadlineScript = `
class D;

taskclass Slow
{
    inputs { input main { seed of class D } };
    outputs
    {
        outcome done { };
        abort outcome tooSlow { }
    }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome ok { }; outcome slow { } }
};

compoundtask app of taskclass App
{
    task slow of taskclass Slow
    {
        implementation { "code" is "slow"; "deadline" is "30ms" };
        inputs { input main { inputobject seed from { seed of task app if input main } } }
    };
    outputs
    {
        outcome ok { notification from { task slow if output done } };
        outcome slow { notification from { task slow if output tooSlow } }
    }
};
`

func TestDeadlineMapsToAbortOutcome(t *testing.T) {
	r := newRig(t, engine.Config{MaxRetries: 1})
	r.impls.Bind("slow", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-time.After(5 * time.Second):
			return registry.Result{Output: "done"}, nil
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
	})
	inst := r.run(t, deadlineScript, "deadline-1", "main", registry.Objects{"seed": val("D", 0)})
	res := waitResult(t, inst)
	if res.Output != "slow" {
		t.Fatalf("outcome = %q, want slow (deadline exceeded maps to abort outcome after retries)", res.Output)
	}
	if got := len(eventsByKind(inst.Events(), engine.EventTaskRetried)); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}
