package engine

import (
	"fmt"
	"time"

	"repro/internal/registry"
)

// EventKind classifies instance events. The sequence of events for one
// task mirrors the state-transition diagram of Fig. 3: waiting, executing
// (started), mark, repeat, outcome / abort, with retries interleaved.
type EventKind int

// Event kinds.
const (
	// EventTaskWaiting: a task run became active and awaits its inputs.
	EventTaskWaiting EventKind = iota + 1
	// EventTaskStarted: an input set was satisfied and execution began.
	EventTaskStarted
	// EventTaskMarked: a mark output was released mid-execution.
	EventTaskMarked
	// EventTaskRepeated: a repeat outcome re-entered the task into Wait.
	EventTaskRepeated
	// EventTaskRetried: a system-level failure triggered an automatic
	// retry.
	EventTaskRetried
	// EventTaskCompleted: terminal non-abort outcome.
	EventTaskCompleted
	// EventTaskAborted: terminal abort outcome (no side effects).
	EventTaskAborted
	// EventTaskFailed: the implementation violated its contract or
	// retries were exhausted with no abort outcome to map to.
	EventTaskFailed
	// EventInstanceCompleted: the root task terminated.
	EventInstanceCompleted
	// EventInstanceStalled: no task is executing, none can start, and the
	// root is not terminal — the failure exception surfaced to the
	// application (Section 2).
	EventInstanceStalled
	// EventReconfigured: a dynamic reconfiguration was applied.
	EventReconfigured
	// EventTimerArmed: a first-class delay was armed on the durable
	// timing wheel at an absolute deadline (also emitted when recovery
	// re-arms a persisted timer record).
	EventTimerArmed
	// EventTimerFired: a delay reached its deadline and produced its
	// outcome; the fire flows through the dirty-set scheduler like any
	// other availability event.
	EventTimerFired
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventTaskWaiting:
		return "waiting"
	case EventTaskStarted:
		return "started"
	case EventTaskMarked:
		return "marked"
	case EventTaskRepeated:
		return "repeated"
	case EventTaskRetried:
		return "retried"
	case EventTaskCompleted:
		return "completed"
	case EventTaskAborted:
		return "aborted"
	case EventTaskFailed:
		return "failed"
	case EventInstanceCompleted:
		return "instance-completed"
	case EventInstanceStalled:
		return "instance-stalled"
	case EventReconfigured:
		return "reconfigured"
	case EventTimerArmed:
		return "timer-armed"
	case EventTimerFired:
		return "timer-fired"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of an instance's observable trace.
type Event struct {
	Seq      int
	Time     time.Time
	Instance string
	// Task is the slash path of the task, empty for instance-level
	// events.
	Task string
	Kind EventKind
	// Output is the produced output name for mark/repeat/complete/abort
	// events; InputSet the chosen set for started events.
	Output   string
	InputSet string
	// Objects carries the produced objects for marks and terminal
	// outputs.
	Objects registry.Objects
	// Attempt and Iteration snapshot the retry/repeat counters.
	Attempt   int
	Iteration int
	// Deadline is the absolute fire instant for timer-armed events.
	Deadline time.Time
	// Err holds the failure message for retried/failed events.
	Err string
}

// String renders a compact one-line form for logs and the admin tool.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s", e.Seq, e.Kind, e.Task)
	if e.Output != "" {
		s += " output=" + e.Output
	}
	if e.InputSet != "" {
		s += " set=" + e.InputSet
	}
	if e.Iteration > 0 {
		s += fmt.Sprintf(" iter=%d", e.Iteration)
	}
	if e.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if !e.Deadline.IsZero() {
		s += " deadline=" + e.Deadline.Format("15:04:05.000")
	}
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}
