package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the engine's re-materialization path: everything that
// turns persisted instance state back into a live controller. Recover
// is the single-instance entry point (the original crash-restart path);
// ListPersisted, RecoverMatching and StopMatching are the set-oriented
// faces the sharded coordinator tier drives — a partition lease won
// re-materializes exactly that partition's instances, a lease lost
// stops exactly them — and the passivation roadmap item will reuse the
// same load path to wake a hibernated instance.

// Recover rebuilds an instance from its persisted state after a crash or
// restart: the schema is recompiled from its stored source, persisted
// reconfigurations are re-applied, run states are reloaded, and
// implementations that were executing are re-activated (at-least-once
// execution; atomic tasks get effective exactly-once because their
// effects commit with their outcome).
//
// Call persist.Registry.Recover first to roll forward the write-ahead
// log.
func (e *Engine) Recover(id string, compile SchemaCompiler) (*Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.recoverLocked(id, compile, "explicit")
}

// recoverLocked loads, registers and starts one persisted instance.
// cause labels the recovery counter and span: "restart" (process came
// back and re-materialized its own state), "lease-steal" (a takeover
// peer re-materialized a dead owner's partition) or "explicit" (direct
// Recover call). Callers hold e.mu.
func (e *Engine) recoverLocked(id string, compile SchemaCompiler, cause string) (*Instance, error) {
	if _, dup := e.instances[id]; dup {
		return nil, fmt.Errorf("recover %s: %w", id, ErrInstanceExists)
	}
	start := e.clock.Now()
	inst, err := e.loadInstanceLocked(id, compile)
	if err != nil {
		return nil, err
	}
	e.instances[id] = inst
	e.met.instancesLive.Set(int64(len(e.instances)))
	e.reg.Counter(obs.MEngineRecoveries, "cause", cause).Inc()
	e.met.recoverySeconds.ObserveSince(e.clock, start)
	// The recovery span joins the instance's original trace (the trace
	// ID rode the persisted meta), so a stitched tree shows the steal:
	// the instance's trace continues on coordinator B under the same ID.
	e.tracer.Record(obs.Span{
		TraceID: inst.meta.TraceID, SpanID: obs.NewID(), Parent: inst.meta.TraceID,
		Name: "recover", Instance: id, Start: start, End: e.clock.Now(),
		Attrs: map[string]string{"cause": cause},
	})
	go inst.loop()
	inst.resumeExecuting()
	return inst, nil
}

// loadInstanceLocked re-materializes one instance from the store into a
// ready-to-start *Instance: schema recompiled, reconfigurations
// re-applied, run states reloaded, compounds re-activated, delay timers
// re-armed at their original absolute deadlines, and everything marked
// dirty for one full evaluation. It does not register the instance or
// start its controller — that split is what lets set-oriented callers
// (partition takeover, future passivation wake-ups) reuse the load path.
// Callers hold e.mu.
func (e *Engine) loadInstanceLocked(id string, compile SchemaCompiler) (*Instance, error) {
	var meta instanceMeta
	if err := e.preg.Object(metaKey(id)).Peek(&meta); err != nil {
		return nil, fmt.Errorf("recover %s: %w", id, err)
	}
	if meta.TraceID == "" {
		// Meta persisted before activation tracing existed: re-mint so
		// post-recovery spans still form a (new) tree.
		meta.TraceID = obs.NewID()
	}
	schema, err := compile(meta.SchemaName, []byte(meta.SchemaSource))
	if err != nil {
		return nil, fmt.Errorf("recover %s: recompile schema: %w", id, err)
	}
	root, err := schema.Root(meta.RootName)
	if err != nil {
		return nil, fmt.Errorf("recover %s: %w", id, err)
	}
	inst := e.newInstance(id, schema, root)
	inst.meta = meta

	// Re-apply persisted reconfigurations in order.
	for seq := 0; seq < meta.ReconfigSeq; seq++ {
		var rec reconfigRecord
		if err := e.preg.Object(reconfigKey(id, seq)).Peek(&rec); err != nil {
			return nil, fmt.Errorf("recover %s: reconfig %d: %w", id, seq, err)
		}
		for _, op := range rec.Ops {
			if err := op.Apply(schema, root); err != nil {
				return nil, fmt.Errorf("recover %s: re-apply reconfig %d: %w", id, seq, err)
			}
		}
	}
	inst.reconfigSeq = meta.ReconfigSeq
	// newInstance derived the evaluation order (and the dependency index)
	// from the freshly recompiled schema, before the reconfigurations
	// above mutated it; recompute so reconfiguration-added tasks are
	// evaluated and listed again after recovery.
	inst.rebuildOrder()

	// Reload run states.
	prefix := store.ID("inst/" + id + "/run/")
	ids, err := e.preg.Store().List(prefix)
	if err != nil {
		return nil, fmt.Errorf("recover %s: %w", id, err)
	}
	for _, sid := range ids {
		var st runState
		if err := e.preg.Object(sid).Peek(&st); err != nil {
			return nil, fmt.Errorf("recover %s: run %s: %w", id, sid, err)
		}
		task := schema.Lookup(st.Path)
		if task == nil {
			// The task was removed by reconfiguration after this state
			// was written, or the path belongs to a reset subtree;
			// ignore.
			continue
		}
		inst.runs[st.Path] = inst.newRun(task, st)
	}
	if inst.runs[root.Path()] == nil {
		inst.runs[root.Path()] = inst.newRun(root, runState{Path: root.Path(), State: RunWaiting})
	}
	// A crash between a compound's start persisting and its constituents'
	// first persists leaves the compound Executing with members missing;
	// re-run activation (existing runs are kept) so recovery cannot stall
	// there. Walk in schema order so outer compounds activate first.
	for _, path := range inst.order {
		if r, ok := inst.runs[path]; ok && r.st.State == RunExecuting && r.task.Compound {
			inst.activateConstituents(r.task)
		}
	}
	// Re-arm pending delay timers from their persisted records at their
	// original absolute deadlines — a delay survives the crash and fires
	// once at the instant it was armed for, not a full duration after
	// restart.
	if err := inst.rearmTimers(); err != nil {
		return nil, fmt.Errorf("recover %s: %w", id, err)
	}
	// Recovery cannot tell which dependencies became satisfiable while the
	// instance was down: one full evaluation over every reloaded run.
	inst.markAllDirty()
	return inst, nil
}

// ListPersisted returns the distinct instance IDs with persisted state
// in st, in lexical order — the inventory a recovery pass (or a
// partition takeover) walks.
func ListPersisted(st store.Store) ([]string, error) {
	ids, err := st.List("inst/")
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, id := range ids {
		rest := strings.TrimPrefix(string(id), "inst/")
		inst, _, _ := strings.Cut(rest, "/")
		if inst == "" || seen[inst] {
			continue
		}
		seen[inst] = true
		out = append(out, inst)
	}
	sort.Strings(out)
	return out, nil
}

// RecoverMatching re-materializes every persisted instance accepted by
// match that is not already live, returning the IDs recovered. Failures
// are collected (joined into the returned error) rather than aborting
// the pass — one corrupt instance must not keep a whole partition's
// peers from coming back. A nil match recovers everything. Recoveries
// are counted under cause "restart"; takeover paths that know better
// call RecoverMatchingCause.
func (e *Engine) RecoverMatching(compile SchemaCompiler, match func(id string) bool) ([]string, error) {
	return e.RecoverMatchingCause(compile, match, "restart")
}

// RecoverMatchingCause is RecoverMatching with an explicit recovery
// cause for the engine_recoveries_total counter and the recovery spans
// ("restart", "lease-steal", "explicit").
func (e *Engine) RecoverMatchingCause(compile SchemaCompiler, match func(id string) bool, cause string) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids, err := ListPersisted(e.preg.Store())
	if err != nil {
		return nil, err
	}
	var recovered []string
	var errs []error
	for _, id := range ids {
		if match != nil && !match(id) {
			continue
		}
		if _, live := e.instances[id]; live {
			continue
		}
		if _, err := e.recoverLocked(id, compile, cause); err != nil {
			errs = append(errs, err)
			continue
		}
		recovered = append(recovered, id)
	}
	return recovered, errors.Join(errs...)
}

// StopMatching stops every live instance accepted by match — halting
// controllers and cancelling executing implementations, persistent
// state left recoverable — and returns the IDs stopped. It is the
// teardown half of partition ownership: losing a lease stops exactly
// the partition's instances so the new owner can re-materialize them.
func (e *Engine) StopMatching(match func(id string) bool) []string {
	e.mu.Lock()
	var victims []*Instance
	for id, inst := range e.instances {
		if match == nil || match(id) {
			victims = append(victims, inst)
		}
	}
	e.mu.Unlock()
	// Stop outside the table lock: Stop blocks on the controller loop
	// draining, and the loop's teardown re-enters the engine (drop).
	out := make([]string, 0, len(victims))
	for _, inst := range victims {
		inst.Stop()
		out = append(out, inst.id)
	}
	sort.Strings(out)
	return out
}
