package engine_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/timers"
	"repro/internal/txn"
)

// The engine half of the crash-consistency gauntlet: run a chain of
// first-class delay tasks to completion over a real WALStore, then
// re-materialize the WAL truncated at every record boundary — every
// legal crash point — recover a fresh engine over it, and drive the
// recovered instance to completion on virtual time. The timer contract
// under test, at every cut:
//
//   - no double-fire: a delay whose terminal state was durable at the
//     crash never fires again after recovery, and no delay fires more
//     than once within the recovered run;
//   - no lost fire: every delay the durable prefix still holds as
//     executing fires exactly once after recovery, and the instance
//     completes from any prefix that acknowledged its creation.
func TestGauntletNoDoubleFire(t *testing.T) {
	const nDelays = 5
	src := delayChainScript(nDelays)
	schema := sema.MustCompileSource("gauntlet.wf", []byte(src))

	// Phase 1: record the workload's WAL byte stream.
	recDir := t.TempDir()
	st1, err := store.NewWALStore(recDir)
	if err != nil {
		t.Fatal(err)
	}
	st1.SetSync(false)
	st1.SetMaxSegmentBytes(1 << 30)
	st1.SetCompactThreshold(1 << 30)
	clock1 := timers.NewFakeClock(epoch)
	preg1 := persist.NewRegistry(st1, txn.NewManager(st1), nil)
	eng1 := engine.New(preg1, registry.New(), engine.Config{Clock: clock1})
	inst1, err := eng1.Instantiate("gauntlet", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst1.Start("main", registry.Objects{"d": val("D", "x")}); err != nil {
		t.Fatal(err)
	}
	driveDelays(t, inst1, clock1)
	if n := len(eventsByKind(inst1.Events(), engine.EventTimerFired)); n != nDelays {
		t.Fatalf("recording run fired %d timers, want %d", n, nDelays)
	}
	eng1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(recDir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one recorded segment, got %v (err %v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])
	ends := walRecordEnds(t, raw)

	// Phase 2: recover from every boundary prefix. Recovery must start
	// succeeding at some early boundary (the instantiation flush) and
	// never regress after that.
	recovered := false
	for k := 0; k <= len(ends); k++ {
		var cut int64
		if k > 0 {
			cut = ends[k-1]
		}
		label := fmt.Sprintf("boundary %d/%d (offset %d)", k, len(ends), cut)

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := store.NewWALStore(dir)
		if err != nil {
			t.Fatalf("%s: torn-tail reopen failed: %v", label, err)
		}
		st2.SetSync(false)
		preg2 := persist.NewRegistry(st2, txn.NewManager(st2), nil)
		if _, err := preg2.Recover(); err != nil {
			t.Fatalf("%s: transaction roll-forward: %v", label, err)
		}
		clock2 := timers.NewFakeClock(epoch)
		eng2 := engine.New(preg2, registry.New(), engine.Config{Clock: clock2})

		inst2, err := eng2.Recover("gauntlet", sema.CompileSource)
		if err != nil {
			if recovered {
				t.Fatalf("%s: recovery regressed after succeeding at an earlier boundary: %v", label, err)
			}
			// Before the instantiation flush there is nothing durable to
			// recover — and nothing was acknowledged to anyone either.
			eng2.Close()
			st2.Close()
			continue
		}
		recovered = true

		// Which delays does the durable prefix hold as already terminal?
		// Those fires were acknowledged; recovery must never repeat them.
		durableDone := map[string]bool{}
		rows, err := inst2.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", label, err)
		}
		for _, row := range rows {
			if row.State == engine.RunCompleted {
				durableDone[row.Path] = true
			}
		}

		// A prefix that holds the instantiation but not the Start flush
		// recovers as created-not-started: Start was never acknowledged,
		// so the client's retry re-issues it (at-least-once).
		if inst2.Status() == engine.StatusCreated {
			if err := inst2.Start("main", registry.Objects{"d": val("D", "x")}); err != nil {
				t.Fatalf("%s: re-issued Start: %v", label, err)
			}
		}
		if inst2.Status() != engine.StatusCompleted {
			driveDelays(t, inst2, clock2)
		}
		if got := inst2.Status(); got != engine.StatusCompleted {
			t.Fatalf("%s: recovered instance finished %v, want completed (events: %v)", label, got, inst2.Events())
		}

		fires := map[string]int{}
		for _, ev := range eventsByKind(inst2.Events(), engine.EventTimerFired) {
			fires[ev.Task]++
		}
		for path, n := range fires {
			if n > 1 {
				t.Fatalf("%s: %s fired %d times in the recovered run", label, path, n)
			}
			if durableDone[path] {
				t.Fatalf("%s: %s re-fired after its completion was already durable at the crash", label, path)
			}
		}
		eng2.Close()
		st2.Close()
	}
	if !recovered {
		t.Fatal("no boundary ever recovered the instance; the sweep tested nothing")
	}
}

// delayChainScript builds a sequential chain of n first-class 1s delay
// tasks: t1 seeds from the app input, each t(i+1) from t(i)'s output.
func delayChainScript(n int) string {
	var b strings.Builder
	b.WriteString(`
class D;
taskclass TStage
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
taskclass App
{
    inputs { input main { d of class D } };
    outputs { outcome done { d of class D } }
};
compoundtask app of taskclass App
{
`)
	for i := 1; i <= n; i++ {
		src := "{ d of task app if input main }"
		if i > 1 {
			src = fmt.Sprintf("{ d of task t%d if output done }", i-1)
		}
		fmt.Fprintf(&b, `    task t%d of taskclass TStage
    {
        implementation { "delay" is "1s" };
        inputs { input main { inputobject d from %s } }
    };
`, i, src)
	}
	fmt.Fprintf(&b, `    outputs { outcome done { outputobject d from { d of task t%d if output done } } }
};
`, n)
	return b.String()
}

// driveDelays drives the instance to a terminal status on virtual
// time: whenever the event stream shows an armed delay with no fire
// yet, the clock jumps straight to the earliest such deadline.
func driveDelays(t *testing.T, inst *engine.Instance, clock *timers.FakeClock) {
	t.Helper()
	wall := time.Now().Add(20 * time.Second)
	for time.Now().Before(wall) {
		if inst.Status() != engine.StatusRunning {
			return
		}
		armedAt := map[string]time.Time{}
		armed := map[string]int{}
		fired := map[string]int{}
		for _, ev := range inst.Events() {
			switch ev.Kind {
			case engine.EventTimerArmed:
				armed[ev.Task]++
				armedAt[ev.Task] = ev.Deadline
			case engine.EventTimerFired:
				fired[ev.Task]++
			}
		}
		var next time.Time
		for task, n := range armed {
			if n > fired[task] && (next.IsZero() || armedAt[task].Before(next)) {
				next = armedAt[task]
			}
		}
		if next.IsZero() {
			// Between a fire and the next task's arm: let the loop run.
			time.Sleep(time.Millisecond)
			continue
		}
		if d := next.Sub(clock.Now()); d > 0 {
			clock.Advance(d)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("instance never finished: status %v (events: %v)", inst.Status(), inst.Events())
}

// walRecordEnds parses the WAL segment framing ([4B len][4B CRC]
// [payload], big-endian) and returns the offset just past each record.
func walRecordEnds(t *testing.T, raw []byte) []int64 {
	t.Helper()
	var ends []int64
	off := 0
	for off < len(raw) {
		if off+8 > len(raw) {
			t.Fatalf("trailing %d bytes are not a record header", len(raw)-off)
		}
		n := int(uint32(raw[off])<<24 | uint32(raw[off+1])<<16 | uint32(raw[off+2])<<8 | uint32(raw[off+3]))
		if off+8+n > len(raw) {
			t.Fatalf("record at %d claims %d bytes past EOF", off, n)
		}
		off += 8 + n
		ends = append(ends, int64(off))
	}
	return ends
}
