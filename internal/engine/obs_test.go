package engine_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/workload"
)

// waitTotal polls reg.Total(name) until it reaches want; a leaked gauge
// (the regression this file pins) fails here with the stuck value.
func waitTotal(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Total(name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, reg.Total(name), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRemoteGateGaugesDecrementOnAbandon pins the abandoned-gate
// accounting: an activation whose deadline fires while it is still
// QUEUED on the remote-dispatch gate exits through the abandoned branch
// of the gate select, and engine_remote_waiting must come back down on
// that path exactly as on the dispatched one. Before the fix the gauge
// stayed permanently elevated after every deadline-killed queue wait.
func TestRemoteGateGaugesDecrementOnAbandon(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	invoked := make(chan struct{}, 16)
	invoke := func(req engine.RemoteRequest) (registry.Result, error) {
		invoked <- struct{}{}
		// Hold the single gate slot until the test releases it: every
		// other activation queues on the gate and dies by deadline there.
		<-release
		return registry.Result{Output: "done", Objects: registry.Objects{"out": req.Inputs["in"]}}, nil
	}
	env := newRig(t, engine.Config{
		Ephemeral:         true,
		RemoteInvoker:     invoke,
		MaxRemoteInflight: 1,
		MaxRetries:        1,
		DefaultDeadline:   300 * time.Millisecond,
		Metrics:           reg,
	})
	workload.Bind(env.impls)
	schema := sema.MustCompileSource("obsgate", []byte(workload.LocatedFanOut(2, "pool")))
	inst, err := env.eng.Instantiate("obsgate-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	// One dispatch occupies the gate slot inside the blocked invoker...
	<-invoked
	waitTotal(t, reg, obs.MEngineRemoteInflight, 1)
	// ...so the second activation queues on the gate.
	waitTotal(t, reg, obs.MEngineRemoteWaiting, 1)

	// Deadlines fire, retries re-queue and abandon again, the instance
	// settles (stalled or failed — the slot never frees). The waiting
	// gauge must be back at zero: every queued wait that died by
	// deadline decremented on its way out.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_, _ = inst.Wait(ctx)
	waitTotal(t, reg, obs.MEngineRemoteWaiting, 0)
	// Exactly one invocation ever entered the invoker and it still holds
	// the slot.
	if got := reg.Total(obs.MEngineRemoteInflight); got != 1 {
		t.Fatalf("engine_remote_inflight = %d with the invoker still blocked, want 1", got)
	}

	// Releasing the invoker frees the slot: inflight returns to zero.
	close(release)
	waitTotal(t, reg, obs.MEngineRemoteInflight, 0)
	waitTotal(t, reg, obs.MEngineRemoteWaiting, 0)
}
