package engine_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/workload"
)

// gaugedInvoker counts concurrent invocations and records the peak.
type gaugedInvoker struct {
	cur, peak, total atomic.Int64
	delay            time.Duration
}

func (g *gaugedInvoker) invoke(req engine.RemoteRequest) (registry.Result, error) {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			break
		}
	}
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	g.total.Add(1)
	g.cur.Add(-1)
	return registry.Result{Output: "done", Objects: registry.Objects{"out": req.Inputs["in"]}}, nil
}

// TestRemoteDispatchGateBoundsConcurrency starts a 32-wide located
// fan-out with MaxRemoteInflight 4: every stage dispatches remotely, yet
// at most 4 dispatches may be in flight at any instant.
func TestRemoteDispatchGateBoundsConcurrency(t *testing.T) {
	const width, gateCap = 32, 4
	g := &gaugedInvoker{delay: 2 * time.Millisecond}
	env := newRig(t, engine.Config{
		Ephemeral:         true,
		RemoteInvoker:     g.invoke,
		MaxRemoteInflight: gateCap,
	})
	workload.Bind(env.impls)

	schema := sema.MustCompileSource("gate", []byte(workload.LocatedFanOut(width, "pool")))
	inst, err := env.eng.Instantiate("gate-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "done" {
		t.Fatalf("outcome = %q", res.Output)
	}
	if got := g.total.Load(); got != width {
		t.Fatalf("remote dispatches = %d, want %d", got, width)
	}
	if p := g.peak.Load(); p > gateCap {
		t.Fatalf("peak concurrent remote dispatches = %d, exceeds MaxRemoteInflight %d", p, gateCap)
	}
	if p := g.peak.Load(); p < 2 {
		t.Fatalf("peak concurrent remote dispatches = %d; the gate serialised everything", p)
	}
}

// TestRemoteDispatchUnboundedByDefault pins the default: no gate, the
// whole fan-out runs concurrently.
func TestRemoteDispatchUnboundedByDefault(t *testing.T) {
	const width = 16
	g := &gaugedInvoker{delay: 20 * time.Millisecond}
	env := newRig(t, engine.Config{Ephemeral: true, RemoteInvoker: g.invoke})
	workload.Bind(env.impls)

	schema := sema.MustCompileSource("nogate", []byte(workload.LocatedFanOut(width, "pool")))
	inst, err := env.eng.Instantiate("nogate-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := inst.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// All 16 stages start together and each sleeps 20ms: with no gate
	// the peak should reach well past a handful. Conservative bound to
	// stay robust on loaded CI machines.
	if p := g.peak.Load(); p < 4 {
		t.Fatalf("peak concurrent remote dispatches = %d without a gate; expected a wide burst", p)
	}
}

// TestRemoteGateReleasedAcrossInstances runs two gated instances in
// sequence: a leaked slot in the first would stall the second.
func TestRemoteGateReleasedAcrossInstances(t *testing.T) {
	g := &gaugedInvoker{}
	env := newRig(t, engine.Config{
		Ephemeral:         true,
		RemoteInvoker:     g.invoke,
		MaxRemoteInflight: 2,
	})
	workload.Bind(env.impls)
	schema := sema.MustCompileSource("gate2", []byte(workload.LocatedFanOut(8, "pool")))
	for k, id := range []string{"g-1", "g-2"} {
		inst, err := env.eng.Instantiate(id, schema, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start("main", workload.Seed()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := inst.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		if res.Output != "done" {
			t.Fatalf("instance %d outcome = %q", k, res.Output)
		}
		inst.Stop()
	}
}
