package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

// countingStore wraps a Store and counts committed transactions (by
// decision-record writes) and total object writes. It deliberately does
// NOT implement store.Batcher, so counts are exact per object.
type countingStore struct {
	store.Store
	decisions atomic.Int64
	writes    atomic.Int64
}

func (c *countingStore) Write(id store.ID, data []byte) error {
	c.writes.Add(1)
	if strings.HasPrefix(string(id), "txdecision/") {
		c.decisions.Add(1)
	}
	return c.Store.Write(id, data)
}

// runChainCounting executes one n-task chain over a counting store and
// returns the number of transaction decisions it cost.
func runChainCounting(t *testing.T, n int, cfg engine.Config) int64 {
	t.Helper()
	cs := &countingStore{Store: store.NewMemStore()}
	preg := persist.NewRegistry(cs, txn.NewManager(cs), nil)
	impls := registry.New()
	workload.Bind(impls)
	cfg.VerifyScheduler = true
	eng := engine.New(preg, impls, cfg)
	t.Cleanup(eng.Close)

	schema := workload.MustCompile("pc", workload.Chain(n))
	inst, err := eng.Instantiate("pc", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "done" {
		t.Fatalf("outcome %q", res.Output)
	}
	inst.Stop()
	return cs.decisions.Load()
}

// TestBatchedPersistOneTxnPerDrain pins the tentpole invariant: batched
// persistence coalesces all run-state writes of one dirty-set drain into
// a single transaction, so a chain of n tasks costs O(n) decisions (one
// per completion-event drain plus a constant) instead of the legacy
// one-per-transition ~3n.
func TestBatchedPersistOneTxnPerDrain(t *testing.T) {
	const n = 16
	batched := runChainCounting(t, n, engine.Config{})
	legacy := runChainCounting(t, n, engine.Config{PersistPerTransition: true})

	// Batched: instantiate + meta + one batch per drain. A chain drains
	// once per completion event plus start and finish, so ~n+4 decisions.
	if batched > int64(n+6) {
		t.Fatalf("batched mode used %d transactions for a %d-chain, want <= %d (one per drain)", batched, n, n+6)
	}
	// Legacy pays one transaction per transition: waiting + started +
	// completed per task, and must remain strictly more expensive.
	if legacy < 3*int64(n) {
		t.Fatalf("legacy mode used %d transactions, expected >= %d (one per transition)", legacy, 3*n)
	}
	if batched*2 >= legacy {
		t.Fatalf("batched (%d txns) is not clearly cheaper than legacy (%d txns)", batched, legacy)
	}
}

// TestPersistPerTransitionMatchesBatched is a differential check: both
// persistence strategies must produce identical terminal results and
// identical durable run states for the same workload.
func TestPersistPerTransitionMatchesBatched(t *testing.T) {
	durable := func(cfg engine.Config) ([]store.ID, engine.Result) {
		st := store.NewMemStore()
		preg := persist.NewRegistry(st, txn.NewManager(st), nil)
		impls := registry.New()
		workload.Bind(impls)
		cfg.VerifyScheduler = true
		eng := engine.New(preg, impls, cfg)
		t.Cleanup(eng.Close)
		schema := workload.MustCompile("diffp", workload.Diamond(4))
		inst, err := eng.Instantiate("diffp", schema, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start("main", workload.Seed()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := inst.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		inst.Stop()
		ids, err := st.List("inst/")
		if err != nil {
			t.Fatal(err)
		}
		return ids, res
	}
	batchedIDs, batchedRes := durable(engine.Config{})
	legacyIDs, legacyRes := durable(engine.Config{PersistPerTransition: true})
	if batchedRes.Output != legacyRes.Output || batchedRes.State != legacyRes.State {
		t.Fatalf("results diverged: batched %+v, legacy %+v", batchedRes, legacyRes)
	}
	if fmt.Sprint(batchedIDs) != fmt.Sprint(legacyIDs) {
		t.Fatalf("durable object sets diverged:\nbatched: %v\nlegacy:  %v", batchedIDs, legacyIDs)
	}
}

// walRig is an engine stack over a WALStore directory, reopenable to
// simulate a full process crash (close the store, reopen from disk).
type walRig struct {
	ws    *store.WALStore
	preg  *persist.Registry
	impls *registry.Registry
	eng   *engine.Engine
}

func newWalRig(t *testing.T, dir string) *walRig {
	t.Helper()
	ws, err := store.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ws.Close() })
	preg := persist.NewRegistry(ws, txn.NewManager(ws), nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{VerifyScheduler: true})
	t.Cleanup(eng.Close)
	return &walRig{ws: ws, preg: preg, impls: impls, eng: eng}
}

// TestWALBackendCrashRecovery runs the engine's crash-recovery scenario
// against the WAL backend end to end: run a chain to its k-th
// completion, stop everything, reopen the store from its directory (real
// replay path), recover, finish — completed tasks must not re-run.
func TestWALBackendCrashRecovery(t *testing.T) {
	const n, k = 5, 2
	dir := t.TempDir()
	r := newWalRig(t, dir)
	workload.Bind(r.impls)
	schema := workload.MustCompile("walcrash", workload.Chain(n))
	inst, err := r.eng.Instantiate("walcrash", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskCompleted && e.Task == fmt.Sprintf("app/t%d", k)
	}); err != nil {
		t.Fatal(err)
	}
	inst.Stop()
	r.eng.Close()
	if err := r.ws.Close(); err != nil {
		t.Fatal(err)
	}

	// Process restart: everything rebuilt from the WAL directory.
	r2 := newWalRig(t, dir)
	workload.Bind(r2.impls)
	if _, err := r2.preg.Recover(); err != nil {
		t.Fatal(err)
	}
	inst2, err := r2.eng.Recover("walcrash", mustCompileSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	res, err := inst2.Wait(ctx2)
	if err != nil {
		t.Fatalf("recovered instance did not finish: %v", err)
	}
	if res.Output != "done" || res.Objects["out"].Data.(string) != "seed" {
		t.Fatalf("recovered result: %+v", res)
	}
	for _, e := range inst2.Events() {
		if e.Kind == engine.EventTaskStarted {
			var idx int
			if _, err := fmt.Sscanf(e.Task, "app/t%d", &idx); err == nil && idx <= k {
				t.Fatalf("t%d re-executed after WAL recovery", idx)
			}
		}
	}
}

// TestWALBackendRecoverReconfigured mirrors the reconfiguration recovery
// regression over the WAL backend: a task added to a running instance
// must survive a crash+replay cycle through segment files.
func TestWALBackendRecoverReconfigured(t *testing.T) {
	dir := t.TempDir()
	r := newWalRig(t, dir)
	gate := make(chan struct{})
	r.impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	schema := workload.MustCompile("walrc", workload.Chain(2))
	inst, err := r.eng.Instantiate("walrc", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	if err := inst.Reconfigure(&engine.AddTaskOp{ScopePath: "app", Fragment: `
task t9 of taskclass Stage
{
    implementation { "code" is "stage" };
    inputs { input main { inputobject in from { in of task t1 if input main } } }
}`}); err != nil {
		t.Fatal(err)
	}
	inst.Stop()
	r.eng.Close()
	if err := r.ws.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := newWalRig(t, dir)
	workload.Bind(r2.impls)
	if _, err := r2.preg.Recover(); err != nil {
		t.Fatal(err)
	}
	inst2, err := r2.eng.Recover("walrc", mustCompileSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		for {
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				return
			}
		}
	}()
	if _, err := inst2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rows, _ := inst2.Snapshot()
	found := false
	for _, row := range rows {
		if row.Path == "app/t9" {
			found = true
		}
	}
	if !found {
		t.Fatal("reconfiguration-added t9 missing after WAL crash recovery")
	}
}
