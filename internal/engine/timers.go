package engine

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// This file integrates the durable temporal subsystem (internal/timers)
// into the engine. Two temporal primitives ride the engine's shared
// timing wheel:
//
//   - First-class delays: a task whose implementation clause carries a
//     "delay" property ("delay" is "5s") does not run an implementation
//     at all. Starting it arms a wheel timer at an ABSOLUTE deadline
//     (clock.Now() + delay) and persists a timer record in the same
//     batch as the Executing run state; when the timer fires, the task
//     terminates in its declared outcome (the "outcome" property, else
//     the first declared outcome), echoing its inputs into same-named
//     output objects exactly like the builtin pattern schemes. Recovery
//     re-arms pending records at their original absolute deadlines, so
//     a crash mid-delay neither loses the timer nor stretches it: it
//     fires once, at the instant it was always going to fire. This is
//     the durable replacement for the sleeping-goroutine "timer task"
//     pattern of Section 4.2 (builtin "timer:<dur>:<outcome>").
//
//   - Per-activation deadlines: Config.DefaultDeadline and the
//     "deadline" implementation property bound each activation through
//     a wheel entry instead of a per-worker time.Timer. Deadlines are
//     deliberately volatile: a recovered activation is a fresh attempt
//     and gets its full deadline again (at-least-once execution).
//
// Timer fires enter the instance loop as messages and propagate through
// the dirty-set scheduler like any other availability event.

// timerMsg is delivered to the instance loop when a delay timer fires.
type timerMsg struct {
	path string
	gen  int
}

// delayRec is the persisted record of one pending delay, written through
// the store in the same batch as the Executing run state it belongs to
// (see flushRuns). Its Deadline is absolute: recovery re-arms it as-is.
type delayRec struct {
	Path      string
	Deadline  time.Time
	Iteration int
}

// timerRecKey is the store ID of a pending delay's record (path escaped
// like runKey, for the same FileStore reason).
func timerRecKey(instance, path string) store.ID {
	return store.ID("inst/" + instance + "/timer/" + strings.ReplaceAll(path, "/", "%2F"))
}

// timerPrefix lists an instance's pending delay records.
func timerPrefix(instance string) store.ID {
	return store.ID("inst/" + instance + "/timer/")
}

// delayID is the wheel entry ID of an instance's delay timer.
func delayID(instance, path string) string {
	return "delay|" + instance + "|" + path
}

// delayOf parses the task's "delay" implementation property. ok reports
// whether the property is present; err a malformed duration.
func delayOf(t *core.Task) (d time.Duration, ok bool, err error) {
	raw, ok := t.Implementation["delay"]
	if !ok {
		return 0, false, nil
	}
	d, err = time.ParseDuration(raw)
	if err != nil {
		return 0, true, fmt.Errorf("task %s: bad \"delay\" property %q: %v", t.Path(), raw, err)
	}
	if d < 0 {
		return 0, true, fmt.Errorf("task %s: negative \"delay\" property %q", t.Path(), raw)
	}
	return d, true, nil
}

// delayOutcome resolves the output a delay task produces when its timer
// fires: the "outcome" implementation property when present, else the
// first declared plain outcome of the class.
func delayOutcome(t *core.Task) *core.Output {
	if name, ok := t.Implementation["outcome"]; ok {
		return t.Class.Output(name)
	}
	if outs := t.Class.Outcomes(core.Outcome); len(outs) > 0 {
		return outs[0]
	}
	return nil
}

// armDelay arms the wheel for a freshly started (or recovered) delay run
// and stages its durable record. Runs on the goroutine owning the run
// map.
func (i *Instance) armDelay(r *run, deadline time.Time) {
	r.delayArmed = true
	r.delayDeadline = deadline
	i.armedTimers++
	i.eng.met.timerArms.Inc()
	i.persistTimerRec(r.st.Path, &delayRec{Path: r.st.Path, Deadline: deadline, Iteration: r.st.Iteration})
	path, gen := r.st.Path, r.gen
	i.eng.timers.Arm(delayID(i.id, path), deadline, func() {
		i.queueTimer(timerMsg{path: path, gen: gen})
	})
	i.emit(Event{Task: path, Kind: EventTimerArmed, Deadline: deadline, Iteration: r.st.Iteration})
}

// cancelDelay disarms a pending delay (reset, abort, reconfiguration)
// and stages the deletion of its record.
func (i *Instance) cancelDelay(r *run) {
	if !r.delayArmed {
		return
	}
	r.delayArmed = false
	i.armedTimers--
	i.eng.timers.Cancel(delayID(i.id, r.st.Path))
	i.deleteTimerRec(r.st.Path)
}

// queueTimer appends a fire to the instance's unbounded timer queue and
// nudges the loop. Runs on the wheel goroutine: it must never block, or
// one busy instance would stall every other instance's timers.
func (i *Instance) queueTimer(msg timerMsg) {
	i.timerQMu.Lock()
	i.timerQ = append(i.timerQ, msg)
	i.timerQMu.Unlock()
	select {
	case i.timerSig <- struct{}{}:
	default:
	}
}

// drainTimerQ takes the queued fires in arrival (wheel-firing) order.
func (i *Instance) drainTimerQ() []timerMsg {
	i.timerQMu.Lock()
	q := i.timerQ
	i.timerQ = nil
	i.timerQMu.Unlock()
	return q
}

// handleTimer processes a delay fire on the loop goroutine: the run
// terminates in its delay outcome, and the durable record is deleted in
// the same batch as the terminal run state.
func (i *Instance) handleTimer(msg timerMsg) {
	r, ok := i.runs[msg.path]
	if !ok || r.gen != msg.gen || r.st.State != RunExecuting || !r.delayArmed {
		return // stale: the run was reset, aborted or reconfigured away
	}
	r.delayArmed = false
	i.armedTimers--
	i.deleteTimerRec(r.st.Path)
	// The fire counter moves once per surviving (non-stale) fire; with a
	// shared registry across simulated coordinator generations it is the
	// exactly-once witness for a delay that straddles a crash.
	i.eng.met.timerFires.Inc()
	i.eng.met.timerFireLag.ObserveSince(i.eng.clock, r.delayDeadline)
	if r.pendingAbort != "" {
		i.forceAbortNow(r)
		return
	}
	out := delayOutcome(r.task)
	if out == nil {
		i.failRun(r, fmt.Errorf("delay task declares no outcome to produce"))
		return
	}
	// Echo semantics, as the builtin pattern schemes: inputs become
	// same-named output objects.
	objects, err := i.conformObjects(out, r.st.Inputs)
	if err != nil {
		i.failRun(r, err)
		return
	}
	i.emit(Event{Task: r.st.Path, Kind: EventTimerFired, Output: out.Name, Iteration: r.st.Iteration})
	rec := OutputRec{Output: out.Name, Kind: out.Kind, Objects: objects, Iteration: r.st.Iteration, At: i.eng.clock.Now()}
	switch out.Kind {
	case core.Mark:
		i.failRun(r, fmt.Errorf("delay outcome %q is a mark", out.Name))
	case core.RepeatOutcome:
		i.repeatRun(r, rec)
	default:
		i.completeRun(r, rec)
	}
}

// rearmTimers re-arms the instance's pending delay records at their
// original absolute deadlines after recovery, deleting records that no
// longer match a live delay run, and conservatively re-arming a delay
// run whose record was lost to a torn batch tail (the record rides the
// batch after its run state, so this window is one torn write wide).
// Called by Recover on the goroutine that owns the run map, before the
// loop starts.
func (i *Instance) rearmTimers() error {
	ids, err := i.eng.preg.Store().List(timerPrefix(i.id))
	if err != nil {
		return err
	}
	for _, sid := range ids {
		var rec delayRec
		if err := i.eng.preg.Object(sid).Peek(&rec); err != nil {
			return fmt.Errorf("timer record %s: %w", sid, err)
		}
		r, ok := i.runs[rec.Path]
		if !ok || r.st.State != RunExecuting || r.st.Iteration != rec.Iteration {
			i.deleteTimerRec(rec.Path) // stale: the run moved on before the crash
			continue
		}
		if _, isDelay, _ := delayOf(r.task); !isDelay {
			i.deleteTimerRec(rec.Path) // reconfigured away from a delay task
			continue
		}
		i.armDelay(r, rec.Deadline)
	}
	for _, path := range i.order {
		r, ok := i.runs[path]
		if !ok || r.st.State != RunExecuting || r.task.Compound || r.delayArmed {
			continue
		}
		d, isDelay, err := delayOf(r.task)
		if err != nil || !isDelay {
			continue
		}
		// Executing delay run without a surviving record: restart the
		// full duration from now (the only recoverable meaning left).
		i.armDelay(r, i.eng.clock.Now().Add(d))
	}
	return nil
}

// persistTimerRec stages a timer-record write into the current flush
// batch (or commits it immediately under the per-transition ablation).
func (i *Instance) persistTimerRec(path string, rec *delayRec) {
	if i.eng.cfg.Ephemeral {
		return
	}
	if !i.eng.cfg.PersistPerTransition {
		i.bufferTimerRec(path, rec)
		return
	}
	tx := i.eng.preg.Manager().Begin()
	//wflint:allow persistorder gated legacy path: Config.PersistPerTransition ablation writes one txn per transition by design
	err := i.eng.preg.Object(timerRecKey(i.id, path)).Set(tx, *rec)
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Abort()
	}
	if err != nil {
		i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("persist timer: %v", err)})
	}
}

// deleteTimerRec stages the removal of a timer record (same batching
// discipline as persistTimerRec).
func (i *Instance) deleteTimerRec(path string) {
	if i.eng.cfg.Ephemeral {
		return
	}
	if !i.eng.cfg.PersistPerTransition {
		i.bufferTimerRec(path, nil)
		return
	}
	tx := i.eng.preg.Manager().Begin()
	//wflint:allow persistorder gated legacy path: Config.PersistPerTransition ablation writes one txn per transition by design
	err := i.eng.preg.Object(timerRecKey(i.id, path)).Delete(tx)
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Abort()
	}
	if err != nil {
		i.emit(Event{Task: path, Kind: EventTaskFailed, Err: fmt.Sprintf("delete timer record: %v", err)})
	}
}

// bufferTimerRec stages one timer-record write (nil = delete) for the
// next flush; later stagings of the same path supersede earlier ones.
// Owned by the loop goroutine.
func (i *Instance) bufferTimerRec(path string, rec *delayRec) {
	if _, ok := i.pendingTimers[path]; !ok {
		i.pendingTimerOrder = append(i.pendingTimerOrder, path)
	}
	i.pendingTimers[path] = rec
}
