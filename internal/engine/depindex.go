package engine

import (
	"fmt"

	"repro/internal/core"
)

// This file implements the dependency-indexed dirty-set scheduler. At
// instance build time (and after every reconfiguration) the schema is
// walked once to compute a reverse-dependency index: for each producer
// task path, the consumer task paths whose input-set bindings or
// compound-output mappings hold a source referencing it. At run time,
// every observable state transition of a run enqueues only its indexed
// consumers onto a dirty worklist, and evaluate drains the worklist in
// schema-DFS declaration order — so one completion event costs
// O(consumers) instead of the legacy full rescan's O(tasks), while
// input-set and alternative selection stay bit-identical to the
// full-rescan baseline (Config.FullRescan, kept as the ablation and the
// oracle for the differential tests).

// consumers lists the tasks whose dependencies reference one producer,
// split by the producer event that can create source availability.
type consumers struct {
	// onStart holds consumers with input-conditioned sources on the
	// producer (input sharing): they can only gain availability when the
	// producer consumes an input set.
	onStart []string
	// onOutput holds consumers with output-conditioned, unconditioned or
	// notification sources: they can gain availability when the producer
	// releases a mark, repeats, or terminates.
	onOutput []string
}

// rebuildDepIndex recomputes the reverse-dependency index from the
// current schema. Called by rebuildOrder (construction and
// reconfiguration), on the goroutine owning the run map.
func (i *Instance) rebuildDepIndex() {
	i.deps = make(map[string]*consumers, len(i.order))
	type edge struct {
		producer, consumer string
		onStart            bool
	}
	seen := make(map[edge]struct{})
	add := func(s *core.Source, consumer string) {
		e := edge{producer: s.Task.Path(), consumer: consumer, onStart: s.Cond == core.CondInput}
		if _, dup := seen[e]; dup {
			return
		}
		seen[e] = struct{}{}
		c := i.deps[e.producer]
		if c == nil {
			c = &consumers{}
			i.deps[e.producer] = c
		}
		if e.onStart {
			c.onStart = append(c.onStart, consumer)
		} else {
			c.onOutput = append(c.onOutput, consumer)
		}
	}
	i.root.Walk(func(t *core.Task) {
		consumer := t.Path()
		record := func(deps []*core.ObjectDep, nots []*core.NotificationDep) {
			for _, od := range deps {
				for _, s := range od.Sources {
					add(s, consumer)
				}
			}
			for _, nd := range nots {
				for _, s := range nd.Sources {
					add(s, consumer)
				}
			}
		}
		for _, set := range t.InputSets {
			record(set.Objects, set.Notifications)
		}
		for _, ob := range t.Outputs {
			record(ob.Objects, ob.Notifications)
		}
	})
}

// markDirty enqueues one task path for re-evaluation. Paths not in the
// current schema (stale consumers of a reconfigured-away producer) are
// dropped here; each map entry is mirrored by exactly one index in the
// worklist heap or the drain's deferred batch.
func (i *Instance) markDirty(path string) {
	if _, dup := i.dirty[path]; dup {
		return
	}
	idx, ok := i.orderIdx[path]
	if !ok {
		return
	}
	i.dirty[path] = struct{}{}
	i.heapPush(idx)
}

// markAllDirty enqueues every live run; used where dependencies change
// wholesale (recovery, reconfiguration).
func (i *Instance) markAllDirty() {
	for path := range i.runs {
		i.markDirty(path)
	}
}

// noteStarted enqueues the consumers that input-share with the run at
// path; called when that run consumes an input set.
func (i *Instance) noteStarted(path string) {
	if c := i.deps[path]; c != nil {
		for _, consumer := range c.onStart {
			i.markDirty(consumer)
		}
	}
}

// noteOutput enqueues the consumers whose output-conditioned,
// unconditioned or notification sources reference the run at path;
// called when that run releases a mark, repeats, or terminates.
func (i *Instance) noteOutput(path string) {
	if c := i.deps[path]; c != nil {
		for _, consumer := range c.onOutput {
			i.markDirty(consumer)
		}
	}
}

// drainDirty processes the dirty worklist in rounds that mirror the
// legacy full-rescan passes: within one round, paths are visited in
// ascending schema-DFS order, and paths dirtied at or before the current
// scan position wait for the next round (exactly the set a full pass
// would only reach on its next iteration). This keeps input-set and
// alternative selection — which depend on the order progress is applied —
// bit-identical to the full-rescan scheduler.
func (i *Instance) drainDirty() {
	for len(i.dirty) > 0 {
		pos := -1
		var deferred []int
		for len(i.dirtyHeap) > 0 {
			idx := i.heapPop()
			if idx <= pos {
				// Dirtied at or before the scan position by progress made
				// this round: a full pass would only reach it next pass.
				deferred = append(deferred, idx)
				continue
			}
			pos = idx
			delete(i.dirty, i.order[idx])
			i.evalRun(i.order[idx])
		}
		for _, idx := range deferred {
			i.heapPush(idx)
		}
	}
}

// heapPush and heapPop maintain the min-heap of schema-order indexes
// backing the dirty worklist.
func (i *Instance) heapPush(idx int) {
	h := append(i.dirtyHeap, idx)
	for c := len(h) - 1; c > 0; {
		p := (c - 1) / 2
		if h[p] <= h[c] {
			break
		}
		h[p], h[c] = h[c], h[p]
		c = p
	}
	i.dirtyHeap = h
}

func (i *Instance) heapPop() int {
	h := i.dirtyHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for c := 0; ; {
		s := c
		if l := 2*c + 1; l < n && h[l] < h[s] {
			s = l
		}
		if r := 2*c + 2; r < n && h[r] < h[s] {
			s = r
		}
		if s == c {
			break
		}
		h[c], h[s] = h[s], h[c]
		c = s
	}
	i.dirtyHeap = h
	return top
}

// evalRun applies one satisfaction check to the run at path, the same
// check a full-rescan pass applies to every run.
func (i *Instance) evalRun(path string) {
	r, ok := i.runs[path]
	if !ok {
		return // run was reset or reconfigured away after being enqueued
	}
	i.scans.Add(1)
	if !i.active(r) {
		return
	}
	switch {
	case r.st.State == RunWaiting:
		i.trySatisfy(r)
	case r.st.State == RunExecuting && r.task.Compound:
		i.tryCompoundOutputs(r)
	}
}

// verifyFixedPoint is the differential oracle enabled by
// Config.VerifyScheduler: after a dirty-set drain it runs a read-only
// full-rescan satisfiability probe and panics if the probe finds progress
// the worklist missed — i.e. the two schedulers would not have reached
// the same fixed point.
func (i *Instance) verifyFixedPoint() {
	for _, path := range i.order {
		r, ok := i.runs[path]
		if !ok || !i.active(r) {
			continue
		}
		switch {
		case r.st.State == RunWaiting:
			if r.task == i.root && !i.meta.Started {
				// A not-yet-started root waits for the client's Start,
				// not for dependency satisfaction (see trySatisfy).
				continue
			}
			if len(r.task.InputSets) == 0 {
				panic(fmt.Sprintf("scheduler divergence: %s has no input sets and should have started", path))
			}
			for _, set := range r.task.InputSets {
				if _, ok := i.satisfiedSet(r, set); ok {
					panic(fmt.Sprintf("scheduler divergence: %s input set %q satisfiable at quiescence", path, set.Name))
				}
			}
		case r.st.State == RunExecuting && r.task.Compound:
			for _, ob := range r.task.Outputs {
				if ob.Output.Kind == core.Mark && r.st.MarksEmitted[ob.Output.Name] {
					continue
				}
				if _, ok := i.satisfiedOutput(r, ob); ok {
					panic(fmt.Sprintf("scheduler divergence: %s output %q satisfiable at quiescence", path, ob.Output.Name))
				}
			}
		}
	}
}
