package engine_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/txn"
)

// faultRig is an engine over an injectable store: transitions flow
// through flushRuns into st, which the test wedges or fences mid-run.
type faultRig struct {
	impls *registry.Registry
	eng   *engine.Engine
}

func newFaultRig(t *testing.T, st store.Store) *faultRig {
	t.Helper()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{})
	t.Cleanup(eng.Close)
	return &faultRig{impls: impls, eng: eng}
}

func (r *faultRig) start(t *testing.T, id string) *engine.Instance {
	t.Helper()
	schema := sema.MustCompileSource(id+".wf", []byte(fig3Script))
	inst, err := r.eng.Instantiate(id, schema, "")
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if err := inst.Start("main", registry.Objects{"seed": val("D", 0)}); err != nil {
		t.Fatalf("start: %v", err)
	}
	return inst
}

// awaitPersistFailure polls until a persist-failure event surfaces.
func awaitPersistFailure(t *testing.T, inst *engine.Instance) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, e := range inst.Events() {
			if e.Kind == engine.EventTaskFailed && strings.Contains(e.Err, "persist") {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no persist-failure event surfaced; events: %v", inst.Events())
}

// runFlushFaultScenario drives the shared script against a store whose
// write path breaks (via trip) after the first iteration's mark was
// acknowledged, and asserts the contract at every acknowledgement
// point: the mark on the broken store is refused with wantErr, failure
// events surface, and the instance never completes.
func runFlushFaultScenario(t *testing.T, st store.Store, trip func(), wantErr error) {
	t.Helper()
	r := newFaultRig(t, st)
	var markErr atomic.Pointer[error]
	done := make(chan struct{})
	r.impls.Bind("cycler", func(ctx registry.Context) (registry.Result, error) {
		n := ctx.Inputs()["seed"].Data.(int)
		if n == 0 {
			// Healthy round: mark acks, iteration repeats.
			if err := ctx.Mark("progress", registry.Objects{"snapshot": val("D", n)}); err != nil {
				return registry.Result{}, err
			}
			return registry.Result{Output: "again", Objects: registry.Objects{"counter": val("D", n+1)}}, nil
		}
		// Broken round: the store wedges/fences before the mark.
		trip()
		err := ctx.Mark("progress", registry.Objects{"snapshot": val("D", n)})
		markErr.Store(&err)
		close(done)
		return registry.Result{Output: "finished", Objects: registry.Objects{"out": val("D", n)}}, nil
	})
	inst := r.start(t, "flushfault")

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second iteration never ran")
	}
	err := *markErr.Load()
	if !errors.Is(err, wantErr) {
		t.Fatalf("mark on broken store acked: err = %v, want %v", err, wantErr)
	}
	awaitPersistFailure(t, inst)

	// Exactly one mark was acknowledged (the healthy round); the failed
	// one was rolled back, not acked, and left no mark event.
	if got := len(eventsByKind(inst.Events(), engine.EventTaskMarked)); got != 1 {
		t.Fatalf("mark events = %d, want 1 (failed mark must not be acknowledged)", got)
	}
	// The completion the implementation returned cannot become durable:
	// the instance must not report completed.
	time.Sleep(50 * time.Millisecond)
	if st := inst.Status(); st == engine.StatusCompleted {
		t.Fatalf("instance completed over a broken store (status %s)", st)
	}
	if _, ok := inst.Result(); ok {
		t.Fatal("instance produced a result whose terminal state never became durable")
	}
}

// TestWedgedStoreDoesNotAckMarksOrCompletions: store.ErrWedged from a
// mid-run wedge (failed fsync semantics) propagates through flushRuns
// to every acknowledgement point.
func TestWedgedStoreDoesNotAckMarksOrCompletions(t *testing.T) {
	ws := failure.NewWedgeStore(store.NewMemStore())
	runFlushFaultScenario(t, ws, func() { ws.Wedge(nil) }, store.ErrWedged)
}

// TestFencedStoreDoesNotAckMarksOrCompletions: shard.ErrFenced from a
// lapsed lease fence propagates the same way — a coordinator that can
// no longer prove ownership must not acknowledge anything.
func TestFencedStoreDoesNotAckMarksOrCompletions(t *testing.T) {
	ps := shard.NewPartitionedStore(1)
	ps.Mount(0, store.NewMemStore())
	var fenced atomic.Bool
	ps.SetFence(func(int) bool { return !fenced.Load() })
	runFlushFaultScenario(t, ps, func() { fenced.Store(true) }, shard.ErrFenced)
}
