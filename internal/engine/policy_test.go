package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/scripts"
)

// TestSupplierDirectDispatchPolicyChange reproduces the Section 5.2
// modification scenario verbatim: "the addition of a task which could
// check the stock levels of the suppliers of the company, and arrange
// direct dispatch from them" — applied to a RUNNING instance, without
// touching the tasks that supply the compound with inputs or consume its
// outputs.
//
// The warehouse has no stock, so the unmodified workflow would cancel the
// order. While checkStock is still deciding, we add a supplierDispatch
// task (fed by the order and gated on payment authorisation) and extend
// the compound's orderCompleted mapping so the supplier's dispatch note
// is an alternative source. The order then completes via the supplier.
func TestSupplierDirectDispatchPolicyChange(t *testing.T) {
	r := newRig(t, engine.Config{})
	r.impls.Bind("refPaymentAuthorisation", registry.Fixed("authorised", registry.Objects{"paymentInfo": val("PaymentInfo", "visa")}))
	stockGate := make(chan struct{})
	r.impls.Bind("refCheckStock", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-stockGate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "stockNotAvailable"}, nil
	})
	r.impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": val("DispatchNote", "warehouse")}))
	r.impls.Bind("refPaymentCapture", registry.Fixed("done", nil))
	r.impls.Bind("refSupplierDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": val("DispatchNote", "supplier-direct")}))
	r.impls.Bind("refSupplierStock", registry.Fixed("stockAvailable", registry.Objects{"stockInfo": val("StockInfo", "supplier-7")}))

	inst := r.run(t, scripts.ProcessOrder, "policy-1", "main", registry.Objects{"order": val("Order", "o-77")})

	// The policy change, expressed in the language itself: a new Dispatch
	// task fed by the order, and the compound's orderCompleted outcome
	// accepts the supplier's dispatch note (and its completion as the
	// capture gate alternative is not needed: paymentCapture still runs
	// off paymentAuthorisation's paymentInfo... but the orderCompleted
	// notification needs paymentCapture, which needs dispatchCompleted
	// from the original dispatch. So we also gate capture on the
	// supplier's dispatch as an alternative notification).
	err := inst.Reconfigure(
		&engine.AddTaskOp{ScopePath: "processOrderApplication", Fragment: `
task supplierDispatch of taskclass Dispatch
{
    implementation { "code" is "refSupplierDispatch" };
    inputs
    {
        input main
        {
            notification from { task paymentAuthorisation if output authorised };
            inputobject stockInfo from { stockInfo of task supplierStockCheck if output stockAvailable }
        }
    }
};`},
	)
	// The fragment above references supplierStockCheck which does not
	// exist: the batch must fail atomically.
	if err == nil {
		t.Fatal("fragment referencing an unknown task must fail")
	}
	if inst.Schema().Lookup("processOrderApplication/supplierDispatch") != nil {
		t.Fatal("failed reconfiguration leaked the new task")
	}

	// The correct batch: supplier stock check + supplier dispatch + the
	// two output-mapping extensions.
	err = inst.Reconfigure(
		&engine.AddTaskOp{ScopePath: "processOrderApplication", Fragment: `
task supplierStockCheck of taskclass CheckStock
{
    implementation { "code" is "refSupplierStock" };
    inputs
    {
        input main
        {
            inputobject order from { order of task processOrderApplication if input main }
        }
    }
};`},
		&engine.AddTaskOp{ScopePath: "processOrderApplication", Fragment: `
task supplierDispatch of taskclass Dispatch
{
    implementation { "code" is "refSupplierDispatch" };
    inputs
    {
        input main
        {
            notification from { task paymentAuthorisation if output authorised };
            inputobject stockInfo from { stockInfo of task supplierStockCheck if output stockAvailable }
        }
    }
};`},
		// paymentCapture accepts the supplier dispatch as an alternative
		// trigger of its existing dispatch gate (OR, not a new AND).
		&engine.AddNotificationOp{TaskPath: "processOrderApplication/paymentCapture", Set: "main",
			Sources: []string{"task supplierDispatch if output dispatchCompleted"}, Extend: 0},
		// orderCompleted's dispatch note may now come from the supplier.
		&engine.AddOutputSourceOp{TaskPath: "processOrderApplication", Output: "orderCompleted", Object: "dispatchNote",
			Source: "dispatchNote of task supplierDispatch if output dispatchCompleted"},
		// And "warehouse out of stock" is no longer a cancellation
		// trigger (alternative 1 of orderCancelled's notification).
		&engine.RemoveOutputNotificationSourceOp{TaskPath: "processOrderApplication", Output: "orderCancelled",
			Notification: 0, Index: 1},
	)
	if err != nil {
		t.Fatalf("policy-change batch: %v", err)
	}

	// Let the warehouse report no stock; the supplier path completes the
	// order anyway.
	close(stockGate)
	res := waitResult(t, inst)
	if res.Output != "orderCompleted" {
		t.Fatalf("outcome = %q, want orderCompleted via the supplier (events: %v)", res.Output, inst.Events())
	}
	if res.Objects["dispatchNote"].Data.(string) != "supplier-direct" {
		t.Fatalf("dispatch note = %v, want the supplier's", res.Objects["dispatchNote"].Data)
	}
	// Upstream tasks were untouched (locality): paymentAuthorisation
	// still has exactly one notification consumer structure and the
	// warehouse dispatch never ran.
	for _, e := range inst.Events() {
		if e.Kind == engine.EventTaskStarted && e.Task == "processOrderApplication/dispatch" {
			t.Fatal("warehouse dispatch should not have started (no stock)")
		}
	}
}

// TestAddOutputNotificationExtend extends an existing output gate with an
// alternative (AND-of-ORs preserved): orderCancelled can also be
// triggered by a new fraud-check task.
func TestAddOutputNotificationExtend(t *testing.T) {
	r := newRig(t, engine.Config{})
	r.impls.Bind("refPaymentAuthorisation", registry.Fixed("authorised", registry.Objects{"paymentInfo": val("PaymentInfo", "visa")}))
	gate := make(chan struct{})
	r.impls.Bind("refCheckStock", func(ctx registry.Context) (registry.Result, error) {
		<-gate
		return registry.Result{Output: "stockAvailable", Objects: registry.Objects{"stockInfo": val("StockInfo", "w")}}, nil
	})
	r.impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": val("DispatchNote", "n")}))
	r.impls.Bind("refPaymentCapture", registry.Fixed("done", nil))
	r.impls.Bind("refFraudCheck", registry.Fixed("notAuthorised", nil))

	inst := r.run(t, scripts.ProcessOrder, "fraud-1", "main", registry.Objects{"order": val("Order", "o")})
	err := inst.Reconfigure(
		&engine.AddTaskOp{ScopePath: "processOrderApplication", Fragment: `
task fraudCheck of taskclass PaymentAuthorisation
{
    implementation { "code" is "refFraudCheck" };
    inputs
    {
        input main
        {
            inputobject order from { order of task processOrderApplication if input main }
        }
    }
};`},
		&engine.AddOutputNotificationOp{TaskPath: "processOrderApplication", Output: "orderCancelled",
			Sources: []string{"task fraudCheck if output notAuthorised"}, Extend: 0},
	)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	// The fraud check fires immediately and cancels the order before the
	// (gated) stock check ever answers.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "orderCancelled" {
		t.Fatalf("outcome = %q, want orderCancelled via fraud check", res.Output)
	}
	close(gate)
}
