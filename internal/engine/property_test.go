package engine_test

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/txn"
	"repro/internal/workload"
)

// rigOver builds a fresh engine stack over an existing rig's store,
// simulating a process restart after a crash.
func rigOver(t *testing.T, old *rig) *rig {
	t.Helper()
	mgr := txn.NewManager(old.st)
	preg := persist.NewRegistry(old.st, mgr, nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{VerifyScheduler: true})
	t.Cleanup(eng.Close)
	return &rig{st: old.st, mgr: mgr, preg: preg, impls: impls, eng: eng}
}

// mustCompileSource adapts sema.CompileSource to engine.SchemaCompiler.
func mustCompileSource(name string, src []byte) (*core.Schema, error) {
	return sema.CompileSource(name, src)
}

// TestPropertyRandomDAGsComplete: any well-formed acyclic workload with
// all-success implementations runs to its single outcome, the payload
// passes through unchanged, and the number of completed constituent
// tasks matches the schema.
func TestPropertyRandomDAGsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(rawN uint8, rawAlts uint8, seed int64) bool {
		n := int(rawN%25) + 2
		alts := int(rawAlts % 3)
		src := workload.RandomDAG(n, alts, seed)
		r := newRig(t, engine.Config{Ephemeral: true})
		workload.Bind(r.impls)
		schema := workload.MustCompile("prop", src)
		inst, err := r.eng.Instantiate(fmt.Sprintf("prop-%d-%d-%d", n, alts, seed), schema, "")
		if err != nil {
			t.Logf("instantiate: %v", err)
			return false
		}
		if err := inst.Start("main", workload.Seed()); err != nil {
			t.Logf("start: %v", err)
			return false
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := inst.Wait(ctx)
		if err != nil {
			t.Logf("wait: %v", err)
			return false
		}
		if res.Output != "done" || res.Objects["out"].Data.(string) != "seed" {
			t.Logf("result: %+v", res)
			return false
		}
		// The compound completes as soon as its output mapping (fed by
		// the sink task) is satisfiable; tasks that are not ancestors of
		// the sink may be left dormant. The sink itself must have
		// completed exactly once, and nothing may have completed twice.
		completions := map[string]int{}
		for _, e := range inst.Events() {
			if e.Kind == engine.EventTaskCompleted {
				completions[e.Task]++
			}
		}
		sink := fmt.Sprintf("app/t%d", n)
		if completions[sink] != 1 {
			t.Logf("sink %s completed %d times", sink, completions[sink])
			return false
		}
		for task, c := range completions {
			if c != 1 {
				t.Logf("%s completed %d times", task, c)
				return false
			}
		}
		inst.Stop()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEventOrderRespectsDependencies: for random DAGs, every
// task's start event comes after the completion events of the sources
// that satisfied it (here: all sources, since all succeed and the start
// needs the first available alternative which is the primary).
func TestPropertyEventOrderRespectsDependencies(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(rawN uint8, seed int64) bool {
		n := int(rawN%15) + 2
		src := workload.Chain(n)
		_ = seed
		r := newRig(t, engine.Config{Ephemeral: true})
		workload.Bind(r.impls)
		schema := workload.MustCompile("prop", src)
		inst, err := r.eng.Instantiate(fmt.Sprintf("order-%d-%d", n, seed), schema, "")
		if err != nil {
			return false
		}
		if err := inst.Start("main", workload.Seed()); err != nil {
			return false
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := inst.Wait(ctx); err != nil {
			return false
		}
		started := map[string]int{}
		completed := map[string]int{}
		for _, e := range inst.Events() {
			switch e.Kind {
			case engine.EventTaskStarted:
				started[e.Task] = e.Seq
			case engine.EventTaskCompleted:
				completed[e.Task] = e.Seq
			}
		}
		for i := 2; i <= n; i++ {
			prev := fmt.Sprintf("app/t%d", i-1)
			cur := fmt.Sprintf("app/t%d", i)
			if !(completed[prev] < started[cur]) {
				t.Logf("t%d started (#%d) before t%d completed (#%d)", i, started[cur], i-1, completed[prev])
				return false
			}
		}
		inst.Stop()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDirtySetMatchesFullRescan is the randomized differential
// test of the dirty-set scheduler: the same workload runs under the
// dependency-indexed worklist (with the in-situ fixed-point oracle
// enabled, which panics on any divergence from a full rescan) and under
// the legacy full-rescan baseline, and both must deliver the same
// terminal result with the same single-completion discipline. Per-event
// trajectories of parallel random DAGs are timing-dependent by design
// (dormant non-ancestors of the sink), so exact trace equality is
// asserted separately on deterministic workloads in sched_test.go.
func TestPropertyDirtySetMatchesFullRescan(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	execute := func(id, src string, cfg engine.Config) (engine.Result, map[string]int, bool) {
		cfg.Ephemeral = true
		r := newRig(t, cfg)
		workload.Bind(r.impls)
		schema := workload.MustCompile("diff", src)
		inst, err := r.eng.Instantiate(id, schema, "")
		if err != nil {
			t.Logf("instantiate: %v", err)
			return engine.Result{}, nil, false
		}
		if err := inst.Start("main", workload.Seed()); err != nil {
			t.Logf("start: %v", err)
			return engine.Result{}, nil, false
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := inst.Wait(ctx)
		if err != nil {
			t.Logf("wait: %v", err)
			return engine.Result{}, nil, false
		}
		completions := map[string]int{}
		for _, e := range inst.Events() {
			if e.Kind == engine.EventTaskCompleted {
				completions[e.Task]++
			}
		}
		inst.Stop()
		return res, completions, true
	}
	f := func(rawN uint8, rawAlts uint8, seed int64) bool {
		n := int(rawN%20) + 2
		alts := int(rawAlts % 3)
		src := workload.RandomDAG(n, alts, seed)
		id := fmt.Sprintf("diff-%d-%d-%d", n, alts, seed)
		dirtyRes, dirtyDone, ok := execute(id+"-dirty", src, engine.Config{})
		if !ok {
			return false
		}
		fullRes, fullDone, ok := execute(id+"-full", src, engine.Config{FullRescan: true})
		if !ok {
			return false
		}
		if dirtyRes.Output != fullRes.Output || dirtyRes.State != fullRes.State ||
			dirtyRes.Objects["out"].Data != fullRes.Objects["out"].Data {
			t.Logf("results diverged: dirty-set %+v, full-rescan %+v", dirtyRes, fullRes)
			return false
		}
		sink := fmt.Sprintf("app/t%d", n)
		if dirtyDone[sink] != 1 || fullDone[sink] != 1 {
			t.Logf("sink completions diverged: dirty-set %d, full-rescan %d", dirtyDone[sink], fullDone[sink])
			return false
		}
		for task, c := range dirtyDone {
			if c != 1 {
				t.Logf("dirty-set: %s completed %d times", task, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCrashRecoveryAnyPoint stops the engine after the k-th task
// completion and recovers; the workflow must still complete with the
// correct result, for every k.
func TestPropertyCrashRecoveryAnyPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	const n = 6
	for k := 1; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("crashAfter=%d", k), func(t *testing.T) {
			src := workload.Chain(n)
			st := newRig(t, engine.Config{}) // shares a MemStore via rig
			workload.Bind(st.impls)
			schema := workload.MustCompile("crash", src)
			inst, err := st.eng.Instantiate("crash-any", schema, "")
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Start("main", workload.Seed()); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			// Wait for the k-th stage to complete, then "crash".
			if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
				return e.Kind == engine.EventTaskCompleted && e.Task == fmt.Sprintf("app/t%d", k)
			}); err != nil {
				t.Fatal(err)
			}
			inst.Stop()
			st.eng.Close()

			// Recover over the same store with a fresh engine.
			r2 := rigOver(t, st)
			workload.Bind(r2.impls)
			if _, err := r2.preg.Recover(); err != nil {
				t.Fatal(err)
			}
			inst2, err := r2.eng.Recover("crash-any", mustCompileSource)
			if err != nil {
				t.Fatal(err)
			}
			ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel2()
			res, err := inst2.Wait(ctx2)
			if err != nil {
				t.Fatalf("recovered wait: %v", err)
			}
			if res.Output != "done" || res.Objects["out"].Data.(string) != "seed" {
				t.Fatalf("recovered result: %+v", res)
			}
			// Stages completed before the crash must not re-run.
			for _, e := range inst2.Events() {
				if e.Kind == engine.EventTaskStarted {
					var idx int
					if _, err := fmt.Sscanf(e.Task, "app/t%d", &idx); err == nil && idx <= k {
						t.Fatalf("t%d re-executed after crash at k=%d", idx, k)
					}
				}
			}
		})
	}
}
