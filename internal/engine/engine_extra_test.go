package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/scripts"
)

// --- The paper's timer pattern: an exceptional input set fed by a timer
// task lets a task wait for normal inputs with a timeout (Section 4.2).

const timerScript = `
class D;
class Tick;

taskclass Slow
{
    inputs { input main { seed of class D } };
    outputs { outcome done { out of class D } }
};

taskclass Timer
{
    inputs { input main { seed of class D } };
    outputs { outcome expired { tick of class Tick } }
};

taskclass Consumer
{
    inputs
    {
        input normal { v of class D };
        input timeout { tick of class Tick }
    };
    outputs { outcome gotValue { }; outcome timedOut { } }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome ok { }; outcome late { } }
};

compoundtask app of taskclass App
{
    task slow of taskclass Slow
    {
        implementation { "code" is "slow" };
        inputs { input main { inputobject seed from { seed of task app if input main } } }
    };
    task timer of taskclass Timer
    {
        implementation { "code" is "timer" };
        inputs { input main { inputobject seed from { seed of task app if input main } } }
    };
    task consumer of taskclass Consumer
    {
        implementation { "code" is "consume" };
        inputs
        {
            input normal
            {
                inputobject v from { out of task slow if output done }
            };
            input timeout
            {
                inputobject tick from { tick of task timer if output expired }
            }
        }
    };
    outputs
    {
        outcome ok { notification from { task consumer if output gotValue } };
        outcome late { notification from { task consumer if output timedOut } }
    }
};
`

func bindTimerScenario(impls *registry.Registry, slowDelay, timerDelay time.Duration) {
	impls.Bind("slow", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-time.After(slowDelay):
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": val("D", "v")}}, nil
	})
	impls.Bind("timer", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-time.After(timerDelay):
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "expired", Objects: registry.Objects{"tick": val("Tick", 1)}}, nil
	})
	impls.Bind("consume", func(ctx registry.Context) (registry.Result, error) {
		if ctx.InputSet() == "normal" {
			return registry.Result{Output: "gotValue"}, nil
		}
		return registry.Result{Output: "timedOut"}, nil
	})
}

func TestTimerPatternNormalWins(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindTimerScenario(r.impls, 5*time.Millisecond, 500*time.Millisecond)
	inst := r.run(t, timerScript, "timer-fast", "main", registry.Objects{"seed": val("D", 0)})
	res := waitResult(t, inst)
	if res.Output != "ok" {
		t.Fatalf("outcome = %q, want ok (normal input arrived before the timer)", res.Output)
	}
}

func TestTimerPatternTimeoutWins(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindTimerScenario(r.impls, 2*time.Second, 5*time.Millisecond)
	inst := r.run(t, timerScript, "timer-slow", "main", registry.Objects{"seed": val("D", 0)})
	res := waitResult(t, inst)
	if res.Output != "late" {
		t.Fatalf("outcome = %q, want late (timer input set satisfied first)", res.Output)
	}
}

// --- Input sharing: `x of task t if input s` reads another task's
// consumed input (Section 4.3's i3-of-t2 example).

const inputSharingScript = `
class D;

taskclass Stage
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D } }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome done { out of class D } }
};

compoundtask app of taskclass App
{
    task t2 of taskclass Stage
    {
        implementation { "code" is "hold" };
        inputs { input main { inputobject in from { seed of task app if input main } } }
    };
    task t1 of taskclass Stage
    {
        implementation { "code" is "echo" };
        inputs
        {
            input main
            {
                inputobject in from { in of task t2 if input main }
            }
        }
    };
    outputs { outcome done { outputobject out from { out of task t1 if output done } } }
};
`

func TestInputSharing(t *testing.T) {
	r := newRig(t, engine.Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	r.impls.Bind("hold", func(ctx registry.Context) (registry.Result, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	r.impls.Bind("echo", func(ctx registry.Context) (registry.Result, error) {
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	inst := r.run(t, inputSharingScript, "share-1", "main", registry.Objects{"seed": val("D", "shared")})
	// t1 reads t2's *input*, so it must complete while t2 is still
	// executing — input sharing does not wait for t2's output.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("t2 never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskCompleted && e.Task == "app/t1"
	}); err != nil {
		t.Fatalf("t1 did not complete from t2's shared input: %v", err)
	}
	close(release)
	res := waitResult(t, inst)
	if res.Objects["out"].Data.(string) != "shared" {
		t.Fatalf("value = %v, want the shared seed", res.Objects["out"].Data)
	}
}

// --- Stall revival by reconfiguration: the paper's motivation for
// dynamic change is exactly "services withdrawn / requirements changed".

func TestStalledInstanceRevivedByReconfiguration(t *testing.T) {
	r := newRig(t, engine.Config{MaxRetries: 0})
	bindDiamond(r.impls)
	// t1 fails permanently: its class has no abort outcome, so the
	// instance stalls.
	r.impls.Bind("produce", func(registry.Context) (registry.Result, error) {
		return registry.Result{}, errors.New("service withdrawn")
	})
	inst := r.run(t, fig2StallScript, "revive-1", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := inst.Wait(ctx); !errors.Is(err, engine.ErrStalled) {
		t.Fatalf("expected stall, got %v", err)
	}
	// Reconfigure: give t2 an alternative source fed by a fresh task
	// bound to a working implementation.
	r.impls.Bind("produce2", registry.Fixed("done", registry.Objects{"d": val("Data", "alt")}))
	err := inst.Reconfigure(
		&engine.AddTaskOp{ScopePath: "diamond", Fragment: `
task t1b of taskclass Producer
{
    implementation { "code" is "produce2" };
    inputs
    {
        input main
        {
            inputobject seed from { seed of task diamond if input main }
        }
    }
};`},
		&engine.AddObjectSourceOp{TaskPath: "diamond/t2", Set: "main", Object: "in", Source: "d of task t1b if output done"},
	)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := inst.WaitEvent(ctx2, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskCompleted && e.Task == "diamond/t2"
	}); err != nil {
		t.Fatalf("t2 never ran after revival: %v", err)
	}
}

// fig2StallScript is the Fig. 1 diamond where only t2's path matters;
// it reuses the diamond classes but keeps t2 depending solely on a
// producer, so one alternative source suffices to revive it.
const fig2StallScript = `
class Data;

taskclass Producer
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass Stage
{
    inputs { input main { in of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass Diamond
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { d of class Data } }
};

compoundtask diamond of taskclass Diamond
{
    task t1 of taskclass Producer
    {
        implementation { "code" is "produce" };
        inputs { input main { inputobject seed from { seed of task diamond if input main } } }
    };
    task t2 of taskclass Stage
    {
        implementation { "code" is "stage" };
        inputs { input main { inputobject in from { d of task t1 if output done } } }
    };
    outputs { outcome done { outputobject d from { d of task t2 if output done } } }
};
`

// --- Misc edge cases ---------------------------------------------------

func TestUnknownOutputFailsTask(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	r.impls.Bind("produce", registry.Fixed("no-such-outcome", nil))
	inst := r.run(t, fig2StallScript, "unknown-out", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := inst.WaitEvent(ctx, func(e engine.Event) bool { return e.Kind == engine.EventTaskFailed })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev.Err, "unknown output") {
		t.Fatalf("failure reason = %q", ev.Err)
	}
}

func TestMissingDeclaredObjectFailsTask(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	// Producer's done outcome declares object d; produce nothing.
	r.impls.Bind("produce", registry.Fixed("done", nil))
	inst := r.run(t, fig2StallScript, "missing-obj", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := inst.WaitEvent(ctx, func(e engine.Event) bool { return e.Kind == engine.EventTaskFailed })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev.Err, "missing declared object") {
		t.Fatalf("failure reason = %q", ev.Err)
	}
}

func TestMaxRepeatsBound(t *testing.T) {
	r := newRig(t, engine.Config{MaxRepeats: 5})
	r.impls.Bind("cycler", func(ctx registry.Context) (registry.Result, error) {
		n := ctx.Inputs()["seed"].Data.(int)
		return registry.Result{Output: "again", Objects: registry.Objects{"counter": val("D", n+1)}}, nil
	})
	inst := r.run(t, fig3Script, "repeat-bound", "main", registry.Objects{"seed": val("D", 0)})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := inst.WaitEvent(ctx, func(e engine.Event) bool { return e.Kind == engine.EventTaskFailed })
	if err != nil {
		t.Fatalf("runaway repeat not stopped: %v", err)
	}
	if !strings.Contains(ev.Err, "repeat limit") {
		t.Fatalf("failure reason = %q", ev.Err)
	}
}

func TestSnapshotReflectsRunStates(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	gate := make(chan struct{})
	r.impls.Bind("join", func(ctx registry.Context) (registry.Result, error) {
		<-gate
		return registry.Result{Output: "done", Objects: registry.Objects{"d": ctx.Inputs()["left"]}}, nil
	})
	inst := r.run(t, scripts.Fig1Diamond, "snap-1", "main", registry.Objects{"seed": val("Data", "s")})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskStarted && e.Task == "diamond/t4"
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]engine.RunState{}
	for _, row := range rows {
		states[row.Path] = row.State
	}
	if states["diamond/t1"] != engine.RunCompleted {
		t.Errorf("t1 = %v, want completed", states["diamond/t1"])
	}
	if states["diamond/t4"] != engine.RunExecuting {
		t.Errorf("t4 = %v, want executing", states["diamond/t4"])
	}
	close(gate)
	waitResult(t, inst)
}

func TestInstantiateDuplicateAndUnknownLookups(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	inst := r.run(t, scripts.Fig1Diamond, "dup-1", "main", registry.Objects{"seed": val("Data", "s")})
	waitResult(t, inst)
	schema := inst.Schema()
	if _, err := r.eng.Instantiate("dup-1", schema, ""); !errors.Is(err, engine.ErrInstanceExists) {
		t.Fatalf("duplicate instantiate: %v", err)
	}
	if _, err := r.eng.Instance("ghost"); !errors.Is(err, engine.ErrInstanceNotFound) {
		t.Fatalf("unknown instance: %v", err)
	}
	if err := inst.AbortTask("diamond/nope", ""); err == nil {
		t.Fatal("abort of unknown task must fail")
	}
	if err := inst.Start("main", registry.Objects{"seed": val("Data", "s")}); err == nil {
		t.Fatal("double start must fail")
	}
}

func TestStartValidation(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	schema := mustSchema(t, scripts.Fig1Diamond)
	inst, err := r.eng.Instantiate("val-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("nope", nil); err == nil || !strings.Contains(err.Error(), "no input set") {
		t.Fatalf("unknown set: %v", err)
	}
	if err := inst.Start("main", nil); err == nil || !strings.Contains(err.Error(), "missing input object") {
		t.Fatalf("missing object: %v", err)
	}
	if err := inst.Start("main", registry.Objects{"seed": val("Wrong", 1)}); err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("wrong class: %v", err)
	}
	inst.Stop()
}

func TestEventsAreSequencedAndImmutable(t *testing.T) {
	r := newRig(t, engine.Config{})
	bindDiamond(r.impls)
	inst := r.run(t, scripts.Fig1Diamond, "ev-1", "main", registry.Objects{"seed": val("Data", "s")})
	waitResult(t, inst)
	events := inst.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("gap in sequence at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	// Mutating the returned slice must not affect the trace.
	events[0].Task = "corrupted"
	if inst.Events()[0].Task == "corrupted" {
		t.Fatal("Events returned aliased storage")
	}
}

func TestAbortExecutingTaskWithDeclaredOutcome(t *testing.T) {
	r := newRig(t, engine.Config{})
	gate := make(chan struct{})
	r.impls.Bind("mutate", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		case <-gate:
			return registry.Result{Output: "changed", Objects: registry.Objects{"out": val("D", 1)}}, nil
		}
	})
	inst := r.run(t, atomicScript, "abort-exec", "main", registry.Objects{"seed": val("D", 0)})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := inst.WaitEvent(ctx, func(e engine.Event) bool {
		return e.Kind == engine.EventTaskStarted && e.Task == "app/mutator"
	}); err != nil {
		t.Fatal(err)
	}
	if err := inst.AbortTask("app/mutator", "unchanged"); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, inst)
	if res.Output != "undone" {
		t.Fatalf("outcome = %q, want undone (forced abort mapped to declared abort outcome)", res.Output)
	}
	close(gate)
}

func mustSchema(t *testing.T, src string) *core.Schema {
	t.Helper()
	return sema.MustCompileSource("test.wf", []byte(src))
}
