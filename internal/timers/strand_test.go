package timers

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPartialSlotNotStranded is the regression test for a wheel bug
// where a timer whose deadline fell LATER within the current tick (kept
// by the partial filter) was stranded when curTick advanced past its
// tick, firing a full level-0 rotation (64 ticks) late. The arm offset
// here lands the deadline mid-tick with an earlier wake inside the same
// tick, the exact stranding shape.
func TestPartialSlotNotStranded(t *testing.T) {
	s := New(WallClock{}, Config{})
	defer s.Close()
	time.Sleep(650 * time.Microsecond) // desync arm instant from the epoch tick grid
	var late atomic.Int64
	done := make(chan struct{})
	deadline := time.Now().Add(167800 * time.Microsecond)
	s.Arm("mid-tick", deadline, func() { late.Store(int64(time.Since(deadline))); close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	if d := time.Duration(late.Load()); d > 50*time.Millisecond {
		t.Fatalf("fired %v late (stranded-slot regression: one rotation is 64ms)", d)
	}
}

// TestWrappedHigherLevelSlotWakes is the regression test for a wheel
// hang: a timer whose delta sits near the top of a level's span wraps
// onto that level's CURRENT slot index (its window is one rotation
// ahead), and nextDeadlineLocked used to skip higher-level current
// slots entirely — no wake-up was scheduled and the timer never fired.
func TestWrappedHigherLevelSlotWakes(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()

	// Advance curTick to 63 (fire a throwaway timer there first).
	var warm atomic.Int64
	s.Arm("warm", t0.Add(50*time.Millisecond), func() { warm.Add(1) })
	clock.Advance(63 * time.Millisecond)
	waitCount(t, &warm, 1)

	// delta = 4095 from curTick 63: dt = 4158, level-1 slot (4158>>6)&63
	// = 0 — exactly the current level-1 slot index (63>>6 = 0), wrapped.
	var fired atomic.Int64
	deadline := t0.Add((63 + 4095) * time.Millisecond)
	s.Arm("wrapped", deadline, func() { fired.Add(1) })
	clock.Advance(4095 * time.Millisecond)
	waitCount(t, &fired, 1)
}
