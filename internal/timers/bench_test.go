package timers

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkArmCancel measures the wheel's O(1) arm+cancel churn (the
// path every bounded activation pays twice).
func BenchmarkArmCancel(b *testing.B) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := idOf(i % 1024)
		s.Arm(id, t0.Add(time.Duration(1+i%5000)*time.Millisecond), func() {})
		s.Cancel(id)
	}
}

// BenchmarkFire10k measures arming and firing 10k timers in one advance.
func BenchmarkFire10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := NewFakeClock(t0)
		s := New(clock, Config{})
		var fired atomic.Int64
		b.StartTimer()
		for j := 0; j < 10_000; j++ {
			s.Arm(idOf(j), t0.Add(time.Duration(1+j%50)*time.Millisecond), func() { fired.Add(1) })
		}
		clock.Advance(time.Second)
		for fired.Load() != 10_000 {
			time.Sleep(50 * time.Microsecond)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
