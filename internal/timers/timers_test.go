package timers

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// waitCount polls until n fires have been observed or the timeout ends.
func waitCount(t *testing.T, c *atomic.Int64, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fired = %d, want %d", c.Load(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestFireAtDeadlineFakeClock(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()

	var fired atomic.Int64
	s.Arm("a", t0.Add(50*time.Millisecond), func() { fired.Add(1) })

	clock.Advance(49 * time.Millisecond)
	time.Sleep(20 * time.Millisecond) // let the wheel goroutine observe
	if fired.Load() != 0 {
		t.Fatalf("fired %v before the deadline", fired.Load())
	}
	clock.Advance(time.Millisecond) // now exactly at the deadline
	waitCount(t, &fired, 1)
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after fire", s.Pending())
	}
}

func TestCancelPreventsFire(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()

	var fired atomic.Int64
	s.Arm("a", t0.Add(10*time.Millisecond), func() { fired.Add(1) })
	if !s.Cancel("a") {
		t.Fatal("Cancel reported no pending timer")
	}
	if s.Cancel("a") {
		t.Fatal("second Cancel succeeded")
	}
	clock.Advance(time.Second)
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatalf("cancelled timer fired %d times", fired.Load())
	}
}

func TestRearmReplaces(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()

	var first, second atomic.Int64
	s.Arm("a", t0.Add(10*time.Millisecond), func() { first.Add(1) })
	s.Arm("a", t0.Add(30*time.Millisecond), func() { second.Add(1) })
	if got := s.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1 (re-arm replaces)", got)
	}
	clock.Advance(time.Second)
	waitCount(t, &second, 1)
	if first.Load() != 0 {
		t.Fatalf("replaced timer fired %d times", first.Load())
	}
}

// TestSameInstantFiresInArmOrder pins the determinism the engine's
// timer-vs-input race tests rely on: two timers with the same deadline
// fire in the order they were armed.
func TestSameInstantFiresInArmOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		clock := NewFakeClock(t0)
		s := New(clock, Config{})
		var mu sync.Mutex
		var order []string
		var n atomic.Int64
		at := t0.Add(25 * time.Millisecond)
		for _, id := range []string{"first", "second", "third"} {
			id := id
			s.Arm(id, at, func() {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				n.Add(1)
			})
		}
		clock.Advance(25 * time.Millisecond)
		waitCount(t, &n, 3)
		s.Close()
		mu.Lock()
		got := append([]string(nil), order...)
		mu.Unlock()
		if got[0] != "first" || got[1] != "second" || got[2] != "third" {
			t.Fatalf("trial %d: fire order %v, want arm order", trial, got)
		}
	}
}

// TestPropertyRandomTimers is the wheel's property test: N random
// deadlines across every wheel level, random cancels, advances in random
// steps — every surviving timer fires exactly once and never early,
// every cancelled timer never fires, nothing is lost.
func TestPropertyRandomTimers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()

	type probe struct {
		deadline  time.Time
		cancelled bool
	}
	var mu sync.Mutex
	firedAt := make(map[int]time.Time)
	var fired atomic.Int64
	probes := make([]*probe, n)
	for i := 0; i < n; i++ {
		// Deadlines from sub-tick to far beyond one level-0 rotation
		// (exercises cascades): 0..200000 ms.
		d := time.Duration(rng.Int63n(int64(200_000))) * time.Millisecond
		p := &probe{deadline: t0.Add(d)}
		probes[i] = p
		i := i
		s.Arm(idOf(i), p.deadline, func() {
			now := clock.Now()
			mu.Lock()
			if _, dup := firedAt[i]; dup {
				t.Errorf("timer %d fired twice", i)
			}
			firedAt[i] = now
			mu.Unlock()
			fired.Add(1)
		})
	}
	// Cancel a random third before any time passes.
	expect := int64(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			if s.Cancel(idOf(i)) {
				probes[i].cancelled = true
				expect--
			}
		}
	}
	// Advance in random steps past the horizon.
	for clock.Now().Before(t0.Add(210_000 * time.Millisecond)) {
		step := time.Duration(rng.Int63n(int64(9000))+1) * time.Millisecond
		clock.Advance(step)
		// Let the wheel drain before the next jump, so "never early" is
		// checked against intermediate instants too.
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			allPastDue := true
			now := clock.Now()
			for i, p := range probes {
				if p.cancelled || p.deadline.After(now) {
					continue
				}
				if _, ok := firedAt[i]; !ok {
					allPastDue = false
					break
				}
			}
			mu.Unlock()
			if allPastDue {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("wheel never drained past-due timers")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitCount(t, &fired, expect)
	mu.Lock()
	defer mu.Unlock()
	for i, p := range probes {
		at, ok := firedAt[i]
		switch {
		case p.cancelled && ok:
			t.Errorf("cancelled timer %d fired", i)
		case !p.cancelled && !ok:
			t.Errorf("timer %d lost", i)
		case ok && at.Before(p.deadline):
			t.Errorf("timer %d fired early: %v before deadline %v", i, at, p.deadline)
		}
	}
}

func idOf(i int) string { return fmt.Sprintf("t%d", i) }

// TestWallClockSmoke arms real timers over the wall clock and checks
// they all fire, reasonably close to their deadlines.
func TestWallClockSmoke(t *testing.T) {
	s := New(nil, Config{})
	defer s.Close()
	const n = 100
	var fired atomic.Int64
	var worst atomic.Int64
	start := time.Now()
	for i := 0; i < n; i++ {
		deadline := start.Add(time.Duration(1+i%20) * time.Millisecond)
		s.Arm(idOf(i), deadline, func() {
			if late := time.Since(deadline); late > time.Duration(worst.Load()) {
				worst.Store(int64(late))
			}
			fired.Add(1)
		})
	}
	waitCount(t, &fired, n)
	if w := time.Duration(worst.Load()); w > 500*time.Millisecond {
		t.Fatalf("worst fire lateness %v (suspiciously late even for a loaded machine)", w)
	}
}

func TestArmInPastFiresImmediately(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()
	clock.Advance(time.Minute)
	var fired atomic.Int64
	s.Arm("past", t0.Add(time.Second), func() { fired.Add(1) })
	waitCount(t, &fired, 1)
}

// TestArmFromCallback pins that fire callbacks may re-arm (the pattern
// recurring schedules use) without deadlocking the wheel.
func TestArmFromCallback(t *testing.T) {
	clock := NewFakeClock(t0)
	s := New(clock, Config{})
	defer s.Close()
	var fired atomic.Int64
	var arm func(at time.Time)
	arm = func(at time.Time) {
		s.Arm("rec", at, func() {
			if fired.Add(1) < 3 {
				arm(at.Add(10 * time.Millisecond))
			}
		})
	}
	arm(t0.Add(10 * time.Millisecond))
	for i := 0; i < 3; i++ {
		clock.Advance(10 * time.Millisecond)
		waitCount(t, &fired, int64(i+1))
	}
}
