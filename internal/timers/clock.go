package timers

import (
	"sync"
	"time"
)

// Clock abstracts time for the temporal subsystem. The engine, the
// timing wheel and the instantiation scheduler all read time through a
// Clock, so tests drive delays, deadlines and schedules deterministically
// with a FakeClock instead of sleeping (the same injectable-clock
// discipline internal/orb's naming liveness uses).
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Wake returns a channel that delivers once when the clock reaches t.
	// Wake takes an absolute instant (not a duration) so a fake clock
	// advanced between computing the wakeup and registering it still
	// delivers — a relative After would silently re-anchor.
	Wake(t time.Time) <-chan time.Time
}

// WallClock is the production Clock over the real time package.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Wake implements Clock.
func (WallClock) Wake(t time.Time) <-chan time.Time { return time.After(time.Until(t)) }

// FakeClock is a manually advanced Clock for tests: Now returns the
// instant set by construction and Advance, and Wake channels deliver as
// Advance moves the clock past their instants. Safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a clock frozen at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Wake implements Clock. An instant already reached delivers immediately.
func (c *FakeClock) Wake(t time.Time) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if !t.After(c.now) {
		// Fresh 1-buffered channel: this send cannot block.
		//wflint:allow locksafe send on a fresh 1-buffered channel never blocks
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{at: t, ch: ch})
	return ch
}

// Waiters reports how many Wake channels are armed and undelivered.
// Tests use it to synchronise with a goroutine that is about to park on
// a wakeup: poll until Waiters reaches the expected count, then Advance
// — no real sleeping, no lost-wakeup race.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Advance moves the clock forward by d and delivers every Wake channel
// whose instant has been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	keep := c.waiters[:0]
	var fire []*fakeWaiter
	for _, w := range c.waiters {
		if w.at.After(now) {
			keep = append(keep, w)
		} else {
			fire = append(fire, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}
