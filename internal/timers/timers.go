// Package timers is the durable temporal subsystem of the workflow
// system: a hierarchical timing wheel (Varghese/Lauck) behind an
// injectable clock, shared by the engine's first-class delays and
// per-activation deadlines and by the execution service's scheduled
// instantiation.
//
// The Service itself is runtime machinery — O(1) arm and cancel, one
// goroutine firing callbacks in deterministic (deadline, then arm)
// order. Crash safety is layered on top by the callers through their
// existing durability paths: the engine persists a timer record for
// every armed delay in the same WAL batch as the run state it belongs
// to, and re-arms pending records at their original *absolute* deadlines
// during recovery (see internal/engine), so a delay in flight when the
// process crashes fires exactly once at the instant it was always going
// to fire, not a full duration after restart. The instantiation
// scheduler does the same with its schedule records (internal/execsvc).
package timers

import (
	"sync"
	"time"
)

// Wheel geometry: wheelLevels levels of wheelSlots slots each. With the
// default 1ms tick the wheel spans 64^4 ms ≈ 4.7h; farther deadlines are
// parked in the top level and re-sorted as it cascades.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// Config tunes a Service.
type Config struct {
	// Tick is the wheel granularity: the worst-case lateness of a fire.
	// Timers never fire early. Default 1ms.
	Tick time.Duration
}

// timer is one armed entry.
type timer struct {
	id        string
	deadline  time.Time
	seq       int64 // arm order, for deterministic same-instant firing
	fire      func()
	cancelled bool
}

// Service is a hierarchical timing-wheel timer service. Arm and Cancel
// are O(1); a single goroutine advances the wheel and invokes fire
// callbacks (outside the service lock, so callbacks may Arm and Cancel
// freely, but must not block for long — hand heavy work to another
// goroutine).
type Service struct {
	clock Clock
	tick  time.Duration
	epoch time.Time

	mu      sync.Mutex
	levels  [wheelLevels][wheelSlots][]*timer
	curTick int64
	byID    map[string]*timer
	count   int
	seq     int64

	kick   chan struct{}
	syncCh chan chan struct{}
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
}

// New returns a running service over the clock (nil selects the wall
// clock). Close releases its goroutine.
func New(clock Clock, cfg Config) *Service {
	if clock == nil {
		clock = WallClock{}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	s := &Service{
		clock:  clock,
		tick:   cfg.Tick,
		epoch:  clock.Now(),
		byID:   make(map[string]*timer),
		kick:   make(chan struct{}, 1),
		syncCh: make(chan chan struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.run()
	return s
}

// Arm schedules fire to be invoked once the clock reaches at. Arming an
// id that is already armed replaces it (the previous timer is
// cancelled). A deadline already in the past fires on the next wheel
// pass. fire runs on the service goroutine.
func (s *Service) Arm(id string, at time.Time, fire func()) {
	s.mu.Lock()
	if old, ok := s.byID[id]; ok {
		old.cancelled = true
		s.count--
	}
	if s.count == 0 {
		// Empty wheel: snap to now so the insert is relative to the
		// present, not to wherever the wheel last advanced. Without this
		// the first Arm after a long idle makes collectDueLocked walk
		// every elapsed tick under the lock (24h idle at a 1ms tick is
		// ~86M iterations).
		if nc := s.tickOf(s.clock.Now()); nc > s.curTick {
			s.curTick = nc
		}
	}
	s.seq++
	t := &timer{id: id, deadline: at, seq: s.seq, fire: fire}
	s.byID[id] = t
	s.insertLocked(t)
	s.count++
	s.mu.Unlock()
	s.kickNow()
}

// Cancel disarms id, reporting whether a pending timer was removed. A
// timer whose fire is already in flight reports false.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	if !ok {
		return false
	}
	t.cancelled = true
	delete(s.byID, id)
	s.count--
	return true
}

// Pending returns the number of armed timers.
func (s *Service) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Close stops the service goroutine. Pending timers never fire.
func (s *Service) Close() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Service) kickNow() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// tickOf maps an instant to its wheel tick.
func (s *Service) tickOf(t time.Time) int64 {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	return int64(d / s.tick)
}

// insertLocked files a timer into the level whose span covers its
// distance. Callers hold mu.
func (s *Service) insertLocked(t *timer) {
	dt := s.tickOf(t.deadline)
	if dt < s.curTick {
		dt = s.curTick // past due: current slot, filtered by deadline
	}
	delta := dt - s.curTick
	level := 0
	for level < wheelLevels-1 && delta >= int64(1)<<(wheelBits*(level+1)) {
		level++
	}
	if level == wheelLevels-1 {
		// Beyond the wheel span: park at the horizon; the cascade
		// re-files it by its real deadline as the horizon approaches.
		if max := int64(1)<<(wheelBits*wheelLevels) - 1; delta > max {
			dt = s.curTick + max
		}
	}
	slot := (dt >> (wheelBits * level)) & wheelMask
	s.levels[level][slot] = append(s.levels[level][slot], t)
}

// cascadeLocked re-files the higher-level slots whose windows begin at
// tick into the levels below. Callers hold mu.
func (s *Service) cascadeLocked(tick int64) {
	for l := 1; l < wheelLevels; l++ {
		if tick&(int64(1)<<(wheelBits*l)-1) != 0 {
			return // not a boundary of this level (nor of any above)
		}
		slot := (tick >> (wheelBits * l)) & wheelMask
		batch := s.levels[l][slot]
		s.levels[l][slot] = nil
		for _, t := range batch {
			if t.cancelled {
				continue
			}
			s.insertLocked(t)
		}
	}
}

// collectDueLocked advances the wheel to now and returns the timers due,
// ordered by (deadline, arm order). Timers never fire early: the current
// partially-elapsed tick releases only entries whose deadline has
// passed. Callers hold mu.
func (s *Service) collectDueLocked(now time.Time) []*timer {
	var due []*timer
	target := s.tickOf(now)
	if s.count == 0 {
		// Nothing armed: nothing to fire or cascade, so the walk below
		// would only burn CPU. Jump straight to the present. (Cancelled
		// entries may still sit in jumped-past slots; they are filtered
		// whenever their slot index is next visited.)
		if target > s.curTick {
			s.curTick = target
		}
		return nil
	}
	if target > s.curTick {
		// Leaving the current tick: anything still in its slot (entries
		// the partial filter kept because their deadline lay later
		// within the tick) is now fully elapsed and due. Without this
		// drain they would strand until the slot's next rotation.
		slot := s.curTick & wheelMask
		for _, t := range s.levels[0][slot] {
			if !t.cancelled {
				due = append(due, t)
			}
		}
		s.levels[0][slot] = nil
	}
	for s.curTick < target {
		s.curTick++
		s.cascadeLocked(s.curTick)
		if s.curTick == target {
			break // current tick: partial filter below
		}
		slot := s.curTick & wheelMask
		for _, t := range s.levels[0][slot] {
			if !t.cancelled {
				due = append(due, t)
			}
		}
		s.levels[0][slot] = nil
	}
	slot := s.curTick & wheelMask
	if batch := s.levels[0][slot]; len(batch) > 0 {
		keep := batch[:0]
		for _, t := range batch {
			switch {
			case t.cancelled:
			case !t.deadline.After(now):
				due = append(due, t)
			default:
				keep = append(keep, t)
			}
		}
		s.levels[0][slot] = keep
	}
	for _, t := range due {
		delete(s.byID, t.id)
	}
	s.count -= len(due)
	sortDue(due)
	return due
}

// sortDue orders fired timers by deadline, then arm order — so
// same-instant timers fire in the order they were armed, which is what
// makes timer-vs-timer races deterministic at the engine level.
func sortDue(due []*timer) {
	// Insertion sort: due batches are small and nearly ordered.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0; j-- {
			a, b := due[j-1], due[j]
			if a.deadline.Before(b.deadline) || (a.deadline.Equal(b.deadline) && a.seq < b.seq) {
				break
			}
			due[j-1], due[j] = b, a
		}
	}
}

// nextDeadlineLocked returns the next instant the wheel must wake at: an
// exact deadline for entries in the current tick, a slot-window start
// for everything farther out (waking there either fires or cascades and
// reschedules). Callers hold mu.
func (s *Service) nextDeadlineLocked() (time.Time, bool) {
	if s.count == 0 {
		return time.Time{}, false
	}
	var best time.Time
	consider := func(t time.Time) {
		if best.IsZero() || t.Before(best) {
			best = t
		}
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		cur := s.curTick >> shift
		from, to := int64(0), int64(wheelSlots)
		if l > 0 {
			// The current slot of a higher level was cascaded when its
			// window began — but an insert whose delta is near the top
			// of the level's span WRAPS onto the same slot index (its
			// window is one full rotation ahead). Scan starts past the
			// current slot and extends one position to j == wheelSlots,
			// which is that wrapped slot at its true (next-rotation)
			// cascade boundary; missing it would leave the wheel with
			// no wake-up and the timer stranded.
			from, to = 1, wheelSlots+1
		}
		for j := from; j < to; j++ {
			slotTick := cur + j
			bucket := s.levels[l][slotTick&wheelMask]
			live := false
			for _, t := range bucket {
				if !t.cancelled {
					live = true
					break
				}
			}
			if !live {
				continue
			}
			if l == 0 && j == 0 {
				// Current tick: exact deadlines.
				for _, t := range bucket {
					if !t.cancelled {
						consider(t.deadline)
					}
				}
			} else {
				consider(s.epoch.Add(time.Duration(slotTick<<shift) * s.tick))
			}
			break // first live slot of a level is its earliest
		}
	}
	return best, !best.IsZero()
}

// Sync blocks until the wheel goroutine has completed a full pass that
// found nothing due at the current clock reading and no pending arm
// notification — i.e. every fire callback implied by the clock's
// current position has already run. The deterministic simulation
// harness calls Sync after FakeClock.Advance to get a happens-before
// edge from "the clock moved" to "all consequent fires delivered".
// Returns immediately once the service is closed.
func (s *Service) Sync() {
	ack := make(chan struct{})
	select {
	case s.syncCh <- ack:
	case <-s.done:
		return
	}
	select {
	case <-ack:
	case <-s.done:
	}
}

// run is the wheel goroutine: advance, fire, sleep to the next deadline.
func (s *Service) run() {
	defer close(s.done)
	var acks []chan struct{}
	for {
		s.mu.Lock()
		now := s.clock.Now()
		due := s.collectDueLocked(now)
		next, ok := s.nextDeadlineLocked()
		s.mu.Unlock()
		if len(due) > 0 {
			// Fire outside the lock: callbacks may Arm/Cancel. Re-loop
			// immediately so anything that became due meanwhile is not
			// delayed by a stale sleep.
			for _, t := range due {
				t.fire()
			}
			continue
		}
		// Consume any pending arm notification before acknowledging Sync
		// callers: a kick means an Arm may have landed after the scan
		// above, so the wheel is not provably idle until another pass
		// confirms it.
		select {
		case <-s.kick:
			continue
		default:
		}
		// Idle at the current clock reading: everything due has fired.
		for _, ack := range acks {
			close(ack)
		}
		acks = acks[:0]
		var wake <-chan time.Time
		if ok {
			wake = s.clock.Wake(next)
		}
		select {
		case <-wake:
		case <-s.kick:
		case ack := <-s.syncCh:
			acks = append(acks, ack)
		case <-s.stop:
			return
		}
	}
}
