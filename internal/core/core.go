// Package core defines the compiled workflow schema model: the validated,
// pointer-linked form of a workflow script that the execution engine,
// repository service and baseline compilers consume.
//
// A Schema is produced from source text by internal/script/sema and is the
// paper's central artefact: object classes, task classes (signatures with
// alternative input sets and multi-kind outputs), task and compound-task
// instances wired together by ordered dataflow and notification
// dependencies.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// OutputKind distinguishes the four output types of a task class
// (Section 4.2 of the paper).
type OutputKind int

// Output kinds.
const (
	// Outcome is a final, effectful result of a task.
	Outcome OutputKind = iota + 1
	// AbortOutcome is a side-effect-free termination; declaring one makes
	// the task class atomic (transactional).
	AbortOutcome
	// RepeatOutcome restarts the task; its objects are only usable as the
	// task's own feedback inputs.
	RepeatOutcome
	// Mark is an intermediate output released during execution ("early
	// release"); a task that has marked can no longer abort.
	Mark
)

// String returns the concrete-syntax spelling of the kind.
func (k OutputKind) String() string {
	switch k {
	case Outcome:
		return "outcome"
	case AbortOutcome:
		return "abort outcome"
	case RepeatOutcome:
		return "repeat outcome"
	case Mark:
		return "mark"
	default:
		return fmt.Sprintf("outputkind(%d)", int(k))
	}
}

// SourceCond says how a dependency source is conditioned.
type SourceCond int

// Source conditions.
const (
	// CondNone accepts the object from any output of the source task that
	// carries it (and, for notifications, any terminal outcome).
	CondNone SourceCond = iota + 1
	// CondInput takes the object from the source task's named input set,
	// once that task has consumed its inputs (input sharing).
	CondInput
	// CondOutput takes the object from (or is notified by) the named
	// output of the source task.
	CondOutput
)

// String returns the spelling used in dependency listings.
func (c SourceCond) String() string {
	switch c {
	case CondNone:
		return ""
	case CondInput:
		return "input"
	case CondOutput:
		return "output"
	default:
		return fmt.Sprintf("cond(%d)", int(c))
	}
}

// Field is a typed object reference slot: `name of class Class`.
type Field struct {
	Name  string
	Class string
}

// InputSetDecl is one alternative input requirement of a task class.
type InputSetDecl struct {
	Name    string
	Objects []Field
}

// Field returns the field with the given name and whether it exists.
func (d *InputSetDecl) Field(name string) (Field, bool) {
	for _, f := range d.Objects {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Output is a named output of a task class.
type Output struct {
	Kind    OutputKind
	Name    string
	Objects []Field
}

// Field returns the output's field with the given name and whether it
// exists.
func (o *Output) Field(name string) (Field, bool) {
	for _, f := range o.Objects {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// TaskClass is a task signature: the structure of Fig. 2.
type TaskClass struct {
	Name      string
	InputSets []*InputSetDecl
	Outputs   []*Output
}

// InputSet returns the input set with the given name, or nil.
func (c *TaskClass) InputSet(name string) *InputSetDecl {
	for _, s := range c.InputSets {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Output returns the output with the given name, or nil.
func (c *TaskClass) Output(name string) *Output {
	for _, o := range c.Outputs {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// Atomic reports whether the class declares an abort outcome, which per
// Section 4.2 marks its instances as atomic (ACID) tasks.
func (c *TaskClass) Atomic() bool {
	for _, o := range c.Outputs {
		if o.Kind == AbortOutcome {
			return true
		}
	}
	return false
}

// Outcomes returns the outputs of the given kind in declaration order.
func (c *TaskClass) Outcomes(kind OutputKind) []*Output {
	var out []*Output
	for _, o := range c.Outputs {
		if o.Kind == kind {
			out = append(out, o)
		}
	}
	return out
}

// Source is one resolved alternative source of a dependency.
type Source struct {
	// Object is the name of the object at the source; empty for a pure
	// notification source.
	Object string
	// Task is the producing (or input-sharing) task instance. It may be
	// the depending task's enclosing compound (inputs flowing inward), a
	// sibling constituent, or the task itself (repeat feedback).
	Task *Task
	// Cond and CondName condition the source on an input set or output of
	// Task; Cond == CondNone accepts any carrying output.
	Cond     SourceCond
	CondName string
}

// String renders the source in (approximate) concrete syntax.
func (s *Source) String() string {
	var b strings.Builder
	if s.Object != "" {
		b.WriteString(s.Object)
		b.WriteString(" of ")
	}
	b.WriteString("task ")
	b.WriteString(s.Task.Name)
	if s.Cond != CondNone {
		fmt.Fprintf(&b, " if %s %s", s.Cond, s.CondName)
	}
	return b.String()
}

// ObjectDep is a dataflow dependency of a task input (or a compound-task
// output mapping): ordered alternative sources for one object reference.
type ObjectDep struct {
	Name    string
	Sources []*Source
}

// NotificationDep is a temporal dependency with ordered alternative
// sources.
type NotificationDep struct {
	Sources []*Source
}

// InputSetBinding binds one input set of a task instance to its
// dependencies. Objects must cover every field of Decl.
type InputSetBinding struct {
	Name          string
	Decl          *InputSetDecl
	Objects       []*ObjectDep
	Notifications []*NotificationDep
}

// ObjectDep returns the dependency feeding the named object, or nil.
func (b *InputSetBinding) ObjectDep(name string) *ObjectDep {
	for _, d := range b.Objects {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// OutputBinding maps one output of a compound task to sources among its
// constituents, plus gating notifications.
type OutputBinding struct {
	Output        *Output
	Objects       []*ObjectDep
	Notifications []*NotificationDep
}

// Task is a compiled task or compound-task instance.
type Task struct {
	// Name is the instance name local to its enclosing scope.
	Name string
	// Class is the task's signature.
	Class *TaskClass
	// Compound reports whether this instance specifies an internal
	// composition.
	Compound bool
	// Implementation holds the late-binding key/value pairs; the "code"
	// key names the executable or sub-script bound at run time.
	Implementation map[string]string
	// InputSets binds dependencies per input set, in declaration
	// (priority) order.
	InputSets []*InputSetBinding
	// Parent is the enclosing compound task, nil for a root task.
	Parent *Task
	// Constituents are the compound's member tasks in declaration order.
	Constituents []*Task
	// Outputs are the compound's output mappings.
	Outputs []*OutputBinding
}

// Path returns the slash-separated instance path from the root, used as a
// stable identifier in the engine and stores.
func (t *Task) Path() string {
	if t.Parent == nil {
		return t.Name
	}
	return t.Parent.Path() + "/" + t.Name
}

// Constituent returns the named direct constituent, or nil.
func (t *Task) Constituent(name string) *Task {
	for _, c := range t.Constituents {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// InputSet returns the named input-set binding, or nil.
func (t *Task) InputSet(name string) *InputSetBinding {
	for _, b := range t.InputSets {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// OutputBinding returns the mapping for the named output, or nil.
func (t *Task) OutputBinding(name string) *OutputBinding {
	for _, b := range t.Outputs {
		if b.Output.Name == name {
			return b
		}
	}
	return nil
}

// Code returns the implementation binding name under the "code" key.
func (t *Task) Code() string { return t.Implementation["code"] }

// Atomic reports whether the instance is atomic (its class declares an
// abort outcome).
func (t *Task) Atomic() bool { return t.Class.Atomic() }

// Walk visits t and all transitively contained constituents depth-first
// in declaration order.
func (t *Task) Walk(f func(*Task)) {
	f(t)
	for _, c := range t.Constituents {
		c.Walk(f)
	}
}

// Schema is a compiled workflow script: the unit stored by the repository
// service and instantiated by the execution service.
type Schema struct {
	// Name identifies the schema (usually the source file name).
	Name string
	// Source is the canonical source text the schema was compiled from;
	// kept because schemas are persisted and shipped as text.
	Source string
	// Classes are the declared object classes in order.
	Classes []string
	// Superclasses maps a class to its immediate super-class (the
	// sub-typing extension of Section 7); classes without an entry are
	// roots.
	Superclasses map[string]string
	// TaskClasses are the declared task signatures in order.
	TaskClasses []*TaskClass
	// Tasks are the top-level task instances in order; by convention a
	// deployable application script has a single root compound task.
	Tasks []*Task
}

// Class reports whether the named object class is declared.
func (s *Schema) Class(name string) bool {
	for _, c := range s.Classes {
		if c == name {
			return true
		}
	}
	return false
}

// AssignableTo reports whether an object of class sub may flow into a
// slot of class super: equal classes, or super reachable through the
// sub-typing chain. With no sub-typing declared this degrades to
// equality, the paper's original rule.
func (s *Schema) AssignableTo(sub, super string) bool {
	if sub == super {
		return true
	}
	seen := 0
	for c := sub; c != ""; c = s.Superclasses[c] {
		if c == super {
			return true
		}
		seen++
		if seen > len(s.Classes) {
			return false // defensive: malformed hierarchy
		}
	}
	return false
}

// TaskClass returns the named task class, or nil.
func (s *Schema) TaskClass(name string) *TaskClass {
	for _, c := range s.TaskClasses {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Task returns the named top-level task, or nil.
func (s *Schema) Task(name string) *Task {
	for _, t := range s.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Root returns the designated root task: the single top-level task, or
// the named one if name is non-empty. It returns an error when the choice
// is ambiguous or missing.
func (s *Schema) Root(name string) (*Task, error) {
	if name != "" {
		t := s.Task(name)
		if t == nil {
			return nil, fmt.Errorf("schema %s: no top-level task %q", s.Name, name)
		}
		return t, nil
	}
	switch len(s.Tasks) {
	case 0:
		return nil, fmt.Errorf("schema %s: no top-level tasks", s.Name)
	case 1:
		return s.Tasks[0], nil
	default:
		names := make([]string, len(s.Tasks))
		for i, t := range s.Tasks {
			names[i] = t.Name
		}
		return nil, fmt.Errorf("schema %s: ambiguous root, have %s", s.Name, strings.Join(names, ", "))
	}
}

// Lookup resolves a slash-separated instance path (as produced by
// Task.Path) to a task, or nil.
func (s *Schema) Lookup(path string) *Task {
	parts := strings.Split(path, "/")
	cur := s.Task(parts[0])
	for _, p := range parts[1:] {
		if cur == nil {
			return nil
		}
		cur = cur.Constituent(p)
	}
	return cur
}

// AllTasks returns every task instance in the schema (top-level tasks and
// all nested constituents) in depth-first declaration order.
func (s *Schema) AllTasks() []*Task {
	var out []*Task
	for _, t := range s.Tasks {
		t.Walk(func(x *Task) { out = append(out, x) })
	}
	return out
}

// Stats summarises a schema for reporting and the specification-size
// comparison benches.
type Stats struct {
	Classes       int
	TaskClasses   int
	Tasks         int
	CompoundTasks int
	InputSets     int
	ObjectDeps    int
	Notifications int
	Sources       int
	Outputs       int
	MaxDepth      int
}

// Stats computes schema statistics.
func (s *Schema) Stats() Stats {
	st := Stats{Classes: len(s.Classes), TaskClasses: len(s.TaskClasses)}
	for _, c := range s.TaskClasses {
		st.Outputs += len(c.Outputs)
	}
	var walk func(t *Task, depth int)
	walk = func(t *Task, depth int) {
		st.Tasks++
		if t.Compound {
			st.CompoundTasks++
		}
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		st.InputSets += len(t.InputSets)
		for _, b := range t.InputSets {
			st.ObjectDeps += len(b.Objects)
			st.Notifications += len(b.Notifications)
			for _, d := range b.Objects {
				st.Sources += len(d.Sources)
			}
			for _, n := range b.Notifications {
				st.Sources += len(n.Sources)
			}
		}
		for _, ob := range t.Outputs {
			st.ObjectDeps += len(ob.Objects)
			st.Notifications += len(ob.Notifications)
			for _, d := range ob.Objects {
				st.Sources += len(d.Sources)
			}
			for _, n := range ob.Notifications {
				st.Sources += len(n.Sources)
			}
		}
		for _, c := range t.Constituents {
			walk(c, depth+1)
		}
	}
	for _, t := range s.Tasks {
		walk(t, 1)
	}
	return st
}

// SortedTaskClassNames returns the task class names in lexical order;
// used by printers and the repository inspection API for stable output.
func (s *Schema) SortedTaskClassNames() []string {
	names := make([]string, len(s.TaskClasses))
	for i, c := range s.TaskClasses {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
