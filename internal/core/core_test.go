package core_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/script/sema"
	"repro/internal/scripts"
	"repro/internal/workload"
)

func compile(t *testing.T, name, src string) *core.Schema {
	t.Helper()
	return sema.MustCompileSource(name, []byte(src))
}

func TestPathsAndLookup(t *testing.T) {
	s := compile(t, "trip", scripts.BusinessTrip)
	paths := []string{
		"tripReservation",
		"tripReservation/businessReservation",
		"tripReservation/businessReservation/checkFlightReservation/queryAirline2",
		"tripReservation/printTickets",
	}
	for _, p := range paths {
		task := s.Lookup(p)
		if task == nil {
			t.Fatalf("Lookup(%q) = nil", p)
		}
		if task.Path() != p {
			t.Errorf("Path() = %q, want %q", task.Path(), p)
		}
	}
	if s.Lookup("tripReservation/nope") != nil {
		t.Error("bogus lookup must return nil")
	}
	if len(s.AllTasks()) != 11 {
		t.Errorf("AllTasks = %d, want 11", len(s.AllTasks()))
	}
}

func TestRootSelection(t *testing.T) {
	s := compile(t, "po", scripts.ProcessOrder)
	root, err := s.Root("")
	if err != nil || root.Name != "processOrderApplication" {
		t.Fatalf("root = %v, %v", root, err)
	}
	if _, err := s.Root("ghost"); err == nil {
		t.Error("unknown root must error")
	}
}

func TestAtomicityDetection(t *testing.T) {
	s := compile(t, "po", scripts.ProcessOrder)
	if !s.TaskClass("Dispatch").Atomic() {
		t.Error("Dispatch declares an abort outcome and must be atomic")
	}
	if s.TaskClass("CheckStock").Atomic() {
		t.Error("CheckStock has no abort outcome and must not be atomic")
	}
}

func TestEdgesAndDependents(t *testing.T) {
	s := compile(t, "fig1", scripts.Fig1Diamond)
	root := s.Task("diamond")
	t1 := root.Constituent("t1")
	deps := s.Dependents(t1)
	// t2 (notification+dataflow) and t3 (dataflow).
	if len(deps) != 2 {
		names := make([]string, len(deps))
		for i, d := range deps {
			names[i] = d.Path()
		}
		t.Fatalf("dependents of t1 = %v, want t2 and t3", names)
	}
	edges := s.Edges()
	var notif, data int
	for _, e := range edges {
		if e.Object == "" {
			notif++
		} else {
			data++
		}
	}
	if notif != 1 {
		t.Errorf("notification edges = %d, want 1 (t1 -> t2)", notif)
	}
	if data < 5 {
		t.Errorf("dataflow edges = %d, want >= 5", data)
	}
}

func TestTopoOrder(t *testing.T) {
	s := compile(t, "fig1", scripts.Fig1Diamond)
	root := s.Task("diamond")
	order, err := s.TopoOrder(root)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, task := range order {
		pos[task.Name] = i
	}
	if !(pos["t1"] < pos["t2"] && pos["t1"] < pos["t3"] && pos["t2"] < pos["t4"] && pos["t3"] < pos["t4"]) {
		t.Errorf("topo order violates dependencies: %v", pos)
	}
}

func TestTopoOrderRepeatEdgesExempt(t *testing.T) {
	// The business trip's repeat feedback must not count as a cycle.
	s := compile(t, "trip", scripts.BusinessTrip)
	if err := s.CheckCycles(); err != nil {
		t.Fatalf("CheckCycles: %v", err)
	}
	br := s.Lookup("tripReservation/businessReservation")
	if _, err := s.TopoOrder(br); err != nil {
		t.Fatalf("TopoOrder(businessReservation): %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := compile(t, "po", scripts.ProcessOrder)
	c := s.Clone()
	// Same structure...
	if s.Stats() != c.Stats() {
		t.Fatalf("clone stats differ: %+v vs %+v", s.Stats(), c.Stats())
	}
	// ...but distinct task objects with remapped internal pointers.
	orig := s.Lookup("processOrderApplication/dispatch")
	dup := c.Lookup("processOrderApplication/dispatch")
	if orig == dup {
		t.Fatal("clone shares task objects")
	}
	for _, b := range dup.InputSets {
		for _, od := range b.Objects {
			for _, src := range od.Sources {
				if src.Task.Path() != c.Lookup(src.Task.Path()).Path() {
					t.Fatal("clone source points into the original schema")
				}
			}
		}
	}
	// Mutating the clone must not affect the original.
	cloneCapture := c.Lookup("processOrderApplication/paymentCapture")
	nsrc, err := sema.ResolveSourceSpec(c, cloneCapture, "main", "", "task checkStock if output stockAvailable")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddNotification(cloneCapture, "main", nsrc); err != nil {
		t.Fatal(err)
	}
	origCapture := s.Lookup("processOrderApplication/paymentCapture")
	if len(origCapture.InputSet("main").Notifications) != 1 {
		t.Fatal("mutating clone affected original")
	}
	if len(cloneCapture.InputSet("main").Notifications) != 2 {
		t.Fatal("clone mutation lost")
	}
}

func TestReconfigOps(t *testing.T) {
	s := compile(t, "fig1", scripts.Fig1Diamond)
	root := s.Task("diamond")
	t2 := root.Constituent("t2")
	t4 := root.Constituent("t4")

	// The paper's example: add t5 with dependencies from t2 and t4.
	t5, err := sema.CompileTaskFragment(s, root, []byte(`
task t5 of taskclass Join
{
    implementation { "code" is "join" };
    inputs
    {
        input main
        {
            inputobject left from { d of task t2 if output done };
            inputobject right from { d of task t4 if output done }
        }
    }
};`))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTask(root, t5); err != nil {
		t.Fatal(err)
	}
	if s.Lookup("diamond/t5") == nil {
		t.Fatal("t5 not added")
	}
	// Locality: t2 and t4 are untouched by the addition (unidirectional
	// dependencies).
	if len(t2.InputSets[0].Objects[0].Sources) != 1 {
		t.Error("adding t5 modified t2 (locality violated)")
	}
	_ = t4

	// Duplicate name rejected.
	if err := s.AddTask(root, t5); !errors.Is(err, core.ErrTaskExists) {
		t.Errorf("duplicate add: %v, want ErrTaskExists", err)
	}
	// Removing a depended-upon task rejected; removing t5 (a sink) works.
	if err := s.RemoveTask(root, "t1"); !errors.Is(err, core.ErrHasDependents) {
		t.Errorf("remove t1: %v, want ErrHasDependents", err)
	}
	if err := s.RemoveTask(root, "t5"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTask(root, "t5"); !errors.Is(err, core.ErrTaskNotFound) {
		t.Errorf("remove twice: %v, want ErrTaskNotFound", err)
	}
}

func TestAddSourceAndNotification(t *testing.T) {
	s := compile(t, "fig1", scripts.Fig1Diamond)
	root := s.Task("diamond")
	t4 := root.Constituent("t4")

	// Redundant data source for t4's left input: also accept t3's output.
	src, err := sema.ResolveSourceSpec(s, t4, "main", "left", "d of task t3 if output done")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddObjectSource(t4, "main", "left", src); err != nil {
		t.Fatal(err)
	}
	if got := len(t4.InputSet("main").ObjectDep("left").Sources); got != 2 {
		t.Fatalf("left sources = %d, want 2", got)
	}
	// Removing below one source is rejected.
	if err := s.RemoveObjectSource(t4, "main", "left", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveObjectSource(t4, "main", "left", 0); err == nil {
		t.Fatal("removing the only source must fail")
	}

	// Notification add/remove.
	nsrc, err := sema.ResolveSourceSpec(s, t4, "main", "", "task t1 if output done")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddNotification(t4, "main", nsrc); err != nil {
		t.Fatal(err)
	}
	if got := len(t4.InputSet("main").Notifications); got != 1 {
		t.Fatalf("notifications = %d, want 1", got)
	}
	if err := s.RemoveNotification(t4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNotification(t4, "main", 0); err == nil {
		t.Fatal("removing a missing notification must fail")
	}
}

func TestAddDependencyCycleRejected(t *testing.T) {
	s := compile(t, "fig1", scripts.Fig1Diamond)
	root := s.Task("diamond")
	t1 := root.Constituent("t1")
	// t1 <- t4 would close the diamond into a cycle. t1's input seed has
	// class Data; t4's done output carries d of class Data, so the source
	// type-checks but must be rejected by the cycle check.
	src, err := sema.ResolveSourceSpec(s, t1, "main", "seed", "d of task t4 if output done")
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddObjectSource(t1, "main", "seed", src)
	if err == nil {
		t.Fatal("cycle-closing source must be rejected")
	}
	var cyc *core.CycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("err = %v, want CycleError", err)
	}
	// Rollback: t1 unchanged.
	if got := len(t1.InputSet("main").ObjectDep("seed").Sources); got != 1 {
		t.Fatalf("t1 seed sources = %d after rejected add, want 1", got)
	}
}

func TestStatsOnGeneratedWorkloads(t *testing.T) {
	// Property: for a chain of n stages, tasks = n + 1 (root) and
	// dataflow sources = n + 1 (each stage one source, plus the root
	// output mapping).
	f := func(raw uint8) bool {
		n := int(raw%20) + 1
		s := workload.MustCompile(fmt.Sprintf("chain%d", n), workload.Chain(n))
		st := s.Stats()
		return st.Tasks == n+1 && st.CompoundTasks == 1 && st.Sources == n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneEquivalenceProperty(t *testing.T) {
	// Property: for random DAGs, Clone preserves stats, edges and paths.
	f := func(rawN uint8, rawAlts uint8, seed int64) bool {
		n := int(rawN%15) + 2
		alts := int(rawAlts % 3)
		s := workload.MustCompile("dag", workload.RandomDAG(n, alts, seed))
		c := s.Clone()
		if s.Stats() != c.Stats() {
			return false
		}
		if len(s.Edges()) != len(c.Edges()) {
			return false
		}
		for _, task := range s.AllTasks() {
			if c.Lookup(task.Path()) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderProperty(t *testing.T) {
	// Property: TopoOrder of random DAG scopes respects every edge.
	f := func(rawN uint8, seed int64) bool {
		n := int(rawN%20) + 2
		s := workload.MustCompile("dag", workload.RandomDAG(n, 1, seed))
		root, err := s.Root("")
		if err != nil {
			return false
		}
		order, err := s.TopoOrder(root)
		if err != nil {
			return false
		}
		pos := make(map[*core.Task]int, len(order))
		for i, task := range order {
			pos[task] = i
		}
		for _, e := range s.Edges() {
			pf, okF := pos[e.From]
			pt, okT := pos[e.To]
			if okF && okT && pf >= pt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
