package core

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a resolved dependency edge between two task instances within
// the same compound scope: To depends on From.
type Edge struct {
	From *Task
	To   *Task
	// Object is the flowing object name; empty for pure notifications.
	Object string
	// Cond/CondName record the conditioning of the source.
	Cond     SourceCond
	CondName string
	// InputSet is the depending input set of To (or the output binding
	// name when the edge feeds a compound output, prefixed "outputs/").
	InputSet string
	// AltIndex is the position of this source among its alternatives
	// (0 = highest priority).
	AltIndex int
}

// String renders the edge for diagnostics and DOT labels.
func (e Edge) String() string {
	kind := "notify"
	if e.Object != "" {
		kind = e.Object
	}
	return fmt.Sprintf("%s -> %s [%s]", e.From.Path(), e.To.Path(), kind)
}

// dependencyEdges enumerates the resolved edges implied by t's input-set
// bindings and (for compounds) output mappings.
func dependencyEdges(t *Task) []Edge {
	var edges []Edge
	add := func(setName string, deps []*ObjectDep, notifs []*NotificationDep) {
		for _, d := range deps {
			for i, s := range d.Sources {
				edges = append(edges, Edge{
					From: s.Task, To: t, Object: d.Name,
					Cond: s.Cond, CondName: s.CondName,
					InputSet: setName, AltIndex: i,
				})
			}
		}
		for _, n := range notifs {
			for i, s := range n.Sources {
				edges = append(edges, Edge{
					From: s.Task, To: t,
					Cond: s.Cond, CondName: s.CondName,
					InputSet: setName, AltIndex: i,
				})
			}
		}
	}
	for _, b := range t.InputSets {
		add(b.Name, b.Objects, b.Notifications)
	}
	for _, ob := range t.Outputs {
		add("outputs/"+ob.Output.Name, ob.Objects, ob.Notifications)
	}
	return edges
}

// Edges returns every resolved dependency edge in the schema, in
// deterministic order.
func (s *Schema) Edges() []Edge {
	var edges []Edge
	for _, t := range s.AllTasks() {
		edges = append(edges, dependencyEdges(t)...)
	}
	return edges
}

// CycleError reports a dependency cycle among sibling tasks.
type CycleError struct {
	Scope *Task // enclosing compound, nil for top level
	Cycle []*Task
}

// Error implements the error interface.
func (e *CycleError) Error() string {
	names := make([]string, len(e.Cycle))
	for i, t := range e.Cycle {
		names[i] = t.Name
	}
	scope := "top level"
	if e.Scope != nil {
		scope = "compound task " + e.Scope.Path()
	}
	return fmt.Sprintf("dependency cycle in %s: %s", scope, strings.Join(names, " -> "))
}

// CheckCycles verifies that within every compound scope the dependency
// graph over sibling constituents is acyclic. Edges that realise repeat
// feedback (a task consuming its own repeat outcome) and edges from the
// enclosing compound are exempt, as the paper's loop idiom (Fig. 9)
// depends on them.
func (s *Schema) CheckCycles() error {
	scopes := [][]*Task{s.Tasks}
	scopeOwner := []*Task{nil}
	for _, t := range s.AllTasks() {
		if t.Compound {
			scopes = append(scopes, t.Constituents)
			scopeOwner = append(scopeOwner, t)
		}
	}
	for i, sibs := range scopes {
		if err := checkScopeCycles(scopeOwner[i], sibs); err != nil {
			return err
		}
	}
	return nil
}

func checkScopeCycles(owner *Task, sibs []*Task) error {
	index := make(map[*Task]int, len(sibs))
	for i, t := range sibs {
		index[t] = i
	}
	adj := make([][]int, len(sibs))
	for i, t := range sibs {
		seen := make(map[int]bool)
		for _, e := range dependencyEdges(t) {
			j, ok := index[e.From]
			if !ok || e.From == t {
				// Source outside this scope (enclosing compound or repeat
				// self-feedback): not part of the sibling DAG.
				continue
			}
			// A conditioned source on a repeat outcome is feedback, not
			// ordering: skip it for acyclicity purposes.
			if e.Cond == CondOutput {
				if o := e.From.Class.Output(e.CondName); o != nil && o.Kind == RepeatOutcome {
					continue
				}
			}
			if !seen[j] {
				seen[j] = true
				adj[i] = append(adj[i], j)
			}
		}
		sort.Ints(adj[i])
	}

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(sibs))
	parent := make([]int, len(sibs))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt int = -1
	var cycleTo int = -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, v := range adj[u] {
			switch color[v] {
			case grey:
				cycleAt, cycleTo = u, v
				return true
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range sibs {
		if color[i] == white && dfs(i) {
			var cyc []*Task
			for u := cycleAt; u != -1 && u != cycleTo; u = parent[u] {
				cyc = append(cyc, sibs[u])
			}
			cyc = append(cyc, sibs[cycleTo])
			// Reverse into dependency order.
			for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
				cyc[l], cyc[r] = cyc[r], cyc[l]
			}
			return &CycleError{Scope: owner, Cycle: cyc}
		}
	}
	return nil
}

// TopoOrder returns the constituents of scope (or top-level tasks when
// scope is nil) in a topological order consistent with their dependency
// edges. It is used by the baseline compilers and by deterministic
// schedulers; the workflow engine itself is event driven and does not
// need it.
func (s *Schema) TopoOrder(scope *Task) ([]*Task, error) {
	sibs := s.Tasks
	if scope != nil {
		sibs = scope.Constituents
	}
	if err := checkScopeCycles(scope, sibs); err != nil {
		return nil, err
	}
	index := make(map[*Task]int, len(sibs))
	for i, t := range sibs {
		index[t] = i
	}
	indeg := make([]int, len(sibs))
	adj := make([][]int, len(sibs))
	for i, t := range sibs {
		for _, e := range dependencyEdges(t) {
			j, ok := index[e.From]
			if !ok || e.From == t {
				continue
			}
			if e.Cond == CondOutput {
				if o := e.From.Class.Output(e.CondName); o != nil && o.Kind == RepeatOutcome {
					continue
				}
			}
			adj[j] = append(adj[j], i)
			indeg[i]++
		}
	}
	var queue []int
	for i := range sibs {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []*Task
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, sibs[u])
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(sibs) {
		return nil, fmt.Errorf("topological sort incomplete: %d of %d tasks ordered", len(order), len(sibs))
	}
	return order, nil
}

// Dependents returns the tasks within the schema that name t as a source
// in any input set or output mapping, in deterministic order. The result
// demonstrates the paper's locality property: it is computed by scanning
// declared dependencies, because upstream tasks hold no knowledge of
// downstream tasks.
func (s *Schema) Dependents(t *Task) []*Task {
	seen := make(map[*Task]bool)
	var out []*Task
	for _, x := range s.AllTasks() {
		for _, e := range dependencyEdges(x) {
			if e.From == t && !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}
