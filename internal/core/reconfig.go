package core

import (
	"errors"
	"fmt"
)

// Dynamic reconfiguration (Section 2 and Section 3 of the paper): the
// structure of an application can be changed by adding/deleting tasks and
// dependencies. These operations validate and mutate a Schema; the engine
// applies them to a *running* instance under an atomic transaction (see
// internal/engine.Reconfigure), mirroring the paper's use of transactions
// so that "changes are carried out atomically with respect to normal
// processing".

// ErrTaskExists is returned when adding a task whose name is taken.
var ErrTaskExists = errors.New("task already exists")

// ErrTaskNotFound is returned when the referenced task does not exist.
var ErrTaskNotFound = errors.New("task not found")

// ErrHasDependents is returned when removing a task that other tasks
// still depend upon.
var ErrHasDependents = errors.New("task has dependents")

// AddTask inserts task nt as a new constituent of scope (or as a
// top-level task when scope is nil). The task's sources must already be
// resolved to tasks reachable in the schema; the insertion is validated
// for name clashes and cycles before any mutation becomes visible.
func (s *Schema) AddTask(scope *Task, nt *Task) error {
	if nt == nil {
		return errors.New("add task: nil task")
	}
	sibs := s.Tasks
	if scope != nil {
		sibs = scope.Constituents
	}
	for _, t := range sibs {
		if t.Name == nt.Name {
			return fmt.Errorf("add task %s: %w", nt.Name, ErrTaskExists)
		}
	}
	nt.Parent = scope
	trial := append(append([]*Task{}, sibs...), nt)
	if err := checkScopeCycles(scope, trial); err != nil {
		return fmt.Errorf("add task %s: %w", nt.Name, err)
	}
	if scope != nil {
		scope.Constituents = trial
	} else {
		s.Tasks = trial
	}
	return nil
}

// RemoveTask deletes the named constituent from scope. It fails with
// ErrHasDependents if any remaining task lists it as a source, preserving
// the unidirectional-dependency invariant.
func (s *Schema) RemoveTask(scope *Task, name string) error {
	sibs := s.Tasks
	if scope != nil {
		sibs = scope.Constituents
	}
	idx := -1
	for i, t := range sibs {
		if t.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("remove task %s: %w", name, ErrTaskNotFound)
	}
	victim := sibs[idx]
	if deps := s.Dependents(victim); len(deps) > 0 {
		return fmt.Errorf("remove task %s: %w (%s depends on it)", name, ErrHasDependents, deps[0].Path())
	}
	out := append(append([]*Task{}, sibs[:idx]...), sibs[idx+1:]...)
	if scope != nil {
		scope.Constituents = out
	} else {
		s.Tasks = out
	}
	victim.Parent = nil
	return nil
}

// AddObjectSource appends an alternative source to the object dependency
// objName of input set setName of task t. Because dependencies are
// unidirectional this touches only t — the paper's locality-of-change
// property. The source task must be in scope (a sibling, the enclosing
// compound, or t itself for repeat feedback).
func (s *Schema) AddObjectSource(t *Task, setName, objName string, src *Source) error {
	if err := s.checkSourceInScope(t, src); err != nil {
		return err
	}
	b := t.InputSet(setName)
	if b == nil {
		return fmt.Errorf("task %s: no input set %q", t.Path(), setName)
	}
	d := b.ObjectDep(objName)
	if d == nil {
		// A brand new object dependency: allowed only if the class
		// declares the field.
		if _, ok := b.Decl.Field(objName); !ok {
			return fmt.Errorf("task %s: input set %q has no object %q", t.Path(), setName, objName)
		}
		d = &ObjectDep{Name: objName}
		b.Objects = append(b.Objects, d)
	}
	d.Sources = append(d.Sources, src)
	if err := checkScopeCycles(t.Parent, s.scopeOf(t)); err != nil {
		// Roll back the append.
		d.Sources = d.Sources[:len(d.Sources)-1]
		if len(d.Sources) == 0 {
			b.Objects = b.Objects[:len(b.Objects)-1]
		}
		return err
	}
	return nil
}

// AddNotification appends a notification dependency with the given
// alternative sources to input set setName of task t.
func (s *Schema) AddNotification(t *Task, setName string, srcs ...*Source) error {
	if len(srcs) == 0 {
		return errors.New("add notification: no sources")
	}
	for _, src := range srcs {
		if err := s.checkSourceInScope(t, src); err != nil {
			return err
		}
	}
	b := t.InputSet(setName)
	if b == nil {
		return fmt.Errorf("task %s: no input set %q", t.Path(), setName)
	}
	b.Notifications = append(b.Notifications, &NotificationDep{Sources: srcs})
	if err := checkScopeCycles(t.Parent, s.scopeOf(t)); err != nil {
		b.Notifications = b.Notifications[:len(b.Notifications)-1]
		return err
	}
	return nil
}

// ExtendNotification appends alternative sources to the i-th
// notification dependency of input set setName of task t: the gate keeps
// its AND position but gains OR alternatives (a redundant trigger).
func (s *Schema) ExtendNotification(t *Task, setName string, i int, srcs ...*Source) error {
	if len(srcs) == 0 {
		return errors.New("extend notification: no sources")
	}
	for _, src := range srcs {
		if err := s.checkSourceInScope(t, src); err != nil {
			return err
		}
	}
	b := t.InputSet(setName)
	if b == nil {
		return fmt.Errorf("task %s: no input set %q", t.Path(), setName)
	}
	if i < 0 || i >= len(b.Notifications) {
		return fmt.Errorf("task %s input set %q: notification index %d out of range [0,%d)", t.Path(), setName, i, len(b.Notifications))
	}
	nd := b.Notifications[i]
	nd.Sources = append(nd.Sources, srcs...)
	if err := checkScopeCycles(t.Parent, s.scopeOf(t)); err != nil {
		nd.Sources = nd.Sources[:len(nd.Sources)-len(srcs)]
		return err
	}
	return nil
}

// RemoveNotification deletes the i-th notification dependency of input
// set setName of task t.
func (s *Schema) RemoveNotification(t *Task, setName string, i int) error {
	b := t.InputSet(setName)
	if b == nil {
		return fmt.Errorf("task %s: no input set %q", t.Path(), setName)
	}
	if i < 0 || i >= len(b.Notifications) {
		return fmt.Errorf("task %s input set %q: notification index %d out of range [0,%d)", t.Path(), setName, i, len(b.Notifications))
	}
	b.Notifications = append(b.Notifications[:i], b.Notifications[i+1:]...)
	return nil
}

// RemoveObjectSource deletes the i-th alternative source of the object
// dependency objName in input set setName of task t. Removing the last
// alternative fails, as it would leave the input unsatisfiable.
func (s *Schema) RemoveObjectSource(t *Task, setName, objName string, i int) error {
	b := t.InputSet(setName)
	if b == nil {
		return fmt.Errorf("task %s: no input set %q", t.Path(), setName)
	}
	d := b.ObjectDep(objName)
	if d == nil {
		return fmt.Errorf("task %s input set %q: no object dependency %q", t.Path(), setName, objName)
	}
	if i < 0 || i >= len(d.Sources) {
		return fmt.Errorf("task %s input %q object %q: source index %d out of range [0,%d)", t.Path(), setName, objName, i, len(d.Sources))
	}
	if len(d.Sources) == 1 {
		return fmt.Errorf("task %s input %q object %q: cannot remove the only source", t.Path(), setName, objName)
	}
	d.Sources = append(d.Sources[:i], d.Sources[i+1:]...)
	return nil
}

// AddOutputSource appends an alternative source to the object mapping
// objName of compound output outName of task t — the Section 5.2
// modification scenario ("arrange direct dispatch from the suppliers"):
// an output of the compound gains a new way to be produced without any
// upstream or downstream task changing.
func (s *Schema) AddOutputSource(t *Task, outName, objName string, src *Source) error {
	if err := s.checkOutputSourceInScope(t, src); err != nil {
		return err
	}
	ob := t.OutputBinding(outName)
	if ob == nil {
		return fmt.Errorf("task %s: no output mapping %q", t.Path(), outName)
	}
	var dep *ObjectDep
	for _, d := range ob.Objects {
		if d.Name == objName {
			dep = d
			break
		}
	}
	if dep == nil {
		if _, ok := ob.Output.Field(objName); !ok {
			return fmt.Errorf("task %s output %q: no object %q", t.Path(), outName, objName)
		}
		dep = &ObjectDep{Name: objName}
		ob.Objects = append(ob.Objects, dep)
	}
	dep.Sources = append(dep.Sources, src)
	return nil
}

// AddOutputNotification appends a notification dependency (with ordered
// alternatives) to a compound output mapping: a new way for the outcome
// to be gated, e.g. an extra cancellation alternative.
func (s *Schema) AddOutputNotification(t *Task, outName string, srcs ...*Source) error {
	if len(srcs) == 0 {
		return errors.New("add output notification: no sources")
	}
	for _, src := range srcs {
		if err := s.checkOutputSourceInScope(t, src); err != nil {
			return err
		}
	}
	ob := t.OutputBinding(outName)
	if ob == nil {
		return fmt.Errorf("task %s: no output mapping %q", t.Path(), outName)
	}
	ob.Notifications = append(ob.Notifications, &NotificationDep{Sources: srcs})
	return nil
}

// ExtendOutputNotification appends alternative sources to the i-th
// notification of a compound output mapping (an additional alternative
// for an existing gate, preserving AND-of-ORs structure).
func (s *Schema) ExtendOutputNotification(t *Task, outName string, i int, srcs ...*Source) error {
	ob := t.OutputBinding(outName)
	if ob == nil {
		return fmt.Errorf("task %s: no output mapping %q", t.Path(), outName)
	}
	if i < 0 || i >= len(ob.Notifications) {
		return fmt.Errorf("task %s output %q: notification index %d out of range [0,%d)", t.Path(), outName, i, len(ob.Notifications))
	}
	for _, src := range srcs {
		if err := s.checkOutputSourceInScope(t, src); err != nil {
			return err
		}
	}
	ob.Notifications[i].Sources = append(ob.Notifications[i].Sources, srcs...)
	return nil
}

// RemoveOutputNotificationSource deletes the j-th alternative source of
// the i-th notification of a compound output mapping; removing the last
// alternative removes the notification itself (the gate disappears).
// This is the other half of the Section 5.2 policy change: when direct
// supplier dispatch is introduced, "warehouse out of stock" stops being a
// cancellation trigger.
func (s *Schema) RemoveOutputNotificationSource(t *Task, outName string, i, j int) error {
	ob := t.OutputBinding(outName)
	if ob == nil {
		return fmt.Errorf("task %s: no output mapping %q", t.Path(), outName)
	}
	if i < 0 || i >= len(ob.Notifications) {
		return fmt.Errorf("task %s output %q: notification index %d out of range [0,%d)", t.Path(), outName, i, len(ob.Notifications))
	}
	nd := ob.Notifications[i]
	if j < 0 || j >= len(nd.Sources) {
		return fmt.Errorf("task %s output %q notification %d: source index %d out of range [0,%d)", t.Path(), outName, i, j, len(nd.Sources))
	}
	nd.Sources = append(nd.Sources[:j], nd.Sources[j+1:]...)
	if len(nd.Sources) == 0 {
		ob.Notifications = append(ob.Notifications[:i], ob.Notifications[i+1:]...)
	}
	return nil
}

// checkOutputSourceInScope validates that an output-mapping source is a
// constituent of t or t itself.
func (s *Schema) checkOutputSourceInScope(t *Task, src *Source) error {
	if src == nil || src.Task == nil {
		return errors.New("nil source")
	}
	if src.Task == t {
		return nil
	}
	for _, c := range t.Constituents {
		if c == src.Task {
			return nil
		}
	}
	return fmt.Errorf("task %s: output source task %s is not a constituent", t.Path(), src.Task.Name)
}

// scopeOf returns the sibling list containing t.
func (s *Schema) scopeOf(t *Task) []*Task {
	if t.Parent != nil {
		return t.Parent.Constituents
	}
	return s.Tasks
}

// checkSourceInScope validates that src.Task is visible from t: t itself
// (repeat feedback), a sibling in the same scope, or the enclosing
// compound.
func (s *Schema) checkSourceInScope(t *Task, src *Source) error {
	if src == nil || src.Task == nil {
		return errors.New("nil source")
	}
	if src.Task == t || src.Task == t.Parent {
		return nil
	}
	for _, sib := range s.scopeOf(t) {
		if sib == src.Task {
			return nil
		}
	}
	return fmt.Errorf("task %s: source task %s is not in scope", t.Path(), src.Task.Name)
}
