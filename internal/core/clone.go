package core

// Clone returns a deep copy of the schema's task-instance graph. Task
// classes are immutable after compilation and are shared, not copied.
// The engine uses Clone to make dynamic reconfiguration atomic: a batch
// of reconfiguration operations is applied to a clone and the clone is
// swapped in only if every operation succeeds, mirroring the paper's use
// of atomic transactions for structural change.
func (s *Schema) Clone() *Schema {
	out := &Schema{
		Name:        s.Name,
		Source:      s.Source,
		Classes:     append([]string(nil), s.Classes...),
		TaskClasses: append([]*TaskClass(nil), s.TaskClasses...),
	}
	if s.Superclasses != nil {
		out.Superclasses = make(map[string]string, len(s.Superclasses))
		for k, v := range s.Superclasses {
			out.Superclasses[k] = v
		}
	}
	// Pass 1: copy the task tree, recording old->new mapping.
	mapping := make(map[*Task]*Task)
	var copyTask func(t *Task, parent *Task) *Task
	copyTask = func(t *Task, parent *Task) *Task {
		nt := &Task{
			Name:     t.Name,
			Class:    t.Class,
			Compound: t.Compound,
			Parent:   parent,
		}
		if t.Implementation != nil {
			nt.Implementation = make(map[string]string, len(t.Implementation))
			for k, v := range t.Implementation {
				nt.Implementation[k] = v
			}
		}
		mapping[t] = nt
		for _, c := range t.Constituents {
			nt.Constituents = append(nt.Constituents, copyTask(c, nt))
		}
		return nt
	}
	for _, t := range s.Tasks {
		out.Tasks = append(out.Tasks, copyTask(t, nil))
	}
	// Pass 2: copy bindings, rewriting source task pointers.
	copySource := func(src *Source) *Source {
		nt, ok := mapping[src.Task]
		if !ok {
			nt = src.Task // source outside the cloned forest (not expected)
		}
		return &Source{Object: src.Object, Task: nt, Cond: src.Cond, CondName: src.CondName}
	}
	copyObjDep := func(d *ObjectDep) *ObjectDep {
		nd := &ObjectDep{Name: d.Name}
		for _, src := range d.Sources {
			nd.Sources = append(nd.Sources, copySource(src))
		}
		return nd
	}
	copyNotif := func(d *NotificationDep) *NotificationDep {
		nd := &NotificationDep{}
		for _, src := range d.Sources {
			nd.Sources = append(nd.Sources, copySource(src))
		}
		return nd
	}
	var fill func(t *Task)
	fill = func(t *Task) {
		nt := mapping[t]
		for _, b := range t.InputSets {
			nb := &InputSetBinding{Name: b.Name, Decl: b.Decl}
			for _, d := range b.Objects {
				nb.Objects = append(nb.Objects, copyObjDep(d))
			}
			for _, d := range b.Notifications {
				nb.Notifications = append(nb.Notifications, copyNotif(d))
			}
			nt.InputSets = append(nt.InputSets, nb)
		}
		for _, ob := range t.Outputs {
			nob := &OutputBinding{Output: ob.Output}
			for _, d := range ob.Objects {
				nob.Objects = append(nob.Objects, copyObjDep(d))
			}
			for _, d := range ob.Notifications {
				nob.Notifications = append(nob.Notifications, copyNotif(d))
			}
			nt.Outputs = append(nt.Outputs, nob)
		}
		for _, c := range t.Constituents {
			fill(c)
		}
	}
	for _, t := range s.Tasks {
		fill(t)
	}
	return out
}
