// Package failure provides deterministic fault injection for the
// experiments of Section 3: "tasks eventually receive their inputs and
// notifications despite finite number of intervening processor crashes
// and temporary network related failures".
//
// Three injector families are provided:
//
//   - network faults: orb dialers whose connections drop, delay or refuse
//     with configured probabilities (temporary failures, healed by the
//     client's retry machinery);
//   - partitions: a switchable dialer that refuses all connections while
//     "partitioned" and heals on demand;
//   - crash scheduling: helpers that stop an engine after a trigger, used
//     by the crash-recovery experiments.
//
// All randomness is seeded, so failing runs replay exactly.
package failure

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/orb"
	"repro/internal/timers"
)

// ErrInjected marks failures produced by an injector, so tests can
// distinguish them from genuine bugs.
var ErrInjected = errors.New("injected fault")

// NetConfig tunes a lossy dialer.
type NetConfig struct {
	// RefuseProb is the probability that a dial attempt fails outright.
	RefuseProb float64
	// DropAfter, when positive, closes each connection after a random
	// number of frames in [1, DropAfter] (mid-call drops).
	DropAfter int
	// DupProb is the probability that a connection duplicates its first
	// request in flight (the servant executes it twice) and then severs
	// itself once the first reply passes — a retransmission into a
	// dying connection. Exercises the callers' idempotence/dedup paths.
	DupProb float64
	// ReorderProb is the probability that a dial is held back by a
	// random delay in (0, ReorderMax], letting concurrently issued
	// calls overtake it (delivery reordering).
	ReorderProb float64
	// ReorderMax bounds the reordering delay; zero with ReorderProb set
	// defaults to 20ms.
	ReorderMax time.Duration
	// Delay adds fixed latency before each dial succeeds.
	Delay time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Clock paces the injected Delay; nil selects timers.WallClock, a
	// timers.FakeClock drives delay faults without real latency.
	Clock timers.Clock
}

// Lossy returns an orb dialer that injects the configured faults.
// The returned stats counter reports refused dials.
func Lossy(cfg NetConfig) (orb.Dialer, *Stats) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	clk := cfg.Clock
	if clk == nil {
		clk = timers.Clock(timers.WallClock{})
	}
	return func(addr string) (net.Conn, error) {
		mu.Lock()
		refuse := rng.Float64() < cfg.RefuseProb
		var dropAt int
		if cfg.DropAfter > 0 {
			dropAt = 1 + rng.Intn(cfg.DropAfter)
		}
		dup := cfg.DupProb > 0 && rng.Float64() < cfg.DupProb
		var reorder time.Duration
		if cfg.ReorderProb > 0 && rng.Float64() < cfg.ReorderProb {
			limit := cfg.ReorderMax
			if limit <= 0 {
				limit = 20 * time.Millisecond
			}
			reorder = time.Duration(1 + rng.Int63n(int64(limit)))
		}
		mu.Unlock()
		if delay := cfg.Delay + reorder; delay > 0 {
			if reorder > 0 {
				stats.addReordered()
			}
			<-clk.Wake(clk.Now().Add(delay))
		}
		if refuse {
			stats.addRefused()
			return nil, fmt.Errorf("dial %s: %w: connection refused", addr, ErrInjected)
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		if dup {
			conn = &dupConn{Conn: conn, stats: stats, pending: true}
		}
		if dropAt > 0 {
			return &droppingConn{Conn: conn, remaining: dropAt, stats: stats}, nil
		}
		return conn, nil
	}, stats
}

// Stats counts injected faults.
type Stats struct {
	mu         sync.Mutex
	refused    int
	dropped    int
	duplicated int
	reordered  int
}

func (s *Stats) addRefused() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refused++
}

func (s *Stats) addDropped() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped++
}

// Refused reports injected dial refusals.
func (s *Stats) Refused() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refused
}

// Dropped reports injected mid-connection drops.
func (s *Stats) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *Stats) addDuplicated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.duplicated++
}

// Duplicated reports injected request duplications.
func (s *Stats) Duplicated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicated
}

func (s *Stats) addReordered() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reordered++
}

// Reordered reports injected delivery reorderings.
func (s *Stats) Reordered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reordered
}

// droppingConn closes itself after a budget of writes.
type droppingConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
	stats     *Stats
}

// Write implements net.Conn, failing once the budget is exhausted.
func (c *droppingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.remaining--
	kill := c.remaining < 0
	c.mu.Unlock()
	if kill {
		c.stats.addDropped()
		_ = c.Conn.Close()
		return 0, fmt.Errorf("write: %w: connection dropped", ErrInjected)
	}
	return c.Conn.Write(p)
}

// Partition is a switchable network partition: while active, all dials
// through its Dialer fail; Heal restores connectivity (the paper's
// "temporary network related failures ... a network partition that is not
// healing" is the non-healed case).
type Partition struct {
	mu     sync.Mutex
	active bool
}

// NewPartition returns a healed partition.
func NewPartition() *Partition { return &Partition{} }

// Break activates the partition.
func (p *Partition) Break() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active = true
}

// Heal deactivates the partition.
func (p *Partition) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active = false
}

// Active reports whether the partition is in force.
func (p *Partition) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Dialer returns an orb dialer subject to the partition.
func (p *Partition) Dialer() orb.Dialer {
	return func(addr string) (net.Conn, error) {
		if p.Active() {
			return nil, fmt.Errorf("dial %s: %w: network partition", addr, ErrInjected)
		}
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
}
