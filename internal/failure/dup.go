package failure

import (
	"fmt"
	"net"
	"sync"
)

// The orb wire protocol is a stream of gob messages: each message is a
// gob-encoded unsigned length followed by that many payload bytes, and
// the payload begins with a gob-encoded signed type id — negative for a
// type-descriptor message, positive for a value message. Frame
// duplication must respect those boundaries: re-sending a descriptor
// breaks the peer's decoder (duplicate type definition), so only value
// messages — the request itself — are duplicated.

// gobUint decodes gob's unsigned-integer wire form from the front of
// buf: a value < 128 is one byte; otherwise one byte holding the
// negated byte count, then that many big-endian bytes. Returns the
// value and bytes consumed; consumed == 0 means buf is too short.
func gobUint(buf []byte) (val uint64, consumed int) {
	if len(buf) == 0 {
		return 0, 0
	}
	b := buf[0]
	if b < 0x80 {
		return uint64(b), 1
	}
	n := int(-int8(b))
	if n <= 0 || n > 8 || len(buf) < 1+n {
		return 0, 0
	}
	for _, c := range buf[1 : 1+n] {
		val = val<<8 | uint64(c)
	}
	return val, 1 + n
}

// gobFramer incrementally splits a byte stream into gob messages.
type gobFramer struct {
	buf []byte
}

func (g *gobFramer) feed(p []byte) { g.buf = append(g.buf, p...) }

// next returns the raw bytes of the next complete message (length
// prefix included) and whether its payload is a value message (positive
// type id). ok is false while the buffered bytes hold no complete
// message.
func (g *gobFramer) next() (msg []byte, value bool, ok bool) {
	length, hdr := gobUint(g.buf)
	if hdr == 0 || uint64(len(g.buf)-hdr) < length {
		return nil, false, false
	}
	total := hdr + int(length)
	msg = g.buf[:total:total]
	g.buf = g.buf[total:]
	// The payload's leading signed integer is the type id; gob encodes
	// signed values with the sign in the low bit.
	id, n := gobUint(msg[hdr:])
	value = n > 0 && id&1 == 0
	return msg, value, true
}

// dupConn duplicates the first value message written on the connection
// — the request, once its type descriptors have gone ahead of it — so
// the servant executes it twice. The extra response desynchronises the
// stream, exactly like a retransmitted request reaching a server whose
// reply to the original was lost; the conn therefore severs itself
// after the first response value message passes back, and the client's
// redial machinery takes over. Both sides are reframed so the cut never
// lands inside a message.
type dupConn struct {
	net.Conn
	stats *Stats

	wmu     sync.Mutex
	wf      gobFramer
	pending bool // duplicate the next value message written

	rmu   sync.Mutex
	rf    gobFramer
	out   []byte // complete messages ready for the reader
	armed bool   // a duplicate went out; cut after one response value
	cut   bool
}

// Write implements net.Conn, forwarding complete messages and
// duplicating the first value message while armed.
func (c *dupConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wf.feed(p)
	for {
		msg, value, ok := c.wf.next()
		if !ok {
			return len(p), nil
		}
		if _, err := c.Conn.Write(msg); err != nil {
			return 0, err
		}
		if value && c.pending {
			c.pending = false
			if _, err := c.Conn.Write(msg); err != nil {
				return 0, err
			}
			c.stats.addDuplicated()
			c.rmu.Lock()
			c.armed = true
			c.rmu.Unlock()
		}
	}
}

// Read implements net.Conn, delivering whole messages and severing the
// stream after the response to a duplicated request.
func (c *dupConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.out) == 0 {
		if c.cut {
			_ = c.Conn.Close()
			return 0, fmt.Errorf("read: %w: connection severed after duplicated delivery", ErrInjected)
		}
		tmp := make([]byte, 4096)
		c.rmu.Unlock()
		n, err := c.Conn.Read(tmp)
		c.rmu.Lock()
		if n > 0 {
			c.rf.feed(tmp[:n])
			for {
				msg, value, ok := c.rf.next()
				if !ok {
					break
				}
				c.out = append(c.out, msg...)
				if value && c.armed {
					// The reply the client is owed is through; the
					// duplicate's reply dies with the connection.
					c.cut = true
					break
				}
			}
		}
		if err != nil && len(c.out) == 0 {
			return 0, err
		}
	}
	n := copy(p, c.out)
	c.out = c.out[n:]
	return n, nil
}
