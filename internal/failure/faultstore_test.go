package failure_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/failure"
	"repro/internal/store"
)

// TestWALFsyncFailureWedges proves the fsyncgate invariant: the first
// failed fsync permanently wedges the log — no later commit can succeed
// until the store is reopened from what provably reached the disk.
func TestWALFsyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	faults := failure.NewFaultStore(failure.DiskConfig{})
	ws, err := store.NewWALStoreWith(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Write("inst/a/x", []byte("acked")); err != nil {
		t.Fatal(err)
	}

	faults.WedgeSyncs()
	if err := ws.Write("inst/a/y", []byte("lost")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("write after failed fsync = %v, want ErrWedged", err)
	}
	if got := ws.Wedged(); !errors.Is(got, store.ErrWedged) {
		t.Fatalf("Wedged() = %v, want ErrWedged", got)
	}
	// Wedged is sticky: even if the disk "recovers", nothing may assume
	// the earlier fsync's data reached it.
	if err := ws.Write("inst/a/z", []byte("also refused")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("write on wedged store = %v, want ErrWedged", err)
	}
	// Reads of acknowledged state keep serving (the index is intact).
	if _, err := ws.Read("inst/a/x"); err != nil {
		t.Fatalf("read on wedged store: %v", err)
	}
	_ = ws.Close()

	// Reopening recovers every acknowledged write. The write whose
	// fsync failed ("y") may or may not appear — it was never
	// acknowledged, so either is allowed — but the write refused by the
	// wedge ("z") must not: the wedge kept it off the disk entirely.
	ws2, err := store.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	if _, err := ws2.Read("inst/a/x"); err != nil {
		t.Fatalf("acknowledged write lost across reopen: %v", err)
	}
	if _, err := ws2.Read("inst/a/z"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("wedge-refused write resurrected: %v", err)
	}
}

// TestWALENOSPCRollsBackWithoutWedging is the ENOSPC regression test: a
// failed append whose rollback succeeds must not wedge the store, and
// the acknowledged prefix must survive reopen.
func TestWALENOSPCRollsBackWithoutWedging(t *testing.T) {
	dir := t.TempDir()
	faults := failure.NewFaultStore(failure.DiskConfig{WriteBudget: 256})
	ws, err := store.NewWALStoreWith(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	var acked []store.ID
	var sawENOSPC bool
	for i := 0; i < 64; i++ {
		id := store.ID(fmt.Sprintf("inst/a/k%03d", i))
		err := ws.Write(id, []byte("0123456789abcdef"))
		if err == nil {
			acked = append(acked, id)
			continue
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: %v, want ENOSPC", i, err)
		}
		sawENOSPC = true
		break
	}
	if !sawENOSPC {
		t.Fatal("budget never exhausted")
	}
	if len(acked) == 0 {
		t.Fatal("no write succeeded before ENOSPC")
	}
	if got := ws.Wedged(); got != nil {
		t.Fatalf("ENOSPC with clean rollback wedged the store: %v", got)
	}
	_ = ws.Close()

	ws2, err := store.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	for _, id := range acked {
		if _, err := ws2.Read(id); err != nil {
			t.Fatalf("acknowledged write %s lost after ENOSPC: %v", id, err)
		}
	}
	if _, err := ws2.Read("inst/a/k063"); !errors.Is(err, store.ErrNotFound) && len(acked) < 64 {
		t.Fatalf("failed write resurrected: %v", err)
	}
}

// TestWALTornWriteRollsBack: an append cut mid-record is truncated away
// and later commits land cleanly after it.
func TestWALTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	faults := failure.NewFaultStore(failure.DiskConfig{TornWriteProb: 1, Seed: 7})
	ws, err := store.NewWALStoreWith(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	err = ws.Write("inst/a/x", []byte("torn"))
	if err == nil || errors.Is(err, store.ErrWedged) {
		t.Fatalf("torn write = %v, want plain failure", err)
	}
	if faults.Stats().TornWrites == 0 {
		t.Fatal("no torn write injected")
	}
	_ = ws.Close()

	// The prefix that reached the file is a rolled-back tear; reopen
	// must see an empty store and accept new writes.
	ws2, err := store.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	if _, err := ws2.Read("inst/a/x"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("torn write resurrected: %v", err)
	}
	if err := ws2.Write("inst/a/x", []byte("clean")); err != nil {
		t.Fatal(err)
	}
}

// TestWALMidLogCorruptionIsLoud: damage before acknowledged records
// must fail the open with ErrCorrupt, never silently truncate.
func TestWALMidLogCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	ws, err := store.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ws.Write(store.ID(fmt.Sprintf("inst/a/k%d", i)), []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the middle of the segment (records after it stay
	// valid).
	seg := findOneSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := store.NewWALStore(dir); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

// findOneSegment returns the single non-empty wal segment in dir.
func findOneSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 && filepath.Ext(e.Name()) == ".seg" {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no non-empty segment found")
	return ""
}

// TestFileStoreSurfacesSyncFailures: a failed shadow fsync or directory
// sync must reach the caller, and the object must keep its old state.
func TestFileStoreSurfacesSyncFailures(t *testing.T) {
	dir := t.TempDir()
	healthy, err := store.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Write("obj/a", []byte("old")); err != nil {
		t.Fatal(err)
	}

	faults := failure.NewFaultStoreOver(store.OSOps{}, failure.DiskConfig{FailSyncProb: 1, Seed: 1})
	fs, err := store.NewFileStoreWith(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("obj/a", []byte("new")); !errors.Is(err, failure.ErrInjected) {
		t.Fatalf("write with failing fsync = %v, want surfaced injected error", err)
	}
	got, err := healthy.Read("obj/a")
	if err != nil || string(got) != "old" {
		t.Fatalf("object after failed write = %q, %v; want old state intact", got, err)
	}
}

// TestFileStoreENOSPC is the missing ENOSPC regression test for the
// shadow-write path: disk-full surfaces and leaves no partial state.
func TestFileStoreENOSPC(t *testing.T) {
	dir := t.TempDir()
	faults := failure.NewFaultStore(failure.DiskConfig{WriteBudget: 8})
	fs, err := store.NewFileStoreWith(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("obj/a", []byte("a state much longer than the budget")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget = %v, want ENOSPC", err)
	}
	if _, err := fs.Read("obj/a"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("failed write left state behind: %v", err)
	}
	// No shadow litter: the failed shadow must have been cleaned up
	// (empty parent directories may remain; files may not).
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			t.Fatalf("store dir not clean after failed write: %s", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWedgeStore: the simulator's injectable store view.
func TestWedgeStore(t *testing.T) {
	ws := failure.NewWedgeStore(store.NewMemStore())
	if err := ws.Write("inst/a/x", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ws.Wedge(nil)
	if err := ws.Write("inst/a/y", []byte("no")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("write on wedged view = %v, want ErrWedged", err)
	}
	if err := ws.ApplyBatch([]store.BatchOp{{ID: "inst/a/z", Data: []byte("no")}}); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("batch on wedged view = %v, want ErrWedged", err)
	}
	if _, err := ws.Read("inst/a/x"); err != nil {
		t.Fatalf("read on wedged view: %v", err)
	}
	// The shared inner state stays healthy for a peer to recover from.
	if err := ws.Inner().Write("inst/a/y", []byte("peer")); err != nil {
		t.Fatalf("inner store affected by wedge: %v", err)
	}
}

// TestFaultStoreDeterministic: same seed, same fault sequence.
func TestFaultStoreDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		faults := failure.NewFaultStore(failure.DiskConfig{TornWriteProb: 0.4, Seed: seed})
		ws, err := store.NewWALStoreWith(dir, faults)
		if err != nil {
			t.Fatal(err)
		}
		defer ws.Close()
		var out []bool
		for i := 0; i < 24; i++ {
			err := ws.Write(store.ID(fmt.Sprintf("inst/a/k%d", i)), []byte("data"))
			out = append(out, err == nil)
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce the same disk-fault sequence")
		}
	}
}
