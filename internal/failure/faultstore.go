package failure

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/store"
	"repro/internal/timers"
)

// DiskConfig tunes a FaultStore. All probabilities are per operation;
// all randomness derives from Seed, so a failing run replays exactly.
type DiskConfig struct {
	// FailWriteProb fails a file write outright (nothing reaches the
	// file).
	FailWriteProb float64
	// TornWriteProb cuts a file write at a random byte offset: the
	// prefix reaches the file, the call reports failure. This is the
	// torn-append fault the WAL's rollback must truncate away.
	TornWriteProb float64
	// FailSyncProb fails an fsync. The data may or may not have reached
	// the disk — exactly the ambiguity wedge semantics exist for.
	FailSyncProb float64
	// FailCloseProb fails a file close.
	FailCloseProb float64
	// BitFlipProb flips one random bit in a file's contents on read
	// (silent media corruption surfacing at recovery time).
	BitFlipProb float64
	// WriteBudget, when positive, is the number of bytes writable
	// before every further write fails with ENOSPC.
	WriteBudget int64
	// Delay adds fixed latency to writes and syncs.
	Delay time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Clock paces Delay; nil selects timers.WallClock.
	Clock timers.Clock
}

// FaultStore is a store.FileOps that injects seeded disk faults between
// a durable store (WALStore, FileStore) and the real file system — the
// disk-side sibling of the Lossy network dialer. Deterministic triggers
// (WedgeSyncs) complement the probabilistic config for scripted
// degradation scenarios.
type FaultStore struct {
	base store.FileOps
	cfg  DiskConfig
	clk  timers.Clock

	mu         sync.Mutex
	rng        *rand.Rand
	written    int64
	wedgeSyncs bool
	stats      DiskStats
}

var _ store.FileOps = (*FaultStore)(nil)

// NewFaultStore returns a fault injector over the real file system.
func NewFaultStore(cfg DiskConfig) *FaultStore {
	return NewFaultStoreOver(store.OSOps{}, cfg)
}

// NewFaultStoreOver returns a fault injector over base.
func NewFaultStoreOver(base store.FileOps, cfg DiskConfig) *FaultStore {
	clk := cfg.Clock
	if clk == nil {
		clk = timers.Clock(timers.WallClock{})
	}
	return &FaultStore{
		base: base,
		cfg:  cfg,
		clk:  clk,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// WedgeSyncs makes every fsync from now on fail: the scripted trigger
// the degradation scenarios flip to simulate a disk going bad under a
// live coordinator.
func (f *FaultStore) WedgeSyncs() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedgeSyncs = true
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultStore) Stats() DiskStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// DiskStats counts injected disk faults.
type DiskStats struct {
	FailedWrites int
	TornWrites   int
	FailedSyncs  int
	FailedCloses int
	BitFlips     int
	ENOSPC       int
}

// roll draws one probability decision under the injector's lock.
func (f *FaultStore) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *FaultStore) pause() {
	if f.cfg.Delay > 0 {
		<-f.clk.Wake(f.clk.Now().Add(f.cfg.Delay))
	}
}

// OpenFile implements store.FileOps, wrapping the handle.
func (f *FaultStore) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// CreateTemp implements store.FileOps, wrapping the handle.
func (f *FaultStore) CreateTemp(dir, pattern string) (store.File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// ReadFile implements store.FileOps, with bit-flip injection.
func (f *FaultStore) ReadFile(name string) ([]byte, error) {
	raw, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(raw) > 0 && f.roll(f.cfg.BitFlipProb) {
		f.mu.Lock()
		bit := f.rng.Intn(len(raw) * 8)
		f.stats.BitFlips++
		f.mu.Unlock()
		raw[bit/8] ^= 1 << (bit % 8)
	}
	return raw, nil
}

func (f *FaultStore) ReadDir(name string) ([]fs.DirEntry, error) { return f.base.ReadDir(name) }

func (f *FaultStore) Rename(oldpath, newpath string) error { return f.base.Rename(oldpath, newpath) }

func (f *FaultStore) Remove(name string) error { return f.base.Remove(name) }

func (f *FaultStore) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

func (f *FaultStore) Stat(name string) (os.FileInfo, error) { return f.base.Stat(name) }

// SyncDir implements store.FileOps; directory syncs fail under the same
// conditions as file syncs.
func (f *FaultStore) SyncDir(dir string) error {
	if err := f.syncFault("sync dir " + dir); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// syncFault decides whether an fsync (file or directory) fails.
func (f *FaultStore) syncFault(what string) error {
	f.pause()
	f.mu.Lock()
	wedged := f.wedgeSyncs
	failed := wedged || (f.cfg.FailSyncProb > 0 && f.rng.Float64() < f.cfg.FailSyncProb)
	if failed {
		f.stats.FailedSyncs++
	}
	f.mu.Unlock()
	if failed {
		return fmt.Errorf("%s: %w: fsync failed", what, ErrInjected)
	}
	return nil
}

// faultFile wraps a store.File with the injector's write/sync/close
// faults.
type faultFile struct {
	fs *FaultStore
	f  store.File
}

// Write implements store.File. Faults, in order of precedence: outright
// failure (nothing written), ENOSPC once the byte budget is exhausted
// (the prefix that fits is written, like a real full disk), and a torn
// write cut at a seeded random offset.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.pause()
	fs := w.fs
	fs.mu.Lock()
	if fs.cfg.FailWriteProb > 0 && fs.rng.Float64() < fs.cfg.FailWriteProb {
		fs.stats.FailedWrites++
		fs.mu.Unlock()
		return 0, fmt.Errorf("write %s: %w: write failed", w.f.Name(), ErrInjected)
	}
	allowed := len(p)
	enospc := false
	if fs.cfg.WriteBudget > 0 {
		remaining := fs.cfg.WriteBudget - fs.written
		if remaining < int64(allowed) {
			allowed = int(max(remaining, 0))
			enospc = true
			fs.stats.ENOSPC++
		}
	}
	torn := false
	if !enospc && allowed > 0 && fs.cfg.TornWriteProb > 0 && fs.rng.Float64() < fs.cfg.TornWriteProb {
		allowed = fs.rng.Intn(allowed)
		torn = true
		fs.stats.TornWrites++
	}
	fs.mu.Unlock()

	n := 0
	var err error
	if allowed > 0 {
		n, err = w.f.Write(p[:allowed])
	}
	fs.mu.Lock()
	fs.written += int64(n)
	fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	switch {
	case enospc:
		return n, fmt.Errorf("write %s: %w", w.f.Name(), syscall.ENOSPC)
	case torn:
		return n, fmt.Errorf("write %s: %w: torn write after %d bytes", w.f.Name(), ErrInjected, n)
	default:
		return n, nil
	}
}

// Sync implements store.File.
func (w *faultFile) Sync() error {
	if err := w.fs.syncFault("sync " + w.f.Name()); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close implements store.File.
func (w *faultFile) Close() error {
	if w.fs.roll(w.fs.cfg.FailCloseProb) {
		w.fs.mu.Lock()
		w.fs.stats.FailedCloses++
		w.fs.mu.Unlock()
		// The underlying handle still closes: leaking descriptors would
		// let a fault-injection sweep exhaust the process, and a real
		// failed close releases the descriptor too.
		_ = w.f.Close()
		return fmt.Errorf("close %s: %w: close failed", w.f.Name(), ErrInjected)
	}
	return w.f.Close()
}

func (w *faultFile) Truncate(size int64) error { return w.f.Truncate(size) }

func (w *faultFile) Name() string { return w.f.Name() }

// WedgeStore is a store.Store wrapper whose write path can be wedged on
// demand, mimicking a WALStore after a failed fsync: reads keep working
// (the in-memory index survives), every write fails with
// store.ErrWedged. The simulator mounts one per coordinator view of a
// partition, so "this coordinator's disk went bad" is injectable
// without disturbing the shared durable state a healthy peer recovers
// from.
type WedgeStore struct {
	inner store.Store
	mu    sync.Mutex
	err   error
}

var (
	_ store.Store       = (*WedgeStore)(nil)
	_ store.Batcher     = (*WedgeStore)(nil)
	_ store.LazyBatcher = (*WedgeStore)(nil)
)

// NewWedgeStore wraps inner, healthy.
func NewWedgeStore(inner store.Store) *WedgeStore { return &WedgeStore{inner: inner} }

// Wedge fail-stops the write path. A nil cause uses ErrInjected.
func (w *WedgeStore) Wedge(cause error) {
	if cause == nil {
		cause = ErrInjected
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = fmt.Errorf("%w: %v", store.ErrWedged, cause)
	}
}

// Wedged returns the wedge fault, or nil while healthy.
func (w *WedgeStore) Wedged() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Inner returns the wrapped store (the shared state a peer recovers
// from).
func (w *WedgeStore) Inner() store.Store { return w.inner }

func (w *WedgeStore) Read(id store.ID) ([]byte, error) { return w.inner.Read(id) }

func (w *WedgeStore) List(prefix store.ID) ([]store.ID, error) { return w.inner.List(prefix) }

func (w *WedgeStore) Write(id store.ID, data []byte) error {
	if err := w.Wedged(); err != nil {
		return fmt.Errorf("write %s: %w", id, err)
	}
	return w.inner.Write(id, data)
}

func (w *WedgeStore) Delete(id store.ID) error {
	if err := w.Wedged(); err != nil {
		return fmt.Errorf("delete %s: %w", id, err)
	}
	return w.inner.Delete(id)
}

// ApplyBatch implements store.Batcher.
func (w *WedgeStore) ApplyBatch(ops []store.BatchOp) error {
	if err := w.Wedged(); err != nil {
		return fmt.Errorf("apply batch: %w", err)
	}
	return store.ApplyBatch(w.inner, ops)
}

// ApplyBatchLazy implements store.LazyBatcher.
func (w *WedgeStore) ApplyBatchLazy(ops []store.BatchOp) error {
	if err := w.Wedged(); err != nil {
		return fmt.Errorf("apply batch: %w", err)
	}
	return store.ApplyBatchBestEffort(w.inner, ops)
}
