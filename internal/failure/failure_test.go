package failure_test

import (
	"errors"
	"testing"

	"repro/internal/failure"
	"repro/internal/orb"
)

func TestLossyDialerDeterministic(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	outcomes := func(seed int64) []bool {
		d, _ := failure.Lossy(failure.NetConfig{RefuseProb: 0.5, Seed: seed})
		var out []bool
		for k := 0; k < 20; k++ {
			conn, err := d(srv.Addr())
			out = append(out, err == nil)
			if conn != nil {
				_ = conn.Close()
			}
		}
		return out
	}
	a, b := outcomes(3), outcomes(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce the same fault sequence")
		}
	}
	c := outcomes(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences (suspicious)")
	}
}

func TestLossyDialerInjectsMarkedErrors(t *testing.T) {
	d, stats := failure.Lossy(failure.NetConfig{RefuseProb: 1.0, Seed: 1})
	_, err := d("127.0.0.1:1")
	if !errors.Is(err, failure.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if stats.Refused() != 1 {
		t.Errorf("refused = %d, want 1", stats.Refused())
	}
}

func TestDropAfterKillsConnections(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d, stats := failure.Lossy(failure.NetConfig{DropAfter: 2, Seed: 9})
	conn, err := d(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	var sawDrop bool
	for k := 0; k < 5; k++ {
		if _, err := conn.Write([]byte("x")); err != nil {
			if !errors.Is(err, failure.ErrInjected) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			sawDrop = true
			break
		}
	}
	if !sawDrop {
		t.Fatal("connection never dropped despite DropAfter=2")
	}
	if stats.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", stats.Dropped())
	}
}

func TestPartitionBreakHeal(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := failure.NewPartition()
	d := p.Dialer()

	if conn, err := d(srv.Addr()); err != nil {
		t.Fatalf("healed partition refused dial: %v", err)
	} else {
		_ = conn.Close()
	}
	p.Break()
	if !p.Active() {
		t.Error("partition should be active")
	}
	if _, err := d(srv.Addr()); !errors.Is(err, failure.ErrInjected) {
		t.Fatalf("broken partition allowed dial: %v", err)
	}
	p.Heal()
	if conn, err := d(srv.Addr()); err != nil {
		t.Fatalf("dial after heal: %v", err)
	} else {
		_ = conn.Close()
	}
}
