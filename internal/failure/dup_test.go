package failure_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/orb"
)

// TestDupDeliversRequestTwice: with duplication armed, the servant
// executes each request twice while the client still gets exactly one
// correct reply per call — the shape an at-least-once delivery layer
// hands to its callers, which is what application-level dedup must
// absorb.
func TestDupDeliversRequestTwice(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var hits atomic.Int64
	sv := orb.NewServant()
	orb.Method(sv, "echo", func(req string) (string, error) {
		hits.Add(1)
		return "echo:" + req, nil
	})
	srv.Register("svc", sv)

	d, stats := failure.Lossy(failure.NetConfig{DupProb: 1, Seed: 5})
	// Per-call connections: each call gets its own duplicated delivery
	// and its own severed stream, so counts are exact.
	cl := orb.Dial(srv.Addr(), orb.ClientConfig{Dialer: d, PerCallConn: true, Retries: -1})
	defer cl.Close()

	const calls = 5
	for i := 0; i < calls; i++ {
		var reply string
		if err := cl.Invoke("svc", "echo", "x", &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply != "echo:x" {
			t.Fatalf("call %d reply = %q", i, reply)
		}
	}
	// The duplicate rides the same connection; the servant sees it even
	// though the client has already moved on. Give the server a moment
	// to drain the duplicates.
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() < 2*calls && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := hits.Load(); got != 2*calls {
		t.Fatalf("servant executed %d times, want %d (each request duplicated)", got, 2*calls)
	}
	if got := stats.Duplicated(); got != calls {
		t.Fatalf("stats.Duplicated() = %d, want %d", got, calls)
	}
}

// TestDupSeversPipelinedConnection: on a pipelined client the severed
// stream surfaces as a transport error the retry machinery heals — no
// stale duplicate reply is ever delivered to a later call.
func TestDupSeversPipelinedConnection(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sv := orb.NewServant()
	orb.Method(sv, "id", func(req int) (int, error) { return req, nil })
	srv.Register("svc", sv)

	d, _ := failure.Lossy(failure.NetConfig{DupProb: 1, Seed: 5})
	cl := orb.Dial(srv.Addr(), orb.ClientConfig{Dialer: d, Retries: 5})
	defer cl.Close()

	for i := 0; i < 8; i++ {
		var reply int
		if err := cl.Invoke("svc", "id", i, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply != i {
			t.Fatalf("call %d got stale reply %d", i, reply)
		}
	}
}

// TestReorderDelaysDials: reordering jitter lets concurrent calls
// overtake each other but never corrupts any of them.
func TestReorderDelaysDials(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sv := orb.NewServant()
	orb.Method(sv, "id", func(req int) (int, error) { return req, nil })
	srv.Register("svc", sv)

	d, stats := failure.Lossy(failure.NetConfig{ReorderProb: 1, ReorderMax: 5 * time.Millisecond, Seed: 3})
	cl := orb.Dial(srv.Addr(), orb.ClientConfig{Dialer: d, PerCallConn: true})
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make([]error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply int
			if err := cl.Invoke("svc", "id", i, &reply); err != nil {
				errs[i] = err
			} else if reply != i {
				t.Errorf("call %d got %d", i, reply)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if stats.Reordered() == 0 {
		t.Fatal("no reordering recorded")
	}
}
