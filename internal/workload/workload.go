// Package workload generates workflow scripts for tests and benchmarks:
// chains, diamonds, fan-outs, random DAGs and nested compounds, in the
// concrete syntax of the language. Generators return source text so the
// same workload exercises the parser, the checker, the engine and the
// baselines.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/script/sema"
)

// prelude declares the single object class and the task classes shared by
// all generated workloads: a one-in/one-out Stage, a Source fed by the
// root, a variadic join is modelled by chaining Pair joins.
const prelude = `
class Data;

taskclass Stage
{
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
};

taskclass Pair
{
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { out of class Data } }
};

taskclass App
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
};
`

// stage renders one Stage task consuming from a source expression.
func stage(b *strings.Builder, name, sourceExpr string) {
	fmt.Fprintf(b, `
    task %s of taskclass Stage
    {
        implementation { "code" is "stage" };
        inputs
        {
            input main
            {
                inputobject in from { %s }
            }
        }
    };`, name, sourceExpr)
}

// locStage renders one Stage task pinned to a location (dispatched to a
// remote executor pool by the engine).
func locStage(b *strings.Builder, name, sourceExpr, location string) {
	locStageCode(b, name, sourceExpr, location, "stage")
}

// locStageCode renders one located Stage task with an explicit
// implementation code.
func locStageCode(b *strings.Builder, name, sourceExpr, location, code string) {
	fmt.Fprintf(b, `
    task %s of taskclass Stage
    {
        implementation { "code" is %q; "location" is %q };
        inputs
        {
            input main
            {
                inputobject in from { %s }
            }
        }
    };`, name, code, location, sourceExpr)
}

// pair renders one Pair join task.
func pair(b *strings.Builder, name, leftExpr, rightExpr string) {
	fmt.Fprintf(b, `
    task %s of taskclass Pair
    {
        implementation { "code" is "pair" };
        inputs
        {
            input main
            {
                inputobject left from { %s };
                inputobject right from { %s }
            }
        }
    };`, name, leftExpr, rightExpr)
}

// wrap surrounds constituent declarations with the root compound that
// feeds the first task(s) and emits the result of lastTask.
func wrap(constituents, lastTask string) string {
	return prelude + fmt.Sprintf(`
compoundtask app of taskclass App
{%s
    outputs
    {
        outcome done
        {
            outputobject out from { out of task %s if output done }
        }
    }
};
`, constituents, lastTask)
}

// fromRoot is the source expression reading the root compound's seed.
const fromRoot = "seed of task app if input main"

// fromTask returns the source expression reading task t's output.
func fromTask(t string) string {
	return fmt.Sprintf("out of task %s if output done", t)
}

// Chain returns a linear pipeline of n stages: t1 -> t2 -> ... -> tn.
func Chain(n int) string {
	var b strings.Builder
	prev := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("t%d", i)
		if prev == "" {
			stage(&b, name, fromRoot)
		} else {
			stage(&b, name, fromTask(prev))
		}
		prev = name
	}
	return wrap(b.String(), prev)
}

// ChainCode is Chain with an explicit implementation code and no
// location: every stage runs in-process on the coordinating engine
// through the builtin pattern schemes (e.g. "sleep:2ms:done"), so the
// chain exercises a coordinator tier without needing executor pools.
// Unlike the shared Stage taskclass, its stages carry the object "d"
// through both input and output, matching the builtins' echo semantics
// (inputs copy into same-named outputs).
func ChainCode(n int, code string) string {
	var b strings.Builder
	b.WriteString(`
class Data;

taskclass EchoStage
{
    inputs { input main { d of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass App
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
};

compoundtask app of taskclass App
{`)
	prev := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("t%d", i)
		src := fromRoot
		if prev != "" {
			src = fmt.Sprintf("d of task %s if output done", prev)
		}
		fmt.Fprintf(&b, `
    task %s of taskclass EchoStage
    {
        implementation { "code" is %q };
        inputs { input main { inputobject d from { %s } } }
    };`, name, code, src)
		prev = name
	}
	fmt.Fprintf(&b, `
    outputs { outcome done { outputobject out from { d of task %s if output done } } }
};
`, prev)
	return b.String()
}

// Diamond returns a generalised Fig. 1 diamond: one producer, width
// parallel stages, and a join tree combining all branches.
func Diamond(width int) string {
	var b strings.Builder
	stage(&b, "head", fromRoot)
	branches := make([]string, width)
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("b%d", i)
		stage(&b, name, fromTask("head"))
		branches[i] = name
	}
	// Join tree of Pair tasks.
	joinID := 0
	for len(branches) > 1 {
		var next []string
		for i := 0; i+1 < len(branches); i += 2 {
			name := fmt.Sprintf("j%d", joinID)
			joinID++
			pair(&b, name, fromTask(branches[i]), fromTask(branches[i+1]))
			next = append(next, name)
		}
		if len(branches)%2 == 1 {
			next = append(next, branches[len(branches)-1])
		}
		branches = next
	}
	return wrap(b.String(), branches[0])
}

// FanOut returns one producer feeding n independent stages, joined by a
// chain of Pair tasks (so the workflow has a single result).
func FanOut(n int) string {
	return Diamond(n)
}

// FanIn returns n parallel stages all fed by the root, gating a single
// sink: the sink reads the root's seed and is notified by every stage
// (an AND of n notification dependencies) — the widest possible join.
func FanIn(n int) string {
	return fanIn(n, func(b *strings.Builder, name, src string) {
		stage(b, name, src)
	})
}

// fanIn builds the fan-in shape with a pluggable renderer for the n
// parallel stages (the local and located variants share everything
// else: the root feed, the notification-gated sink, the wrapper).
func fanIn(n int, renderStage func(b *strings.Builder, name, sourceExpr string)) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		renderStage(&b, fmt.Sprintf("t%d", i), fromRoot)
	}
	fmt.Fprintf(&b, `
    task sink of taskclass Stage
    {
        implementation { "code" is "stage" };
        inputs
        {
            input main
            {
                inputobject in from { %s }`, fromRoot)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, ";\n                notification from { task t%d if output done }", i)
	}
	b.WriteString(`
            }
        }
    };`)
	return wrap(b.String(), "sink")
}

// LocatedChain returns a linear pipeline of n stages, every stage pinned
// to the given location: the workload of the executor-pool load
// generator (each instance costs n sequential remote dispatches).
func LocatedChain(n int, location string) string {
	return LocatedChainCode(n, location, "stage")
}

// LocatedChainCode is LocatedChain with an explicit implementation code,
// so daemon-hosted executors can run the chain through the builtin
// pattern schemes (e.g. "sleep:2ms:done").
func LocatedChainCode(n int, location, code string) string {
	var b strings.Builder
	prev := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("t%d", i)
		src := fromRoot
		if prev != "" {
			src = fromTask(prev)
		}
		locStageCode(&b, name, src, location, code)
		prev = name
	}
	return wrap(b.String(), prev)
}

// LocatedFanOut returns n parallel located stages all fed by the root,
// gating a local sink via notifications: the widest possible burst of
// simultaneous remote dispatches (exercises the engine's remote-dispatch
// backpressure gate).
func LocatedFanOut(n int, location string) string {
	return fanIn(n, func(b *strings.Builder, name, src string) {
		locStage(b, name, src, location)
	})
}

// timerPrelude declares the classes of the temporal workloads. The
// object flows through as "d" on both sides of every task, because
// first-class delay tasks echo their inputs into same-named output
// objects (the builtin echo semantics).
const timerPrelude = `
class Data;

taskclass TStage
{
    inputs { input main { d of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass TApp
{
    inputs { input main { d of class Data } };
    outputs { outcome done { d of class Data } }
};
`

// timerWrap surrounds constituents with the temporal root compound.
func timerWrap(constituents, lastTask string) string {
	return timerPrelude + fmt.Sprintf(`
compoundtask app of taskclass TApp
{%s
    outputs
    {
        outcome done
        {
            outputobject d from { d of task %s if output done }
        }
    }
};
`, constituents, lastTask)
}

const timerFromRoot = "d of task app if input main"

func timerFromTask(t string) string {
	return fmt.Sprintf("d of task %s if output done", t)
}

// TimerChain returns a linear pipeline of n first-class delay tasks
// (implementation property "delay"), each firing on the engine's
// durable timing wheel: the S4 temporal workload. No implementation
// code runs at all — every stage is pure time.
func TimerChain(n int, delay time.Duration) string {
	var b strings.Builder
	prev := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("t%d", i)
		src := timerFromRoot
		if prev != "" {
			src = timerFromTask(prev)
		}
		fmt.Fprintf(&b, `
    task %s of taskclass TStage
    {
        implementation { "delay" is %q };
        inputs
        {
            input main
            {
                inputobject d from { %s }
            }
        }
    };`, name, delay.String(), src)
		prev = name
	}
	return timerWrap(b.String(), prev)
}

// DeadlineFanOut returns n parallel stages all fed by the root, each
// bounded by a "deadline" implementation property and gating a sink via
// notifications: every activation arms (and, on completion, disarms) a
// wheel entry — the deadline-churn workload. code names the stage
// implementation (bind something faster than the deadline).
func DeadlineFanOut(n int, deadline time.Duration, code string) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, `
    task t%d of taskclass TStage
    {
        implementation { "code" is %q; "deadline" is %q };
        inputs
        {
            input main
            {
                inputobject d from { %s }
            }
        }
    };`, i, code, deadline.String(), timerFromRoot)
	}
	fmt.Fprintf(&b, `
    task sink of taskclass TStage
    {
        implementation { "code" is %q };
        inputs
        {
            input main
            {
                inputobject d from { %s }`, code, timerFromRoot)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, ";\n                notification from { task t%d if output done }", i)
	}
	b.WriteString(`
            }
        }
    };`)
	return timerWrap(b.String(), "sink")
}

// TimerSeed returns the root inputs of the temporal workloads (their
// object is named "d" end to end, matching the delay echo).
func TimerSeed() registry.Objects {
	return registry.Objects{"d": {Class: "Data", Data: "seed"}}
}

// RandomDAG returns a random DAG of n stages where each stage reads from
// a uniformly chosen earlier stage (or the root), with optional redundant
// alternative sources. Deterministic for a given seed.
func RandomDAG(n int, alternatives int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	names := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("t%d", i)
		var sources []string
		if len(names) == 0 {
			sources = append(sources, fromRoot)
		} else {
			primary := names[rng.Intn(len(names))]
			sources = append(sources, fromTask(primary))
			for a := 0; a < alternatives; a++ {
				alt := names[rng.Intn(len(names))]
				src := fromTask(alt)
				dup := false
				for _, have := range sources {
					if have == src {
						dup = true
						break
					}
				}
				if !dup {
					sources = append(sources, src)
				}
			}
		}
		stage(&b, name, strings.Join(sources, "; "))
		names = append(names, name)
	}
	return wrap(b.String(), names[len(names)-1])
}

// Nested returns compounds nested to the given depth, each level holding
// width sequential stages; exercises hierarchical composition (Fig. 5).
func Nested(depth, width int) string {
	var build func(level int) string
	build = func(level int) string {
		var b strings.Builder
		name := fmt.Sprintf("c%d", level)
		fmt.Fprintf(&b, `
    compoundtask %s of taskclass App
    {
        inputs
        {
            input main
            {
                inputobject seed from { %s }
            }
        };`, name, seedSource(level, width))
		prev := ""
		for i := 0; i < width; i++ {
			sname := fmt.Sprintf("s%d_%d", level, i)
			if prev == "" {
				stage2 := fmt.Sprintf("seed of task %s if input main", name)
				stage(&b, sname, stage2)
			} else {
				stage(&b, sname, fromTask(prev))
			}
			prev = sname
		}
		last := prev
		if level < depth {
			b.WriteString(build(level + 1))
			last = fmt.Sprintf("c%d", level+1)
		}
		fmt.Fprintf(&b, `
        outputs
        {
            outcome done
            {
                outputobject out from { out of task %s if output done }
            }
        }
    };`, last)
		return b.String()
	}
	return prelude + fmt.Sprintf(`
compoundtask app of taskclass App
{%s
    outputs
    {
        outcome done
        {
            outputobject out from { out of task c1 if output done }
        }
    }
};
`, buildTop(build))
}

func buildTop(build func(int) string) string {
	return build(1)
}

func seedSource(level, width int) string {
	if level == 1 {
		return "seed of task app if input main"
	}
	// Nested compounds are declared inside c<level-1> and consume its
	// LAST stage's output, keeping each level strictly sequential:
	// seeding from the enclosing compound's input instead would race the
	// inner chain against the level's stages, and whichever finished
	// first would decide whether the trailing stages ever start — a
	// timing dependence the scheduler-differential trajectory tests (and
	// the generator's own "sequential stages" contract) exclude.
	return fmt.Sprintf("out of task s%d_%d if output done", level-1, width-1)
}

// MustCompile compiles generated source, panicking on generator bugs.
func MustCompile(name, src string) *core.Schema {
	return sema.MustCompileSource(name, []byte(src))
}

// Bind installs pass-through implementations for generated workloads on
// an implementation registry: "stage" forwards its input, "pair" joins.
func Bind(impls *registry.Registry) {
	impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
	})
	impls.Bind("pair", func(ctx registry.Context) (registry.Result, error) {
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["left"]}}, nil
	})
}

// Oracle returns the all-success outcome chooser for the baselines.
func Oracle() func(string) string {
	return func(string) string { return "done" }
}

// Seed returns the root input objects for a generated workload.
func Seed() registry.Objects {
	return registry.Objects{"seed": {Class: "Data", Data: "seed"}}
}
