package workload_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline/eca"
	"repro/internal/baseline/petri"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newEngine(t *testing.T) (*engine.Engine, *registry.Registry) {
	t.Helper()
	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{})
	t.Cleanup(eng.Close)
	return eng, impls
}

func runToCompletion(t *testing.T, name, src string) engine.Result {
	t.Helper()
	eng, impls := newEngine(t)
	workload.Bind(impls)
	schema := workload.MustCompile(name, src)
	inst, err := eng.Instantiate(name, schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return res
}

func TestGeneratorsCompileAndRun(t *testing.T) {
	cases := map[string]string{
		"chain":  workload.Chain(10),
		"diam":   workload.Diamond(8),
		"fan":    workload.FanOut(5),
		"fanin":  workload.FanIn(6),
		"dag":    workload.RandomDAG(20, 2, 42),
		"nested": workload.Nested(3, 2),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			res := runToCompletion(t, name, src)
			if res.Output != "done" {
				t.Fatalf("outcome = %q, want done", res.Output)
			}
			if res.Objects["out"].Data.(string) != "seed" {
				t.Fatalf("payload = %v, want pass-through seed", res.Objects["out"].Data)
			}
		})
	}
}

// TestTemporalGeneratorsCompileAndRun runs the temporal workloads end
// to end: TimerChain entirely on the timing wheel (no implementation
// code at all), DeadlineFanOut arming and disarming one wheel entry per
// activation.
func TestTemporalGeneratorsCompileAndRun(t *testing.T) {
	run := func(t *testing.T, name, src string) engine.Result {
		eng, impls := newEngine(t)
		impls.Bind("work", func(ctx registry.Context) (registry.Result, error) {
			return registry.Result{Output: "done", Objects: registry.Objects{"d": ctx.Inputs()["d"]}}, nil
		})
		schema := workload.MustCompile(name, src)
		inst, err := eng.Instantiate(name, schema, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start("main", workload.TimerSeed()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := inst.Wait(ctx)
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		return res
	}
	t.Run("timerchain", func(t *testing.T) {
		res := run(t, "timerchain", workload.TimerChain(5, time.Millisecond))
		if res.Output != "done" || res.Objects["d"].Data.(string) != "seed" {
			t.Fatalf("result = %+v, want done passing the seed through", res)
		}
	})
	t.Run("deadlinefanout", func(t *testing.T) {
		res := run(t, "deadlinefanout", workload.DeadlineFanOut(6, time.Second, "work"))
		if res.Output != "done" {
			t.Fatalf("outcome = %q, want done", res.Output)
		}
	})
}

func TestGeneratorsDeterministic(t *testing.T) {
	if workload.RandomDAG(15, 1, 7) != workload.RandomDAG(15, 1, 7) {
		t.Error("RandomDAG must be deterministic for a fixed seed")
	}
	if workload.Chain(5) != workload.Chain(5) {
		t.Error("Chain must be deterministic")
	}
}

func TestBaselinesScheduleSameTasks(t *testing.T) {
	// Both baselines must start every task of a workload exactly as the
	// engine does (all-success oracle, acyclic workloads).
	for _, n := range []int{3, 10, 25} {
		src := workload.Chain(n)
		schema := workload.MustCompile(fmt.Sprintf("chain%d", n), src)
		root, err := schema.Root("")
		if err != nil {
			t.Fatal(err)
		}

		rules, tasks := eca.Compile(schema, root)
		ecaEng := eca.NewEngine(rules, tasks, workload.Oracle())
		ecaStats := ecaEng.Run(eca.SeedFacts(root))
		// The root compound is seeded as started, so constituents (n
		// stages) are started by rules.
		if ecaStats.TasksStarted != n {
			t.Errorf("chain %d: ECA started %d tasks, want %d", n, ecaStats.TasksStarted, n)
		}

		net := petri.Compile(schema, root)
		petriStats := net.Run(petri.Seed(root), workload.Oracle())
		if petriStats.TasksStarted != n {
			t.Errorf("chain %d: petri started %d tasks, want %d", n, petriStats.TasksStarted, n)
		}
		// Specification size comparison (Section 6): the rule and net
		// encodings are strictly larger than the structural script's
		// dependency count.
		stats := schema.Stats()
		if ecaStats.Rules <= stats.Sources {
			t.Errorf("chain %d: ECA rules = %d, expected more than %d sources", n, ecaStats.Rules, stats.Sources)
		}
		if petriStats.Transitions <= stats.Sources {
			t.Errorf("chain %d: petri transitions = %d, expected more than %d sources", n, petriStats.Transitions, stats.Sources)
		}
	}
}

func TestBaselinesOnPaperDiamond(t *testing.T) {
	src := workload.Diamond(2)
	schema := workload.MustCompile("diamond2", src)
	root, _ := schema.Root("")

	rules, tasks := eca.Compile(schema, root)
	st := eca.NewEngine(rules, tasks, workload.Oracle()).Run(eca.SeedFacts(root))
	// head + 2 branches + 1 join.
	if st.TasksStarted != 4 {
		t.Errorf("ECA started %d, want 4", st.TasksStarted)
	}
	net := petri.Compile(schema, root)
	ps := net.Run(petri.Seed(root), workload.Oracle())
	if ps.TasksStarted != 4 {
		t.Errorf("petri started %d, want 4", ps.TasksStarted)
	}
	if ps.Rounds < 3 {
		t.Errorf("petri rounds = %d, want >= 3 (dependency depth)", ps.Rounds)
	}
}

func TestBaselineFailurePath(t *testing.T) {
	// With an oracle that fails the head task, downstream tasks must not
	// start in either baseline.
	src := workload.Diamond(2)
	schema := workload.MustCompile("diamond-fail", src)
	root, _ := schema.Root("")
	oracle := func(path string) string {
		if path == "app/head" {
			return "missing-outcome" // produces nothing
		}
		return "done"
	}
	rules, tasks := eca.Compile(schema, root)
	st := eca.NewEngine(rules, tasks, oracle).Run(eca.SeedFacts(root))
	if st.TasksStarted != 1 {
		t.Errorf("ECA started %d, want only head", st.TasksStarted)
	}
	net := petri.Compile(schema, root)
	ps := net.Run(petri.Seed(root), oracle)
	if ps.TasksStarted != 1 {
		t.Errorf("petri started %d, want only head", ps.TasksStarted)
	}
}
