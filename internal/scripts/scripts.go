// Package scripts holds the workflow scripts from the paper's Section 5
// (and the Fig. 1 dependency diamond) in the concrete syntax accepted by
// the parser. The paper lists only fragments of the task classes for the
// examples; the missing signatures are completed here in the most direct
// way consistent with the prose and the figures. These scripts are shared
// by tests, examples, benches and the cmd tools.
package scripts

// Fig1Diamond is the inter-task dependency diamond of Fig. 1: t2 and t3
// start once t1 finishes (t2 by notification only, t3 with dataflow from
// t1), and t4 starts after both t2 and t3 have finished, taking data from
// both. The four tasks are wrapped in a root compound so the structure is
// deployable.
const Fig1Diamond = `
class Data;

taskclass Producer
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass Stage
{
    inputs { input main { in of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass Join
{
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { d of class Data } }
};

taskclass Diamond
{
    inputs { input main { seed of class Data } };
    outputs { outcome done { d of class Data } }
};

compoundtask diamond of taskclass Diamond
{
    task t1 of taskclass Producer
    {
        implementation { "code" is "produce" };
        inputs
        {
            input main
            {
                inputobject seed from { seed of task diamond if input main }
            }
        }
    };
    task t2 of taskclass Stage
    {
        implementation { "code" is "stage" };
        inputs
        {
            input main
            {
                notification from { task t1 if output done };
                inputobject in from { d of task t1 if output done }
            }
        }
    };
    task t3 of taskclass Stage
    {
        implementation { "code" is "stage" };
        inputs
        {
            input main
            {
                inputobject in from { d of task t1 if output done }
            }
        }
    };
    task t4 of taskclass Join
    {
        implementation { "code" is "join" };
        inputs
        {
            input main
            {
                inputobject left from { d of task t2 if output done };
                inputobject right from { d of task t3 if output done }
            }
        }
    };
    outputs
    {
        outcome done
        {
            outputobject d from { d of task t4 if output done }
        }
    }
};
`

// ServiceImpact is the Section 5.1 network-management application
// (Fig. 6): alarm correlation feeding service impact analysis feeding
// service impact resolution, wrapped in the serviceImpactApplication
// compound task. The taskclass bodies are completed per the prose: the
// analysis task consumes the correlator's fault report, and the
// resolution step either finds a resolution, finds none, or fails.
const ServiceImpact = `
class AlarmsSource;
class FaultReport;
class ServiceImpactReports;
class ResolutionReport;

taskclass AlarmCorrelator
{
    inputs { input main { alarmSource of class AlarmsSource } };
    outputs
    {
        outcome foundFault { faultReport of class FaultReport };
        outcome alarmCorrelatorFailure { }
    }
};

taskclass ServiceImpactAnalysis
{
    inputs { input main { faultReport of class FaultReport } };
    outputs
    {
        outcome foundImpacts { serviceImpactReports of class ServiceImpactReports };
        outcome serviceImpactAnalysisFailure { }
    }
};

taskclass ServiceImpactResolution
{
    inputs { input main { serviceImpactReports of class ServiceImpactReports } };
    outputs
    {
        outcome foundResolution { resolutionReport of class ResolutionReport };
        outcome foundNoResolution { };
        outcome serviceImpactResolutionFailure { }
    }
};

taskclass ServiceImpactApplication
{
    inputs
    {
        input main { alarmsSource of class AlarmsSource }
    };
    outputs
    {
        outcome resolved { resolutionReport of class ResolutionReport };
        outcome notResolved { };
        outcome serviceImpactApplicationFailure { }
    }
};

compoundtask serviceImpactApplication of taskclass ServiceImpactApplication
{
    task alarmCorrelator of taskclass AlarmCorrelator
    {
        implementation { "code" is "refAlarmCorrelator" };
        inputs
        {
            input main
            {
                inputobject alarmSource from
                {
                    alarmsSource of task serviceImpactApplication if input main
                }
            }
        }
    };
    task serviceImpactAnalysis of taskclass ServiceImpactAnalysis
    {
        implementation { "code" is "refServiceImpactAnalysis" };
        inputs
        {
            input main
            {
                inputobject faultReport from
                {
                    faultReport of task alarmCorrelator if output foundFault
                }
            }
        }
    };
    task serviceImpactResolution of taskclass ServiceImpactResolution
    {
        implementation { "code" is "refServiceImpactResolution" };
        inputs
        {
            input main
            {
                inputobject serviceImpactReports from
                {
                    serviceImpactReports of task serviceImpactAnalysis
                }
            }
        }
    };
    outputs
    {
        outcome resolved
        {
            outputobject resolutionReport from
            {
                resolutionReport of task serviceImpactResolution if output foundResolution
            }
        };
        outcome notResolved
        {
            notification from
            {
                task serviceImpactResolution if output foundNoResolution
            }
        };
        outcome serviceImpactApplicationFailure
        {
            notification from
            {
                task alarmCorrelator if output alarmCorrelatorFailure;
                task serviceImpactAnalysis if output serviceImpactAnalysisFailure;
                task serviceImpactResolution if output serviceImpactResolutionFailure
            }
        }
    }
};
`

// ProcessOrder is the Section 5.2 electronic order processing application
// (Fig. 7): paymentAuthorisation and checkStock run concurrently; if both
// succeed, dispatch runs (an atomic task — it declares an abort outcome),
// and on dispatch completion paymentCapture runs. The order can be
// cancelled by any of the three failure alternatives.
const ProcessOrder = `
class Order;
class PaymentInfo;
class StockInfo;
class DispatchNote;

taskclass PaymentAuthorisation
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome authorised { paymentInfo of class PaymentInfo };
        outcome notAuthorised { }
    }
};

taskclass CheckStock
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome stockAvailable { stockInfo of class StockInfo };
        outcome stockNotAvailable { }
    }
};

taskclass Dispatch
{
    inputs { input main { stockInfo of class StockInfo } };
    outputs
    {
        outcome dispatchCompleted { dispatchNote of class DispatchNote };
        abort outcome dispatchFailed { }
    }
};

taskclass PaymentCapture
{
    inputs { input main { paymentInfo of class PaymentInfo } };
    outputs
    {
        outcome done { }
    }
};

taskclass ProcessOrderApplication
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome orderCompleted { dispatchNote of class DispatchNote };
        outcome orderCancelled { }
    }
};

compoundtask processOrderApplication of taskclass ProcessOrderApplication
{
    task paymentAuthorisation of taskclass PaymentAuthorisation
    {
        implementation { "code" is "refPaymentAuthorisation" };
        inputs
        {
            input main
            {
                inputobject order from
                {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task checkStock of taskclass CheckStock
    {
        implementation { "code" is "refCheckStock" };
        inputs
        {
            input main
            {
                inputobject order from
                {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task dispatch of taskclass Dispatch
    {
        implementation { "code" is "refDispatch" };
        inputs
        {
            input main
            {
                notification from
                {
                    task paymentAuthorisation if output authorised
                };
                inputobject stockInfo from
                {
                    stockInfo of task checkStock if output stockAvailable
                }
            }
        }
    };
    task paymentCapture of taskclass PaymentCapture
    {
        implementation { "code" is "refPaymentCapture" };
        inputs
        {
            input main
            {
                notification from
                {
                    task dispatch if output dispatchCompleted
                };
                inputobject paymentInfo from
                {
                    paymentInfo of task paymentAuthorisation if output authorised
                }
            }
        }
    };
    outputs
    {
        outcome orderCompleted
        {
            notification from
            {
                task paymentCapture if output done
            };
            outputobject dispatchNote from
            {
                dispatchNote of task dispatch if output dispatchCompleted
            }
        };
        outcome orderCancelled
        {
            notification from
            {
                task paymentAuthorisation if output notAuthorised;
                task checkStock if output stockNotAvailable;
                task dispatch if output dispatchFailed
            }
        }
    }
};
`

// BusinessTrip is the Section 5.3 application (Figs. 8 and 9): the
// tripReservation compound contains the looping businessReservation
// compound (repeat outcome feeding its own input) and printTickets.
// businessReservation acquires trip data, finds a flight via parallel
// airline queries inside the checkFlightReservation compound, reserves
// the flight (atomic), attempts a hotel reservation, and on hotel failure
// compensates with flightCancellation and retries. The cost of the
// reserved flight escapes early through the mark output toPay.
const BusinessTrip = `
class User;
class TripSpec;
class FlightOffer;
class Plane;
class Hotel;
class Cost;
class Tickets;

taskclass DataAcquisition
{
    inputs { input main { user of class User } };
    outputs
    {
        outcome acquired { tripSpec of class TripSpec };
        outcome dataFailed { }
    }
};

taskclass QueryAirline
{
    inputs { input main { tripSpec of class TripSpec } };
    outputs
    {
        outcome offer { flightOffer of class FlightOffer };
        outcome noOffer { }
    }
};

taskclass CheckFlightReservation
{
    inputs { input main { tripSpec of class TripSpec } };
    outputs
    {
        outcome flightFound { flightOffer of class FlightOffer };
        outcome noFlight { }
    }
};

taskclass FlightReservation
{
    inputs { input main { flightOffer of class FlightOffer } };
    outputs
    {
        outcome reserved { plane of class Plane; cost of class Cost };
        abort outcome reserveFailed { }
    }
};

taskclass HotelReservation
{
    inputs { input main { plane of class Plane } };
    outputs
    {
        outcome booked { hotel of class Hotel };
        outcome failed { }
    }
};

taskclass FlightCancellation
{
    inputs { input main { plane of class Plane } };
    outputs
    {
        outcome cancelled { }
    }
};

taskclass BusinessReservation
{
    inputs { input main { user of class User } };
    outputs
    {
        outcome success { plane of class Plane; hotel of class Hotel; cost of class Cost };
        repeat outcome retry { user of class User };
        outcome failed { }
    }
};

taskclass PrintTickets
{
    inputs { input main { plane of class Plane; hotel of class Hotel } };
    outputs
    {
        outcome printed { tickets of class Tickets }
    }
};

taskclass TripReservation
{
    inputs { input main { user of class User } };
    outputs
    {
        outcome tripBooked { tickets of class Tickets };
        outcome tripFailed { };
        mark toPay { cost of class Cost }
    }
};

compoundtask tripReservation of taskclass TripReservation
{
    compoundtask businessReservation of taskclass BusinessReservation
    {
        inputs
        {
            input main
            {
                inputobject user from
                {
                    user of task tripReservation if input main;
                    user of task businessReservation if output retry
                }
            }
        };
        task dataAcquisition of taskclass DataAcquisition
        {
            implementation { "code" is "refDataAcquisition" };
            inputs
            {
                input main
                {
                    inputobject user from
                    {
                        user of task businessReservation if input main
                    }
                }
            }
        };
        compoundtask checkFlightReservation of taskclass CheckFlightReservation
        {
            inputs
            {
                input main
                {
                    inputobject tripSpec from
                    {
                        tripSpec of task dataAcquisition if output acquired
                    }
                }
            };
            task queryAirline1 of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirline1" };
                inputs
                {
                    input main
                    {
                        inputobject tripSpec from
                        {
                            tripSpec of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task queryAirline2 of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirline2" };
                inputs
                {
                    input main
                    {
                        inputobject tripSpec from
                        {
                            tripSpec of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task queryAirline3 of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirline3" };
                inputs
                {
                    input main
                    {
                        inputobject tripSpec from
                        {
                            tripSpec of task checkFlightReservation if input main
                        }
                    }
                }
            };
            outputs
            {
                outcome flightFound
                {
                    outputobject flightOffer from
                    {
                        flightOffer of task queryAirline1 if output offer;
                        flightOffer of task queryAirline2 if output offer;
                        flightOffer of task queryAirline3 if output offer
                    }
                };
                outcome noFlight
                {
                    notification from { task queryAirline1 if output noOffer };
                    notification from { task queryAirline2 if output noOffer };
                    notification from { task queryAirline3 if output noOffer }
                }
            }
        };
        task flightReservation of taskclass FlightReservation
        {
            implementation { "code" is "refFlightReservation" };
            inputs
            {
                input main
                {
                    inputobject flightOffer from
                    {
                        flightOffer of task checkFlightReservation if output flightFound
                    }
                }
            }
        };
        task hotelReservation of taskclass HotelReservation
        {
            implementation { "code" is "refHotelReservation" };
            inputs
            {
                input main
                {
                    inputobject plane from
                    {
                        plane of task flightReservation if output reserved
                    }
                }
            }
        };
        task flightCancellation of taskclass FlightCancellation
        {
            implementation { "code" is "refFlightCancellation" };
            inputs
            {
                input main
                {
                    notification from
                    {
                        task hotelReservation if output failed
                    };
                    inputobject plane from
                    {
                        plane of task flightReservation
                    }
                }
            }
        };
        outputs
        {
            outcome success
            {
                outputobject plane from { plane of task flightReservation if output reserved };
                outputobject hotel from { hotel of task hotelReservation if output booked };
                outputobject cost from { cost of task flightReservation if output reserved }
            };
            repeat outcome retry
            {
                notification from { task flightCancellation if output cancelled };
                outputobject user from { user of task businessReservation if input main }
            };
            outcome failed
            {
                notification from
                {
                    task dataAcquisition if output dataFailed;
                    task checkFlightReservation if output noFlight;
                    task flightReservation if output reserveFailed
                }
            }
        }
    };
    task printTickets of taskclass PrintTickets
    {
        implementation { "code" is "refPrintTickets" };
        inputs
        {
            input main
            {
                inputobject plane from { plane of task businessReservation if output success };
                inputobject hotel from { hotel of task businessReservation if output success }
            }
        }
    };
    outputs
    {
        outcome tripBooked
        {
            outputobject tickets from { tickets of task printTickets if output printed }
        };
        outcome tripFailed
        {
            notification from { task businessReservation if output failed }
        };
        mark toPay
        {
            outputobject cost from { cost of task businessReservation if output success }
        }
    }
};
`

// PaymentTemplate exercises the tasktemplate construct of Section 4.5:
// a parametrised capture task instanced twice against different upstream
// tasks.
const PaymentTemplate = `
class Order;
class PaymentInfo;

taskclass Authorise
{
    inputs { input main { order of class Order } };
    outputs { outcome success { paymentInfo of class PaymentInfo } }
};

taskclass Capture
{
    inputs { input main { paymentInfo of class PaymentInfo } };
    outputs { outcome done { } }
};

taskclass App
{
    inputs { input main { order of class Order } };
    outputs { outcome finished { } }
};

tasktemplate task captureTemplate of taskclass Capture
{
    parameters { upstream };
    implementation { "code" is "refCapture" };
    inputs
    {
        input main
        {
            paymentInfo of task upstream if output success
        }
    }
}

compoundtask app of taskclass App
{
    task authA of taskclass Authorise
    {
        implementation { "code" is "refAuthorise" };
        inputs
        {
            input main
            {
                inputobject order from { order of task app if input main }
            }
        }
    };
    task authB of taskclass Authorise
    {
        implementation { "code" is "refAuthorise" };
        inputs
        {
            input main
            {
                inputobject order from { order of task app if input main }
            }
        }
    };
    captureA of tasktemplate captureTemplate(authA);
    captureB of tasktemplate captureTemplate(authB);
    outputs
    {
        outcome finished
        {
            notification from { task captureA if output done };
            notification from { task captureB if output done }
        }
    }
};
`

// All maps script names to sources, for tooling that iterates over the
// paper corpus.
var All = map[string]string{
	"fig1_diamond":     Fig1Diamond,
	"service_impact":   ServiceImpact,
	"process_order":    ProcessOrder,
	"business_trip":    BusinessTrip,
	"payment_template": PaymentTemplate,
}
