package repository_test

import (
	"errors"
	"testing"

	"repro/internal/persist"
	"repro/internal/repository"
	"repro/internal/scripts"
	"repro/internal/store"
	"repro/internal/txn"
)

func newRepo(t *testing.T) (*repository.Service, *store.MemStore) {
	t.Helper()
	st := store.NewMemStore()
	reg := persist.NewRegistry(st, txn.NewManager(st), nil)
	return repository.New(reg), st
}

func TestPutGetVersioning(t *testing.T) {
	repo, _ := newRepo(t)
	v1, err := repo.Put("order", scripts.ProcessOrder)
	if err != nil || v1 != 1 {
		t.Fatalf("put: %d, %v", v1, err)
	}
	v2, err := repo.Put("order", scripts.ProcessOrder)
	if err != nil || v2 != 2 {
		t.Fatalf("put v2: %d, %v", v2, err)
	}
	e, err := repo.Get("order")
	if err != nil || e.Version != 2 {
		t.Fatalf("get = v%d, %v", e.Version, err)
	}
	e1, err := repo.GetVersion("order", 1)
	if err != nil || e1.Version != 1 || e1.Source != scripts.ProcessOrder {
		t.Fatalf("get v1: %+v, %v", e1.Version, err)
	}
	hist, err := repo.History("order")
	if err != nil || len(hist) != 2 {
		t.Fatalf("history = %v, %v", hist, err)
	}
}

func TestPutRejectsInvalidScripts(t *testing.T) {
	repo, _ := newRepo(t)
	cases := []string{
		"task t of taskclass Nope { }",
		"class A; class A;",
		"garbage !!!",
	}
	for _, src := range cases {
		if _, err := repo.Put("bad", src); err == nil {
			t.Errorf("accepted invalid script %q", src)
		}
	}
	if _, err := repo.Put("a/b", scripts.ProcessOrder); err == nil {
		t.Error("accepted invalid schema name with slash")
	}
	// Nothing was stored.
	names, _ := repo.List()
	if len(names) != 0 {
		t.Errorf("list = %v, want empty", names)
	}
}

func TestCompileCached(t *testing.T) {
	repo, _ := newRepo(t)
	if _, err := repo.Put("svc", scripts.ServiceImpact); err != nil {
		t.Fatal(err)
	}
	s1, err := repo.Compile("svc")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := repo.Compile("svc")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("same version must compile once (cache)")
	}
	if _, err := repo.Put("svc", scripts.ServiceImpact); err != nil {
		t.Fatal(err)
	}
	s3, err := repo.Compile("svc")
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("new version must recompile")
	}
}

func TestDeleteAndMissing(t *testing.T) {
	repo, _ := newRepo(t)
	if _, err := repo.Get("ghost"); !errors.Is(err, repository.ErrNoSchema) {
		t.Fatalf("get missing: %v", err)
	}
	if err := repo.Delete("ghost"); !errors.Is(err, repository.ErrNoSchema) {
		t.Fatalf("delete missing: %v", err)
	}
	if _, err := repo.Put("x", scripts.Fig1Diamond); err != nil {
		t.Fatal(err)
	}
	if err := repo.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Get("x"); !errors.Is(err, repository.ErrNoSchema) {
		t.Fatalf("get after delete: %v", err)
	}
	names, _ := repo.List()
	if len(names) != 0 {
		t.Errorf("list after delete = %v", names)
	}
}

func TestRepositorySurvivesRestart(t *testing.T) {
	repo1, st := newRepo(t)
	if _, err := repo1.Put("order", scripts.ProcessOrder); err != nil {
		t.Fatal(err)
	}
	// New service over the same store (service restart).
	reg2 := persist.NewRegistry(st, txn.NewManager(st), nil)
	repo2 := repository.New(reg2)
	e, err := repo2.Get("order")
	if err != nil || e.Source != scripts.ProcessOrder {
		t.Fatalf("after restart: %v", err)
	}
	schema, err := repo2.Compile("order")
	if err != nil || schema.Task("processOrderApplication") == nil {
		t.Fatalf("compile after restart: %v", err)
	}
	names, err := repo2.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("list after restart = %v, %v", names, err)
	}
}

func TestStats(t *testing.T) {
	repo, _ := newRepo(t)
	if _, err := repo.Put("trip", scripts.BusinessTrip); err != nil {
		t.Fatal(err)
	}
	st, err := repo.Stats("trip")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 11 || st.CompoundTasks != 3 {
		t.Errorf("stats = %+v", st)
	}
}
