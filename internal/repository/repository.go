// Package repository implements the Workflow Repository Service of
// Fig. 4: it "stores workflow scripts (schema) and provides operations
// for initializing, modifying and inspecting scripts". Scripts are stored
// as source text in versioned persistent objects; every put is
// compile-checked so the repository only ever hands out valid schemas.
package repository

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/script/sema"
	"repro/internal/store"
)

// ErrNoSchema is returned when a named schema is absent.
var ErrNoSchema = errors.New("schema not found")

// Entry describes one stored schema version.
type Entry struct {
	Name    string
	Version int
	Source  string
}

// meta is the persisted per-schema header.
type meta struct {
	Name     string
	Versions int
}

// Service is the repository: a thin, transactional layer over the
// persistent object store, plus an in-memory compiled-schema cache.
type Service struct {
	reg *persist.Registry

	mu    sync.Mutex
	cache map[string]cached // name -> compiled current version
}

type cached struct {
	version int
	schema  *core.Schema
}

// New opens a repository over the given persistent registry.
func New(reg *persist.Registry) *Service {
	return &Service{reg: reg, cache: make(map[string]cached)}
}

func metaID(name string) store.ID {
	return store.ID("repo/" + name + "/meta")
}

func versionID(name string, v int) store.ID {
	return store.ID(fmt.Sprintf("repo/%s/v%06d", name, v))
}

// Put validates, compiles and stores source as the next version of the
// named schema, returning the new version number. The version chain and
// header update commit in one transaction.
func (s *Service) Put(name, source string) (int, error) {
	if name == "" || strings.ContainsRune(name, '/') {
		return 0, fmt.Errorf("put schema: invalid name %q", name)
	}
	schema, err := sema.CompileSource(name, []byte(source))
	if err != nil {
		return 0, fmt.Errorf("put schema %s: %w", name, err)
	}

	tx := s.reg.Manager().Begin()
	var m meta
	metaObj := s.reg.Object(metaID(name))
	if err := metaObj.Get(tx, &m); err != nil && !errors.Is(err, persist.ErrNoState) {
		_ = tx.Abort()
		return 0, err
	}
	m.Name = name
	m.Versions++
	if err := s.reg.Object(versionID(name, m.Versions)).Set(tx, Entry{Name: name, Version: m.Versions, Source: source}); err != nil {
		_ = tx.Abort()
		return 0, err
	}
	if err := metaObj.Set(tx, m); err != nil {
		_ = tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.cache[name] = cached{version: m.Versions, schema: schema}
	s.mu.Unlock()
	return m.Versions, nil
}

// Get returns the current version entry of the named schema.
func (s *Service) Get(name string) (Entry, error) {
	var m meta
	if err := s.reg.Object(metaID(name)).Peek(&m); err != nil {
		if errors.Is(err, persist.ErrNoState) {
			return Entry{}, fmt.Errorf("get schema %s: %w", name, ErrNoSchema)
		}
		return Entry{}, err
	}
	return s.GetVersion(name, m.Versions)
}

// GetVersion returns a specific version entry.
func (s *Service) GetVersion(name string, version int) (Entry, error) {
	var e Entry
	if err := s.reg.Object(versionID(name, version)).Peek(&e); err != nil {
		if errors.Is(err, persist.ErrNoState) {
			return Entry{}, fmt.Errorf("get schema %s v%d: %w", name, version, ErrNoSchema)
		}
		return Entry{}, err
	}
	return e, nil
}

// Compile returns the compiled current version, from cache when fresh.
func (s *Service) Compile(name string) (*core.Schema, error) {
	var m meta
	if err := s.reg.Object(metaID(name)).Peek(&m); err != nil {
		if errors.Is(err, persist.ErrNoState) {
			return nil, fmt.Errorf("compile schema %s: %w", name, ErrNoSchema)
		}
		return nil, err
	}
	s.mu.Lock()
	c, ok := s.cache[name]
	s.mu.Unlock()
	if ok && c.version == m.Versions {
		return c.schema, nil
	}
	e, err := s.GetVersion(name, m.Versions)
	if err != nil {
		return nil, err
	}
	schema, err := sema.CompileSource(name, []byte(e.Source))
	if err != nil {
		return nil, fmt.Errorf("compile schema %s v%d: %w", name, m.Versions, err)
	}
	s.mu.Lock()
	s.cache[name] = cached{version: m.Versions, schema: schema}
	s.mu.Unlock()
	return schema, nil
}

// List returns the stored schema names in order.
func (s *Service) List() ([]string, error) {
	ids, err := s.reg.Store().List("repo/")
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, id := range ids {
		rest := strings.TrimPrefix(string(id), "repo/")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		name := rest[:slash]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// History returns the version numbers stored for a schema.
func (s *Service) History(name string) ([]int, error) {
	var m meta
	if err := s.reg.Object(metaID(name)).Peek(&m); err != nil {
		if errors.Is(err, persist.ErrNoState) {
			return nil, fmt.Errorf("history %s: %w", name, ErrNoSchema)
		}
		return nil, err
	}
	out := make([]int, 0, m.Versions)
	for v := 1; v <= m.Versions; v++ {
		out = append(out, v)
	}
	return out, nil
}

// Delete removes a schema and all its versions in one transaction.
func (s *Service) Delete(name string) error {
	var m meta
	metaObj := s.reg.Object(metaID(name))
	if err := metaObj.Peek(&m); err != nil {
		if errors.Is(err, persist.ErrNoState) {
			return fmt.Errorf("delete schema %s: %w", name, ErrNoSchema)
		}
		return err
	}
	tx := s.reg.Manager().Begin()
	for v := 1; v <= m.Versions; v++ {
		if err := s.reg.Object(versionID(name, v)).Delete(tx); err != nil {
			_ = tx.Abort()
			return err
		}
	}
	if err := metaObj.Delete(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.cache, name)
	s.mu.Unlock()
	return nil
}

// Stats returns compiled-schema statistics for inspection tooling.
func (s *Service) Stats(name string) (core.Stats, error) {
	schema, err := s.Compile(name)
	if err != nil {
		return core.Stats{}, err
	}
	return schema.Stats(), nil
}
