package repository

import (
	"repro/internal/core"
	"repro/internal/orb"
)

// ObjectName is the repository's well-known servant name on the orb —
// the analogue of the repository service's CORBA IDL interface.
const ObjectName = "workflow-repository"

// Wire types.
type putReq struct {
	Name   string
	Source string
}

type putResp struct {
	Version int
}

type nameReq struct {
	Name string
}

type versionReq struct {
	Name    string
	Version int
}

type entryResp struct {
	Entry Entry
}

type listResp struct {
	Names []string
}

type historyResp struct {
	Versions []int
}

type statsResp struct {
	Stats core.Stats
}

// Servant exports the repository over the orb.
func (s *Service) Servant() *orb.Servant {
	sv := orb.NewServant()
	orb.Method(sv, "put", func(req putReq) (putResp, error) {
		v, err := s.Put(req.Name, req.Source)
		return putResp{Version: v}, err
	})
	orb.Method(sv, "get", func(req nameReq) (entryResp, error) {
		e, err := s.Get(req.Name)
		return entryResp{Entry: e}, err
	})
	orb.Method(sv, "getVersion", func(req versionReq) (entryResp, error) {
		e, err := s.GetVersion(req.Name, req.Version)
		return entryResp{Entry: e}, err
	})
	orb.Method(sv, "list", func(struct{}) (listResp, error) {
		names, err := s.List()
		return listResp{Names: names}, err
	})
	orb.Method(sv, "history", func(req nameReq) (historyResp, error) {
		vs, err := s.History(req.Name)
		return historyResp{Versions: vs}, err
	})
	orb.Method(sv, "delete", func(req nameReq) (struct{}, error) {
		return struct{}{}, s.Delete(req.Name)
	})
	orb.Method(sv, "stats", func(req nameReq) (statsResp, error) {
		st, err := s.Stats(req.Name)
		return statsResp{Stats: st}, err
	})
	return sv
}

// Client is the typed stub of the repository service.
type Client struct {
	c *orb.Client
}

// NewClient wraps an orb client connected to the repository endpoint.
func NewClient(c *orb.Client) *Client { return &Client{c: c} }

// Put stores a new version of a schema.
func (rc *Client) Put(name, source string) (int, error) {
	resp, err := orb.Call[putReq, putResp](rc.c, ObjectName, "put", putReq{Name: name, Source: source})
	return resp.Version, err
}

// Get fetches the current version.
func (rc *Client) Get(name string) (Entry, error) {
	resp, err := orb.Call[nameReq, entryResp](rc.c, ObjectName, "get", nameReq{Name: name})
	return resp.Entry, err
}

// GetVersion fetches a specific version.
func (rc *Client) GetVersion(name string, version int) (Entry, error) {
	resp, err := orb.Call[versionReq, entryResp](rc.c, ObjectName, "getVersion", versionReq{Name: name, Version: version})
	return resp.Entry, err
}

// List names the stored schemas.
func (rc *Client) List() ([]string, error) {
	resp, err := orb.Call[struct{}, listResp](rc.c, ObjectName, "list", struct{}{})
	return resp.Names, err
}

// History returns a schema's version numbers.
func (rc *Client) History(name string) ([]int, error) {
	resp, err := orb.Call[nameReq, historyResp](rc.c, ObjectName, "history", nameReq{Name: name})
	return resp.Versions, err
}

// Delete removes a schema.
func (rc *Client) Delete(name string) error {
	return rc.c.Invoke(ObjectName, "delete", nameReq{Name: name}, nil)
}

// Stats returns compiled statistics of the current version.
func (rc *Client) Stats(name string) (core.Stats, error) {
	resp, err := orb.Call[nameReq, statsResp](rc.c, ObjectName, "stats", nameReq{Name: name})
	return resp.Stats, err
}
