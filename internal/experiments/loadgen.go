package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/orb"
	"repro/internal/registry"
	"repro/internal/taskexec"
	"repro/internal/workload"
)

// LoadConfig shapes one executor-pool load scenario.
type LoadConfig struct {
	// Executors is the pool size M (in-process executor nodes registered
	// under one location).
	Executors int
	// ChainLen is the number of located stages per workflow instance
	// (each stage is one remote dispatch). Default 4.
	ChainLen int
	// TaskDelay is the simulated work per activation on the executor
	// side. Default 2ms.
	TaskDelay time.Duration
	// Balance selects the pool balancing strategy (taskexec constants).
	// Default round-robin.
	Balance string
	// MaxRemoteInflight bounds concurrent remote dispatches per instance
	// (engine backpressure gate). 0 = unbounded.
	MaxRemoteInflight int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Executors == 0 {
		c.Executors = 1
	}
	if c.ChainLen == 0 {
		c.ChainLen = 4
	}
	if c.TaskDelay == 0 {
		c.TaskDelay = 2 * time.Millisecond
	}
	return c
}

// LoadReport aggregates one closed-loop run.
type LoadReport struct {
	Instances       int
	Elapsed         time.Duration
	InstancesPerSec float64
	// Activations is the number of remote dispatches measured.
	Activations int
	// ActP50/P90/P99 are remote-activation latency percentiles
	// (dispatch call to result, including queueing and failover).
	ActP50, ActP90, ActP99 time.Duration
}

// String renders the report's one-line summary.
func (r LoadReport) String() string {
	return fmt.Sprintf("%d instances in %v (%.1f inst/s); activation p50=%v p90=%v p99=%v",
		r.Instances, r.Elapsed.Round(time.Millisecond), r.InstancesPerSec,
		r.ActP50.Round(time.Microsecond), r.ActP90.Round(time.Microsecond), r.ActP99.Round(time.Microsecond))
}

// LatencyRecorder collects remote-activation latencies; Wrap decorates
// any RemoteInvoker with timing.
type LatencyRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Wrap times every dispatch through inv.
func (l *LatencyRecorder) Wrap(inv engine.RemoteInvoker) engine.RemoteInvoker {
	return func(req engine.RemoteRequest) (registry.Result, error) {
		begin := wall.Now()
		res, err := inv(req)
		l.add(wall.Now().Sub(begin))
		return res, err
	}
}

func (l *LatencyRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.durs = append(l.durs, d)
	l.mu.Unlock()
}

// take drains the recorded samples.
func (l *LatencyRecorder) take() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.durs
	l.durs = nil
	return out
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// LoadEnv is a self-contained executor-pool scenario: M in-process
// executor nodes registered under one location, and an engine whose
// located activations dispatch to them through a pool invoker. It is
// the substrate of cmd/wfload's self-hosted mode and the wfbench S3
// rows.
type LoadEnv struct {
	cfg     LoadConfig
	naming  *orb.Naming
	servers []*orb.Server
	invoker *taskexec.Invoker
	env     *Env
	schema  *coreSchema
	lat     *LatencyRecorder
}

// LoadLocation is the location name the pool's members register under.
const LoadLocation = "pool"

// NewLoadEnv boots the scenario.
func NewLoadEnv(cfg LoadConfig) (*LoadEnv, error) {
	cfg = cfg.withDefaults()
	le := &LoadEnv{cfg: cfg, naming: orb.NewNaming(), lat: NewLatencyRecorder()}

	for i := 0; i < cfg.Executors; i++ {
		impls := registry.New()
		impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
			if cfg.TaskDelay > 0 {
				<-wall.Wake(wall.Now().Add(cfg.TaskDelay))
			}
			return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
		})
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			le.Close()
			return nil, err
		}
		srv.Register(taskexec.ObjectName, taskexec.NewExecutor(impls).Servant())
		le.servers = append(le.servers, srv)
		le.naming.BindMember(LoadLocation, srv.Addr(), 0)
	}

	inv, err := taskexec.NewPoolInvoker(le.naming.ResolveAll, taskexec.PoolConfig{
		Client:       orb.ClientConfig{Retries: 1, RetryDelay: time.Millisecond},
		Balance:      cfg.Balance,
		BlacklistFor: 500 * time.Millisecond,
	})
	if err != nil {
		le.Close()
		return nil, err
	}
	le.invoker = inv

	le.env = NewEnv(nil, engine.Config{
		Ephemeral:         true,
		RemoteInvoker:     le.lat.Wrap(inv.Invoke),
		MaxRemoteInflight: cfg.MaxRemoteInflight,
	})
	workload.Bind(le.env.Impls)
	le.schema = Compile("loadchain", workload.LocatedChain(cfg.ChainLen, LoadLocation))
	return le, nil
}

// KillExecutor hard-stops pool member i (its server drops every
// connection, the moral equivalent of SIGKILL for an in-process node).
// The naming registration is left in place: liveness is the pool's
// problem, exactly as with a crashed remote node whose heartbeat has
// not yet expired.
func (le *LoadEnv) KillExecutor(i int) {
	le.servers[i].Close()
}

// Stats exposes the pool's per-endpoint dispatch counters.
func (le *LoadEnv) Stats() []taskexec.EndpointStats { return le.invoker.Stats() }

// Run drives the closed loop: workers concurrent instances, total
// instances overall; each worker runs complete instances back to back.
// midpoint, when non-nil, is called exactly once as soon as half the
// instances have completed (the hook the kill-one-mid-run scenario
// uses).
func (le *LoadEnv) Run(workers, total int, midpoint func()) (LoadReport, error) {
	return RunClosedLoopMid(le.env, le.schema, le.lat, workers, total, midpoint)
}

// RunClosedLoop drives workers concurrent complete-instance loops over
// env until total instances have run, reporting throughput and the
// activation latencies lat recorded. Shared by the self-hosted LoadEnv
// and cmd/wfload's external mode.
func RunClosedLoop(env *Env, schema *coreSchema, lat *LatencyRecorder, workers, total int) (LoadReport, error) {
	return RunClosedLoopMid(env, schema, lat, workers, total, nil)
}

// RunClosedLoopSeed is RunClosedLoop with explicit root inputs — the
// temporal workloads (workload.TimerChain) seed the object "d" instead
// of "seed".
func RunClosedLoopSeed(env *Env, schema *coreSchema, lat *LatencyRecorder, workers, total int, seed registry.Objects) (LoadReport, error) {
	return runClosedLoop(env, schema, lat, workers, total, nil, seed)
}

// RunClosedLoopMid is RunClosedLoop with a midpoint hook, called exactly
// once as soon as half the instances have completed.
func RunClosedLoopMid(env *Env, schema *coreSchema, lat *LatencyRecorder, workers, total int, midpoint func()) (LoadReport, error) {
	return runClosedLoop(env, schema, lat, workers, total, midpoint, workload.Seed())
}

func runClosedLoop(env *Env, schema *coreSchema, lat *LatencyRecorder, workers, total int, midpoint func(), seed registry.Objects) (LoadReport, error) {
	lat.take() // reset samples
	runOne := func() error {
		res, _, err := env.Run(schema, "main", seed.Clone())
		if err != nil {
			return err
		}
		if res.Output != "done" {
			return fmt.Errorf("loadgen instance: outcome %q", res.Output)
		}
		return nil
	}
	completed, elapsed, err := RunClosedLoopFn(workers, total, midpoint, runOne)
	if err != nil {
		return LoadReport{}, err
	}

	durs := lat.take()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return LoadReport{
		Instances:       completed,
		Elapsed:         elapsed,
		InstancesPerSec: float64(completed) / elapsed.Seconds(),
		Activations:     len(durs),
		ActP50:          percentile(durs, 0.50),
		ActP90:          percentile(durs, 0.90),
		ActP99:          percentile(durs, 0.99),
	}, nil
}

// RunClosedLoopFn is the worker-pool core every closed loop shares:
// workers goroutines each call runOne back to back until total runs
// have been claimed; midpoint, when non-nil, runs exactly once as soon
// as half the runs have completed. The first runOne error stops that
// worker and fails the loop after the others drain. Returns how many
// runs completed and the wall-clock elapsed.
func RunClosedLoopFn(workers, total int, midpoint func(), runOne func() error) (int, time.Duration, error) {
	if workers <= 0 || total <= 0 {
		return 0, 0, errors.New("loadgen: workers and total must be positive")
	}
	var (
		next     atomic.Int64
		done     atomic.Int64
		midOnce  sync.Once
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	begin := wall.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if n := next.Add(1); n > int64(total) {
					return
				}
				if err := runOne(); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				if d := done.Add(1); midpoint != nil && d >= int64(total)/2 {
					midOnce.Do(midpoint)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := wall.Now().Sub(begin)
	if firstErr != nil {
		return int(done.Load()), elapsed, firstErr
	}
	return int(done.Load()), elapsed, nil
}

// Close tears the scenario down.
func (le *LoadEnv) Close() {
	if le.env != nil {
		le.env.Close()
	}
	if le.invoker != nil {
		le.invoker.Close()
	}
	for _, srv := range le.servers {
		srv.Close()
	}
}
