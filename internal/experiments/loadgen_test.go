package experiments_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/taskexec"
)

func runLoad(t *testing.T, cfg experiments.LoadConfig, workers, total int, midpoint func(*experiments.LoadEnv)) (experiments.LoadReport, []taskexec.EndpointStats) {
	t.Helper()
	le, err := experiments.NewLoadEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer le.Close()
	var mid func()
	if midpoint != nil {
		mid = func() { midpoint(le) }
	}
	rep, err := le.Run(workers, total, mid)
	if err != nil {
		t.Fatal(err)
	}
	return rep, le.Stats()
}

func TestLoadGenCompletesAndBalances(t *testing.T) {
	rep, stats := runLoad(t, experiments.LoadConfig{
		Executors: 2, ChainLen: 3, TaskDelay: time.Millisecond,
	}, 4, 24, nil)
	if rep.Instances != 24 {
		t.Fatalf("instances = %d, want 24", rep.Instances)
	}
	if rep.Activations != 24*3 {
		t.Fatalf("activations = %d, want %d", rep.Activations, 24*3)
	}
	if rep.ActP50 <= 0 || rep.ActP99 < rep.ActP50 {
		t.Fatalf("implausible percentiles: %+v", rep)
	}
	// Round-robin over two members: both must have served real load.
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, st := range stats {
		if st.Dispatched < 10 {
			t.Fatalf("member %s served only %d dispatches: %+v", st.Addr, st.Dispatched, stats)
		}
	}
}

func TestLoadGenThroughputScalesWithExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scaling assertion")
	}
	// The executor pool is the bottleneck (per-endpoint dispatches are
	// serialised on one connection, each activation sleeps): quadrupling
	// the pool must raise throughput substantially. The 2x floor (vs the
	// ideal 4x) keeps the assertion robust on loaded CI machines.
	cfg := experiments.LoadConfig{ChainLen: 4, TaskDelay: 2 * time.Millisecond}
	cfg.Executors = 1
	one, _ := runLoad(t, cfg, 8, 48, nil)
	cfg.Executors = 4
	four, _ := runLoad(t, cfg, 8, 48, nil)
	if four.InstancesPerSec < 2*one.InstancesPerSec {
		t.Fatalf("scaling too weak: 1 executor %.1f inst/s, 4 executors %.1f inst/s",
			one.InstancesPerSec, four.InstancesPerSec)
	}
}

func TestLoadGenKillOneMidRunFailsOver(t *testing.T) {
	// Two members; one is hard-stopped halfway through the run. Every
	// instance must still complete — in-flight dispatches on the dead
	// member fail over to the survivor inside the pool, before the
	// engine's own retry would even be consulted.
	rep, stats := runLoad(t, experiments.LoadConfig{
		Executors: 2, ChainLen: 3, TaskDelay: time.Millisecond,
	}, 4, 32, func(le *experiments.LoadEnv) { le.KillExecutor(0) })
	if rep.Instances != 32 {
		t.Fatalf("instances = %d, want all 32 despite the kill", rep.Instances)
	}
	// The survivor must have absorbed the post-kill load.
	var failures int64
	for _, st := range stats {
		failures += st.Failures
	}
	if failures == 0 {
		t.Log("note: kill landed after the last dispatch to the dead member; failover untested this run")
	}
}
