package experiments

import "repro/internal/timers"

// wall is the package's measurement clock. Experiments time real work
// (benchmark latencies, recovery elapsed), so they read wall time — but
// through the Clock interface, making the wall-time dependency explicit
// and grep-able (and keeping wflint's clockinject analyzer happy).
var wall = timers.WallClock{}
