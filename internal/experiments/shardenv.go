package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/repository"
	"repro/internal/script/sema"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

// ShardConfig shapes a self-hosted sharded-coordinator scenario.
type ShardConfig struct {
	// Coordinators is the tier size K. Default 2.
	Coordinators int
	// Partitions is the partition count. Default shard.DefaultPartitions.
	Partitions int
	// ChainLen is the number of stages per workflow instance. Default 4.
	ChainLen int
	// StageDelay is the simulated work per stage, executed in-coordinator
	// through the builtin sleep scheme. Default 2ms.
	StageDelay time.Duration
	// LeaseTTL bounds partition leases (and so failover detection time);
	// LeaseRenew is the renewal interval. Defaults 1s and TTL/4.
	LeaseTTL   time.Duration
	LeaseRenew time.Duration
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Coordinators == 0 {
		c.Coordinators = 2
	}
	if c.Partitions == 0 {
		c.Partitions = shard.DefaultPartitions
	}
	if c.ChainLen == 0 {
		c.ChainLen = 4
	}
	if c.StageDelay == 0 {
		c.StageDelay = 2 * time.Millisecond
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = time.Second
	}
	if c.LeaseRenew <= 0 || c.LeaseRenew >= c.LeaseTTL {
		c.LeaseRenew = c.LeaseTTL / 4
	}
	return c
}

// shardSchemaName is the schema the tier's repository serves.
const shardSchemaName = "shard-chain"

// shardNode is one in-process coordinator of the tier: engine over a
// PartitionedStore view of the shared partition stores, orb server,
// lease manager, membership heartbeat.
type shardNode struct {
	id     string
	eng    *engine.Engine
	svc    *execsvc.Service
	server *orb.Server
	ps     *shard.PartitionedStore
	mgr    *shard.Manager
	stopHB func()
	dead   bool
}

// ShardEnv is a self-contained sharded coordinator tier: K in-process
// coordinators over one naming service and one shared set of partition
// stores, driven through the routing ShardedClient. It is the substrate
// of cmd/wfload's -coordinators mode and the wfbench S5 rows, and the
// in-process twin of the scripts/e2e_shardkill.sh deployment.
type ShardEnv struct {
	cfg        ShardConfig
	naming     *orb.Naming
	namingSrv  *orb.Server
	partStores []*store.MemStore
	nodes      []*shardNode
	client     *execsvc.ShardedClient
	seq        atomic.Int64
}

// NewShardEnv boots the tier and waits until every partition has a
// lease holder.
func NewShardEnv(cfg ShardConfig) (*ShardEnv, error) {
	cfg = cfg.withDefaults()
	se := &ShardEnv{cfg: cfg, naming: orb.NewNaming()}

	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	se.namingSrv = srv
	srv.Register(orb.NamingObject, se.naming.Servant())

	// One shared repository: schemas are tier-global, not partitioned.
	repoStore := store.NewMemStore()
	repo := repository.New(persist.NewRegistry(repoStore, txn.NewManager(repoStore), nil))
	srv.Register(repository.ObjectName, repo.Servant())
	code := fmt.Sprintf("sleep:%s:done", cfg.StageDelay)
	if _, err := repo.Put(shardSchemaName, workload.ChainCode(cfg.ChainLen, code)); err != nil {
		se.Close()
		return nil, err
	}

	se.partStores = make([]*store.MemStore, cfg.Partitions)
	for p := range se.partStores {
		se.partStores[p] = store.NewMemStore()
	}
	for i := 0; i < cfg.Coordinators; i++ {
		node, err := se.newNode(fmt.Sprintf("coord-%d", i))
		if err != nil {
			se.Close()
			return nil, err
		}
		se.nodes = append(se.nodes, node)
	}
	for _, node := range se.nodes {
		node.mgr.Start()
	}

	nc := orb.NewNamingClient(orb.Dial(srv.Addr(), orb.ClientConfig{}))
	se.client = execsvc.NewShardedClient(nc, execsvc.ShardedConfig{
		Partitions:   cfg.Partitions,
		RouteTimeout: 10*cfg.LeaseTTL + 10*time.Second,
		RetryDelay:   cfg.LeaseRenew / 2,
	})
	if err := se.awaitAllHeld(10 * time.Second); err != nil {
		se.Close()
		return nil, err
	}
	return se, nil
}

// newNode builds and wires one coordinator (manager not yet running).
func (se *ShardEnv) newNode(id string) (*shardNode, error) {
	cfg := se.cfg
	node := &shardNode{id: id, ps: shard.NewPartitionedStore(cfg.Partitions)}
	preg := persist.NewRegistry(node.ps, txn.NewManager(node.ps), nil)
	impls := registry.New()
	impls.BindFallback(registry.Builtin)
	node.eng = engine.New(preg, impls, engine.Config{})

	repoC := repository.NewClient(orb.Dial(se.namingSrv.Addr(), orb.ClientConfig{}))
	node.svc = execsvc.New(node.eng, execsvc.FromRepositoryClient(repoC))

	server, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		node.eng.Close()
		return nil, err
	}
	node.server = server
	server.Register(execsvc.ObjectName, node.svc.Servant())

	compile := func(name string, src []byte) (*core.Schema, error) {
		return sema.CompileSource(name, src)
	}
	inPartition := func(p int) func(string) bool {
		return func(inst string) bool { return shard.PartitionOf(inst, cfg.Partitions) == p }
	}
	mgr, err := shard.NewManager(shard.ManagerConfig{
		ID:         id,
		Addr:       server.Addr(),
		Partitions: cfg.Partitions,
		TTL:        cfg.LeaseTTL,
		Renew:      cfg.LeaseRenew,
		Leases:     shard.LocalLeases{N: se.naming},
		Peers:      func() ([]string, error) { return se.naming.ResolveAll(shard.CoordTier) },
		OnAcquire: func(p int) error {
			st := se.partStores[p]
			// Scoped roll-forward of in-doubt transactions the previous
			// owner left behind, before the engine can see the partition.
			if _, err := persist.NewRegistry(st, txn.NewManager(st), nil).Recover(); err != nil {
				return err
			}
			node.ps.Mount(p, st)
			_, err := node.eng.RecoverMatching(compile, inPartition(p))
			return err
		},
		OnLose: func(p int) {
			node.eng.StopMatching(inPartition(p))
			node.ps.Unmount(p)
		},
	})
	if err != nil {
		node.eng.Close()
		server.Close()
		return nil, err
	}
	node.mgr = mgr
	// Same write fence as the real daemon: partition writes re-check the
	// lease window at apply time, not just at tick granularity.
	node.ps.SetFence(mgr.Holds)
	node.svc.SetOwnership(func(instance string) (bool, string) {
		p := shard.PartitionOf(instance, cfg.Partitions)
		if mgr.Holds(p) {
			return true, ""
		}
		_, addr, held := se.naming.LeaseHolder(shard.LeaseName(p))
		if !held {
			return false, ""
		}
		return false, addr
	})

	nc := orb.NewNamingClient(orb.Dial(se.namingSrv.Addr(), orb.ClientConfig{}))
	stopHB, err := nc.StartHeartbeat(shard.CoordTier, server.Addr(), cfg.LeaseTTL, cfg.LeaseRenew)
	if err != nil {
		node.eng.Close()
		server.Close()
		return nil, err
	}
	node.stopHB = stopHB
	return node, nil
}

// Client exposes the routing client driving the tier.
func (se *ShardEnv) Client() *execsvc.ShardedClient { return se.client }

// liveHolders reports whether every partition's lease is held by a
// coordinator that has not been killed.
func (se *ShardEnv) liveHolders() bool {
	deadIDs := make(map[string]bool)
	for _, n := range se.nodes {
		if n.dead {
			deadIDs[n.id] = true
		}
	}
	for p := 0; p < se.cfg.Partitions; p++ {
		holder, _, held := se.naming.LeaseHolder(shard.LeaseName(p))
		if !held || deadIDs[holder] {
			return false
		}
	}
	return true
}

// awaitAllHeld waits until every partition's lease is held by a live
// coordinator (initial split, or re-split after a kill).
func (se *ShardEnv) awaitAllHeld(timeout time.Duration) error {
	deadline := wall.Now().Add(timeout)
	for !se.liveHolders() {
		if !wall.Now().Before(deadline) {
			return errors.New("shardenv: partitions not fully leased within timeout")
		}
		<-wall.Wake(wall.Now().Add(5 * time.Millisecond))
	}
	return nil
}

// KillCoordinator crashes coordinator i: its server drops every
// connection, its engine halts, its partition mounts are torn out, and
// only then does its lease manager abandon every held partition without
// releasing (the leases lapse at TTL, as after SIGKILL). The order
// matters — a real SIGKILL stops all processing and all store writes at
// the same instant, so no request already past the ownership guard may
// still apply (and ack) after a survivor has re-materialized the
// instance from the shared store. Engine close joins the instances it
// knows about, but a Start racing with the close can slip an instance
// past that snapshot and keep running; unmounting every partition is
// the write fence that makes such stragglers fail (ErrNotMounted)
// instead of mutating state the survivor already recovered — and since
// every apply path persists before acking, a fenced straggler can
// never ack success. The shared partition stores retain the instances'
// persisted state for the survivor to re-materialize.
func (se *ShardEnv) KillCoordinator(i int) {
	node := se.nodes[i]
	if node.dead {
		return
	}
	node.dead = true
	node.server.Close()
	node.eng.Close()
	for p := 0; p < se.cfg.Partitions; p++ {
		node.ps.Unmount(p)
	}
	node.mgr.Abandon()
	node.stopHB()
}

// AwaitFailover blocks until every partition is again held by a live
// coordinator — at which point the dead coordinator's instances have
// been re-materialized (recovery completes before a lease is won) — and
// returns how long that took.
func (se *ShardEnv) AwaitFailover(timeout time.Duration) (time.Duration, error) {
	begin := wall.Now()
	if err := se.awaitAllHeld(timeout); err != nil {
		return 0, err
	}
	return wall.Now().Sub(begin), nil
}

// Owners returns, per coordinator, how many partitions it holds.
func (se *ShardEnv) Owners() map[string]int {
	out := make(map[string]int)
	for p := 0; p < se.cfg.Partitions; p++ {
		if holder, _, held := se.naming.LeaseHolder(shard.LeaseName(p)); held {
			out[holder]++
		}
	}
	return out
}

// Run drives the closed loop through the routing client: workers
// concurrent instances, total overall, each worker running complete
// instances back to back. midpoint, when non-nil, runs exactly once as
// soon as half the instances have completed — the hook the
// kill-a-coordinator scenarios use. Every instance must complete; a
// failover mid-run shows up as latency, not as errors.
func (se *ShardEnv) Run(workers, total int, midpoint func()) (LoadReport, error) {
	waitFor := 10*se.cfg.LeaseTTL + time.Minute
	runOne := func() error {
		name := fmt.Sprintf("ld-%d", se.seq.Add(1))
		return RunOneSharded(se.client, name, shardSchemaName, waitFor)
	}
	completed, elapsed, err := RunClosedLoopFn(workers, total, midpoint, runOne)
	if err != nil {
		return LoadReport{}, err
	}
	return LoadReport{
		Instances:       completed,
		Elapsed:         elapsed,
		InstancesPerSec: float64(completed) / elapsed.Seconds(),
	}, nil
}

// RunOneSharded runs one complete instance of schemaName through a
// routing client: instantiate, start, wait, assert completion. Shared
// by ShardEnv and cmd/wfload's external sharded mode (the e2e gauntlet
// driver).
func RunOneSharded(sc *execsvc.ShardedClient, name, schemaName string, waitFor time.Duration) error {
	if err := sc.Instantiate(name, schemaName, ""); err != nil {
		return fmt.Errorf("instantiate %s: %w", name, err)
	}
	if err := sc.Start(name, "main", workload.Seed()); err != nil {
		return fmt.Errorf("start %s: %w", name, err)
	}
	status, res, err := sc.WaitSettled(name, waitFor)
	if err != nil {
		return fmt.Errorf("wait %s: %w", name, err)
	}
	if status != engine.StatusCompleted || res.Output != "done" {
		return fmt.Errorf("instance %s: status %v outcome %q", name, status, res.Output)
	}
	return nil
}

// Instances returns the tier-wide live instance list, sorted.
func (se *ShardEnv) Instances() ([]string, error) {
	ids, err := se.client.Instances()
	if err != nil {
		return nil, err
	}
	sort.Strings(ids)
	return ids, nil
}

// Close tears the tier down: managers release their leases, engines and
// servers stop.
func (se *ShardEnv) Close() {
	if se.client != nil {
		se.client.Close()
	}
	for _, node := range se.nodes {
		if node.dead {
			continue
		}
		node.mgr.Close()
		node.stopHB()
		node.eng.Close()
		node.server.Close()
	}
	if se.namingSrv != nil {
		se.namingSrv.Close()
	}
}
