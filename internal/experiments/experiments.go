// Package experiments contains the runnable scenarios that regenerate
// every figure of the paper's evaluation (Figs. 1-9) plus the
// system-level experiments implied by Sections 2-3 (crash recovery,
// dynamic reconfiguration, baseline comparison, lossy networks). The
// root-level benchmarks (bench_test.go) and the cmd/wfbench reporting
// harness both drive these functions, so the numbers in EXPERIMENTS.md
// and `go test -bench` come from the same code.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/scripts"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Env is a self-contained execution environment over a memory store.
type Env struct {
	St    store.Store
	Preg  *persist.Registry
	Impls *registry.Registry
	Eng   *engine.Engine

	seq atomic.Int64
}

// NewEnv builds an environment with the given engine configuration over
// st (nil selects a fresh MemStore).
func NewEnv(st store.Store, cfg engine.Config) *Env {
	if st == nil {
		st = store.NewMemStore()
	}
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	impls := registry.New()
	return &Env{
		St:    st,
		Preg:  preg,
		Impls: impls,
		Eng:   engine.New(preg, impls, cfg),
	}
}

// Close stops the engine.
func (e *Env) Close() { e.Eng.Close() }

// nextID issues a unique instance id.
func (e *Env) nextID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, e.seq.Add(1))
}

// Run instantiates the schema, starts it with the inputs and waits for a
// terminal result. Each call is one complete workflow execution — the
// unit all throughput benchmarks measure.
func (e *Env) Run(schema *coreSchema, set string, inputs registry.Objects) (engine.Result, *engine.Instance, error) {
	inst, err := e.Eng.Instantiate(e.nextID(schema.Name), schema, "")
	if err != nil {
		return engine.Result{}, nil, err
	}
	if err := inst.Start(set, inputs); err != nil {
		return engine.Result{}, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		return engine.Result{}, inst, fmt.Errorf("instance %s: %w", inst.ID(), err)
	}
	inst.Stop()
	return res, inst, nil
}

// coreSchema aliases the compiled schema type to keep signatures short.
type coreSchema = schemaT

// Compile compiles source once for reuse across iterations.
func Compile(name, src string) *coreSchema {
	return sema.MustCompileSource(name, []byte(src))
}

// --- Fig. 1: dependency diamond -------------------------------------

// Fig1 runs one generalised diamond of the given width and returns the
// number of task starts. width 2 is the paper's figure with an explicit
// join; the sweep shows scheduling cost vs parallel breadth.
type Fig1 struct {
	env    *Env
	schema *coreSchema
}

// NewFig1 prepares the diamond scenario.
func NewFig1(width int) *Fig1 {
	env := NewEnv(nil, engine.Config{})
	workload.Bind(env.Impls)
	return &Fig1{env: env, schema: Compile(fmt.Sprintf("diamond%d", width), workload.Diamond(width))}
}

// Run executes one diamond instance.
func (f *Fig1) Run() error {
	res, _, err := f.env.Run(f.schema, "main", workload.Seed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (f *Fig1) Close() { f.env.Close() }

// --- Fig. 2: input sets and alternatives -----------------------------

const fig2Script = `
class A;

taskclass Feeder
{
    inputs { input main { a of class A } };
    outputs { outcome done { x of class A; y of class A } }
};

taskclass Chooser
{
    inputs
    {
        input first { p of class A };
        input second { q of class A }
    };
    outputs { outcome done { } }
};

taskclass App
{
    inputs { input main { a of class A } };
    outputs { outcome done { } }
};

compoundtask app of taskclass App
{
    task feeder of taskclass Feeder
    {
        implementation { "code" is "feeder" };
        inputs { input main { inputobject a from { a of task app if input main } } }
    };
    task chooser of taskclass Chooser
    {
        implementation { "code" is "chooser" };
        inputs
        {
            input first
            {
                inputobject p from { x of task feeder if output done; y of task feeder if output done }
            };
            input second
            {
                inputobject q from { y of task feeder if output done }
            }
        }
    };
    outputs { outcome done { notification from { task chooser if output done } } }
};
`

// Fig2 races two satisfiable input sets and checks the deterministic
// choice on every run.
type Fig2 struct {
	env    *Env
	schema *coreSchema
	chosen atomic.Value // string
}

// NewFig2 prepares the input-set scenario.
func NewFig2() *Fig2 {
	f := &Fig2{env: NewEnv(nil, engine.Config{})}
	f.schema = Compile("fig2", fig2Script)
	f.env.Impls.Bind("feeder", registry.Fixed("done", registry.Objects{
		"x": {Class: "A", Data: "fromX"},
		"y": {Class: "A", Data: "fromY"},
	}))
	f.env.Impls.Bind("chooser", func(ctx registry.Context) (registry.Result, error) {
		f.chosen.Store(ctx.InputSet() + "/" + fmt.Sprint(ctx.Inputs()["p"].Data))
		return registry.Result{Output: "done"}, nil
	})
	return f
}

// Run executes one instance and verifies determinism.
func (f *Fig2) Run() error {
	if _, _, err := f.env.Run(f.schema, "main", registry.Objects{"a": {Class: "A", Data: "s"}}); err != nil {
		return err
	}
	if got := f.chosen.Load().(string); got != "first/fromX" {
		return fmt.Errorf("non-deterministic selection: %s", got)
	}
	return nil
}

// Close releases the environment.
func (f *Fig2) Close() { f.env.Close() }

// --- Fig. 3: task state transitions ----------------------------------

const fig3Script = `
class D;

taskclass Cycler
{
    inputs { input main { seed of class D } };
    outputs
    {
        outcome finished { out of class D };
        repeat outcome again { counter of class D };
        mark progress { snapshot of class D }
    }
};

taskclass App
{
    inputs { input main { seed of class D } };
    outputs { outcome finished { out of class D } }
};

compoundtask app of taskclass App
{
    task cycler of taskclass Cycler
    {
        implementation { "code" is "cycler" };
        inputs
        {
            input main
            {
                inputobject seed from
                {
                    counter of task cycler if output again;
                    seed of task app if input main
                }
            }
        }
    };
    outputs { outcome finished { outputobject out from { out of task cycler if output finished } } }
};
`

// Fig3 drives one task through wait, execute, marks, repeats, a retried
// system failure and the final outcome — the full Fig. 3 transition set.
type Fig3 struct {
	env     *Env
	schema  *coreSchema
	repeats int
}

// NewFig3 prepares the transition scenario with the given number of
// repeat iterations per run.
func NewFig3(repeats int) *Fig3 {
	f := &Fig3{env: NewEnv(nil, engine.Config{MaxRetries: 1}), repeats: repeats}
	f.schema = Compile("fig3", fig3Script)
	f.env.Impls.Bind("cycler", func(ctx registry.Context) (registry.Result, error) {
		n := ctx.Inputs()["seed"].Data.(int)
		if n == 1 && ctx.Attempt() == 0 {
			return registry.Result{}, errors.New("transient")
		}
		if err := ctx.Mark("progress", registry.Objects{"snapshot": {Class: "D", Data: n}}); err != nil {
			return registry.Result{}, err
		}
		if n < repeats {
			return registry.Result{Output: "again", Objects: registry.Objects{"counter": {Class: "D", Data: n + 1}}}, nil
		}
		return registry.Result{Output: "finished", Objects: registry.Objects{"out": {Class: "D", Data: n}}}, nil
	})
	return f
}

// Run executes one transition cycle.
func (f *Fig3) Run() error {
	res, _, err := f.env.Run(f.schema, "main", registry.Objects{"seed": {Class: "D", Data: 0}})
	if err != nil {
		return err
	}
	if res.Output != "finished" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (f *Fig3) Close() { f.env.Close() }

// --- Fig. 5: nested compound tasks -----------------------------------

// Fig5 runs nested compounds of the given depth (each level two stages).
type Fig5 struct {
	env    *Env
	schema *coreSchema
}

// NewFig5 prepares the nesting scenario.
func NewFig5(depth int) *Fig5 {
	env := NewEnv(nil, engine.Config{})
	workload.Bind(env.Impls)
	return &Fig5{env: env, schema: Compile(fmt.Sprintf("nested%d", depth), workload.Nested(depth, 2))}
}

// Run executes one nested instance.
func (f *Fig5) Run() error {
	res, _, err := f.env.Run(f.schema, "main", workload.Seed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (f *Fig5) Close() { f.env.Close() }

// --- Fig. 6: service impact application ------------------------------

// Fig6 runs the Section 5.1 application end to end (resolved path).
type Fig6 struct {
	env    *Env
	schema *coreSchema
}

// NewFig6 prepares the network-management scenario.
func NewFig6() *Fig6 {
	env := NewEnv(nil, engine.Config{})
	env.Impls.Bind("refAlarmCorrelator", registry.Fixed("foundFault", registry.Objects{"faultReport": {Class: "FaultReport", Data: "link-loss"}}))
	env.Impls.Bind("refServiceImpactAnalysis", registry.Fixed("foundImpacts", registry.Objects{"serviceImpactReports": {Class: "ServiceImpactReports", Data: "impacts"}}))
	env.Impls.Bind("refServiceImpactResolution", registry.Fixed("foundResolution", registry.Objects{"resolutionReport": {Class: "ResolutionReport", Data: "reroute"}}))
	return &Fig6{env: env, schema: Compile("service_impact", scripts.ServiceImpact)}
}

// Run executes one alarm-to-resolution pass.
func (f *Fig6) Run() error {
	res, _, err := f.env.Run(f.schema, "main", registry.Objects{"alarmsSource": {Class: "AlarmsSource", Data: "bus"}})
	if err != nil {
		return err
	}
	if res.Output != "resolved" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (f *Fig6) Close() { f.env.Close() }

// --- Fig. 7: process order application -------------------------------

// Fig7 runs the Section 5.2 application (orderCompleted path, including
// the atomic dispatch task).
type Fig7 struct {
	env    *Env
	schema *coreSchema
}

// NewFig7 prepares the order-processing scenario.
func NewFig7() *Fig7 {
	env := NewEnv(nil, engine.Config{})
	env.Impls.Bind("refPaymentAuthorisation", registry.Fixed("authorised", registry.Objects{"paymentInfo": {Class: "PaymentInfo", Data: "p"}}))
	env.Impls.Bind("refCheckStock", registry.Fixed("stockAvailable", registry.Objects{"stockInfo": {Class: "StockInfo", Data: "s"}}))
	env.Impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": {Class: "DispatchNote", Data: "n"}}))
	env.Impls.Bind("refPaymentCapture", registry.Fixed("done", nil))
	return &Fig7{env: env, schema: Compile("process_order", scripts.ProcessOrder)}
}

// Run executes one order.
func (f *Fig7) Run() error {
	res, _, err := f.env.Run(f.schema, "main", registry.Objects{"order": {Class: "Order", Data: "o"}})
	if err != nil {
		return err
	}
	if res.Output != "orderCompleted" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (f *Fig7) Close() { f.env.Close() }

// --- Figs. 8 & 9: business trip --------------------------------------

// Fig89 runs the Section 5.3 application with a configurable number of
// hotel rejections (each triggering the compensation + repeat loop of
// Fig. 9) and checks the early mark release of Fig. 8.
type Fig89 struct {
	env          *Env
	schema       *coreSchema
	hotelRejects int
	rejects      atomic.Int64
}

// NewFig89 prepares the business-trip scenario.
func NewFig89(hotelRejects int) *Fig89 {
	f := &Fig89{env: NewEnv(nil, engine.Config{}), hotelRejects: hotelRejects}
	f.schema = Compile("business_trip", scripts.BusinessTrip)
	impls := f.env.Impls
	impls.Bind("refDataAcquisition", registry.Fixed("acquired", registry.Objects{"tripSpec": {Class: "TripSpec", Data: "AMS"}}))
	impls.Bind("refQueryAirline1", registry.Fixed("noOffer", nil))
	impls.Bind("refQueryAirline2", registry.Fixed("offer", registry.Objects{"flightOffer": {Class: "FlightOffer", Data: "BA-447"}}))
	impls.Bind("refQueryAirline3", registry.Fixed("offer", registry.Objects{"flightOffer": {Class: "FlightOffer", Data: "AF-1234"}}))
	impls.Bind("refFlightReservation", registry.Fixed("reserved", registry.Objects{
		"plane": {Class: "Plane", Data: "12A"},
		"cost":  {Class: "Cost", Data: 423},
	}))
	impls.Bind("refHotelReservation", func(registry.Context) (registry.Result, error) {
		if f.rejects.Add(-1) >= 0 {
			return registry.Result{Output: "failed"}, nil
		}
		return registry.Result{Output: "booked", Objects: registry.Objects{"hotel": {Class: "Hotel", Data: "K"}}}, nil
	})
	impls.Bind("refFlightCancellation", registry.Fixed("cancelled", nil))
	impls.Bind("refPrintTickets", registry.Fixed("printed", registry.Objects{"tickets": {Class: "Tickets", Data: "TK"}}))
	return f
}

// Run executes one trip and validates the mark + repeat behaviour.
func (f *Fig89) Run() error {
	f.rejects.Store(int64(f.hotelRejects))
	res, inst, err := f.env.Run(f.schema, "main", registry.Objects{"user": {Class: "User", Data: "fred"}})
	if err != nil {
		return err
	}
	if res.Output != "tripBooked" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	marks, repeats := 0, 0
	for _, e := range inst.Events() {
		switch {
		case e.Kind == engine.EventTaskMarked && e.Output == "toPay":
			marks++
		case e.Kind == engine.EventTaskRepeated && e.Output == "retry":
			repeats++
		}
	}
	if marks != 1 {
		return fmt.Errorf("toPay marks = %d, want 1", marks)
	}
	if repeats != f.hotelRejects {
		return fmt.Errorf("repeats = %d, want %d", repeats, f.hotelRejects)
	}
	return nil
}

// Close releases the environment.
func (f *Fig89) Close() { f.env.Close() }
