package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/workload"
)

// Every scenario that bench_test.go and cmd/wfbench drive must pass its
// own behavioural checks; this test runs each once so a broken scenario
// fails the suite, not just the benchmarks.

func TestFigureScenarios(t *testing.T) {
	t.Run("fig1", func(t *testing.T) {
		f := experiments.NewFig1(4)
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fig2", func(t *testing.T) {
		f := experiments.NewFig2()
		defer f.Close()
		for i := 0; i < 5; i++ {
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Run("fig3", func(t *testing.T) {
		f := experiments.NewFig3(3)
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fig5", func(t *testing.T) {
		f := experiments.NewFig5(3)
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fig6", func(t *testing.T) {
		f := experiments.NewFig6()
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fig7", func(t *testing.T) {
		f := experiments.NewFig7()
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("fig89", func(t *testing.T) {
		f := experiments.NewFig89(2)
		defer f.Close()
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFig4FullStackScenario(t *testing.T) {
	f, err := experiments.NewFig4()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestX1Scenario(t *testing.T) {
	res, err := experiments.X1CrashRecovery(4, experiments.X1Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReExecuted {
		t.Fatal("completed task re-executed after recovery")
	}
	if res.RecoveryTime <= 0 {
		t.Fatal("recovery time not measured")
	}
}

func TestX2Scenario(t *testing.T) {
	x, err := experiments.NewX2()
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for i := 0; i < 3; i++ {
		if err := x.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestX3Scenario(t *testing.T) {
	w := experiments.NewX3("chain8", workload.Chain(8))
	defer w.Close()
	if err := w.RunEngine(); err != nil {
		t.Fatal(err)
	}
	if st := w.RunECA(); st.TasksStarted != 8 {
		t.Fatalf("eca started %d", st.TasksStarted)
	}
	if st := w.RunPetri(); st.TasksStarted != 8 {
		t.Fatalf("petri started %d", st.TasksStarted)
	}
	script, rules, net := w.SpecSizes()
	// The net encodes both places and transitions, so it is always the
	// largest; rule count approaches the script size only when there are
	// no alternative sources to unroll.
	if script <= 0 || rules <= 0 || net <= rules {
		t.Fatalf("spec sizes out of expected order: script=%d rules=%d net=%d", script, rules, net)
	}
}

func TestX5Scenario(t *testing.T) {
	x, err := experiments.NewX5(0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// The client reuses connections, so faults accumulate over several
	// runs (drops after a frame budget, refusals on re-dial).
	for i := 0; i < 5; i++ {
		if err := x.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if x.Faults() == 0 {
		t.Error("no faults injected across 5 runs at p=0.3; scenario is vacuous")
	}
}

func TestAblationConfigurations(t *testing.T) {
	for _, eph := range []bool{true, false} {
		f, err := experiments.AblationEnv(store.NewMemStore(), eph)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Run(); err != nil {
			t.Fatalf("ephemeral=%v: %v", eph, err)
		}
		f.Close()
	}
	fs, err := experiments.NewFileStoreEnv(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := experiments.AblationEnv(fs, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(); err != nil {
		t.Fatalf("filestore: %v", err)
	}
}

func TestTxnThroughputHelper(t *testing.T) {
	reg := experiments.NewPersistRegistry()
	obj := reg.Object("t/counter")
	for i := 0; i < 10; i++ {
		if err := experiments.TxnThroughput(reg, obj); err != nil {
			t.Fatal(err)
		}
	}
	var v int
	if err := obj.Peek(&v); err != nil || v != 10 {
		t.Fatalf("counter = %d, %v; want 10", v, err)
	}
}
