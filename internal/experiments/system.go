package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/baseline/eca"
	"repro/internal/baseline/petri"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/failure"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/repository"
	"repro/internal/script/sema"
	"repro/internal/scripts"
	"repro/internal/store"
	"repro/internal/timers"
	"repro/internal/txn"
	"repro/internal/workload"
)

// schemaT keeps experiment signatures short.
type schemaT = core.Schema

// --- Fig. 4: the full distributed stack -------------------------------

// Fig4 deploys the whole Fig. 4 structure (naming + repository +
// execution services on an orb over loopback TCP) and, per run, executes
// one process-order instance entirely through remote clients.
type Fig4 struct {
	env    *Env
	server *orb.Server
	client *orb.Client
	execC  *execsvc.Client
	seq    int
}

// NewFig4 boots the stack and deploys the script.
func NewFig4() (*Fig4, error) {
	env := NewEnv(nil, engine.Config{})
	env.Impls.Bind("refPaymentAuthorisation", registry.Fixed("authorised", registry.Objects{"paymentInfo": {Class: "PaymentInfo", Data: "p"}}))
	env.Impls.Bind("refCheckStock", registry.Fixed("stockAvailable", registry.Objects{"stockInfo": {Class: "StockInfo", Data: "s"}}))
	env.Impls.Bind("refDispatch", registry.Fixed("dispatchCompleted", registry.Objects{"dispatchNote": {Class: "DispatchNote", Data: "n"}}))
	env.Impls.Bind("refPaymentCapture", registry.Fixed("done", nil))

	repo := repository.New(env.Preg)
	exec := execsvc.New(env.Eng, repo)
	server, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		env.Close()
		return nil, err
	}
	naming := orb.NewNaming()
	server.Register(orb.NamingObject, naming.Servant())
	server.Register(repository.ObjectName, repo.Servant())
	server.Register(execsvc.ObjectName, exec.Servant())
	naming.BindEntry(repository.ObjectName, server.Addr())
	naming.BindEntry(execsvc.ObjectName, server.Addr())

	client := orb.Dial(server.Addr(), orb.ClientConfig{})
	repoC := repository.NewClient(client)
	if _, err := repoC.Put("process-order", scripts.ProcessOrder); err != nil {
		server.Close()
		env.Close()
		return nil, err
	}
	return &Fig4{env: env, server: server, client: client, execC: execsvc.NewClient(client)}, nil
}

// Run executes one remote instantiate/start/wait cycle.
func (f *Fig4) Run() error {
	f.seq++
	id := fmt.Sprintf("fig4-%d", f.seq)
	if err := f.execC.Instantiate(id, "process-order", ""); err != nil {
		return err
	}
	if err := f.execC.Start(id, "main", registry.Objects{"order": {Class: "Order", Data: id}}); err != nil {
		return err
	}
	status, res, err := f.execC.WaitSettled(id, 30*time.Second)
	if err != nil {
		return err
	}
	if status != engine.StatusCompleted || res.Output != "orderCompleted" {
		return fmt.Errorf("status=%v outcome=%q", status, res.Output)
	}
	return f.execC.Stop(id)
}

// Close tears the stack down.
func (f *Fig4) Close() {
	f.client.Close()
	f.server.Close()
	f.env.Close()
}

// --- X1: crash recovery ----------------------------------------------

// X1Result reports one crash/recovery cycle.
type X1Result struct {
	RecoveryTime time.Duration
	ReExecuted   bool
}

// X1Opts parameterises the crash/recovery experiment. The zero value
// reproduces the historical behaviour (wall clock, 30s settle budget).
type X1Opts struct {
	// Settle bounds both waits: the pre-crash wait for the join task to
	// start, and the post-recovery wait for the instance to settle.
	// Zero means 30s.
	Settle time.Duration
	// Clock paces the waits and timestamps the recovery measurement; it
	// is also handed to both engine phases, so the whole cycle can run
	// on a timers.FakeClock. Nil means timers.WallClock.
	Clock timers.Clock
}

func (o X1Opts) withDefaults() X1Opts {
	if o.Settle <= 0 {
		o.Settle = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = timers.WallClock{}
	}
	return o
}

// X1CrashRecovery runs a diamond workflow to the join task, "crashes"
// (stops the engine mid-execution), rebuilds everything from the store,
// and measures the time from recovery start to workflow completion. The
// store survives; the processes do not — the paper's processor-crash
// model.
func X1CrashRecovery(width int, opts X1Opts) (X1Result, error) {
	opts = opts.withDefaults()
	clk := opts.Clock
	st := store.NewMemStore()
	src := workload.Diamond(width)

	// Phase 1: run to the blocking join.
	env1 := NewEnv(st, engine.Config{Clock: opts.Clock})
	workload.Bind(env1.Impls)
	// Buffered: the signal must not be lost if the join starts before the
	// main goroutine reaches the receive.
	blocked := make(chan struct{}, 1)
	env1.Impls.Bind("pair", func(ctx registry.Context) (registry.Result, error) {
		select {
		case blocked <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return registry.Result{}, errors.New("cancelled")
	})
	schema := Compile("x1", src)
	inst, err := env1.Eng.Instantiate("x1", schema, "")
	if err != nil {
		return X1Result{}, err
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		return X1Result{}, err
	}
	select {
	case <-blocked:
	case <-clk.Wake(clk.Now().Add(opts.Settle)):
		return X1Result{}, errors.New("join never started")
	}
	inst.Stop()
	env1.Close()

	// Phase 2: recover on a fresh environment over the same store.
	begin := clk.Now()
	env2 := NewEnv(st, engine.Config{Clock: opts.Clock})
	defer env2.Close()
	workload.Bind(env2.Impls)
	if _, err := env2.Preg.Recover(); err != nil {
		return X1Result{}, err
	}
	inst2, err := env2.Eng.Recover("x1", sema.CompileSource)
	if err != nil {
		return X1Result{}, err
	}
	status, res, err := waitSettled(clk, inst2, opts.Settle)
	if err != nil {
		return X1Result{}, err
	}
	elapsed := clk.Now().Sub(begin)
	if status != engine.StatusCompleted || res.Output != "done" {
		return X1Result{}, fmt.Errorf("recovered status=%v outcome=%q", status, res.Output)
	}
	// Completed pre-crash tasks must not re-run.
	reExecuted := false
	for _, e := range inst2.Events() {
		if e.Kind == engine.EventTaskStarted && e.Task == "app/head" {
			reExecuted = true
		}
	}
	return X1Result{RecoveryTime: elapsed, ReExecuted: reExecuted}, nil
}

func waitSettled(clk timers.Clock, inst *engine.Instance, timeout time.Duration) (engine.InstanceStatus, engine.Result, error) {
	deadline := clk.Now().Add(timeout)
	for {
		switch inst.Status() {
		case engine.StatusCompleted, engine.StatusAborted, engine.StatusFailed:
			res, _ := inst.Result()
			return inst.Status(), res, nil
		case engine.StatusStalled:
			return inst.Status(), engine.Result{}, errors.New("stalled")
		}
		if clk.Now().After(deadline) {
			return inst.Status(), engine.Result{}, errors.New("timeout")
		}
		<-clk.Wake(clk.Now().Add(time.Millisecond))
	}
}

// --- X2: dynamic reconfiguration --------------------------------------

// X2Reconfigure measures applying the paper's reconfiguration example
// (add a task depending on two existing tasks, then remove it) to a
// running instance.
type X2Reconfigure struct {
	env  *Env
	inst *engine.Instance
	gate chan struct{}
	seq  int
}

// NewX2 starts a diamond instance held open by a gated stage.
func NewX2() (*X2Reconfigure, error) {
	env := NewEnv(nil, engine.Config{})
	workload.Bind(env.Impls)
	gate := make(chan struct{})
	env.Impls.Bind("pair", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["left"]}}, nil
	})
	schema := Compile("x2", workload.Diamond(2))
	inst, err := env.Eng.Instantiate("x2", schema, "")
	if err != nil {
		env.Close()
		return nil, err
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		env.Close()
		return nil, err
	}
	return &X2Reconfigure{env: env, inst: inst, gate: gate}, nil
}

// Run applies one add+remove reconfiguration batch pair.
func (x *X2Reconfigure) Run() error {
	x.seq++
	name := fmt.Sprintf("extra%d", x.seq)
	frag := fmt.Sprintf(`
task %s of taskclass Stage
{
    implementation { "code" is "stage" };
    inputs
    {
        input main
        {
            inputobject in from { out of task head if output done }
        }
    }
};`, name)
	if err := x.inst.Reconfigure(&engine.AddTaskOp{ScopePath: "app", Fragment: frag}); err != nil {
		return err
	}
	return x.inst.Reconfigure(&engine.RemoveTaskOp{ScopePath: "app", Name: name})
}

// Close releases the scenario.
func (x *X2Reconfigure) Close() {
	close(x.gate)
	x.env.Close()
}

// --- X3: baseline comparison ------------------------------------------

// X3Workload is one compiled workload shared by the three schedulers.
type X3Workload struct {
	Name   string
	Schema *schemaT
	Root   *core.Task

	rules    []eca.Rule
	ecaTasks map[string]*core.Task
	net      *petri.Net
	env      *Env
}

// NewX3 compiles the workload for all three schedulers.
func NewX3(name, src string) *X3Workload {
	schema := Compile(name, src)
	root, err := schema.Root("")
	if err != nil {
		panic(err)
	}
	rules, tasks := eca.Compile(schema, root)
	env := NewEnv(nil, engine.Config{Ephemeral: true})
	workload.Bind(env.Impls)
	return &X3Workload{
		Name: name, Schema: schema, Root: root,
		rules: rules, ecaTasks: tasks,
		net: petri.Compile(schema, root),
		env: env,
	}
}

// RunECA executes the workload on the rule engine.
func (w *X3Workload) RunECA() eca.Stats {
	return eca.NewEngine(w.rules, w.ecaTasks, workload.Oracle()).Run(eca.SeedFacts(w.Root))
}

// RunPetri executes the workload on the net engine.
func (w *X3Workload) RunPetri() petri.Stats {
	return w.net.Run(petri.Seed(w.Root), workload.Oracle())
}

// RunEngine executes the workload on the real engine (ephemeral mode, so
// the comparison isolates scheduling from persistence).
func (w *X3Workload) RunEngine() error {
	res, _, err := w.env.Run(w.Schema, "main", workload.Seed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// NewX3Spec compiles a script for specification-size comparison only
// (SpecSizes); the runner methods are not meaningful for scripts whose
// implementations are not the generated workload set.
func NewX3Spec(name, src string) *X3Workload { return NewX3(name, src) }

// SpecSizes returns the specification-size comparison: sources in the
// structural script vs rules vs net elements.
func (w *X3Workload) SpecSizes() (script, rules, netElems int) {
	st := w.Schema.Stats()
	return st.Sources + st.InputSets + st.Outputs, len(w.rules), len(w.net.Places) + len(w.net.Transitions)
}

// Close releases the engine environment.
func (w *X3Workload) Close() { w.env.Close() }

// --- X5: lossy network -------------------------------------------------

// X5Lossy runs one full remote workflow over a transport that refuses
// and drops connections with the given probability, returning the retry
// count that was needed.
type X5Lossy struct {
	fig4  *Fig4
	lossy *orb.Client
	execC *execsvc.Client
	stats *failure.Stats
	seq   int
}

// NewX5 boots a stack and connects a faulty client to it.
func NewX5(refuseProb float64, seed int64) (*X5Lossy, error) {
	f, err := NewFig4()
	if err != nil {
		return nil, err
	}
	dialer, stats := failure.Lossy(failure.NetConfig{RefuseProb: refuseProb, DropAfter: 16, Seed: seed})
	lossy := orb.Dial(f.server.Addr(), orb.ClientConfig{
		Retries:    200,
		RetryDelay: 200 * time.Microsecond,
		Dialer:     dialer,
	})
	return &X5Lossy{fig4: f, lossy: lossy, execC: execsvc.NewClient(lossy), stats: stats}, nil
}

// Run executes one remote workflow over the faulty link.
func (x *X5Lossy) Run() error {
	x.seq++
	id := fmt.Sprintf("x5-%d", x.seq)
	if err := x.execC.Instantiate(id, "process-order", ""); err != nil {
		return err
	}
	if err := x.execC.Start(id, "main", registry.Objects{"order": {Class: "Order", Data: id}}); err != nil {
		return err
	}
	status, res, err := x.execC.WaitSettled(id, 30*time.Second)
	if err != nil {
		return err
	}
	if status != engine.StatusCompleted || res.Output != "orderCompleted" {
		return fmt.Errorf("status=%v outcome=%q", status, res.Output)
	}
	return x.execC.Stop(id)
}

// Retries reports client-level transport retries so far; Faults the
// injected refusals and drops.
func (x *X5Lossy) Retries() int { return x.lossy.Retries() }

// Faults reports injected faults so far.
func (x *X5Lossy) Faults() int { return x.stats.Refused() + x.stats.Dropped() }

// Close tears everything down.
func (x *X5Lossy) Close() {
	x.lossy.Close()
	x.fig4.Close()
}

// --- Ablations ----------------------------------------------------------

// Sched runs one synthetic workload through the engine under either the
// dependency-indexed dirty-set scheduler or the legacy full-rescan
// baseline (engine.Config.FullRescan). Persistence is ephemeral so the
// measurement isolates scheduling cost; the Scheduler benchmarks and the
// wfbench S1 rows drive it on deep chains and wide fan-ins.
type Sched struct {
	env    *Env
	schema *coreSchema
}

// NewSched prepares the scheduler scenario for the named workload source.
func NewSched(name, src string, fullRescan bool) *Sched {
	env := NewEnv(nil, engine.Config{Ephemeral: true, FullRescan: fullRescan})
	workload.Bind(env.Impls)
	return &Sched{env: env, schema: Compile(name, src)}
}

// Run executes one workflow instance end to end.
func (s *Sched) Run() error {
	res, _, err := s.env.Run(s.schema, "main", workload.Seed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (s *Sched) Close() { s.env.Close() }

// PersistChain runs an n-task chain with durable (fsync-enabled)
// persistence over a chosen store backend and persistence strategy: the
// S2 ablation isolating the WAL group commit and the batched
// persistRun against the shadow-file-per-transition baseline. Each Run
// is one workflow instance; the store accumulates instances the way a
// production engine would (WAL compaction reclaims them).
type PersistChain struct {
	env    *Env
	schema *coreSchema
	closer func()
}

// NewPersistChain builds the scenario. backend selects "file", "wal" or
// "mem" (store.Open); perTransition selects the legacy
// one-transaction-per-transition persistence. dir hosts file-backed
// stores; sync is left ON — this scenario measures durability cost,
// unlike NewFileStoreEnv.
func NewPersistChain(backend string, perTransition bool, n int, dir string) (*PersistChain, error) {
	st, closer, err := store.Open(backend, dir, true)
	if err != nil {
		return nil, err
	}
	env := NewEnv(st, engine.Config{PersistPerTransition: perTransition})
	workload.Bind(env.Impls)
	return &PersistChain{
		env:    env,
		schema: Compile(fmt.Sprintf("persistchain%d", n), workload.Chain(n)),
		closer: closer,
	}, nil
}

// Run executes one durable workflow instance end to end.
func (p *PersistChain) Run() error {
	res, _, err := p.env.Run(p.schema, "main", workload.Seed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment and the store.
func (p *PersistChain) Close() {
	p.env.Close()
	if p.closer != nil {
		p.closer()
	}
}

// AblationEnv builds the diamond scenario over a chosen store and
// persistence mode, for the design-decision benchmarks.
func AblationEnv(st store.Store, ephemeral bool) (*Fig1, error) {
	env := NewEnv(st, engine.Config{Ephemeral: ephemeral})
	workload.Bind(env.Impls)
	return &Fig1{env: env, schema: Compile("ablation", workload.Diamond(4))}, nil
}

// NewFileStoreEnv opens a file store in dir with fsync disabled (the
// benchmarks measure write-path cost, not disk flush latency).
func NewFileStoreEnv(dir string) (store.Store, error) {
	fs, err := store.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	fs.SetSync(false)
	return fs, nil
}

// TxnThroughput measures raw transactional object updates (the substrate
// the engine rides on): one Begin/GetForUpdate/Set/Commit cycle.
func TxnThroughput(reg *persist.Registry, obj *persist.Object) error {
	tx := reg.Manager().Begin()
	var v int
	if err := obj.GetForUpdate(tx, &v); err != nil && !errors.Is(err, persist.ErrNoState) {
		_ = tx.Abort()
		return err
	}
	if err := obj.Set(tx, v+1); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// NewPersistRegistry builds a registry over a fresh memory store.
func NewPersistRegistry() *persist.Registry {
	st := store.NewMemStore()
	return persist.NewRegistry(st, txn.NewManager(st), nil)
}
