package experiments

import (
	"testing"
	"time"
)

func TestShardEnvClosedLoop(t *testing.T) {
	se, err := NewShardEnv(ShardConfig{
		Coordinators: 2,
		ChainLen:     2,
		StageDelay:   time.Millisecond,
		LeaseTTL:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	owners := se.Owners()
	if len(owners) != 2 {
		t.Fatalf("initial split: %v", owners)
	}
	rep, err := se.Run(4, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 16 {
		t.Fatalf("completed %d of 16", rep.Instances)
	}
}

func TestShardEnvKillCoordinatorMidRun(t *testing.T) {
	se, err := NewShardEnv(ShardConfig{
		Coordinators: 2,
		ChainLen:     2,
		StageDelay:   time.Millisecond,
		LeaseTTL:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	var failover time.Duration
	rep, err := se.Run(4, 24, func() {
		se.KillCoordinator(0)
		d, err := se.AwaitFailover(30 * time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		failover = d
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hard assertion of the gauntlet: every instance completes even
	// though a coordinator died mid-run.
	if rep.Instances != 24 {
		t.Fatalf("completed %d of 24", rep.Instances)
	}
	if failover <= 0 {
		t.Fatalf("failover latency not measured")
	}
	if owners := se.Owners(); len(owners) != 1 || owners["coord-1"] != se.cfg.Partitions {
		t.Fatalf("survivor does not own the tier: %v", owners)
	}
}
