package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/timers"
	"repro/internal/txn"
	"repro/internal/workload"
)

// --- S4: the temporal subsystem ----------------------------------------

// ChurnReport summarises one timing-wheel churn run.
type ChurnReport struct {
	// Armed and Cancelled count the wheel operations; Fired the timers
	// that reached their deadline.
	Armed, Cancelled, Fired int
	// Elapsed is arm-to-last-fire wall time (bounded below by the widest
	// deadline: the run is sleep-dominated by design).
	Elapsed time.Duration
	// P50 and P99 are fire-latency percentiles (fire instant minus
	// deadline; the wheel never fires early, so these are pure lateness).
	P50, P99 time.Duration
}

// TimerChurn arms n wall-clock timers with deadlines spread over
// [1ms, spread], cancels every third one before it can fire, and waits
// for the rest: the 10k-concurrent-timer scenario of the wfbench S4
// rows. It verifies exactly-once firing and reports fire-latency
// percentiles.
func TimerChurn(n int, spread time.Duration) (ChurnReport, error) {
	svc := timers.New(nil, timers.Config{})
	defer svc.Close()

	var (
		mu    sync.Mutex
		lates []time.Duration
		wg    sync.WaitGroup
	)
	fired := make([]int, n)
	begin := wall.Now()
	rep := ChurnReport{Armed: n}
	for i := 0; i < n; i++ {
		i := i
		deadline := begin.Add(time.Millisecond + time.Duration(i)*spread/time.Duration(n))
		wg.Add(1)
		svc.Arm(fmt.Sprintf("churn-%d", i), deadline, func() {
			late := wall.Now().Sub(deadline)
			mu.Lock()
			fired[i]++
			lates = append(lates, late)
			mu.Unlock()
			wg.Done()
		})
	}
	// A timer we try to cancel may legitimately have fired already (the
	// earliest deadlines are ~1ms out, and arming n of them takes real
	// time): the exactly-once expectation for each index is decided by
	// whether the Cancel actually won the race.
	cancelled := make([]bool, n)
	for i := 0; i < n; i += 3 {
		if svc.Cancel(fmt.Sprintf("churn-%d", i)) {
			cancelled[i] = true
			rep.Cancelled++
			wg.Done()
		}
	}
	wg.Wait()
	rep.Elapsed = wall.Now().Sub(begin)
	mu.Lock()
	defer mu.Unlock()
	for i, count := range fired {
		expect := 1
		if cancelled[i] {
			expect = 0
		}
		if count != expect {
			return rep, fmt.Errorf("timer %d fired %d times, want %d", i, count, expect)
		}
	}
	rep.Fired = len(lates)
	sort.Slice(lates, func(i, j int) bool { return lates[i] < lates[j] })
	rep.P50 = percentile(lates, 0.50)
	rep.P99 = percentile(lates, 0.99)
	return rep, nil
}

// TimerChainRun is the engine-level temporal workload: a chain of
// first-class delay tasks, no implementation code at all. Each Run is
// one instance whose wall time is n*delay plus wheel and scheduler
// overhead (sleep-dominated, so the S4 gate row is exempt from CPU
// calibration like S3).
type TimerChainRun struct {
	env    *Env
	schema *coreSchema
}

// NewTimerChain prepares the scenario.
func NewTimerChain(n int, delay time.Duration) *TimerChainRun {
	env := NewEnv(nil, engine.Config{Ephemeral: true})
	return &TimerChainRun{env: env, schema: Compile(fmt.Sprintf("timerchain%d", n), workload.TimerChain(n, delay))}
}

// Run executes one instance end to end.
func (s *TimerChainRun) Run() error {
	res, _, err := s.env.Run(s.schema, "main", workload.TimerSeed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (s *TimerChainRun) Close() { s.env.Close() }

// DeadlineFanOutRun measures deadline churn: n parallel activations,
// each arming a wheel deadline on start and disarming it on completion
// (none expire — the stages finish well inside the bound).
type DeadlineFanOutRun struct {
	env    *Env
	schema *coreSchema
}

// NewDeadlineFanOut prepares the scenario; each stage simulates work ms
// of work, far below the 30s deadline.
func NewDeadlineFanOut(n int, work time.Duration) *DeadlineFanOutRun {
	env := NewEnv(nil, engine.Config{Ephemeral: true})
	env.Impls.Bind("work", func(ctx registry.Context) (registry.Result, error) {
		if work > 0 {
			<-wall.Wake(wall.Now().Add(work))
		}
		return registry.Result{Output: "done", Objects: registry.Objects{"d": ctx.Inputs()["d"]}}, nil
	})
	return &DeadlineFanOutRun{env: env, schema: Compile(fmt.Sprintf("dlfan%d", n), workload.DeadlineFanOut(n, 30*time.Second, "work"))}
}

// Run executes one instance end to end.
func (s *DeadlineFanOutRun) Run() error {
	res, _, err := s.env.Run(s.schema, "main", workload.TimerSeed())
	if err != nil {
		return err
	}
	if res.Output != "done" {
		return fmt.Errorf("outcome %q", res.Output)
	}
	return nil
}

// Close releases the environment.
func (s *DeadlineFanOutRun) Close() { s.env.Close() }

// S4DelayResult reports one crash-recovery delay cycle.
type S4DelayResult struct {
	// Total is start-to-completion wall time across the crash.
	Total time.Duration
	// Drift is how far past the ORIGINAL absolute deadline the timer
	// fired (negative would mean an early fire; a restarted-from-zero
	// delay shows up as a drift of roughly the pre-crash runtime).
	Drift time.Duration
	// Fires counts post-recovery timer fires (must be exactly 1).
	Fires int
}

// S4CrashDelay starts a single first-class delay of the given duration
// over a durable WAL store, crashes the engine crashAfter in (the store
// survives, the controller does not), recovers on a fresh engine, and
// measures when the delay actually fired relative to its original
// absolute deadline. dir hosts the WAL segments.
func S4CrashDelay(delay, crashAfter time.Duration, dir string) (S4DelayResult, error) {
	if crashAfter >= delay {
		return S4DelayResult{}, errors.New("crashAfter must fall inside the delay")
	}
	src := workload.TimerChain(1, delay)

	open := func() (store.Store, func(), *persist.Registry, *engine.Engine, error) {
		st, closer, err := store.Open("wal", dir, false)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		preg := persist.NewRegistry(st, txn.NewManager(st), nil)
		if _, err := preg.Recover(); err != nil {
			closer()
			return nil, nil, nil, nil, err
		}
		eng := engine.New(preg, registry.New(), engine.Config{})
		return st, closer, preg, eng, nil
	}

	// Phase 1: start, then crash mid-delay.
	_, close1, _, eng1, err := open()
	if err != nil {
		return S4DelayResult{}, err
	}
	schema := Compile("s4delay", src)
	inst1, err := eng1.Instantiate("s4delay", schema, "")
	if err != nil {
		close1()
		return S4DelayResult{}, err
	}
	begin := wall.Now()
	if err := inst1.Start("main", workload.TimerSeed()); err != nil {
		close1()
		return S4DelayResult{}, err
	}
	// The armed event carries the absolute deadline the fire is judged
	// against.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	armed, err := inst1.WaitEvent(ctx, func(e engine.Event) bool { return e.Kind == engine.EventTimerArmed })
	cancel()
	if err != nil {
		close1()
		return S4DelayResult{}, fmt.Errorf("delay never armed: %w", err)
	}
	deadline := armed.Deadline
	<-wall.Wake(wall.Now().Add(crashAfter))
	eng1.Close()
	close1()

	// Phase 2: recover and let the delay fire.
	_, close2, _, eng2, err := open()
	if err != nil {
		return S4DelayResult{}, err
	}
	defer close2()
	defer eng2.Close()
	inst2, err := eng2.Recover("s4delay", sema.CompileSource)
	if err != nil {
		return S4DelayResult{}, err
	}
	status, res, err := waitSettled(wall, inst2, delay+30*time.Second)
	if err != nil {
		return S4DelayResult{}, err
	}
	total := wall.Now().Sub(begin)
	if status != engine.StatusCompleted || res.Output != "done" {
		return S4DelayResult{}, fmt.Errorf("recovered status=%v outcome=%q", status, res.Output)
	}
	out := S4DelayResult{Total: total}
	for _, ev := range inst2.Events() {
		if ev.Kind == engine.EventTimerFired {
			out.Fires++
			out.Drift = ev.Time.Sub(deadline)
		}
	}
	if out.Fires != 1 {
		return out, fmt.Errorf("timer fired %d times after recovery, want exactly once", out.Fires)
	}
	if out.Drift < 0 {
		return out, fmt.Errorf("timer fired %v EARLY (before its original deadline)", out.Drift)
	}
	return out, nil
}

// NewS4Dir creates a scratch directory for the crash-recovery scenario.
func NewS4Dir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "wfbench-s4-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { _ = os.RemoveAll(dir) }, nil
}
