package experiments

import (
	"testing"
	"time"
)

func TestTimerChurnScenario(t *testing.T) {
	rep, err := TimerChurn(600, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fired != 600-rep.Cancelled || rep.Cancelled == 0 {
		t.Fatalf("report %+v: want every uncancelled timer fired exactly once", rep)
	}
	if rep.P99 < 0 {
		t.Fatalf("negative fire lateness %v (early fire)", rep.P99)
	}
}

func TestTimerChainScenario(t *testing.T) {
	s := NewTimerChain(4, time.Millisecond)
	defer s.Close()
	begin := time.Now()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < 4*time.Millisecond {
		t.Fatalf("chain of 4x1ms delays finished in %v: delays not honoured", elapsed)
	}
}

func TestDeadlineFanOutScenario(t *testing.T) {
	s := NewDeadlineFanOut(8, 0)
	defer s.Close()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestS4CrashDelayScenario runs the crash-recovery drift scenario at
// test-friendly durations: the delay must fire once, never early, and
// not drift by anything approaching a restart-from-zero.
func TestS4CrashDelayScenario(t *testing.T) {
	dir, cleanup, err := NewS4Dir()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res, err := S4CrashDelay(250*time.Millisecond, 80*time.Millisecond, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A restarted-from-zero delay would drift by ~crashAfter (80ms) plus
	// recovery time; absolute-deadline re-arm keeps drift to wheel
	// lateness plus recovery overhead.
	if res.Drift > 60*time.Millisecond {
		t.Fatalf("drift %v after recovery (restart-from-zero regression?); total %v", res.Drift, res.Total)
	}
}
