package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineStop enforces the liveness contract behind past leak bugs
// (the never-evicted dead client, the sleeping-goroutine timer tasks):
// every goroutine launched by non-test library code must carry a visible
// stop mechanism. Accepted evidence, in the goroutine body (or the body
// of the same-package function it runs): a select statement, a channel
// receive or range (stop channels, clock wakeups), a context.Context
// reference, or sync.WaitGroup/sync.Cond accounting; in the launching
// function: a WaitGroup.Add call (the `wg.Add(1); go ...` idiom). A
// goroutine with none of these can outlive its owner silently.
var GoroutineStop = &Analyzer{
	Name: "goroutinestop",
	Doc: "flags `go` statements in library code whose goroutine has no visible stop " +
		"mechanism (no context, stop-channel receive/select, or WaitGroup accounting)",
	Run: runGoroutineStop,
}

func runGoroutineStop(pass *Pass) error {
	// Index same-package function declarations so `go s.loop()` can be
	// followed one level into loop's body.
	declOf := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if f, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					declOf[f] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosingHasAdd := hasWaitGroupAdd(pass.Info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if enclosingHasAdd {
					return true
				}
				var body *ast.BlockStmt
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					body = lit.Body
				} else if f := calleeFunc(pass.Info, g.Call); f != nil {
					if fd2, ok := declOf[f]; ok {
						body = fd2.Body
					}
				}
				if body != nil && hasStopEvidence(pass.Info, body) {
					return true
				}
				pass.Reportf(g.Pos(),
					"goroutine has no visible stop mechanism (no context, stop-channel receive/select, or WaitGroup accounting): it can outlive its owner")
				return true
			})
		}
	}
	return nil
}

// hasWaitGroupAdd reports a (*sync.WaitGroup).Add call anywhere in body.
func hasWaitGroupAdd(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMethod(info, call, "sync", "WaitGroup", "Add") {
			found = true
		}
		return !found
	})
	return found
}

// hasStopEvidence reports whether a goroutine body shows any accepted
// stop mechanism (nested literals included: the evidence often lives in
// a deferred closure).
func hasStopEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[e.X]; ok && isChanType(t.Type) {
				found = true
			}
		case *ast.CallExpr:
			if isMethod(info, e, "sync", "WaitGroup", "Done", "Wait", "Add") ||
				isMethod(info, e, "sync", "Cond", "Wait") {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil && types.TypeString(obj.Type(), nil) == "context.Context" {
				found = true
			}
		}
		return !found
	})
	return found
}
