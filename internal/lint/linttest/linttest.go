// Package linttest checks an analyzer against golden packages,
// analysistest-style: every diagnostic the analyzer reports must be
// announced by a `// want `+"`regex`"+` comment on the same source line,
// and every want comment must be satisfied by a diagnostic.
//
// The golden packages live in their own module (internal/lint/testdata,
// module lintdata) so the go tool never builds them as part of the
// repository; the analyzers match package paths by suffix and receiver
// types by package name, so lintdata stand-ins exercise the real logic.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the expectation regex from a `// want` comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

type site struct {
	file string // base name
	line int
}

// Run loads patterns from the module rooted at dir, runs the one
// analyzer, and diffs its findings against the want comments.
func Run(t *testing.T, dir string, an *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load %s %v: %v", dir, patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s %v: no packages", dir, patterns)
	}
	findings, err := lint.Run(pkgs, []*lint.Analyzer{an})
	if err != nil {
		t.Fatalf("run %s: %v", an.Name, err)
	}

	wants := make(map[site][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					s := site{filepath.Base(pos.Filename), pos.Line}
					wants[s] = append(wants[s], re)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, f := range findings {
		s := site{filepath.Base(f.Pos.Filename), f.Pos.Line}
		ok := false
		for _, re := range wants[s] {
			if re.MatchString(f.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s: %s", s.file, s.line, f.Analyzer, f.Message)
		}
	}
	var unmet []string
	for s, res := range wants {
		for _, re := range res {
			if !matched[re] {
				unmet = append(unmet, fmt.Sprintf("%s:%d: want %q unmatched", s.file, s.line, re.String()))
			}
		}
	}
	sort.Strings(unmet)
	for _, u := range unmet {
		t.Error(u)
	}
}
