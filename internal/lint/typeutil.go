package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// (calls through function-typed variables, type conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the defining package name and type name of a method's
// receiver ("sync", "Mutex"), dereferencing a pointer receiver; empty
// strings for plain functions.
func recvNamed(f *types.Func) (pkgName, typeName string) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Name(), obj.Name()
}

// isMethod reports whether a call invokes pkgName.typeName's method with
// one of the given names (matching by the receiver type's defining
// package *name*, so the lint corpus's stand-in packages match too).
func isMethod(info *types.Info, call *ast.CallExpr, pkgName, typeName string, methods ...string) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	pn, tn := recvNamed(f)
	if pn != pkgName || tn != typeName {
		return false
	}
	for _, m := range methods {
		if f.Name() == m {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether a call invokes a package-level function of the
// package with the given *path* (exact), e.g. time.Sleep.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isChanType reports whether t is (or aliases) a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// mentionsIdent reports whether the subtree names an identifier from the
// given set (syntactic; used to spot runKey/timerRecKey arguments).
func mentionsIdent(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
