package lint

import (
	"go/ast"
)

// runStateKeyFuncs are the engine's key constructors for run and timer
// state. An Object.Set/Delete whose call mentions one of these persists
// scheduler state — exactly the writes that must ride the drain batch.
var runStateKeyFuncs = map[string]bool{"runKey": true, "timerRecKey": true}

// PersistOrder enforces the PR-2 group-commit invariant inside
// internal/engine: run-state and timer-record writes commit only through
// the drain's persist.Batch (flushRuns), one transaction per evaluation
// drain. A direct persist.Object Set/Delete on a run key re-introduces
// the one-fsync-per-transition discipline (the 13x S2 regression), and a
// direct store write bypasses the transactional intention log entirely
// (no crash atomicity). The gated legacy paths (Config.PersistPerTransition)
// and the pre-loop instantiation write carry reasoned allow directives.
var PersistOrder = &Analyzer{
	Name: "persistorder",
	Doc: "in internal/engine, forbids persisting run/timer state via direct persist.Object " +
		"Set/Delete (must ride the drain's persist.Batch in flushRuns) and any direct " +
		"store-layer Write/Delete (bypasses the transactional intention log)",
	Run: runPersistOrder,
}

func runPersistOrder(pass *Pass) error {
	if !pathMatches(pass.Path, "internal/engine") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isMethod(pass.Info, call, "persist", "Object", "Set", "Delete") &&
				mentionsIdent(call, runStateKeyFuncs) {
				f := calleeFunc(pass.Info, call)
				pass.Reportf(call.Pos(),
					"run/timer state persisted via persist.Object.%s outside the drain batch; stage it with bufferRun/bufferTimerRec so flushRuns commits it in the drain's persist.Batch",
					f.Name())
				return true
			}
			if isMethod(pass.Info, call, "store", "Store", "Write", "Delete") {
				f := calleeFunc(pass.Info, call)
				pass.Reportf(call.Pos(),
					"direct store.Store.%s from the engine bypasses the transactional persist layer (no intention log, no crash atomicity); go through persist.Batch or persist.Object",
					f.Name())
			}
			return true
		})
	}
	return nil
}
