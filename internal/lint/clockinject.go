package lint

import (
	"go/types"
)

// bannedTimeFuncs are the wall-clock entry points of package time. Since
// and Until are included because they read time.Now internally — a
// deadline computed with time.Until silently re-anchors under a fake
// clock, the exact bug class Clock.Wake's absolute-instant contract
// exists to prevent.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// ClockInject enforces the PR-4 invariant that all time flows through the
// injectable timers.Clock: any use (call or function value) of the
// wall-clock functions of package time outside internal/timers is a
// violation. Wall-time domains (CLIs, benchmarks, load generators) say so
// explicitly by going through timers.WallClock; everything below the
// engine stays fake-clock drivable, which is what the ROADMAP's
// deterministic-simulation harness needs.
var ClockInject = &Analyzer{
	Name: "clockinject",
	Doc: "forbids time.Now/Sleep/After/AfterFunc/NewTimer/NewTicker/Tick/Since/Until " +
		"outside internal/timers: all time must flow through the injectable timers.Clock " +
		"(use timers.WallClock explicitly in wall-time domains)",
	Run: runClockInject,
}

func runClockInject(pass *Pass) error {
	if pathMatches(pass.Path, "internal/timers") {
		return nil
	}
	for id, obj := range pass.Info.Uses {
		f, ok := obj.(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" {
			continue
		}
		if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods like Time.Add are pure arithmetic
		}
		if !bannedTimeFuncs[f.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"time.%s reads the wall clock directly; thread a timers.Clock (or use timers.WallClock explicitly in wall-time-only code)",
			f.Name())
	}
	return nil
}
