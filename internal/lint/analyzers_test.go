package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestClockInject(t *testing.T) {
	linttest.Run(t, "testdata", lint.ClockInject, "./clockinject", "./internal/timers")
}

func TestPersistOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.PersistOrder, "./internal/engine")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockSafe, "./locksafe")
}

func TestGoroutineStop(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoroutineStop, "./goroutinestop")
}

func TestMetricNames(t *testing.T) {
	linttest.Run(t, "testdata", lint.MetricNames, "./metricnames", "./internal/obs")
}
