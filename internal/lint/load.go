package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath      string
	Name            string
	Dir             string
	Export          string
	DepOnly         bool
	Standard        bool
	GoFiles         []string
	CompiledGoFiles []string
	ImportMap       map[string]string
	Error           *struct{ Err string }
}

// Load lists the given package patterns in dir with the go tool, parses
// the matched (non-dependency) packages from source, and type-checks them
// against the export data `go list -export` materialises in the build
// cache for every dependency. This is the loading strategy of
// golang.org/x/tools/go/packages's export-data mode, hand-rolled on the
// stdlib so the linter needs no module dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string) // import path -> export data file
	importMap := make(map[string]string)
	var roots []*listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range roots {
		files := p.CompiledGoFiles
		if len(files) == 0 {
			files = p.GoFiles
		}
		var syntax []*ast.File
		for _, name := range files {
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			syntax = append(syntax, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, syntax, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: syntax,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var out []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		out = append(out, &p)
	}
	return out, nil
}
