// Package lint is the engine's invariant checker: a small, dependency-free
// analogue of golang.org/x/tools/go/analysis that mechanically enforces
// contracts no generic linter knows about. The repo vendors nothing, so the
// framework is built directly on go/ast and go/types, with type information
// loaded from the build cache's export data (see load.go); the Analyzer/Pass
// shapes mirror go/analysis so the checkers port verbatim if the real
// framework ever becomes available.
//
// The enforced invariants (one analyzer each, see docs/INVARIANTS.md):
//
//   - clockinject: all time flows through the injectable timers.Clock;
//     time.Now/Sleep/After/&c are forbidden outside internal/timers.
//   - persistorder: engine run/timer state commits only through the drain's
//     persist.Batch (flushRuns), never via per-transition Object writes.
//   - locksafe: no blocking operation while a sync.Mutex/RWMutex is held,
//     and every Lock has a same-function Unlock.
//   - goroutinestop: every goroutine launched by library code has a visible
//     stop mechanism (context, stop channel, or WaitGroup).
//   - metricnames: metrics register only under constants declared in
//     internal/obs (names.go), so series names cannot drift or collide.
//
// A finding is suppressed by an escape-hatch directive with a mandatory
// reason (see allow.go):
//
//	//wflint:allow <analyzer> <reason>
//
// on the offending line, or alone on the line above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is the one-paragraph description shown by `wflint -help`.
	Doc string
	// Run reports findings on one package through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types to one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path ("repro/internal/engine").
	Path string

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the file:line:col form tooling expects.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full wflint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{ClockInject, PersistOrder, LockSafe, GoroutineStop, MetricNames}
}

// Run applies every analyzer to every package, drops findings in _test.go
// files (tests may sleep, poll and leak at will) and findings carrying a
// valid allow directive, and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	allows := newAllowIndex()
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			pass := &Pass{
				Analyzer: an,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", an.Name, pkg.Path, err)
			}
			for _, f := range pass.findings {
				if strings.HasSuffix(f.Pos.Filename, "_test.go") {
					continue
				}
				ok, err := allows.allowed(f)
				if err != nil {
					return nil, err
				}
				if ok {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pathMatches reports whether a package import path is, or ends with, the
// given repo-relative fragment ("internal/engine" matches both
// "repro/internal/engine" and the lint corpus's "lintdata/internal/engine").
func pathMatches(pkgPath, fragment string) bool {
	return pkgPath == fragment || strings.HasSuffix(pkgPath, "/"+fragment)
}
