package lint

import (
	"go/ast"
	"go/types"
)

// metricRegisterMethods are the obs.Registry instrument constructors
// whose first argument is the metric name.
var metricRegisterMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// MetricNames enforces the observability-layer invariant that every
// metric registered in non-test code uses a `const` name declared in
// internal/obs (names.go): ad-hoc string literals and locally computed
// names drift, collide and duplicate series between call sites, and
// they escape the docs/OBSERVABILITY.md catalogue. Test files are
// exempt (like every analyzer), so unit tests may register throwaway
// names freely.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc: "requires every obs.Registry.Counter/Gauge/Histogram registration in non-test code " +
		"to name its metric with a constant declared in internal/obs (names.go), preventing " +
		"drifting or duplicated metric names",
	Run: runMetricNames,
}

func runMetricNames(pass *Pass) error {
	// The obs package itself (and its lint-corpus stand-in) is the home
	// of the constants; its own helpers are exempt.
	if pathMatches(pass.Path, "internal/obs") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricRegisterMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isObsRegistryMethod(fn) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if !isObsConst(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to obs.Registry.%s must be a constant declared in internal/obs/names.go (got a non-registry name)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether fn is a method on obs.Registry.
func isObsRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Registry" && pathMatches(named.Obj().Pkg().Path(), "internal/obs")
}

// isObsConst reports whether expr resolves to a constant declared in
// the internal/obs package.
func isObsConst(pass *Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	return pathMatches(c.Pkg().Path(), "internal/obs")
}
