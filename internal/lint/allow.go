package lint

import (
	"fmt"
	"os"
	"strings"
)

// allowPrefix opens an escape-hatch directive. The full form is
//
//	//wflint:allow <analyzer> <reason>
//
// A reason is mandatory: the directive exists to carry the justification
// into the tree, not to silence the tool. A directive at the end of a code
// line suppresses that line's findings; a directive alone on its line
// suppresses the next line's.
const allowPrefix = "//wflint:allow"

// allowDirective is one parsed escape hatch.
type allowDirective struct {
	analyzer string
	// line the directive suppresses (its own, or the next for a
	// standalone comment line).
	line int
}

// allowIndex lazily scans source files for directives, caching per file.
type allowIndex struct {
	byFile map[string][]allowDirective
	errs   map[string]error
}

func newAllowIndex() *allowIndex {
	return &allowIndex{byFile: make(map[string][]allowDirective), errs: make(map[string]error)}
}

// allowed reports whether a finding is suppressed by a directive.
func (ai *allowIndex) allowed(f Finding) (bool, error) {
	ds, err := ai.scan(f.Pos.Filename)
	if err != nil {
		return false, err
	}
	for _, d := range ds {
		if d.line == f.Pos.Line && (d.analyzer == f.Analyzer || d.analyzer == "*") {
			return true, nil
		}
	}
	return false, nil
}

// scan extracts the directives of one file. Malformed directives (no
// analyzer, or no reason) are themselves errors: a silent no-op escape
// hatch would be worse than none.
func (ai *allowIndex) scan(filename string) ([]allowDirective, error) {
	if ds, ok := ai.byFile[filename]; ok {
		return ds, ai.errs[filename]
	}
	data, err := os.ReadFile(filename)
	if err != nil {
		ai.errs[filename] = err
		return nil, err
	}
	var ds []allowDirective
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, allowPrefix)
		if idx < 0 {
			continue
		}
		lineNo := i + 1
		fields := strings.Fields(line[idx+len(allowPrefix):])
		if len(fields) < 2 {
			err := fmt.Errorf("%s:%d: malformed %s directive: need \"%s <analyzer> <reason>\"",
				filename, lineNo, allowPrefix, allowPrefix)
			ai.errs[filename] = err
			ai.byFile[filename] = nil
			return nil, err
		}
		target := lineNo
		if strings.TrimSpace(line[:idx]) == "" {
			// Standalone comment line: suppresses the next line.
			target = lineNo + 1
		}
		ds = append(ds, allowDirective{analyzer: fields[0], line: target})
	}
	ai.byFile[filename] = ds
	return ds, nil
}
