// Package orb is the lintdata stand-in for the repository's request
// broker (locksafe golden tests: remote calls are blocking operations).
package orb

// Client is a connection to one remote servant.
type Client struct{}

// Invoke performs one remote call.
func (*Client) Invoke(object, method string, arg, reply any) error { return nil }

// Close tears the connection down.
func (*Client) Close() error { return nil }

// Call is the one-shot dial-invoke-close helper.
func Call(addr, object, method string, arg, reply any) error { return nil }
