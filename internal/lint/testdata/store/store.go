// Package store is the lintdata stand-in for the repository's raw
// store layer (persistorder golden tests).
package store

// Store is the raw durable key/value surface.
type Store struct{}

// Write stores raw bytes under id.
func (*Store) Write(id string, b []byte) error { return nil }

// Delete removes id.
func (*Store) Delete(id string) error { return nil }
