// Package goroutinestop is the golden package for the goroutinestop
// analyzer: goroutines with no visible stop mechanism are violations;
// context, stop-channel, WaitGroup and followed same-package bodies are
// clean.
package goroutinestop

import (
	"context"
	"sync"
)

type svc struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func work() {}

func (s *svc) leak() {
	go func() { // want `goroutine has no visible stop mechanism`
		for {
			work()
		}
	}()
}

func (s *svc) leakNamed() {
	go work() // want `goroutine has no visible stop mechanism`
}

func (s *svc) stoppable() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			default:
				work()
			}
		}
	}()
}

func (s *svc) tracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

func (s *svc) ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// drain's stop evidence (range over a channel) lives in the named
// function the goroutine runs; the analyzer follows one level into
// same-package declarations.
func (s *svc) drain() {
	for range s.stop {
		work()
	}
}

func (s *svc) followed() {
	go s.drain()
}

func (s *svc) suppressed() {
	//wflint:allow goroutinestop golden test: bounded one-shot helper
	go work()
}
