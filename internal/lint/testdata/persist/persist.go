// Package persist is the lintdata stand-in for the repository's
// transactional persist layer: just enough surface for the persistorder
// golden tests (the analyzer matches receiver package and type names, so
// a stand-in with the same shape exercises the same code paths).
package persist

// Object is a typed handle on one persisted key.
type Object struct{}

// Set writes the object's value in the given transaction.
func (*Object) Set(tx, v any) error { return nil }

// Delete removes the object's value in the given transaction.
func (*Object) Delete(tx any) error { return nil }

// Batch accumulates writes for one group commit.
type Batch struct{}

// Set stages a write in the batch.
func (*Batch) Set(key string, v any) error { return nil }

// Delete stages a delete in the batch.
func (*Batch) Delete(key string) error { return nil }
