// Package clockinject is the golden package for the clockinject
// analyzer: direct time.* wall-clock reads outside internal/timers are
// violations; the //wflint:allow escape hatch (with a mandatory reason)
// suppresses them; duration arithmetic is clean.
package clockinject

import "time"

func reads() {
	_ = time.Now()                 // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
	_ = time.Since(time.Time{})    // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{})    // want `time\.Until reads the wall clock`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Hour)  // want `time\.NewTicker reads the wall clock`
	time.AfterFunc(0, func() {})   // want `time\.AfterFunc reads the wall clock`
}

func suppressed() time.Time {
	//wflint:allow clockinject golden test of the standalone-comment form
	start := time.Now()
	end := time.Now() //wflint:allow clockinject golden test of the trailing form
	return start.Add(end.Sub(start))
}

// clean: durations, formatting and parsing never read the clock.
func clean() (time.Duration, string) {
	d := 3 * time.Second
	return d, time.Unix(0, 0).Format(time.RFC3339)
}
