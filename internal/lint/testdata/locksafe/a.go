// Package locksafe is the golden package for the locksafe analyzer:
// blocking operations under a held sync.Mutex/RWMutex are violations,
// as is a Lock with no same-function Unlock; unlock-then-block and
// deliberately-suppressed sites are clean.
package locksafe

import (
	"os"
	"sync"

	"lintdata/orb"
)

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	cl  *orb.Client
	f   *os.File
	wg  sync.WaitGroup
	val int
}

func (g *guarded) sendWhileHeld() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while g\.mu is held`
	g.mu.Unlock()
}

func (g *guarded) receiveWhileHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while g\.mu is held`
}

func (g *guarded) selectWhileHeld(stop chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select without default while g\.mu is held`
	case <-stop:
	case g.ch <- 1:
	}
}

func (g *guarded) remoteWhileHeld() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cl.Invoke("o", "m", nil, nil) // want `orb remote call \(Invoke\) while g\.mu is held`
}

func (g *guarded) dialWhileHeld() error {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return orb.Call("addr", "o", "m", nil, nil) // want `orb remote call \(Call\) while g\.rw is held`
}

func (g *guarded) fsyncWhileHeld() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.f.Sync() // want `fsync \(os\.File\.Sync\) while g\.mu is held`
}

func (g *guarded) waitWhileHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.wg.Wait() // want `sync\.WaitGroup\.Wait while g\.mu is held`
}

func (g *guarded) leakyLock() {
	g.mu.Lock() // want `g\.mu locked with no Unlock in this function`
	g.val++
}

func (g *guarded) leakyRLock() int {
	g.rw.RLock() // want `g\.rw locked with no RUnlock in this function`
	return g.val
}

func (g *guarded) suppressedSend() {
	ch := make(chan int, 1)
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.val //wflint:allow locksafe golden test: fresh 1-buffered channel cannot block
}

// unlockThenBlock is clean: the send happens after the critical section.
func (g *guarded) unlockThenBlock() {
	g.mu.Lock()
	v := g.val
	g.mu.Unlock()
	g.ch <- v
}

// selectWithDefault is clean: with a default arm the select (comm cases
// included) cannot block.
func (g *guarded) selectWithDefault() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- g.val:
	default:
	}
}

// deferredClosureUnlock is clean for the pairing check: an unlock inside
// a deferred closure still releases in this function.
func (g *guarded) deferredClosureUnlock() {
	g.mu.Lock()
	defer func() { g.mu.Unlock() }()
	g.val++
}
