// Package metricnames is the golden package for the metricnames
// analyzer: metric registrations must name their metric with a constant
// from internal/obs; string literals, local constants and computed
// names are violations.
package metricnames

import "lintdata/internal/obs"

const localName = "local_metric_total"

var reg = obs.Default()

func registrations() {
	// Clean: constants declared in internal/obs, through any registry.
	reg.Counter(obs.MGood).Inc()
	obs.Default().Gauge(obs.MGoodGauge, "endpoint", "e1").Set(1)
	r := obs.Default()
	r.Histogram(obs.MGoodHist, nil).Observe(0.5)

	// Violations: ad-hoc names that escape the names.go catalogue.
	reg.Counter("adhoc_metric_total").Inc()                  // want `must be a constant declared in internal/obs`
	reg.Gauge(localName).Set(2)                              // want `must be a constant declared in internal/obs`
	reg.Histogram("adhoc_"+"hist", nil).Observe(1)           // want `must be a constant declared in internal/obs`
	obs.Default().Counter(computedName()).Inc()              // want `must be a constant declared in internal/obs`
	obs.Default().Counter(string(obs.MGood) + "_more").Inc() // want `must be a constant declared in internal/obs`
}

func computedName() string { return "computed_total" }

// Unrelated methods named Counter/Gauge/Histogram on non-registry
// receivers stay clean.
type other struct{}

func (other) Counter(name string) int { return len(name) }

func unrelated() {
	var o other
	_ = o.Counter("not a metric")
}
