// Package timers is the lintdata stand-in for the real clock package —
// the one place clockinject permits direct time.* wall-clock reads, so
// this whole file must produce zero findings.
package timers

import "time"

// Now reads the wall clock; allowed here and only here.
func Now() time.Time { return time.Now() }

// Sleep blocks in wall time; allowed here and only here.
func Sleep(d time.Duration) { time.Sleep(d) }

// After wraps time.After; allowed here and only here.
func After(d time.Duration) <-chan time.Time { return time.After(d) }
