// Package engine is the golden package for the persistorder analyzer
// (its import path ends in internal/engine, which is the analyzer's
// scope): run/timer-state writes through persist.Object and any direct
// store write are violations; batch writes and non-run-state objects
// are clean.
package engine

import (
	"lintdata/persist"
	"lintdata/store"
)

func runKey(id, path string) string      { return "run|" + id + "|" + path }
func timerRecKey(id, path string) string { return "timer|" + id + "|" + path }

type instance struct {
	obj func(key string) *persist.Object
	st  *store.Store
}

func (i *instance) perTransitionSet(tx any, id, path string, v any) error {
	return i.obj(runKey(id, path)).Set(tx, v) // want `run/timer state persisted via persist\.Object\.Set outside the drain batch`
}

func (i *instance) perTransitionDelete(tx any, id, path string) error {
	return i.obj(runKey(id, path)).Delete(tx) // want `run/timer state persisted via persist\.Object\.Delete outside the drain batch`
}

func (i *instance) timerRecSet(tx any, id, path string, v any) error {
	return i.obj(timerRecKey(id, path)).Set(tx, v) // want `run/timer state persisted via persist\.Object\.Set outside the drain batch`
}

func (i *instance) rawWrite(id string, b []byte) error {
	return i.st.Write(id, b) // want `direct store\.Store\.Write from the engine bypasses the transactional persist layer`
}

func (i *instance) rawDelete(id string) error {
	return i.st.Delete(id) // want `direct store\.Store\.Delete from the engine bypasses the transactional persist layer`
}

func (i *instance) allowedLegacy(tx any, id, path string, v any) error {
	//wflint:allow persistorder golden test of the gated legacy path
	return i.obj(runKey(id, path)).Set(tx, v)
}

// flushRuns is the compliant path: run state rides the drain's batch.
func (i *instance) flushRuns(b *persist.Batch, id, path string, v any) error {
	return b.Set(runKey(id, path), v)
}

// otherObject is clean: a persist.Object write whose key is not run or
// timer state is outside the invariant.
func (i *instance) otherObject(tx any, v any) error {
	return i.obj("schema|x").Set(tx, v)
}
