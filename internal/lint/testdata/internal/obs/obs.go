// Package obs is the lint corpus's stand-in for repro/internal/obs: the
// metricnames analyzer matches the package by the "internal/obs" path
// suffix, so this package exercises the real resolution logic.
package obs

// Registered metric names (the stand-in for names.go).
const (
	MGood      = "good_metric_total"
	MGoodGauge = "good_gauge"
	MGoodHist  = "good_hist_seconds"
)

// Counter, Gauge, Histogram mirror the registry's instrument types.
type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

func (*Gauge) Set(int64) {}

type Histogram struct{}

func (*Histogram) Observe(float64) {}

// Registry mirrors the real registry's constructor methods; only the
// shapes matter to the analyzer.
type Registry struct{}

func (*Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

func (*Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

func (*Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}

// Default mirrors the process-global registry accessor.
func Default() *Registry { return &Registry{} }
