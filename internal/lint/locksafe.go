package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// LockSafe enforces the engine's lock-safety contract: code holding a
// sync.Mutex/RWMutex must not block — no channel sends/receives, no
// select without a default, no remote orb invocations, no fsync, no
// WaitGroup waits — because a blocked lock holder wedges every other
// goroutine contending for that mutex (the wheel goroutine, the drain,
// the servant pool). It also requires every Lock/RLock to have a matching
// Unlock/RUnlock somewhere in the same function (deferred or direct):
// a lock with no same-function release leaks on every early return.
//
// The analysis is a linear over-approximation per function body: branches
// share one held-set, nested function literals are analysed separately
// with an empty held-set, and sync.Cond.Wait is exempt (it releases the
// mutex while parked).
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "flags blocking operations (channel ops, select without default, orb calls, fsync, " +
		"WaitGroup.Wait) while a sync.Mutex/RWMutex is held, and Lock/RLock calls with no " +
		"matching Unlock/RUnlock in the same function",
	Run: runLockSafe,
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// mutexOp classifies a call as a sync.Mutex/RWMutex lock operation and
// returns a stable key for the mutex (the rendered receiver expression).
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, op lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil {
		return "", opNone
	}
	pn, tn := recvNamed(f)
	if pn != "sync" || (tn != "Mutex" && tn != "RWMutex") {
		return "", opNone
	}
	key = types.ExprString(sel.X)
	switch f.Name() {
	case "Lock":
		return key, opLock
	case "RLock":
		return key, opRLock
	case "Unlock":
		return key, opUnlock
	case "RUnlock":
		return key, opRUnlock
	}
	return "", opNone
}

func runLockSafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkLockBody runs both locksafe checks over one function body,
// treating nested function literals as separate functions (except that
// an unlock inside a nested literal still satisfies the pairing check:
// `defer func() { mu.Unlock() }()` is a release).
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	// Pairing: every lock key+kind needs an unlock of the matching kind.
	type lockSite struct {
		key string
		op  lockOp
		pos token.Pos
	}
	var locks []lockSite
	released := make(map[string]bool) // key + kind
	inspectSkippingLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if key, op := mutexOp(pass.Info, call); op == opLock || op == opRLock {
			locks = append(locks, lockSite{key, op, call.Pos()})
		}
	})
	ast.Inspect(body, func(n ast.Node) bool { // unlocks count anywhere, closures included
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op := mutexOp(pass.Info, call); op == opUnlock {
				released[key+"/w"] = true
			} else if op == opRUnlock {
				released[key+"/r"] = true
			}
		}
		return true
	})
	for _, l := range locks {
		kind, unlock := "/w", "Unlock"
		if l.op == opRLock {
			kind, unlock = "/r", "RUnlock"
		}
		if !released[l.key+kind] {
			pass.Reportf(l.pos,
				"%s locked with no %s in this function: the lock leaks on every return path",
				l.key, unlock)
		}
	}

	// Blocking-while-held: linear walk of the statement sequence.
	held := make(map[string]token.Pos)
	walkLockStmts(pass, body.List, held)
}

// inspectSkippingLits visits every node of the body except subtrees of
// nested function literals.
func inspectSkippingLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func walkLockStmts(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		walkLockStmt(pass, s, held)
	}
}

func walkLockStmt(pass *Pass, s ast.Stmt, held map[string]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if key, op := mutexOp(pass.Info, call); op != opNone {
				switch op {
				case opLock, opRLock:
					held[key] = call.Pos()
				case opUnlock, opRUnlock:
					delete(held, key)
				}
				return
			}
		}
		checkBlockingExpr(pass, st.X, held)
	case *ast.DeferStmt:
		// Runs at return; a deferred Unlock keeps the mutex held for the
		// remainder of the body, which the shared held-set already models.
	case *ast.GoStmt:
		// The spawned body runs on another goroutine (analysed separately
		// with an empty held-set); only the arguments evaluate here.
		for _, arg := range st.Call.Args {
			checkBlockingExpr(pass, arg, held)
		}
	case *ast.SendStmt:
		reportHeld(pass, held, st.Pos(), "channel send")
		checkBlockingExpr(pass, st.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			reportHeld(pass, held, st.Pos(), "select without default")
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockStmts(pass, cc.Body, held)
			}
		}
	case *ast.BlockStmt:
		walkLockStmts(pass, st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			walkLockStmt(pass, st.Init, held)
		}
		checkBlockingExpr(pass, st.Cond, held)
		walkLockStmts(pass, st.Body.List, held)
		if st.Else != nil {
			walkLockStmt(pass, st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			walkLockStmt(pass, st.Init, held)
		}
		walkLockStmts(pass, st.Body.List, held)
	case *ast.RangeStmt:
		if t, ok := pass.Info.Types[st.X]; ok && isChanType(t.Type) {
			reportHeld(pass, held, st.Pos(), "range over channel")
		}
		walkLockStmts(pass, st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			walkLockStmt(pass, st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		walkLockStmt(pass, st.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			checkBlockingExpr(pass, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			checkBlockingExpr(pass, e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						checkBlockingExpr(pass, e, held)
					}
				}
			}
		}
	}
}

// checkBlockingExpr reports blocking operations inside an expression
// evaluated while locks are held (receives, known-blocking calls).
func checkBlockingExpr(pass *Pass, expr ast.Expr, held map[string]token.Pos) {
	if expr == nil || len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				reportHeld(pass, held, e.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if desc := blockingCall(pass.Info, e); desc != "" {
				reportHeld(pass, held, e.Pos(), desc)
			}
		}
		return true
	})
}

// blockingCall describes a call known to block, or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	pn, tn := recvNamed(f)
	switch {
	case pn == "sync" && tn == "WaitGroup" && f.Name() == "Wait":
		return "sync.WaitGroup.Wait"
	case pn == "os" && tn == "File" && f.Name() == "Sync":
		return "fsync (os.File.Sync)"
	case f.Pkg() != nil && f.Pkg().Name() == "orb" && tn == "Client" && f.Name() == "Invoke":
		return "orb remote call (Invoke)"
	case f.Pkg() != nil && f.Pkg().Name() == "orb" && tn == "" && f.Name() == "Call":
		return "orb remote call (Call)"
	case f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Sleep":
		return "time.Sleep"
	}
	return ""
}

func reportHeld(pass *Pass, held map[string]token.Pos, pos token.Pos, what string) {
	for key, lockPos := range held {
		p := pass.Fset.Position(lockPos)
		pass.Reportf(pos, "%s while %s is held (locked at %s:%d): a blocked holder wedges every contender",
			what, key, filepath.Base(p.Filename), p.Line)
	}
}
