package orb

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/timers"
)

// TestRetryBackoffFakeClock drives the client's retry backoff on a
// FakeClock: with an hour-long RetryDelay against an address nothing
// listens on, the call only makes progress when virtual time advances —
// and the test finishes without any real sleeping.
func TestRetryBackoffFakeClock(t *testing.T) {
	// Grab a port that is guaranteed free, then close it so every dial
	// is refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	clk := timers.NewFakeClock(time.Unix(0, 0))
	c := Dial(addr, ClientConfig{Retries: 2, RetryDelay: time.Hour, Clock: clk})
	defer c.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- c.Invoke("obj", "method", struct{}{}, nil) }()

	// Two backoffs separate the three attempts; release each as its
	// wakeup registers.
	for i := 0; i < 2; i++ {
		waitWaiters(t, clk, 1)
		clk.Advance(2 * time.Hour)
	}

	if err := <-errCh; err == nil {
		t.Fatal("Invoke against a closed port succeeded")
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

// waitWaiters spins (yielding, not sleeping) until the fake clock has at
// least n armed wakeups.
func waitWaiters(t *testing.T, clk *timers.FakeClock, n int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if clk.Waiters() >= n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("fake clock never reached %d waiter(s)", n)
}
