package orb_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/orb"
)

type echoReq struct {
	Msg string
	N   int
}

type echoResp struct {
	Msg string
	N   int
}

func newEchoServer(t *testing.T) *orb.Server {
	t.Helper()
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	sv := orb.NewServant()
	orb.Method(sv, "echo", func(req echoReq) (echoResp, error) {
		return echoResp{Msg: req.Msg, N: req.N + 1}, nil
	})
	orb.Method(sv, "fail", func(req echoReq) (echoResp, error) {
		return echoResp{}, fmt.Errorf("application rejected %q", req.Msg)
	})
	srv.Register("echo-object", sv)
	return srv
}

func TestInvokeRoundTrip(t *testing.T) {
	srv := newEchoServer(t)
	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	resp, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{Msg: "hi", N: 41})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hi" || resp.N != 42 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestSequentialCallsReuseConnection(t *testing.T) {
	srv := newEchoServer(t)
	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	for k := 0; k < 100; k++ {
		resp, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{N: k})
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != k+1 {
			t.Fatalf("resp.N = %d, want %d", resp.N, k+1)
		}
	}
	if c.Retries() != 0 {
		t.Errorf("retries = %d, want 0 on a healthy link", c.Retries())
	}
}

func TestApplicationErrorsNotRetried(t *testing.T) {
	srv := newEchoServer(t)
	c := orb.Dial(srv.Addr(), orb.ClientConfig{Retries: 5})
	defer c.Close()
	_, err := orb.Call[echoReq, echoResp](c, "echo-object", "fail", echoReq{Msg: "x"})
	var appErr *orb.AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("err = %v, want *AppError", err)
	}
	if !strings.Contains(appErr.Msg, "application rejected") {
		t.Fatalf("appErr = %q", appErr.Msg)
	}
	if c.Retries() != 0 {
		t.Errorf("application errors must not be retried, got %d retries", c.Retries())
	}
}

func TestUnknownObjectAndMethod(t *testing.T) {
	srv := newEchoServer(t)
	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	err := c.Invoke("ghost", "echo", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no such object") {
		t.Fatalf("unknown object: %v", err)
	}
	err = c.Invoke("echo-object", "ghost", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no such method") {
		t.Fatalf("unknown method: %v", err)
	}
}

func TestClientRedialsAfterServerRestart(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	sv := orb.NewServant()
	orb.Method(sv, "echo", func(req echoReq) (echoResp, error) {
		return echoResp{N: req.N + 1}, nil
	})
	srv.Register("echo-object", sv)

	c := orb.Dial(addr, orb.ClientConfig{Retries: 20, RetryDelay: 20 * time.Millisecond})
	defer c.Close()
	if _, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{N: 1}); err != nil {
		t.Fatal(err)
	}

	// Kill the server and restart on the same address; the client's next
	// call must succeed via redial ("services may be moved").
	srv.Close()
	restarted := make(chan *orb.Server, 1)
	go func() {
		for k := 0; k < 50; k++ {
			s2, err := orb.NewServer(addr)
			if err == nil {
				s2.Register("echo-object", sv)
				restarted <- s2
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		restarted <- nil
	}()
	resp, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{N: 10})
	srv2 := <-restarted
	if srv2 == nil {
		t.Fatal("could not restart server on the same address")
	}
	defer srv2.Close()
	if err != nil {
		t.Fatalf("call across restart: %v", err)
	}
	if resp.N != 11 {
		t.Fatalf("resp = %+v", resp)
	}
	if c.Retries() == 0 {
		t.Error("expected at least one transport retry across the restart")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := newEchoServer(t)
	const clients = 8
	const calls = 25
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := orb.Dial(srv.Addr(), orb.ClientConfig{})
			defer c.Close()
			for k := 0; k < calls; k++ {
				resp, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{N: w*1000 + k})
				if err != nil {
					t.Errorf("client %d: %v", w, err)
					return
				}
				if resp.N != w*1000+k+1 {
					t.Errorf("client %d: resp %d", w, resp.N)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNamingService(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	naming := orb.NewNaming()
	srv.Register(orb.NamingObject, naming.Servant())

	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	nc := orb.NewNamingClient(c)
	if err := nc.Bind("workflow-repository", "10.0.0.1:7001"); err != nil {
		t.Fatal(err)
	}
	if err := nc.Bind("workflow-execution", "10.0.0.2:7002"); err != nil {
		t.Fatal(err)
	}
	addr, err := nc.Resolve("workflow-repository")
	if err != nil || addr != "10.0.0.1:7001" {
		t.Fatalf("resolve = %q, %v", addr, err)
	}
	names, err := nc.Names()
	if err != nil || len(names) != 2 {
		t.Fatalf("names = %v, %v", names, err)
	}
	// Rebinding models a moved service.
	if err := nc.Bind("workflow-repository", "10.0.0.9:7001"); err != nil {
		t.Fatal(err)
	}
	addr, _ = nc.Resolve("workflow-repository")
	if addr != "10.0.0.9:7001" {
		t.Fatalf("after rebind = %q", addr)
	}
	if err := nc.Unbind("workflow-execution"); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Resolve("workflow-execution"); err == nil {
		t.Fatal("resolve after unbind must fail")
	}
}
