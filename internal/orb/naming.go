package orb

import (
	"fmt"
	"sort"
	"sync"
)

// NamingObject is the well-known object name of the naming service — the
// analogue of the CORBA Naming Service through which the workflow toolkit
// components find the repository and execution services.
const NamingObject = "naming"

// Naming maps service names to endpoint addresses. It is itself exported
// as a servant, so any node can resolve services through the orb.
type Naming struct {
	mu      sync.RWMutex
	entries map[string]string
}

// NewNaming returns an empty naming table.
func NewNaming() *Naming {
	return &Naming{entries: make(map[string]string)}
}

// BindEntry associates a service name with an address, replacing any
// previous binding (services may move — dynamic reconfiguration at the
// service level).
func (n *Naming) BindEntry(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.entries[name] = addr
}

// UnbindEntry removes a binding (a withdrawn service).
func (n *Naming) UnbindEntry(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.entries, name)
}

// Resolve returns the address bound to name.
func (n *Naming) Resolve(name string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addr, ok := n.entries[name]
	if !ok {
		return "", fmt.Errorf("naming: %q is not bound", name)
	}
	return addr, nil
}

// Names lists the bound names in order.
func (n *Naming) Names() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.entries))
	for name := range n.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// namingBind and friends are the wire types of the naming servant.
type namingBind struct {
	Name string
	Addr string
}

type namingResolve struct {
	Name string
}

type namingResolved struct {
	Addr string
}

type namingList struct{}

type namingNames struct {
	Names []string
}

// Servant exports the naming table over the orb.
func (n *Naming) Servant() *Servant {
	s := NewServant()
	Method(s, "bind", func(req namingBind) (struct{}, error) {
		n.BindEntry(req.Name, req.Addr)
		return struct{}{}, nil
	})
	Method(s, "unbind", func(req namingResolve) (struct{}, error) {
		n.UnbindEntry(req.Name)
		return struct{}{}, nil
	})
	Method(s, "resolve", func(req namingResolve) (namingResolved, error) {
		addr, err := n.Resolve(req.Name)
		return namingResolved{Addr: addr}, err
	})
	Method(s, "list", func(namingList) (namingNames, error) {
		return namingNames{Names: n.Names()}, nil
	})
	return s
}

// NamingClient resolves names through a remote naming servant.
type NamingClient struct {
	c *Client
}

// NewNamingClient wraps a client connected to the naming endpoint.
func NewNamingClient(c *Client) *NamingClient { return &NamingClient{c: c} }

// Bind registers a service endpoint.
func (nc *NamingClient) Bind(name, addr string) error {
	return nc.c.Invoke(NamingObject, "bind", namingBind{Name: name, Addr: addr}, nil)
}

// Unbind removes a service endpoint.
func (nc *NamingClient) Unbind(name string) error {
	return nc.c.Invoke(NamingObject, "unbind", namingResolve{Name: name}, nil)
}

// Resolve looks a service up.
func (nc *NamingClient) Resolve(name string) (string, error) {
	resp, err := Call[namingResolve, namingResolved](nc.c, NamingObject, "resolve", namingResolve{Name: name})
	if err != nil {
		return "", err
	}
	return resp.Addr, nil
}

// Names lists bound services.
func (nc *NamingClient) Names() ([]string, error) {
	resp, err := Call[namingList, namingNames](nc.c, NamingObject, "list", namingList{})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}
