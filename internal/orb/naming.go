package orb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/timers"
)

// NamingObject is the well-known object name of the naming service — the
// analogue of the CORBA Naming Service through which the workflow toolkit
// components find the repository and execution services.
const NamingObject = "naming"

// binding is one endpoint registered under a name. A name holds a *set*
// of bindings so a location can be served by a pool of executor nodes;
// expiry implements heartbeat-based liveness (members re-register
// periodically, stale members disappear).
type binding struct {
	addr string
	// expires is the liveness deadline; zero means the binding never
	// expires (a statically configured service).
	expires time.Time
}

// Naming maps service names to sets of endpoint addresses. It is itself
// exported as a servant, so any node can resolve services through the
// orb. A name's bindings are kept in registration order (the slice
// order), which keeps resolve-set ordering deterministic: a heartbeat
// refresh keeps a member's position, a member that expired and
// re-registered is a new registration and goes to the back.
type Naming struct {
	mu      sync.RWMutex
	entries map[string][]*binding
	// leases maps lease names to their current holder; see lease.go.
	leases map[string]*lease
	// avoids maps lease names to the addresses that have declared
	// themselves unfit to hold them (with expiry); see lease.go.
	avoids map[string]map[string]time.Time
	// now is the clock, replaceable for expiry tests.
	now func() time.Time
}

// NewNaming returns an empty naming table.
func NewNaming() *Naming {
	return &Naming{
		entries: make(map[string][]*binding),
		leases:  make(map[string]*lease),
		avoids:  make(map[string]map[string]time.Time),
		now:     timers.WallClock{}.Now,
	}
}

// SetClock replaces the liveness clock (tests drive expiry without
// sleeping).
func (n *Naming) SetClock(now func() time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = now
}

// pruneLocked drops expired bindings of name. Callers hold mu.
func (n *Naming) pruneLocked(name string) []*binding {
	bs := n.entries[name]
	if len(bs) == 0 {
		return nil
	}
	now := n.now()
	live := bs[:0]
	for _, b := range bs {
		if b.expires.IsZero() || b.expires.After(now) {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		delete(n.entries, name)
		return nil
	}
	n.entries[name] = live
	return live
}

// BindEntry associates a service name with a single address, replacing
// every previous binding (services may move — dynamic reconfiguration at
// the service level). The binding never expires.
func (n *Naming) BindEntry(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.entries[name] = []*binding{{addr: addr}}
}

// BindMember adds addr to the set bound to name, or refreshes its
// liveness deadline if already a member. ttl bounds the member's
// liveness (heartbeats re-register within the ttl); ttl <= 0 registers a
// permanent member. A refresh keeps the member's position in the resolve
// set; a member that expired re-enters at the back.
func (n *Naming) BindMember(name, addr string, ttl time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var expires time.Time
	if ttl > 0 {
		expires = n.now().Add(ttl)
	}
	for _, b := range n.pruneLocked(name) {
		if b.addr == addr {
			b.expires = expires
			return
		}
	}
	n.entries[name] = append(n.entries[name], &binding{addr: addr, expires: expires})
}

// UnbindMember removes one member of name's set (a cleanly withdrawn
// executor).
func (n *Naming) UnbindMember(name, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bs := n.entries[name]
	kept := bs[:0]
	for _, b := range bs {
		if b.addr != addr {
			kept = append(kept, b)
		}
	}
	if len(kept) == 0 {
		delete(n.entries, name)
		return
	}
	n.entries[name] = kept
}

// UnbindEntry removes every binding of name (a withdrawn service).
func (n *Naming) UnbindEntry(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.entries, name)
}

// Resolve returns the first live address bound to name (the original
// single-endpoint contract; pool-aware callers use ResolveAll).
func (n *Naming) Resolve(name string) (string, error) {
	addrs, err := n.ResolveAll(name)
	if err != nil {
		return "", err
	}
	return addrs[0], nil
}

// ResolveAll returns every live address bound to name, in registration
// order (deterministic: heartbeat refreshes keep positions, expired
// members that re-register join at the back).
func (n *Naming) ResolveAll(name string) ([]string, error) {
	n.mu.Lock()
	live := n.pruneLocked(name)
	if len(live) == 0 {
		n.mu.Unlock()
		return nil, fmt.Errorf("naming: %q is not bound", name)
	}
	out := make([]string, len(live))
	for i, b := range live {
		out[i] = b.addr
	}
	n.mu.Unlock()
	return out, nil
}

// Names lists the names with at least one live binding, in order.
func (n *Naming) Names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.entries))
	for name := range n.entries {
		if len(n.pruneLocked(name)) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// namingBind and friends are the wire types of the naming servant.
type namingBind struct {
	Name string
	Addr string
	// TTLMillis > 0 registers a member with a liveness deadline; 0 a
	// permanent binding.
	TTLMillis int64
}

type namingResolve struct {
	Name string
}

type namingResolved struct {
	Addr string
}

type namingResolvedAll struct {
	Addrs []string
}

type namingList struct{}

type namingNames struct {
	Names []string
}

// Servant exports the naming table over the orb.
func (n *Naming) Servant() *Servant {
	s := NewServant()
	Method(s, "bind", func(req namingBind) (struct{}, error) {
		n.BindEntry(req.Name, req.Addr)
		return struct{}{}, nil
	})
	Method(s, "bindMember", func(req namingBind) (struct{}, error) {
		n.BindMember(req.Name, req.Addr, time.Duration(req.TTLMillis)*time.Millisecond)
		return struct{}{}, nil
	})
	Method(s, "unbind", func(req namingResolve) (struct{}, error) {
		n.UnbindEntry(req.Name)
		return struct{}{}, nil
	})
	Method(s, "unbindMember", func(req namingBind) (struct{}, error) {
		n.UnbindMember(req.Name, req.Addr)
		return struct{}{}, nil
	})
	Method(s, "resolve", func(req namingResolve) (namingResolved, error) {
		addr, err := n.Resolve(req.Name)
		return namingResolved{Addr: addr}, err
	})
	Method(s, "resolveAll", func(req namingResolve) (namingResolvedAll, error) {
		addrs, err := n.ResolveAll(req.Name)
		return namingResolvedAll{Addrs: addrs}, err
	})
	Method(s, "list", func(namingList) (namingNames, error) {
		return namingNames{Names: n.Names()}, nil
	})
	n.leaseVerbs(s)
	return s
}

// NamingClient resolves names through a remote naming servant.
type NamingClient struct {
	c *Client
	// clock paces the heartbeat loop; replaceable for tests.
	clock timers.Clock
}

// NewNamingClient wraps a client connected to the naming endpoint.
func NewNamingClient(c *Client) *NamingClient {
	return &NamingClient{c: c, clock: timers.WallClock{}}
}

// SetHeartbeatClock replaces the clock pacing StartHeartbeat (tests
// drive refresh ticks without sleeping).
func (nc *NamingClient) SetHeartbeatClock(clk timers.Clock) { nc.clock = clk }

// Bind registers a service endpoint, replacing the whole set.
func (nc *NamingClient) Bind(name, addr string) error {
	return nc.c.Invoke(NamingObject, "bind", namingBind{Name: name, Addr: addr}, nil)
}

// BindMember adds (or refreshes) one member of a service's endpoint set.
func (nc *NamingClient) BindMember(name, addr string, ttl time.Duration) error {
	return nc.c.Invoke(NamingObject, "bindMember", namingBind{Name: name, Addr: addr, TTLMillis: ttl.Milliseconds()}, nil)
}

// Unbind removes every endpoint of a service.
func (nc *NamingClient) Unbind(name string) error {
	return nc.c.Invoke(NamingObject, "unbind", namingResolve{Name: name}, nil)
}

// UnbindMember removes one member of a service's endpoint set.
func (nc *NamingClient) UnbindMember(name, addr string) error {
	return nc.c.Invoke(NamingObject, "unbindMember", namingBind{Name: name, Addr: addr}, nil)
}

// Resolve looks a service up (first live member).
func (nc *NamingClient) Resolve(name string) (string, error) {
	resp, err := Call[namingResolve, namingResolved](nc.c, NamingObject, "resolve", namingResolve{Name: name})
	if err != nil {
		return "", err
	}
	return resp.Addr, nil
}

// ResolveAll returns every live member bound to name.
func (nc *NamingClient) ResolveAll(name string) ([]string, error) {
	resp, err := Call[namingResolve, namingResolvedAll](nc.c, NamingObject, "resolveAll", namingResolve{Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Addrs, nil
}

// Names lists bound services.
func (nc *NamingClient) Names() ([]string, error) {
	resp, err := Call[namingList, namingNames](nc.c, NamingObject, "list", namingList{})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// StartHeartbeat registers (name, addr) as a member with the given ttl
// and keeps the registration alive by re-binding every interval until
// stop is called. The initial bind is synchronous so a dead naming
// service fails fast; subsequent refresh failures are retried at the
// next tick (the orb client already retries transport failures), so a
// naming-service restart heals without intervention. stop blocks until
// the final UnbindMember has been sent, so a process that calls stop on
// shutdown withdraws cleanly instead of lingering until the ttl lapses.
func (nc *NamingClient) StartHeartbeat(name, addr string, ttl, interval time.Duration) (stop func(), err error) {
	if err := nc.BindMember(name, addr, ttl); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	unbound := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(unbound)
		tick := nc.clock.Wake(nc.clock.Now().Add(interval))
		for {
			select {
			case <-tick:
				_ = nc.BindMember(name, addr, ttl)
				tick = nc.clock.Wake(nc.clock.Now().Add(interval))
			case <-done:
				_ = nc.UnbindMember(name, addr)
				return
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-unbound
	}, nil
}
