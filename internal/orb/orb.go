// Package orb is the distribution substrate of the workflow system: a
// small object request broker that stands in for the paper's CORBA
// ORB/IIOP layer (Fig. 4). Services (the workflow repository service and
// workflow execution service) are exported as named servants on TCP
// endpoints; clients invoke them location-transparently through typed
// stubs, with automatic retry of idempotent invocations over temporary
// network failures — the system-level behaviour Section 3 assumes.
//
// The wire protocol is deliberately simple: length-delimited gob frames
// carrying (object, method, payload) requests and (error, payload)
// replies. Fault injection wraps the dialer (see internal/failure).
package orb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/timers"
)

// request is one invocation frame. Meta carries out-of-band call
// metadata (trace propagation: "trace-id", "span-id") without touching
// any method's argument type; gob encodes a nil map as empty, so frames
// from older clients decode with Meta == nil.
type request struct {
	Object string
	Method string
	Meta   map[string]string
	Arg    []byte
}

// response is one reply frame. AppErr distinguishes application errors
// (returned by the servant, not retried) from transport errors.
type response struct {
	AppErr string
	Reply  []byte
}

// ErrNoObject is returned for invocations on unregistered servants.
var ErrNoObject = errors.New("no such object")

// ErrNoMethod is returned for unknown methods of a servant.
var ErrNoMethod = errors.New("no such method")

// AppError wraps an error returned by a remote servant (as opposed to a
// transport failure). AppErrors are never retried.
type AppError struct{ Msg string }

// Error implements the error interface.
func (e *AppError) Error() string { return e.Msg }

// Handler executes one method of a servant.
type Handler func(arg []byte) ([]byte, error)

// MetaHandler executes one method of a servant with access to the
// request's call metadata (trace propagation). meta is nil when the
// caller sent none.
type MetaHandler func(meta map[string]string, arg []byte) ([]byte, error)

// Servant is a dispatch table of methods.
type Servant struct {
	mu          sync.RWMutex
	methods     map[string]Handler
	metaMethods map[string]MetaHandler
}

// NewServant returns an empty servant.
func NewServant() *Servant {
	return &Servant{methods: make(map[string]Handler), metaMethods: make(map[string]MetaHandler)}
}

// Handle registers a raw method handler.
func (s *Servant) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[method] = h
}

// HandleMeta registers a raw metadata-aware method handler.
func (s *Servant) HandleMeta(method string, h MetaHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metaMethods[method] = h
}

// dispatch runs one method.
func (s *Servant) dispatch(method string, meta map[string]string, arg []byte) ([]byte, error) {
	s.mu.RLock()
	mh, mok := s.metaMethods[method]
	h, ok := s.methods[method]
	s.mu.RUnlock()
	if mok {
		return mh(meta, arg)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMethod, method)
	}
	return h(arg)
}

// Method registers a typed method on a servant: the request and reply
// types are gob-encoded across the wire.
func Method[Req, Resp any](s *Servant, name string, f func(Req) (Resp, error)) {
	s.Handle(name, func(arg []byte) ([]byte, error) {
		var req Req
		if err := gob.NewDecoder(bytes.NewReader(arg)).Decode(&req); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", name, err)
		}
		resp, err := f(req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			return nil, fmt.Errorf("encode %s reply: %w", name, err)
		}
		return buf.Bytes(), nil
	})
}

// MethodMeta registers a typed method that also receives the request's
// call metadata — the servant-side half of trace propagation (the
// client sends metadata with InvokeMeta/CallMeta).
func MethodMeta[Req, Resp any](s *Servant, name string, f func(meta map[string]string, req Req) (Resp, error)) {
	s.HandleMeta(name, func(meta map[string]string, arg []byte) ([]byte, error) {
		var req Req
		if err := gob.NewDecoder(bytes.NewReader(arg)).Decode(&req); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", name, err)
		}
		resp, err := f(meta, req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			return nil, fmt.Errorf("encode %s reply: %w", name, err)
		}
		return buf.Bytes(), nil
	})
}

// Server exports servants on a TCP endpoint.
type Server struct {
	ln net.Listener
	wg sync.WaitGroup

	mu       sync.RWMutex
	servants map[string]*Servant
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer listens on addr (use "127.0.0.1:0" for an ephemeral port)
// and serves until Close.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb listen: %w", err)
	}
	return NewServerOn(ln), nil
}

// NewServerOn serves on an already-created listener — the seam for
// non-TCP transports (a MemNetwork listener puts a whole deployment in
// one process for the simulation harness). Close closes the listener.
func NewServerOn(ln net.Listener) *Server {
	s := &Server{ln: ln, servants: make(map[string]*Servant), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Register exports a servant under an object name.
func (s *Server) Register(object string, servant *Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[object] = servant
}

// Close stops accepting, severs open connections and waits for their
// handlers.
func (s *Server) Close() {
	s.Sever()
	s.wg.Wait()
}

// Sever stops accepting and severs every open connection without
// waiting for in-flight handlers. It exists for two-phase shutdown: a
// caller whose handlers are blocked on an external event (the
// simulation harness gates implementations on injected releases) must
// first cut the connections — so every peer observes a transport
// failure, never a late reply — then unblock the handlers, then Close
// to reap them. Calling Close alone in that situation would deadlock
// on its handler wait.
func (s *Server) Sever() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	_ = s.ln.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles sequential requests on one connection.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		s.mu.RLock()
		servant, ok := s.servants[req.Object]
		s.mu.RUnlock()
		var resp response
		if !ok {
			resp.AppErr = fmt.Sprintf("%v: %s", ErrNoObject, req.Object)
		} else {
			reply, err := servant.dispatch(req.Method, req.Meta, req.Arg)
			if err != nil {
				resp.AppErr = err.Error()
			} else {
				resp.Reply = reply
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Dialer opens transport connections; fault injectors substitute their
// own (see internal/failure).
type Dialer func(addr string) (net.Conn, error)

// ClientConfig tunes a client stub.
type ClientConfig struct {
	// Retries is the number of additional attempts after a transport
	// failure. Application errors are never retried. Default 3; any
	// negative value means no retries (a single attempt) — zero cannot
	// express that, it selects the default.
	Retries int
	// RetryDelay separates attempts. Default 10ms.
	RetryDelay time.Duration
	// Dialer overrides the transport (fault injection). Default net.Dial
	// with a 2s timeout.
	Dialer Dialer
	// CallTimeout bounds one attempt. Default 5s; any negative value
	// disables the per-attempt deadline — zero cannot express that, it
	// selects the default.
	CallTimeout time.Duration
	// Clock paces the retry backoff. Default timers.WallClock; tests
	// inject timers.FakeClock to drive retries without real sleeping.
	Clock timers.Clock
	// PerCallConn makes every invocation dial its own connection and
	// run concurrently with other invocations on the same client,
	// instead of pipelining over one cached connection under a mutex.
	// Required when servant handlers can block server-side for long,
	// caller-controlled periods (the simulation harness gates remote
	// activations until the driver releases them): with a shared
	// connection, a second concurrent invocation would queue behind the
	// blocked one instead of reaching the server.
	PerCallConn bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.Dialer == nil {
		c.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 5 * time.Second
	} else if c.CallTimeout < 0 {
		c.CallTimeout = 0
	}
	if c.Clock == nil {
		c.Clock = timers.WallClock{}
	}
	return c
}

// Client invokes servants on one endpoint. It keeps a single connection
// and re-dials transparently after transport failures; a mutex serialises
// invocations (the services' methods are coarse-grained, matching the
// paper's CORBA service granularity).
type Client struct {
	addr string
	cfg  ClientConfig

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	// stats
	retries int
}

// Dial returns a client for the endpoint. The connection is established
// lazily.
func Dial(addr string, cfg ClientConfig) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// Retries reports how many transport retries the client has performed
// (observability for the lossy-network experiments).
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
}

func (c *Client) reset() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.enc, c.dec = nil, nil
	}
}

func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.cfg.Dialer(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Invoke calls object.method with the gob-encoded arg, decoding the reply
// into reply (a pointer, or nil to discard). Transport failures are
// retried per the config; servant errors return as *AppError.
func (c *Client) Invoke(object, method string, arg, reply any) error {
	return c.InvokeMeta(object, method, nil, arg, reply)
}

// InvokeMeta is Invoke with out-of-band call metadata (trace
// propagation). Servants registered with MethodMeta/HandleMeta receive
// it; plain handlers ignore it.
func (c *Client) InvokeMeta(object, method string, meta map[string]string, arg, reply any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(arg); err != nil {
		return fmt.Errorf("encode %s.%s request: %w", object, method, err)
	}
	req := request{Object: object, Method: method, Meta: meta, Arg: buf.Bytes()}
	if c.cfg.PerCallConn {
		return c.invokePerCall(&req, object, method, reply)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries++
			// The backoff deliberately holds the client mutex: the mutex
			// serialises invocations, and a retrying call is the
			// client's one in-flight invocation.
			//wflint:allow locksafe client mutex serialises invocations; backoff is part of the one in-flight call
			<-c.cfg.Clock.Wake(c.cfg.Clock.Now().Add(c.cfg.RetryDelay))
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
			continue
		}
		resp, err := c.attempt(&req)
		if err != nil {
			lastErr = err
			c.reset()
			continue
		}
		return decodeReply(object, method, resp, reply)
	}
	return fmt.Errorf("invoke %s.%s after %d attempts: %w", object, method, c.cfg.Retries+1, lastErr)
}

// invokePerCall runs one invocation over its own freshly dialed
// connection, without holding the client mutex across the round-trip:
// concurrent invocations on the same client proceed independently (see
// ClientConfig.PerCallConn).
func (c *Client) invokePerCall(req *request, object, method string, reply any) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			<-c.cfg.Clock.Wake(c.cfg.Clock.Now().Add(c.cfg.RetryDelay))
		}
		conn, err := c.cfg.Dialer(c.addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := attemptOn(conn, req, c.cfg.CallTimeout)
		_ = conn.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return decodeReply(object, method, resp, reply)
	}
	return fmt.Errorf("invoke %s.%s after %d attempts: %w", object, method, c.cfg.Retries+1, lastErr)
}

// decodeReply unpacks a transport-successful response into the caller's
// reply value (servant errors surface as *AppError).
func decodeReply(object, method string, resp *response, reply any) error {
	if resp.AppErr != "" {
		return &AppError{Msg: resp.AppErr}
	}
	if reply == nil {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(resp.Reply)).Decode(reply); err != nil {
		return fmt.Errorf("decode %s.%s reply: %w", object, method, err)
	}
	return nil
}

// attemptOn performs one round-trip over a dedicated connection.
func attemptOn(conn net.Conn, req *request, timeout time.Duration) (*response, error) {
	if timeout > 0 {
		// Transport deadlines are kernel wall time: a live connection's
		// I/O budget stays real even under a fake clock.
		_ = conn.SetDeadline(timers.WallClock{}.Now().Add(timeout))
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("recv: connection closed: %w", err)
		}
		return nil, fmt.Errorf("recv: %w", err)
	}
	return &resp, nil
}

// attempt performs one round-trip under the call timeout.
func (c *Client) attempt(req *request) (*response, error) {
	if c.cfg.CallTimeout > 0 {
		// Transport deadlines are kernel wall time: a live TCP
		// connection's I/O budget stays real even under a fake clock.
		_ = c.conn.SetDeadline(timers.WallClock{}.Now().Add(c.cfg.CallTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("recv: connection closed: %w", err)
		}
		return nil, fmt.Errorf("recv: %w", err)
	}
	return &resp, nil
}

// Call is a typed convenience wrapper over Invoke.
func Call[Req, Resp any](c *Client, object, method string, req Req) (Resp, error) {
	var resp Resp
	err := c.Invoke(object, method, req, &resp)
	return resp, err
}

// CallMeta is a typed convenience wrapper over InvokeMeta.
func CallMeta[Req, Resp any](c *Client, object, method string, meta map[string]string, req Req) (Resp, error) {
	var resp Resp
	err := c.InvokeMeta(object, method, meta, req, &resp)
	return resp, err
}
