package orb

import (
	"fmt"
	"net"
	"sync"
)

// MemNetwork is an in-process transport: a registry of named listeners
// whose connections are synchronous in-memory pipes (net.Pipe). It is
// the transport seam the deterministic simulation harness
// (internal/sim) plugs into the orb — a whole coordinator + executors +
// naming deployment runs in one process with no sockets, no ports and
// no kernel timing, so a full-stack run is deterministic and completes
// in microseconds. Addresses are arbitrary strings ("mem:exec0");
// closing a listener refuses further dials to its address, and the
// address can be re-listened later (a "restarted" component comes back
// at the same place, like a daemon restarting on its port).
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen claims addr and returns the listener serving it. Listening on
// an address already in use fails, like a busy port.
func (n *MemNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, busy := n.listeners[addr]; busy {
		return nil, fmt.Errorf("memnet listen %s: address in use", addr)
	}
	l := &memListener{net: n, addr: addr, accept: make(chan net.Conn, 64), closed: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener serving addr; assign it as a client
// Dialer. Dialing an address nobody is listening on fails immediately
// (connection refused), which is what lets a simulated dispatcher fail
// over from a killed executor without any timeout.
func (n *MemNetwork) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memnet dial %s: connection refused", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("memnet dial %s: connection refused", addr)
	}
}

// memListener implements net.Listener over the accept queue.
type memListener struct {
	net    *MemNetwork
	addr   string
	accept chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("memnet accept %s: listener closed", l.addr)
	}
}

// Close implements net.Listener: it releases the address for re-listen
// and closes queued, never-accepted connections so their dialers see an
// immediate error instead of blocking on a pipe nobody will read.
func (l *memListener) Close() error {
	l.once.Do(func() {
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
		close(l.closed)
		for {
			select {
			case c := <-l.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

// memAddr is the net.Addr of an in-process endpoint.
type memAddr string

// Network implements net.Addr.
func (memAddr) Network() string { return "mem" }

// String implements net.Addr.
func (a memAddr) String() string { return string(a) }
