package orb_test

import (
	"testing"
	"time"

	"repro/internal/orb"
)

func TestLeaseGrantAndHolder(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	granted, holder, addr := n.AcquireLease("wf-part-0", "coord-a", "10.0.0.1:1", 5*time.Second)
	if !granted || holder != "coord-a" || addr != "10.0.0.1:1" {
		t.Fatalf("grant on a free lease = (%v, %q, %q)", granted, holder, addr)
	}
	h, a, held := n.LeaseHolder("wf-part-0")
	if !held || h != "coord-a" || a != "10.0.0.1:1" {
		t.Fatalf("LeaseHolder = (%q, %q, %v)", h, a, held)
	}
	// A live lease refuses a competing claim and reports the owner.
	granted, holder, addr = n.AcquireLease("wf-part-0", "coord-b", "10.0.0.2:2", 5*time.Second)
	if granted || holder != "coord-a" || addr != "10.0.0.1:1" {
		t.Fatalf("competing claim on a live lease = (%v, %q, %q)", granted, holder, addr)
	}
}

func TestLeaseRenewKeepsOwnership(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.AcquireLease("p", "coord-a", "a:1", 4*time.Second)
	// Renew at half-ttl forever: the competitor never gets in, even far
	// past the original deadline.
	for i := 0; i < 10; i++ {
		clock.Advance(2 * time.Second)
		if granted, _, _ := n.AcquireLease("p", "coord-a", "a:1", 4*time.Second); !granted {
			t.Fatalf("renewal %d refused for the current holder", i)
		}
		if granted, holder, _ := n.AcquireLease("p", "coord-b", "b:2", 4*time.Second); granted || holder != "coord-a" {
			t.Fatalf("competitor stole a renewed lease at step %d (holder=%q)", i, holder)
		}
	}
}

func TestLeaseMissedRenewalExpires(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.AcquireLease("p", "coord-a", "a:1", 3*time.Second)
	clock.Advance(4 * time.Second)
	if _, _, held := n.LeaseHolder("p"); held {
		t.Fatal("lease still held after the ttl lapsed without renewal")
	}
	if got := n.Leases(); len(got) != 0 {
		t.Fatalf("Leases = %v, want empty after expiry", got)
	}
}

func TestLeaseExpiredReGrantedToLivePeer(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.AcquireLease("p", "coord-a", "a:1", 3*time.Second)
	clock.Advance(4 * time.Second)
	// The steal: a peer claims the lapsed lease and becomes the owner.
	granted, holder, addr := n.AcquireLease("p", "coord-b", "b:2", 3*time.Second)
	if !granted || holder != "coord-b" || addr != "b:2" {
		t.Fatalf("steal of an expired lease = (%v, %q, %q)", granted, holder, addr)
	}
	// The late ex-owner is now the refused party.
	if granted, holder, _ := n.AcquireLease("p", "coord-a", "a:1", 3*time.Second); granted || holder != "coord-b" {
		t.Fatalf("ex-owner reclaimed a stolen lease (granted=%v holder=%q)", granted, holder)
	}
}

func TestLeaseReleaseIsHolderOnly(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.AcquireLease("p", "coord-a", "a:1", time.Minute)
	if n.ReleaseLease("p", "coord-b") {
		t.Fatal("non-holder release must be a no-op")
	}
	if _, _, held := n.LeaseHolder("p"); !held {
		t.Fatal("lease vanished after a non-holder release")
	}
	if !n.ReleaseLease("p", "coord-a") {
		t.Fatal("holder release refused")
	}
	// A graceful release frees the lease immediately, ahead of the ttl.
	if granted, _, _ := n.AcquireLease("p", "coord-b", "b:2", time.Minute); !granted {
		t.Fatal("released lease not re-grantable")
	}
}

// TestLeaseNoDoubleOwnershipFakeClock races two contenders over a
// shared lease on a FakeClock and checks the safety property end to
// end: a contender considers itself owner only inside the validity
// window it computed from its own clock *before* the acquire (the
// self-fencing rule), and at no instant may two contenders both be
// inside such a window. The schedule interleaves renewals, silent
// deaths (missed renewals), and steals across several hundred steps.
type leaseContender struct {
	id, addr string
	// validUntil is the self-fencing deadline: the contender acts as
	// owner only while now < validUntil.
	validUntil time.Time
}

func (c *leaseContender) owns(now time.Time) bool { return now.Before(c.validUntil) }

func (c *leaseContender) tryAcquire(n *orb.Naming, now time.Time, ttl time.Duration) {
	// The fencing deadline must be computed from the clock reading taken
	// before the request hits the arbiter; a slower path only shrinks
	// the window, never extends it past the arbiter's.
	deadline := now.Add(ttl)
	if granted, _, _ := n.AcquireLease("p", c.id, c.addr, ttl); granted {
		c.validUntil = deadline
	}
}

func TestLeaseNoDoubleOwnershipFakeClock(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	const ttl = 4 * time.Second
	a := &leaseContender{id: "coord-a", addr: "a:1"}
	b := &leaseContender{id: "coord-b", addr: "b:2"}

	// A deterministic pseudo-random schedule: each step advances the
	// clock and lets zero, one, or both contenders attempt an acquire.
	// Stretches where a contender stays silent long enough for its lease
	// to lapse are the interesting part — the peer must take over with
	// no overlap against the self-fenced ex-owner.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for step := 0; step < 500; step++ {
		r := next()
		clock.Advance(time.Duration(200+r%2800) * time.Millisecond)
		now := clock.Now()
		if a.owns(now) && b.owns(now) {
			t.Fatalf("step %d: double ownership (a until %v, b until %v, now %v)",
				step, a.validUntil, b.validUntil, now)
		}
		if r&(1<<8) != 0 {
			a.tryAcquire(n, now, ttl)
		}
		if r&(1<<9) != 0 {
			b.tryAcquire(n, now, ttl)
		}
		now = clock.Now()
		if a.owns(now) && b.owns(now) {
			t.Fatalf("step %d (post-acquire): double ownership (a until %v, b until %v)",
				step, a.validUntil, b.validUntil)
		}
	}
}

func TestLeaseVerbsOverOrb(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	naming := orb.NewNaming()
	srv.Register(orb.NamingObject, naming.Servant())

	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	nc := orb.NewNamingClient(c)

	granted, holder, addr, err := nc.AcquireLease("wf-part-3", "coord-a", "10.0.0.1:1", time.Minute)
	if err != nil || !granted || holder != "coord-a" || addr != "10.0.0.1:1" {
		t.Fatalf("remote acquire = (%v, %q, %q, %v)", granted, holder, addr, err)
	}
	granted, holder, addr, err = nc.AcquireLease("wf-part-3", "coord-b", "10.0.0.2:2", time.Minute)
	if err != nil || granted || holder != "coord-a" || addr != "10.0.0.1:1" {
		t.Fatalf("remote competing acquire = (%v, %q, %q, %v)", granted, holder, addr, err)
	}
	h, a, held, err := nc.LeaseHolder("wf-part-3")
	if err != nil || !held || h != "coord-a" || a != "10.0.0.1:1" {
		t.Fatalf("remote LeaseHolder = (%q, %q, %v, %v)", h, a, held, err)
	}
	leases, err := nc.Leases()
	if err != nil || len(leases) != 1 || leases[0].Name != "wf-part-3" || leases[0].Holder != "coord-a" {
		t.Fatalf("remote Leases = %v, %v", leases, err)
	}
	released, err := nc.ReleaseLease("wf-part-3", "coord-a")
	if err != nil || !released {
		t.Fatalf("remote release = %v, %v", released, err)
	}
	if _, _, held, _ := nc.LeaseHolder("wf-part-3"); held {
		t.Fatal("lease survives a remote release")
	}
}
