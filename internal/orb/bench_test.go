package orb_test

import (
	"testing"

	"repro/internal/orb"
)

func BenchmarkInvokeRoundTrip(b *testing.B) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	sv := orb.NewServant()
	orb.Method(sv, "echo", func(req echoReq) (echoResp, error) {
		return echoResp{Msg: req.Msg, N: req.N + 1}, nil
	})
	srv.Register("echo-object", sv)
	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()

	// Warm the connection.
	if _, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := orb.Call[echoReq, echoResp](c, "echo-object", "echo", echoReq{Msg: "payload", N: i})
		if err != nil {
			b.Fatal(err)
		}
		if resp.N != i+1 {
			b.Fatal("bad reply")
		}
	}
}
