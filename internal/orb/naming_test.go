package orb_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/orb"
)

// fakeClock is a manually advanced time source for expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestNamingMultiBindingResolveAll(t *testing.T) {
	n := orb.NewNaming()
	n.BindMember("workers", "10.0.0.1:1", 0)
	n.BindMember("workers", "10.0.0.2:2", 0)
	n.BindMember("workers", "10.0.0.3:3", 0)

	addrs, err := n.ResolveAll("workers")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.1:1", "10.0.0.2:2", "10.0.0.3:3"}
	if !reflect.DeepEqual(addrs, want) {
		t.Fatalf("ResolveAll = %v, want registration order %v", addrs, want)
	}
	// Resolve keeps the single-endpoint contract: first live member.
	addr, err := n.Resolve("workers")
	if err != nil || addr != "10.0.0.1:1" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}

	n.UnbindMember("workers", "10.0.0.2:2")
	addrs, _ = n.ResolveAll("workers")
	if !reflect.DeepEqual(addrs, []string{"10.0.0.1:1", "10.0.0.3:3"}) {
		t.Fatalf("after UnbindMember = %v", addrs)
	}
}

func TestNamingResolveSetOrderDeterministic(t *testing.T) {
	// Heartbeat refreshes must not reshuffle the set: ten rounds of
	// refreshes in arbitrary member order leave the resolve order as the
	// original registration order.
	n := orb.NewNaming()
	members := []string{"c:3", "a:1", "b:2"}
	for _, m := range members {
		n.BindMember("pool", m, time.Minute)
	}
	for round := 0; round < 10; round++ {
		for i := range members {
			n.BindMember("pool", members[(i+round)%len(members)], time.Minute)
		}
		addrs, err := n.ResolveAll("pool")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(addrs, members) {
			t.Fatalf("round %d: ResolveAll = %v, want stable %v", round, addrs, members)
		}
	}
}

func TestNamingHeartbeatExpiry(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.BindMember("pool", "a:1", 2*time.Second)
	n.BindMember("pool", "b:2", 10*time.Second)
	n.BindMember("pool", "c:3", 0) // permanent

	// Within every ttl: all live.
	addrs, _ := n.ResolveAll("pool")
	if len(addrs) != 3 {
		t.Fatalf("ResolveAll = %v", addrs)
	}

	// a's ttl lapses without a heartbeat; b refreshed in time.
	clock.Advance(3 * time.Second)
	n.BindMember("pool", "b:2", 10*time.Second)
	addrs, _ = n.ResolveAll("pool")
	if !reflect.DeepEqual(addrs, []string{"b:2", "c:3"}) {
		t.Fatalf("after a expired: %v", addrs)
	}

	// Everything but the permanent member lapses.
	clock.Advance(time.Hour)
	addrs, _ = n.ResolveAll("pool")
	if !reflect.DeepEqual(addrs, []string{"c:3"}) {
		t.Fatalf("after all ttls lapsed: %v", addrs)
	}
}

func TestNamingReRegisterAfterExpiryJoinsAtBack(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)

	n.BindMember("pool", "a:1", time.Second)
	n.BindMember("pool", "b:2", time.Hour)

	// a restarts after its registration lapsed: it re-enters as a new
	// registration at the back of the set.
	clock.Advance(2 * time.Second)
	n.BindMember("pool", "a:1", time.Hour)
	addrs, err := n.ResolveAll("pool")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(addrs, []string{"b:2", "a:1"}) {
		t.Fatalf("after re-register = %v, want expired member at the back", addrs)
	}
}

func TestNamingAllExpiredResolvesToError(t *testing.T) {
	clock := newFakeClock()
	n := orb.NewNaming()
	n.SetClock(clock.Now)
	n.BindMember("pool", "a:1", time.Second)
	clock.Advance(2 * time.Second)
	if _, err := n.ResolveAll("pool"); err == nil {
		t.Fatal("ResolveAll over an all-expired set must fail")
	}
	if _, err := n.Resolve("pool"); err == nil {
		t.Fatal("Resolve over an all-expired set must fail")
	}
	if names := n.Names(); len(names) != 0 {
		t.Fatalf("Names = %v, want empty", names)
	}
}

func TestNamingBindEntryReplacesWholeSet(t *testing.T) {
	n := orb.NewNaming()
	n.BindMember("svc", "a:1", 0)
	n.BindMember("svc", "b:2", 0)
	n.BindEntry("svc", "c:3")
	addrs, err := n.ResolveAll("svc")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(addrs, []string{"c:3"}) {
		t.Fatalf("BindEntry must replace the set, got %v", addrs)
	}
}

func TestNamingMemberMethodsOverOrb(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	naming := orb.NewNaming()
	srv.Register(orb.NamingObject, naming.Servant())

	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	nc := orb.NewNamingClient(c)

	if err := nc.BindMember("workers", "10.0.0.1:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := nc.BindMember("workers", "10.0.0.2:2", time.Minute); err != nil {
		t.Fatal(err)
	}
	addrs, err := nc.ResolveAll("workers")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(addrs, []string{"10.0.0.1:1", "10.0.0.2:2"}) {
		t.Fatalf("remote ResolveAll = %v", addrs)
	}
	if err := nc.UnbindMember("workers", "10.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	addrs, _ = nc.ResolveAll("workers")
	if !reflect.DeepEqual(addrs, []string{"10.0.0.2:2"}) {
		t.Fatalf("remote ResolveAll after unbindMember = %v", addrs)
	}
}

func TestNamingHeartbeatKeepsMemberAlive(t *testing.T) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	naming := orb.NewNaming()
	srv.Register(orb.NamingObject, naming.Servant())

	c := orb.Dial(srv.Addr(), orb.ClientConfig{})
	defer c.Close()
	nc := orb.NewNamingClient(c)

	// A short ttl with a much shorter refresh interval: the member must
	// stay resolvable well past several ttls, and disappear after stop.
	stop, err := nc.StartHeartbeat("workers", "10.0.0.7:7", 100*time.Millisecond, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := naming.ResolveAll("workers"); err != nil {
			t.Fatalf("member lapsed despite heartbeat: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	// Stop unbinds synchronously-ish (goroutine does it); wait briefly.
	gone := false
	for k := 0; k < 100; k++ {
		if _, err := naming.ResolveAll("workers"); err != nil {
			gone = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !gone {
		t.Fatal("member still bound after heartbeat stop")
	}
}
