package orb

import (
	"sort"
	"time"
)

// Leases extend the naming service's heartbeat/TTL liveness machinery
// from "who is alive" to "who owns what". A lease is an exclusive,
// time-bounded claim on a name: at most one holder is recorded per
// lease name at any instant, and the claim lapses unless the holder
// renews it within the TTL — exactly the binding-expiry rule, applied
// to ownership instead of membership.
//
// The three lifecycle verbs share one operation, AcquireLease:
//
//   - grant: no live lease exists → the caller becomes holder;
//   - renew: the caller already holds the lease → the deadline extends;
//   - steal: the recorded holder's lease has expired → the caller takes
//     over. A live lease is never stolen: acquisition by a non-holder
//     fails until the TTL lapses, which is what makes ownership safe to
//     act on between renewals.
//
// The naming service is the sole arbiter (its clock decides expiry);
// holders self-fence on their *local* clock by refusing to act past the
// last renewal's validity window, so a partitioned holder stops before
// the arbiter hands the lease to a peer.

// lease records the current claim on a lease name.
type lease struct {
	holder  string
	addr    string
	expires time.Time
}

// LeaseInfo is one live lease, as reported by Leases / the leaseList
// verb.
type LeaseInfo struct {
	Name   string
	Holder string
	Addr   string
}

// leaseLiveLocked returns the live lease for name, dropping it if
// expired. Callers hold mu.
func (n *Naming) leaseLiveLocked(name string) *lease {
	l := n.leases[name]
	if l == nil {
		return nil
	}
	if !l.expires.After(n.now()) {
		delete(n.leases, name)
		return nil
	}
	return l
}

// AcquireLease claims name for holder (reachable at addr) for ttl. It
// grants when no live lease exists, renews when holder already owns the
// lease, and steals when the recorded holder let its lease expire. It
// returns whether the claim succeeded plus the authoritative current
// holder and address (the caller itself on success, the live owner on
// refusal) so a refused caller learns where to route.
func (n *Naming) AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ttl <= 0 {
		ttl = time.Second
	}
	if l := n.leaseLiveLocked(name); l != nil && l.holder != holder {
		return false, l.holder, l.addr
	}
	n.leases[name] = &lease{holder: holder, addr: addr, expires: n.now().Add(ttl)}
	return true, holder, addr
}

// ReleaseLease withdraws holder's claim on name (a graceful handoff —
// e.g. rebalancing toward a preferred peer). It reports whether the
// lease was actually released; a release by a non-holder is a no-op, so
// a stale ex-owner cannot evict the current one.
func (n *Naming) ReleaseLease(name, holder string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leaseLiveLocked(name)
	if l == nil || l.holder != holder {
		return false
	}
	delete(n.leases, name)
	return true
}

// LeaseHolder reports the live holder of name, if any.
func (n *Naming) LeaseHolder(name string) (holder, addr string, held bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leaseLiveLocked(name)
	if l == nil {
		return "", "", false
	}
	return l.holder, l.addr, true
}

// AvoidLease records that addr must not be offered the lease for the
// next ttl — a holder that released name because it can no longer serve
// it (a wedged partition store) declares itself unfit, so peers exclude
// it from placement preference instead of handing the lease straight
// back to the sick node. The declaration is self-scoped: it never evicts
// a live holder, it only biases future placement, and it lapses at ttl
// unless refreshed (a node that restarts healthy stops refreshing and
// becomes eligible again).
func (n *Naming) AvoidLease(name, addr string, ttl time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ttl <= 0 {
		ttl = time.Second
	}
	m := n.avoids[name]
	if m == nil {
		m = make(map[string]time.Time)
		n.avoids[name] = m
	}
	m[addr] = n.now().Add(ttl)
}

// LeaseAvoiders reports every live avoidance declaration, keyed by lease
// name, each address set sorted. Expired declarations are dropped.
func (n *Naming) LeaseAvoiders() map[string][]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	out := make(map[string][]string)
	for name, m := range n.avoids {
		for addr, exp := range m {
			if !exp.After(now) {
				delete(m, addr)
				continue
			}
			out[name] = append(out[name], addr)
		}
		if len(m) == 0 {
			delete(n.avoids, name)
			continue
		}
		sort.Strings(out[name])
	}
	return out
}

// Leases lists every live lease, sorted by name.
func (n *Naming) Leases() []LeaseInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LeaseInfo, 0, len(n.leases))
	for name := range n.leases {
		if l := n.leaseLiveLocked(name); l != nil {
			out = append(out, LeaseInfo{Name: name, Holder: l.holder, Addr: l.addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// leaseAcquireReq and friends are the wire types of the lease verbs.
type leaseAcquireReq struct {
	Name   string
	Holder string
	Addr   string
	// TTLMillis bounds the claim; the holder must renew within it.
	TTLMillis int64
}

type leaseAcquireResp struct {
	Granted bool
	// Holder/Addr are the authoritative current owner — the caller on
	// success, the live holder on refusal.
	Holder string
	Addr   string
}

type leaseReleaseReq struct {
	Name   string
	Holder string
}

type leaseReleaseResp struct {
	Released bool
}

type leaseHolderReq struct {
	Name string
}

type leaseHolderResp struct {
	Holder string
	Addr   string
	Held   bool
}

type leaseListReq struct{}

type leaseListResp struct {
	Leases []LeaseInfo
}

type leaseAvoidReq struct {
	Name string
	Addr string
	// TTLMillis bounds the declaration; the avoider refreshes it while
	// the condition persists.
	TTLMillis int64
}

type leaseAvoidResp struct{}

type leaseAvoidersReq struct{}

// AvoiderSet is one lease's avoidance set on the wire (gob needs a
// concrete struct; a map of slices round-trips awkwardly across nil/
// empty).
type AvoiderSet struct {
	Name  string
	Addrs []string
}

type leaseAvoidersResp struct {
	Sets []AvoiderSet
}

// leaseVerbs registers the lease operations on the naming servant.
func (n *Naming) leaseVerbs(s *Servant) {
	Method(s, "leaseAcquire", func(req leaseAcquireReq) (leaseAcquireResp, error) {
		granted, holder, addr := n.AcquireLease(req.Name, req.Holder, req.Addr, time.Duration(req.TTLMillis)*time.Millisecond)
		return leaseAcquireResp{Granted: granted, Holder: holder, Addr: addr}, nil
	})
	Method(s, "leaseRelease", func(req leaseReleaseReq) (leaseReleaseResp, error) {
		return leaseReleaseResp{Released: n.ReleaseLease(req.Name, req.Holder)}, nil
	})
	Method(s, "leaseHolder", func(req leaseHolderReq) (leaseHolderResp, error) {
		holder, addr, held := n.LeaseHolder(req.Name)
		return leaseHolderResp{Holder: holder, Addr: addr, Held: held}, nil
	})
	Method(s, "leaseList", func(leaseListReq) (leaseListResp, error) {
		return leaseListResp{Leases: n.Leases()}, nil
	})
	Method(s, "leaseAvoid", func(req leaseAvoidReq) (leaseAvoidResp, error) {
		n.AvoidLease(req.Name, req.Addr, time.Duration(req.TTLMillis)*time.Millisecond)
		return leaseAvoidResp{}, nil
	})
	Method(s, "leaseAvoiders", func(leaseAvoidersReq) (leaseAvoidersResp, error) {
		avoiders := n.LeaseAvoiders()
		names := make([]string, 0, len(avoiders))
		for name := range avoiders {
			names = append(names, name)
		}
		sort.Strings(names)
		sets := make([]AvoiderSet, 0, len(names))
		for _, name := range names {
			sets = append(sets, AvoiderSet{Name: name, Addrs: avoiders[name]})
		}
		return leaseAvoidersResp{Sets: sets}, nil
	})
}

// AcquireLease claims a lease through a remote naming servant.
func (nc *NamingClient) AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string, err error) {
	resp, err := Call[leaseAcquireReq, leaseAcquireResp](nc.c, NamingObject, "leaseAcquire", leaseAcquireReq{
		Name: name, Holder: holder, Addr: addr, TTLMillis: ttl.Milliseconds(),
	})
	if err != nil {
		return false, "", "", err
	}
	return resp.Granted, resp.Holder, resp.Addr, nil
}

// ReleaseLease withdraws a claim through a remote naming servant.
func (nc *NamingClient) ReleaseLease(name, holder string) (bool, error) {
	resp, err := Call[leaseReleaseReq, leaseReleaseResp](nc.c, NamingObject, "leaseRelease", leaseReleaseReq{Name: name, Holder: holder})
	if err != nil {
		return false, err
	}
	return resp.Released, nil
}

// LeaseHolder reports a lease's live holder through a remote naming
// servant.
func (nc *NamingClient) LeaseHolder(name string) (holder, addr string, held bool, err error) {
	resp, err := Call[leaseHolderReq, leaseHolderResp](nc.c, NamingObject, "leaseHolder", leaseHolderReq{Name: name})
	if err != nil {
		return "", "", false, err
	}
	return resp.Holder, resp.Addr, resp.Held, nil
}

// Leases lists live leases through a remote naming servant.
func (nc *NamingClient) Leases() ([]LeaseInfo, error) {
	resp, err := Call[leaseListReq, leaseListResp](nc.c, NamingObject, "leaseList", leaseListReq{})
	if err != nil {
		return nil, err
	}
	return resp.Leases, nil
}

// AvoidLease declares addr unfit to hold name through a remote naming
// servant.
func (nc *NamingClient) AvoidLease(name, addr string, ttl time.Duration) error {
	_, err := Call[leaseAvoidReq, leaseAvoidResp](nc.c, NamingObject, "leaseAvoid", leaseAvoidReq{
		Name: name, Addr: addr, TTLMillis: ttl.Milliseconds(),
	})
	return err
}

// LeaseAvoiders fetches the live avoidance sets through a remote naming
// servant.
func (nc *NamingClient) LeaseAvoiders() (map[string][]string, error) {
	resp, err := Call[leaseAvoidersReq, leaseAvoidersResp](nc.c, NamingObject, "leaseAvoiders", leaseAvoidersReq{})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(resp.Sets))
	for _, s := range resp.Sets {
		out[s.Name] = s.Addrs
	}
	return out, nil
}
