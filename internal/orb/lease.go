package orb

import (
	"sort"
	"time"
)

// Leases extend the naming service's heartbeat/TTL liveness machinery
// from "who is alive" to "who owns what". A lease is an exclusive,
// time-bounded claim on a name: at most one holder is recorded per
// lease name at any instant, and the claim lapses unless the holder
// renews it within the TTL — exactly the binding-expiry rule, applied
// to ownership instead of membership.
//
// The three lifecycle verbs share one operation, AcquireLease:
//
//   - grant: no live lease exists → the caller becomes holder;
//   - renew: the caller already holds the lease → the deadline extends;
//   - steal: the recorded holder's lease has expired → the caller takes
//     over. A live lease is never stolen: acquisition by a non-holder
//     fails until the TTL lapses, which is what makes ownership safe to
//     act on between renewals.
//
// The naming service is the sole arbiter (its clock decides expiry);
// holders self-fence on their *local* clock by refusing to act past the
// last renewal's validity window, so a partitioned holder stops before
// the arbiter hands the lease to a peer.

// lease records the current claim on a lease name.
type lease struct {
	holder  string
	addr    string
	expires time.Time
}

// LeaseInfo is one live lease, as reported by Leases / the leaseList
// verb.
type LeaseInfo struct {
	Name   string
	Holder string
	Addr   string
}

// leaseLiveLocked returns the live lease for name, dropping it if
// expired. Callers hold mu.
func (n *Naming) leaseLiveLocked(name string) *lease {
	l := n.leases[name]
	if l == nil {
		return nil
	}
	if !l.expires.After(n.now()) {
		delete(n.leases, name)
		return nil
	}
	return l
}

// AcquireLease claims name for holder (reachable at addr) for ttl. It
// grants when no live lease exists, renews when holder already owns the
// lease, and steals when the recorded holder let its lease expire. It
// returns whether the claim succeeded plus the authoritative current
// holder and address (the caller itself on success, the live owner on
// refusal) so a refused caller learns where to route.
func (n *Naming) AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ttl <= 0 {
		ttl = time.Second
	}
	if l := n.leaseLiveLocked(name); l != nil && l.holder != holder {
		return false, l.holder, l.addr
	}
	n.leases[name] = &lease{holder: holder, addr: addr, expires: n.now().Add(ttl)}
	return true, holder, addr
}

// ReleaseLease withdraws holder's claim on name (a graceful handoff —
// e.g. rebalancing toward a preferred peer). It reports whether the
// lease was actually released; a release by a non-holder is a no-op, so
// a stale ex-owner cannot evict the current one.
func (n *Naming) ReleaseLease(name, holder string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leaseLiveLocked(name)
	if l == nil || l.holder != holder {
		return false
	}
	delete(n.leases, name)
	return true
}

// LeaseHolder reports the live holder of name, if any.
func (n *Naming) LeaseHolder(name string) (holder, addr string, held bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leaseLiveLocked(name)
	if l == nil {
		return "", "", false
	}
	return l.holder, l.addr, true
}

// Leases lists every live lease, sorted by name.
func (n *Naming) Leases() []LeaseInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LeaseInfo, 0, len(n.leases))
	for name := range n.leases {
		if l := n.leaseLiveLocked(name); l != nil {
			out = append(out, LeaseInfo{Name: name, Holder: l.holder, Addr: l.addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// leaseAcquireReq and friends are the wire types of the lease verbs.
type leaseAcquireReq struct {
	Name   string
	Holder string
	Addr   string
	// TTLMillis bounds the claim; the holder must renew within it.
	TTLMillis int64
}

type leaseAcquireResp struct {
	Granted bool
	// Holder/Addr are the authoritative current owner — the caller on
	// success, the live holder on refusal.
	Holder string
	Addr   string
}

type leaseReleaseReq struct {
	Name   string
	Holder string
}

type leaseReleaseResp struct {
	Released bool
}

type leaseHolderReq struct {
	Name string
}

type leaseHolderResp struct {
	Holder string
	Addr   string
	Held   bool
}

type leaseListReq struct{}

type leaseListResp struct {
	Leases []LeaseInfo
}

// leaseVerbs registers the lease operations on the naming servant.
func (n *Naming) leaseVerbs(s *Servant) {
	Method(s, "leaseAcquire", func(req leaseAcquireReq) (leaseAcquireResp, error) {
		granted, holder, addr := n.AcquireLease(req.Name, req.Holder, req.Addr, time.Duration(req.TTLMillis)*time.Millisecond)
		return leaseAcquireResp{Granted: granted, Holder: holder, Addr: addr}, nil
	})
	Method(s, "leaseRelease", func(req leaseReleaseReq) (leaseReleaseResp, error) {
		return leaseReleaseResp{Released: n.ReleaseLease(req.Name, req.Holder)}, nil
	})
	Method(s, "leaseHolder", func(req leaseHolderReq) (leaseHolderResp, error) {
		holder, addr, held := n.LeaseHolder(req.Name)
		return leaseHolderResp{Holder: holder, Addr: addr, Held: held}, nil
	})
	Method(s, "leaseList", func(leaseListReq) (leaseListResp, error) {
		return leaseListResp{Leases: n.Leases()}, nil
	})
}

// AcquireLease claims a lease through a remote naming servant.
func (nc *NamingClient) AcquireLease(name, holder, addr string, ttl time.Duration) (granted bool, curHolder, curAddr string, err error) {
	resp, err := Call[leaseAcquireReq, leaseAcquireResp](nc.c, NamingObject, "leaseAcquire", leaseAcquireReq{
		Name: name, Holder: holder, Addr: addr, TTLMillis: ttl.Milliseconds(),
	})
	if err != nil {
		return false, "", "", err
	}
	return resp.Granted, resp.Holder, resp.Addr, nil
}

// ReleaseLease withdraws a claim through a remote naming servant.
func (nc *NamingClient) ReleaseLease(name, holder string) (bool, error) {
	resp, err := Call[leaseReleaseReq, leaseReleaseResp](nc.c, NamingObject, "leaseRelease", leaseReleaseReq{Name: name, Holder: holder})
	if err != nil {
		return false, err
	}
	return resp.Released, nil
}

// LeaseHolder reports a lease's live holder through a remote naming
// servant.
func (nc *NamingClient) LeaseHolder(name string) (holder, addr string, held bool, err error) {
	resp, err := Call[leaseHolderReq, leaseHolderResp](nc.c, NamingObject, "leaseHolder", leaseHolderReq{Name: name})
	if err != nil {
		return "", "", false, err
	}
	return resp.Holder, resp.Addr, resp.Held, nil
}

// Leases lists live leases through a remote naming servant.
func (nc *NamingClient) Leases() ([]LeaseInfo, error) {
	resp, err := Call[leaseListReq, leaseListResp](nc.c, NamingObject, "leaseList", leaseListReq{})
	if err != nil {
		return nil, err
	}
	return resp.Leases, nil
}
