// Package lexer implements the scanner for the workflow scripting language.
//
// The scanner is hand rolled (no tooling dependencies) and deliberately
// forgiving about the typography found in the paper's listings: curly
// “smart quotes” are accepted as string delimiters in addition to plain
// double quotes, and both // line comments and /* block comments */ are
// recognised so scripts can be annotated.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/script/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a workflow script into tokens. The zero value is not usable;
// construct with New.
type Lexer struct {
	file   string
	src    []byte
	offset int // byte offset of ch
	next   int // byte offset after ch
	ch     rune
	line   int
	col    int

	errs []*Error
}

const eofRune = -1

// Smart-quote rune pairs accepted as string delimiters, because the paper's
// listings use typographic quotes (e.g. implementation { “code” is “...” }).
const (
	leftSmartQuote  = '“'
	rightSmartQuote = '”'
)

// New returns a Lexer over src. The file name is used only for positions.
func New(file string, src []byte) *Lexer {
	l := &Lexer{file: file, src: src, line: 1, col: 0}
	l.advance()
	return l
}

// Errors returns the lexical errors encountered so far, in source order.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Position, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// advance consumes the current rune and loads the next one, maintaining
// line/column bookkeeping.
func (l *Lexer) advance() {
	if l.ch == '\n' {
		l.line++
		l.col = 0
	}
	if l.next >= len(l.src) {
		l.offset = len(l.src)
		l.ch = eofRune
		l.col++
		return
	}
	r, size := rune(l.src[l.next]), 1
	if r >= utf8.RuneSelf {
		r, size = utf8.DecodeRune(l.src[l.next:])
		if r == utf8.RuneError && size == 1 {
			l.errorf(l.pos(), "invalid UTF-8 byte 0x%02x", l.src[l.next])
		}
	}
	l.offset = l.next
	l.next += size
	l.ch = r
	l.col++
}

func (l *Lexer) pos() token.Position {
	return token.Position{File: l.file, Offset: l.offset, Line: l.line, Column: l.col}
}

func (l *Lexer) skipSpace() {
	for l.ch != eofRune && unicode.IsSpace(l.ch) {
		l.advance()
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next returns the next token, emitting Comment tokens for comments and an
// EOF token at end of input. Errors are recorded (see Errors) and an
// Illegal token is produced so parsing can continue.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()

	switch {
	case l.ch == eofRune:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isIdentStart(l.ch):
		lit := l.scanIdent()
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case unicode.IsDigit(l.ch):
		return token.Token{Kind: token.Int, Lit: l.scanNumber(), Pos: pos}
	case l.ch == '"' || l.ch == leftSmartQuote:
		return l.scanString(pos)
	case l.ch == '/':
		return l.scanSlash(pos)
	}

	switch l.ch {
	case '{':
		l.advance()
		return token.Token{Kind: token.LBrace, Lit: "{", Pos: pos}
	case '}':
		l.advance()
		return token.Token{Kind: token.RBrace, Lit: "}", Pos: pos}
	case '(':
		l.advance()
		return token.Token{Kind: token.LParen, Lit: "(", Pos: pos}
	case ')':
		l.advance()
		return token.Token{Kind: token.RParen, Lit: ")", Pos: pos}
	case ';':
		l.advance()
		return token.Token{Kind: token.Semicolon, Lit: ";", Pos: pos}
	case ',':
		l.advance()
		return token.Token{Kind: token.Comma, Lit: ",", Pos: pos}
	}

	lit := string(l.ch)
	l.errorf(pos, "unexpected character %q", l.ch)
	l.advance()
	return token.Token{Kind: token.Illegal, Lit: lit, Pos: pos}
}

func (l *Lexer) scanIdent() string {
	start := l.offset
	for isIdentPart(l.ch) {
		l.advance()
	}
	return string(l.src[start:l.offset])
}

func (l *Lexer) scanNumber() string {
	start := l.offset
	for unicode.IsDigit(l.ch) {
		l.advance()
	}
	return string(l.src[start:l.offset])
}

// scanString scans a double-quoted or smart-quoted string literal. The
// literal value excludes the delimiters; backslash escapes \" and \\ are
// honoured inside plain-quoted strings.
func (l *Lexer) scanString(pos token.Position) token.Token {
	open := l.ch
	closing := '"'
	if open == leftSmartQuote {
		closing = rightSmartQuote
	}
	l.advance() // consume opening quote
	var buf []rune
	for {
		switch {
		case l.ch == eofRune || l.ch == '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.Illegal, Lit: string(buf), Pos: pos}
		case l.ch == '\\' && open == '"':
			l.advance()
			switch l.ch {
			case '"', '\\':
				buf = append(buf, l.ch)
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			default:
				l.errorf(l.pos(), "unknown escape sequence \\%c", l.ch)
				buf = append(buf, l.ch)
			}
			l.advance()
		case l.ch == closing || (closing == rightSmartQuote && l.ch == '"'):
			// Accept a plain quote closing a smart-quoted string; the
			// paper's listings mix both (e.g. “code “ is “ref...” ).
			l.advance()
			return token.Token{Kind: token.String, Lit: string(buf), Pos: pos}
		default:
			buf = append(buf, l.ch)
			l.advance()
		}
	}
}

// scanSlash scans // line comments and /* block comments */; a lone slash
// is illegal in this grammar.
func (l *Lexer) scanSlash(pos token.Position) token.Token {
	l.advance()
	switch l.ch {
	case '/':
		start := l.next
		for l.ch != eofRune && l.ch != '\n' {
			l.advance()
		}
		return token.Token{Kind: token.Comment, Lit: trimComment(string(l.src[start:l.offset])), Pos: pos}
	case '*':
		l.advance()
		start := l.offset
		for {
			if l.ch == eofRune {
				l.errorf(pos, "unterminated block comment")
				return token.Token{Kind: token.Illegal, Lit: "/*", Pos: pos}
			}
			if l.ch == '*' {
				end := l.offset
				l.advance()
				if l.ch == '/' {
					l.advance()
					return token.Token{Kind: token.Comment, Lit: string(l.src[start:end]), Pos: pos}
				}
				continue
			}
			l.advance()
		}
	default:
		l.errorf(pos, "unexpected character '/'")
		return token.Token{Kind: token.Illegal, Lit: "/", Pos: pos}
	}
}

func trimComment(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}

// ScanAll tokenises the whole input, excluding comments, and returns the
// tokens (terminated by EOF) plus any lexical errors.
func ScanAll(file string, src []byte) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		if t.Kind == token.Comment {
			continue
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
