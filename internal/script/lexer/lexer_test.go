package lexer_test

import (
	"strings"
	"testing"

	"repro/internal/script/lexer"
	"repro/internal/script/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func scan(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, errs := lexer.ScanAll("test", []byte(src))
	if len(errs) > 0 {
		t.Fatalf("scan errors: %v", errs)
	}
	return toks
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := scan(t, "task paymentCapture of taskclass PaymentCapture")
	want := []token.Kind{token.KwTask, token.Ident, token.KwOf, token.KwTaskClass, token.Ident, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], toks)
		}
	}
	if toks[1].Lit != "paymentCapture" || toks[4].Lit != "PaymentCapture" {
		t.Errorf("literals: %q, %q", toks[1].Lit, toks[4].Lit)
	}
}

func TestAllKeywords(t *testing.T) {
	src := "class taskclass task compoundtask tasktemplate parameters implementation is " +
		"inputs input inputobject outputs output outputobject outcome abort repeat mark notification from of if"
	toks := scan(t, src)
	for _, tok := range toks[:len(toks)-1] {
		if !tok.Kind.IsKeyword() {
			t.Errorf("%q lexed as %v, want keyword", tok.Lit, tok.Kind)
		}
	}
}

func TestStringsPlainAndSmartQuotes(t *testing.T) {
	// The paper's listings use typographic quotes; both must work.
	toks := scan(t, `implementation { "code" is "SETPaymentCapture" }`)
	if toks[2].Kind != token.String || toks[2].Lit != "code" {
		t.Fatalf("plain string: %v", toks[2])
	}
	toks = scan(t, "implementation { “code” is “SETPaymentCapture” }")
	if toks[2].Kind != token.String || toks[2].Lit != "code" {
		t.Fatalf("smart-quoted string: %v", toks[2])
	}
	// Mixed closing (the paper has “code “ with a trailing space).
	toks = scan(t, "{ “code ” is “x” }")
	if toks[1].Kind != token.String || strings.TrimSpace(toks[1].Lit) != "code" {
		t.Fatalf("mixed: %v", toks[1])
	}
}

func TestStringEscapes(t *testing.T) {
	toks := scan(t, `"a\"b\\c\nd"`)
	if toks[0].Lit != "a\"b\\c\nd" {
		t.Fatalf("escapes: %q", toks[0].Lit)
	}
}

func TestComments(t *testing.T) {
	src := `
// a line comment
task t1 /* inline */ of taskclass C
/* multi
   line */
`
	toks, errs := lexer.ScanAll("test", []byte(src))
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	// ScanAll filters comments.
	got := kinds(toks)
	want := []token.Kind{token.KwTask, token.Ident, token.KwOf, token.KwTaskClass, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := scan(t, "task t1\n  of x")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("task at %v", toks[0].Pos)
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Column != 3 {
		t.Errorf("of at %v, want 2:3", toks[2].Pos)
	}
	if s := toks[2].Pos.String(); s != "test:2:3" {
		t.Errorf("pos string = %q", s)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"unterminated`, "unterminated string"},
		{"/* open", "unterminated block comment"},
		{"@", "unexpected character"},
		{"/x", "unexpected character '/'"},
	}
	for _, tc := range cases {
		_, errs := lexer.ScanAll("test", []byte(tc.src))
		if len(errs) == 0 {
			t.Errorf("%q: expected error %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(errs[0].Error(), tc.want) {
			t.Errorf("%q: error = %v, want substring %q", tc.src, errs[0], tc.want)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := scan(t, "42 007")
	if toks[0].Kind != token.Int || toks[0].Lit != "42" {
		t.Errorf("int: %v", toks[0])
	}
	if toks[1].Lit != "007" {
		t.Errorf("int: %v", toks[1])
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks := scan(t, "task tâche of taskclass Tâche")
	if toks[1].Lit != "tâche" {
		t.Errorf("unicode ident: %v", toks[1])
	}
}
