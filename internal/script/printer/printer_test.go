package printer_test

import (
	"strings"
	"testing"

	"repro/internal/script/parser"
	"repro/internal/script/printer"
	"repro/internal/script/sema"
	"repro/internal/scripts"
)

// TestRoundTrip checks print(parse(s)) is a fixed point: parsing the
// canonical output and printing again must be byte-identical, and the
// reprinted script must compile to a schema with identical statistics.
func TestRoundTrip(t *testing.T) {
	for name, src := range scripts.All {
		t.Run(name, func(t *testing.T) {
			s1, err := parser.Parse(name, []byte(src))
			if err != nil {
				t.Fatal(err)
			}
			out1 := printer.Fprint(s1)
			s2, err := parser.Parse(name+"-reprint", []byte(out1))
			if err != nil {
				t.Fatalf("reparse canonical form: %v\n---\n%s", err, out1)
			}
			out2 := printer.Fprint(s2)
			if out1 != out2 {
				t.Fatalf("printer is not a fixed point for %s", name)
			}
			sch1, err := sema.Compile(s1)
			if err != nil {
				t.Fatal(err)
			}
			sch2, err := sema.Compile(s2)
			if err != nil {
				t.Fatalf("canonical form fails checking: %v", err)
			}
			if sch1.Stats() != sch2.Stats() {
				t.Fatalf("schema stats changed across round trip:\n%+v\n%+v", sch1.Stats(), sch2.Stats())
			}
		})
	}
}

func TestPrintContainsConstructs(t *testing.T) {
	s := parser.MustParse("trip", []byte(scripts.BusinessTrip))
	out := printer.Fprint(s)
	for _, want := range []string{
		"compoundtask tripReservation of taskclass TripReservation",
		"repeat outcome retry",
		"mark toPay",
		"abort outcome reserveFailed",
		"notification from",
		"outputobject cost from",
		`implementation { "code" is "refHotelReservation" };`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed script lacks %q", want)
		}
	}
}

func TestPrintTemplate(t *testing.T) {
	s := parser.MustParse("tmpl", []byte(scripts.PaymentTemplate))
	out := printer.Fprint(s)
	for _, want := range []string{
		"tasktemplate task captureTemplate of taskclass Capture",
		"parameters { upstream };",
		"captureA of tasktemplate captureTemplate(authA);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed template lacks %q\n%s", want, out)
		}
	}
}

func TestDOT(t *testing.T) {
	schema := sema.MustCompileSource("po", []byte(scripts.ProcessOrder))
	dot := printer.DOT(schema)
	for _, want := range []string{
		"digraph workflow",
		`subgraph "cluster_processOrderApplication"`,
		// Atomic task rendered with the double-border analogue.
		"box3d",
		// Dataflow edges are solid and labelled; notifications dotted.
		"style=dotted",
		`label="stockInfo"`,
		`"processOrderApplication/paymentAuthorisation" -> "processOrderApplication/dispatch"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output lacks %q", want)
		}
	}
	// Alternative priorities appear on multi-source dependencies.
	trip := sema.MustCompileSource("trip", []byte(scripts.BusinessTrip))
	dot = printer.DOT(trip)
	if !strings.Contains(dot, "alt1") {
		t.Error("DOT output lacks alternative-priority annotation")
	}
}
