// Package printer renders parsed workflow scripts back to canonical
// concrete syntax (a formatter, enabling text round-trips) and emits the
// Graphviz DOT form of a compiled schema — the "graphical programming
// environment" view the paper describes, with dotted arcs for
// notification dependencies and solid arcs for dataflow (Fig. 1).
package printer

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/script/ast"
)

// Fprint renders the script in canonical form.
func Fprint(script *ast.Script) string {
	var p printer
	for i, d := range script.Decls {
		if i > 0 {
			p.line("")
		}
		p.decl(d)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(s string) {
	if s != "" {
		p.b.WriteString(strings.Repeat("    ", p.indent))
		p.b.WriteString(s)
	}
	p.b.WriteByte('\n')
}

func (p *printer) open(s string) {
	p.line(s)
	p.line("{")
	p.indent++
}

func (p *printer) close(trailingSemi bool) {
	p.indent--
	if trailingSemi {
		p.line("};")
	} else {
		p.line("}")
	}
}

func (p *printer) decl(d ast.Decl) {
	switch x := d.(type) {
	case *ast.ClassDecl:
		if x.Super != "" {
			p.line("class " + x.Name + " of class " + x.Super + ";")
		} else {
			p.line("class " + x.Name + ";")
		}
	case *ast.TaskClassDecl:
		p.taskClass(x)
	case *ast.TaskDecl:
		p.task(x, true)
	case *ast.TaskTemplateDecl:
		p.template(x)
	case *ast.TemplateInstDecl:
		p.line(fmt.Sprintf("%s of tasktemplate %s(%s);", x.Name, x.Template, strings.Join(x.Args, ", ")))
	}
}

func (p *printer) taskClass(d *ast.TaskClassDecl) {
	p.open("taskclass " + d.Name)
	p.open("inputs")
	for i, in := range d.Inputs {
		p.open("input " + in.Name)
		for j, f := range in.Objects {
			p.field(f, j == len(in.Objects)-1)
		}
		p.close(i != len(d.Inputs)-1)
	}
	p.close(true)
	p.open("outputs")
	for i, out := range d.Outputs {
		p.open(out.Kind.String() + " " + out.Name)
		for j, f := range out.Objects {
			p.field(f, j == len(out.Objects)-1)
		}
		p.close(i != len(d.Outputs)-1)
	}
	p.close(false)
	p.close(true)
}

func (p *printer) field(f *ast.ObjectField, last bool) {
	s := fmt.Sprintf("%s of class %s", f.Name, f.Class)
	if !last {
		s += ";"
	}
	p.line(s)
}

func (p *printer) task(d *ast.TaskDecl, top bool) {
	kw := "task"
	if d.Compound {
		kw = "compoundtask"
	}
	p.open(fmt.Sprintf("%s %s of taskclass %s", kw, d.Name, d.Class))
	if len(d.Implementation) > 0 {
		pairs := make([]string, len(d.Implementation))
		for i, kv := range d.Implementation {
			pairs[i] = fmt.Sprintf("%q is %q", kv.Key, kv.Value)
		}
		p.line("implementation { " + strings.Join(pairs, "; ") + " };")
	}
	if len(d.Inputs) > 0 {
		p.open("inputs")
		for i, in := range d.Inputs {
			p.inputSet(in, i == len(d.Inputs)-1)
		}
		p.close(true)
	}
	for _, c := range d.Constituents {
		switch x := c.(type) {
		case *ast.TaskDecl:
			p.task(x, false)
		case *ast.TemplateInstDecl:
			p.line(fmt.Sprintf("%s of tasktemplate %s(%s);", x.Name, x.Template, strings.Join(x.Args, ", ")))
		}
	}
	if len(d.Outputs) > 0 {
		p.open("outputs")
		for i, ob := range d.Outputs {
			p.outputBinding(ob, i == len(d.Outputs)-1)
		}
		p.close(false)
	}
	if top {
		p.close(true)
	} else {
		p.close(true)
	}
}

func (p *printer) inputSet(b *ast.InputSetBinding, last bool) {
	p.open("input " + b.Name)
	for i, dep := range b.Deps {
		p.dep(dep, i == len(b.Deps)-1, "inputobject")
	}
	p.close(!last)
}

func (p *printer) outputBinding(b *ast.OutputBinding, last bool) {
	p.open(b.Kind.String() + " " + b.Name)
	for i, dep := range b.Deps {
		p.dep(dep, i == len(b.Deps)-1, "outputobject")
	}
	p.close(!last)
}

func (p *printer) dep(d ast.InputDep, last bool, objKw string) {
	switch x := d.(type) {
	case *ast.ObjectDep:
		p.open(fmt.Sprintf("%s %s from", objKw, x.Name))
		for i, s := range x.Sources {
			p.source(s, i == len(x.Sources)-1)
		}
		p.close(!last)
	case *ast.NotificationDep:
		p.open("notification from")
		for i, s := range x.Sources {
			p.source(s, i == len(x.Sources)-1)
		}
		p.close(!last)
	}
}

func (p *printer) source(s *ast.SourceRef, last bool) {
	var b strings.Builder
	if s.Object != "" {
		b.WriteString(s.Object)
		b.WriteString(" of ")
	}
	b.WriteString("task ")
	b.WriteString(s.Task)
	switch s.Cond {
	case ast.CondInput:
		b.WriteString(" if input " + s.CondName)
	case ast.CondOutput:
		b.WriteString(" if output " + s.CondName)
	}
	if !last {
		b.WriteString(";")
	}
	p.line(b.String())
}

func (p *printer) template(d *ast.TaskTemplateDecl) {
	kw := "task"
	if d.Body.Compound {
		kw = "compoundtask"
	}
	p.open(fmt.Sprintf("tasktemplate %s %s of taskclass %s", kw, d.Name, d.Body.Class))
	p.line("parameters { " + strings.Join(d.Params, "; ") + " };")
	// Reuse the task body printing by rendering a copy without the header.
	body := *d.Body
	if len(body.Implementation) > 0 {
		pairs := make([]string, len(body.Implementation))
		for i, kv := range body.Implementation {
			pairs[i] = fmt.Sprintf("%q is %q", kv.Key, kv.Value)
		}
		p.line("implementation { " + strings.Join(pairs, "; ") + " };")
	}
	if len(body.Inputs) > 0 {
		p.open("inputs")
		for i, in := range body.Inputs {
			p.inputSet(in, i == len(body.Inputs)-1)
		}
		p.close(true)
	}
	for _, c := range body.Constituents {
		switch x := c.(type) {
		case *ast.TaskDecl:
			p.task(x, false)
		case *ast.TemplateInstDecl:
			p.line(fmt.Sprintf("%s of tasktemplate %s(%s);", x.Name, x.Template, strings.Join(x.Args, ", ")))
		}
	}
	if len(body.Outputs) > 0 {
		p.open("outputs")
		for i, ob := range body.Outputs {
			p.outputBinding(ob, i == len(body.Outputs)-1)
		}
		p.close(false)
	}
	p.close(true)
}

// DOT renders the compiled schema as a Graphviz digraph: one cluster per
// compound task, solid edges for dataflow dependencies and dotted edges
// for notifications, matching the visual conventions of the paper's
// figures.
func DOT(s *core.Schema) string {
	var b strings.Builder
	b.WriteString("digraph workflow {\n")
	b.WriteString("    rankdir=LR;\n")
	b.WriteString("    node [shape=box, fontname=\"Helvetica\"];\n")
	id := func(t *core.Task) string {
		return `"` + strings.ReplaceAll(t.Path(), `"`, `\"`) + `"`
	}
	var emitTask func(t *core.Task, indent string)
	emitTask = func(t *core.Task, indent string) {
		if t.Compound {
			fmt.Fprintf(&b, "%ssubgraph \"cluster_%s\" {\n", indent, t.Path())
			fmt.Fprintf(&b, "%s    label=%q;\n", indent, t.Name)
			fmt.Fprintf(&b, "%s    style=rounded; color=grey;\n", indent)
			fmt.Fprintf(&b, "%s    %s [label=%q, style=dashed];\n", indent, id(t), t.Name+" (io)")
			for _, c := range t.Constituents {
				emitTask(c, indent+"    ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
			return
		}
		shape := "box"
		if t.Atomic() {
			shape = "box3d" // double border in the paper's figures
		}
		fmt.Fprintf(&b, "%s%s [label=%q, shape=%s];\n", indent, id(t), t.Name, shape)
	}
	for _, t := range s.Tasks {
		emitTask(t, "    ")
	}
	for _, e := range s.Edges() {
		style := "solid"
		label := e.Object
		if e.Object == "" {
			style = "dotted"
		}
		attrs := fmt.Sprintf("style=%s", style)
		if label != "" {
			attrs += fmt.Sprintf(", label=%q", label)
		}
		if e.AltIndex > 0 {
			attrs += fmt.Sprintf(", color=grey, taillabel=\"alt%d\"", e.AltIndex)
		}
		fmt.Fprintf(&b, "    %s -> %s [%s];\n", id(e.From), id(e.To), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
