// Package sema performs semantic analysis of parsed workflow scripts and
// compiles them into the core schema model.
//
// The checks implement the static rules implied by Section 4 of the
// paper: declared-before-use of object and task classes, conformance of
// task instances to their task classes, resolution of dependency sources
// to in-scope tasks (siblings, the enclosing compound, or the task itself
// for repeat feedback), class compatibility of flowing objects (including
// the optional sub-typing extension of Section 7: a sub-class object may
// flow into a super-class slot), the atomicity rules (an abort outcome
// makes a task atomic; an atomic task cannot declare marks; repeat
// outcomes of other tasks are not usable as inputs), coverage of input
// sets and compound output mappings, and acyclicity of each compound
// scope. Task templates are expanded before compilation.
package sema

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/script/ast"
	"repro/internal/script/parser"
	"repro/internal/script/token"
)

// Error is a semantic diagnostic with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is an ordered collection of semantic errors.
type ErrorList []*Error

// Error renders up to ten errors, one per line.
func (l ErrorList) Error() string {
	const maxShown = 10
	var b strings.Builder
	for i, e := range l {
		if i == maxShown {
			fmt.Fprintf(&b, "... and %d more errors", len(l)-maxShown)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil if empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

type checker struct {
	script    *ast.Script
	schema    *core.Schema
	templates map[string]*ast.TaskTemplateDecl
	errs      ErrorList
}

// Compile type-checks script and builds the compiled schema. On error the
// partial schema is still returned for tooling that wants best-effort
// inspection.
func Compile(script *ast.Script) (*core.Schema, error) {
	c := &checker{
		script:    script,
		schema:    &core.Schema{Name: script.File},
		templates: make(map[string]*ast.TaskTemplateDecl),
	}
	c.collectClasses()
	c.collectTaskClasses()
	c.collectTemplates()
	c.compileTasks()
	if len(c.errs) == 0 {
		if err := c.schema.CheckCycles(); err != nil {
			c.errs = append(c.errs, &Error{Pos: token.Position{File: script.File}, Msg: err.Error()})
		}
	}
	return c.schema, c.errs.Err()
}

// CompileSource parses and compiles a script in one step.
func CompileSource(name string, src []byte) (*core.Schema, error) {
	s, err := parser.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	schema, err := Compile(s)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	schema.Source = string(src)
	return schema, nil
}

// MustCompileSource is CompileSource that panics on error; for tests and
// embedded known-good scripts.
func MustCompileSource(name string, src []byte) *core.Schema {
	schema, err := CompileSource(name, src)
	if err != nil {
		panic(fmt.Sprintf("sema.MustCompileSource(%s): %v", name, err))
	}
	return schema
}

func (c *checker) errorf(pos token.Position, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) collectClasses() {
	seen := make(map[string]bool)
	c.schema.Superclasses = make(map[string]string)
	// Pass 1: names (so super-class references may be forward).
	for _, d := range c.script.Classes() {
		if seen[d.Name] {
			c.errorf(d.Pos(), "duplicate class %s", d.Name)
			continue
		}
		seen[d.Name] = true
		c.schema.Classes = append(c.schema.Classes, d.Name)
	}
	// Pass 2: the sub-typing hierarchy (Section 7 extension).
	for _, d := range c.script.Classes() {
		if d.Super == "" {
			continue
		}
		if !seen[d.Super] {
			c.errorf(d.Pos(), "class %s: undeclared superclass %s", d.Name, d.Super)
			continue
		}
		if d.Super == d.Name {
			c.errorf(d.Pos(), "class %s cannot be its own superclass", d.Name)
			continue
		}
		c.schema.Superclasses[d.Name] = d.Super
	}
	// Reject cycles in the hierarchy.
	for _, name := range c.schema.Classes {
		slow, fast := name, c.schema.Superclasses[name]
		for fast != "" {
			if fast == slow {
				c.errorf(token.Position{File: c.script.File}, "class hierarchy cycle involving %s", name)
				delete(c.schema.Superclasses, name)
				break
			}
			slow = c.schema.Superclasses[slow]
			fast = c.schema.Superclasses[c.schema.Superclasses[fast]]
		}
	}
}

func (c *checker) collectTaskClasses() {
	for _, d := range c.script.TaskClasses() {
		if c.schema.TaskClass(d.Name) != nil {
			c.errorf(d.Pos(), "duplicate taskclass %s", d.Name)
			continue
		}
		tc := &core.TaskClass{Name: d.Name}
		setSeen := make(map[string]bool)
		for _, in := range d.Inputs {
			if setSeen[in.Name] {
				c.errorf(in.Pos(), "taskclass %s: duplicate input set %s", d.Name, in.Name)
				continue
			}
			setSeen[in.Name] = true
			set := &core.InputSetDecl{Name: in.Name}
			fieldSeen := make(map[string]bool)
			for _, f := range in.Objects {
				if fieldSeen[f.Name] {
					c.errorf(f.Pos(), "taskclass %s input %s: duplicate object %s", d.Name, in.Name, f.Name)
					continue
				}
				fieldSeen[f.Name] = true
				c.checkClassRef(f.Pos(), f.Class)
				set.Objects = append(set.Objects, core.Field{Name: f.Name, Class: f.Class})
			}
			tc.InputSets = append(tc.InputSets, set)
		}
		outSeen := make(map[string]bool)
		hasAbort, hasMark := false, false
		var markPos, abortPos token.Position
		for _, out := range d.Outputs {
			if outSeen[out.Name] {
				c.errorf(out.Pos(), "taskclass %s: duplicate output %s", d.Name, out.Name)
				continue
			}
			outSeen[out.Name] = true
			o := &core.Output{Kind: kindOf(out.Kind), Name: out.Name}
			switch o.Kind {
			case core.AbortOutcome:
				hasAbort, abortPos = true, out.Pos()
			case core.Mark:
				hasMark, markPos = true, out.Pos()
			}
			fieldSeen := make(map[string]bool)
			for _, f := range out.Objects {
				if fieldSeen[f.Name] {
					c.errorf(f.Pos(), "taskclass %s output %s: duplicate object %s", d.Name, out.Name, f.Name)
					continue
				}
				fieldSeen[f.Name] = true
				c.checkClassRef(f.Pos(), f.Class)
				o.Objects = append(o.Objects, core.Field{Name: f.Name, Class: f.Class})
			}
			tc.Outputs = append(tc.Outputs, o)
		}
		// Section 4.2: an abort outcome declares the task atomic, and an
		// atomic task can produce outputs only after it commits, so marks
		// are incompatible with abort outcomes at the class level.
		if hasAbort && hasMark {
			pos := markPos
			if !pos.IsValid() {
				pos = abortPos
			}
			c.errorf(pos, "taskclass %s: atomic task class (has abort outcome) cannot declare mark outputs", d.Name)
		}
		c.schema.TaskClasses = append(c.schema.TaskClasses, tc)
	}
}

func (c *checker) checkClassRef(pos token.Position, name string) {
	if !c.schema.Class(name) {
		c.errorf(pos, "undeclared class %s", name)
	}
}

func kindOf(k ast.OutputKind) core.OutputKind {
	switch k {
	case ast.Outcome:
		return core.Outcome
	case ast.AbortOutcome:
		return core.AbortOutcome
	case ast.RepeatOutcome:
		return core.RepeatOutcome
	case ast.Mark:
		return core.Mark
	default:
		return core.Outcome
	}
}

func (c *checker) collectTemplates() {
	for _, d := range c.script.Templates() {
		if _, dup := c.templates[d.Name]; dup {
			c.errorf(d.Pos(), "duplicate tasktemplate %s", d.Name)
			continue
		}
		seen := make(map[string]bool)
		for _, p := range d.Params {
			if seen[p] {
				c.errorf(d.Pos(), "tasktemplate %s: duplicate parameter %s", d.Name, p)
			}
			seen[p] = true
		}
		c.templates[d.Name] = d
	}
}

// compileTasks builds the top-level task instances (templates already
// collected). Compilation is two-phase per scope: first task shells are
// created so forward references resolve, then dependencies are resolved.
func (c *checker) compileTasks() {
	var decls []*ast.TaskDecl
	for _, d := range c.script.Decls {
		switch x := d.(type) {
		case *ast.TaskDecl:
			decls = append(decls, x)
		case *ast.TemplateInstDecl:
			if inst := c.expandTemplate(x); inst != nil {
				decls = append(decls, inst)
			}
		}
	}
	c.schema.Tasks = c.compileScope(nil, decls)
}

// compileScope compiles the sibling declarations of one scope (top level
// or a compound body) with parent as the enclosing compound.
func (c *checker) compileScope(parent *core.Task, decls []*ast.TaskDecl) []*core.Task {
	return c.compileScopeSeeded(parent, decls, nil)
}

// compileScopeSeeded is compileScope with pre-existing sibling tasks
// visible for name resolution; fragment compilation (dynamic
// reconfiguration) seeds it with the constituents already in the scope.
func (c *checker) compileScopeSeeded(parent *core.Task, decls []*ast.TaskDecl, seed map[string]*core.Task) []*core.Task {
	// Phase 1: shells.
	tasks := make([]*core.Task, 0, len(decls))
	byName := make(map[string]*core.Task, len(decls)+len(seed))
	for k, v := range seed {
		byName[k] = v
	}
	kept := make([]*ast.TaskDecl, 0, len(decls))
	for _, d := range decls {
		if _, dup := byName[d.Name]; dup {
			c.errorf(d.Pos(), "duplicate task %s", d.Name)
			continue
		}
		tc := c.schema.TaskClass(d.Class)
		if tc == nil {
			c.errorf(d.Pos(), "task %s: undeclared taskclass %s", d.Name, d.Class)
			continue
		}
		t := &core.Task{
			Name:           d.Name,
			Class:          tc,
			Compound:       d.Compound,
			Implementation: make(map[string]string, len(d.Implementation)),
			Parent:         parent,
		}
		for _, p := range d.Implementation {
			if _, dup := t.Implementation[p.Key]; dup {
				c.errorf(p.Pos(), "task %s: duplicate implementation key %q", d.Name, p.Key)
			}
			t.Implementation[p.Key] = p.Value
		}
		if !d.Compound && len(d.Constituents) > 0 {
			c.errorf(d.Pos(), "task %s: plain task cannot have constituents", d.Name)
		}
		byName[d.Name] = t
		tasks = append(tasks, t)
		kept = append(kept, d)
	}

	// Phase 2: constituents (recursively), then dependency resolution.
	for i, d := range kept {
		t := tasks[i]
		if d.Compound {
			var sub []*ast.TaskDecl
			for _, cd := range d.Constituents {
				switch x := cd.(type) {
				case *ast.TaskDecl:
					sub = append(sub, x)
				case *ast.TemplateInstDecl:
					if inst := c.expandTemplate(x); inst != nil {
						sub = append(sub, inst)
					}
				default:
					c.errorf(cd.Pos(), "compound task %s: unexpected constituent declaration", d.Name)
				}
			}
			t.Constituents = c.compileScope(t, sub)
		}
	}
	for i, d := range kept {
		c.resolveTask(tasks[i], d, byName)
	}
	return tasks
}

// scopeLookup resolves a task name from the perspective of t: itself, a
// sibling, or any ancestor compound.
func scopeLookup(t *core.Task, siblings map[string]*core.Task, name string) *core.Task {
	if t.Name == name {
		return t
	}
	if s, ok := siblings[name]; ok {
		return s
	}
	for p := t.Parent; p != nil; p = p.Parent {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (c *checker) resolveTask(t *core.Task, d *ast.TaskDecl, siblings map[string]*core.Task) {
	setSeen := make(map[string]bool)
	for _, in := range d.Inputs {
		if setSeen[in.Name] {
			c.errorf(in.Pos(), "task %s: duplicate input set binding %s", d.Name, in.Name)
			continue
		}
		setSeen[in.Name] = true
		decl := t.Class.InputSet(in.Name)
		if decl == nil {
			c.errorf(in.Pos(), "task %s: taskclass %s has no input set %s", d.Name, t.Class.Name, in.Name)
			continue
		}
		b := &core.InputSetBinding{Name: in.Name, Decl: decl}
		objSeen := make(map[string]bool)
		for _, dep := range in.Deps {
			switch x := dep.(type) {
			case *ast.ObjectDep:
				field, ok := decl.Field(x.Name)
				if !ok {
					c.errorf(x.Pos(), "task %s input %s: taskclass %s declares no object %s", d.Name, in.Name, t.Class.Name, x.Name)
					continue
				}
				if objSeen[x.Name] {
					c.errorf(x.Pos(), "task %s input %s: duplicate dependency for object %s", d.Name, in.Name, x.Name)
					continue
				}
				objSeen[x.Name] = true
				od := &core.ObjectDep{Name: x.Name}
				for _, src := range x.Sources {
					if rs := c.resolveSource(t, siblings, src, &field); rs != nil {
						od.Sources = append(od.Sources, rs)
					}
				}
				if len(od.Sources) == 0 {
					c.errorf(x.Pos(), "task %s input %s object %s: no valid sources", d.Name, in.Name, x.Name)
				}
				b.Objects = append(b.Objects, od)
			case *ast.NotificationDep:
				nd := &core.NotificationDep{}
				for _, src := range x.Sources {
					if rs := c.resolveSource(t, siblings, src, nil); rs != nil {
						nd.Sources = append(nd.Sources, rs)
					}
				}
				if len(nd.Sources) == 0 {
					c.errorf(x.Pos(), "task %s input %s: notification has no valid sources", d.Name, in.Name)
				}
				b.Notifications = append(b.Notifications, nd)
			}
		}
		// Coverage: every declared object of the set must be fed.
		for _, f := range decl.Objects {
			if !objSeen[f.Name] {
				c.errorf(in.Pos(), "task %s input %s: missing dependency for object %s (of class %s)", d.Name, in.Name, f.Name, f.Class)
			}
		}
		t.InputSets = append(t.InputSets, b)
	}

	// A constituent task that binds no input set can never be started by
	// dependency satisfaction unless its class requires no inputs at all.
	if t.Parent != nil && len(t.InputSets) == 0 && requiresInputs(t.Class) {
		c.errorf(d.Pos(), "task %s: binds no input set but taskclass %s requires inputs", d.Name, t.Class.Name)
	}

	// Output mappings (compound tasks only).
	if len(d.Outputs) > 0 && !d.Compound {
		c.errorf(d.Pos(), "task %s: output mappings are only allowed on compound tasks", d.Name)
	}
	outSeen := make(map[string]bool)
	for _, ob := range d.Outputs {
		out := t.Class.Output(ob.Name)
		if out == nil {
			c.errorf(ob.Pos(), "compound task %s: taskclass %s has no output %s", d.Name, t.Class.Name, ob.Name)
			continue
		}
		if kindOf(ob.Kind) != out.Kind {
			c.errorf(ob.Pos(), "compound task %s output %s: declared as %s but taskclass says %s", d.Name, ob.Name, kindOf(ob.Kind), out.Kind)
		}
		if outSeen[ob.Name] {
			c.errorf(ob.Pos(), "compound task %s: duplicate output mapping %s", d.Name, ob.Name)
			continue
		}
		outSeen[ob.Name] = true
		binding := &core.OutputBinding{Output: out}
		mapped := make(map[string]bool)
		for _, dep := range ob.Deps {
			switch x := dep.(type) {
			case *ast.ObjectDep:
				field, ok := out.Field(x.Name)
				if !ok {
					c.errorf(x.Pos(), "compound task %s output %s: no object %s in taskclass output", d.Name, ob.Name, x.Name)
					continue
				}
				if mapped[x.Name] {
					c.errorf(x.Pos(), "compound task %s output %s: duplicate mapping for %s", d.Name, ob.Name, x.Name)
					continue
				}
				mapped[x.Name] = true
				od := &core.ObjectDep{Name: x.Name}
				for _, src := range x.Sources {
					if rs := c.resolveOutputSource(t, src, &field); rs != nil {
						od.Sources = append(od.Sources, rs)
					}
				}
				if len(od.Sources) == 0 {
					c.errorf(x.Pos(), "compound task %s output %s object %s: no valid sources", d.Name, ob.Name, x.Name)
				}
				binding.Objects = append(binding.Objects, od)
			case *ast.NotificationDep:
				nd := &core.NotificationDep{}
				for _, src := range x.Sources {
					if rs := c.resolveOutputSource(t, src, nil); rs != nil {
						nd.Sources = append(nd.Sources, rs)
					}
				}
				if len(nd.Sources) == 0 {
					c.errorf(x.Pos(), "compound task %s output %s: notification has no valid sources", d.Name, ob.Name)
				}
				binding.Notifications = append(binding.Notifications, nd)
			}
		}
		for _, f := range out.Objects {
			if !mapped[f.Name] {
				c.errorf(ob.Pos(), "compound task %s output %s: object %s is not mapped from any constituent", d.Name, ob.Name, f.Name)
			}
		}
		t.Outputs = append(t.Outputs, binding)
	}
	if d.Compound && len(t.Outputs) == 0 && len(t.Class.Outcomes(core.Outcome))+len(t.Class.Outcomes(core.AbortOutcome)) > 0 {
		c.errorf(d.Pos(), "compound task %s: no output mappings, the task could never terminate", d.Name)
	}
}

// requiresInputs reports whether every input set of the class demands at
// least one object, i.e. an unbound instance could never start.
func requiresInputs(tc *core.TaskClass) bool {
	if len(tc.InputSets) == 0 {
		return false
	}
	for _, s := range tc.InputSets {
		if len(s.Objects) == 0 {
			return false // an empty set is trivially satisfiable
		}
	}
	return true
}

// resolveSource resolves one alternative source of an input dependency of
// task t. field is nil for notification sources. Returns nil after
// reporting diagnostics.
func (c *checker) resolveSource(t *core.Task, siblings map[string]*core.Task, src *ast.SourceRef, field *core.Field) *core.Source {
	srcTask := scopeLookup(t, siblings, src.Task)
	if srcTask == nil {
		c.errorf(src.Pos(), "task %s: unknown source task %s", t.Name, src.Task)
		return nil
	}
	return c.checkSource(t, srcTask, src, field)
}

// resolveOutputSource resolves a source of a compound output mapping:
// sources must be constituents of t (or t itself for its inputs).
func (c *checker) resolveOutputSource(t *core.Task, src *ast.SourceRef, field *core.Field) *core.Source {
	var srcTask *core.Task
	if src.Task == t.Name {
		srcTask = t
	} else if ct := t.Constituent(src.Task); ct != nil {
		srcTask = ct
	}
	if srcTask == nil {
		c.errorf(src.Pos(), "compound task %s: output source task %s is not a constituent", t.Name, src.Task)
		return nil
	}
	return c.checkSource(t, srcTask, src, field)
}

// checkSource validates conditioning and class compatibility of a source
// against the destination field (nil for notifications).
func (c *checker) checkSource(t, srcTask *core.Task, src *ast.SourceRef, field *core.Field) *core.Source {
	out := &core.Source{
		Object:   src.Object,
		Task:     srcTask,
		Cond:     condOf(src.Cond),
		CondName: src.CondName,
	}
	sc := srcTask.Class
	switch out.Cond {
	case core.CondInput:
		set := sc.InputSet(src.CondName)
		if set == nil {
			c.errorf(src.Pos(), "task %s: source task %s has no input set %s", t.Name, srcTask.Name, src.CondName)
			return nil
		}
		if field != nil {
			f, ok := set.Field(src.Object)
			if !ok {
				c.errorf(src.Pos(), "task %s: input set %s of task %s carries no object %s", t.Name, src.CondName, srcTask.Name, src.Object)
				return nil
			}
			if !c.schema.AssignableTo(f.Class, field.Class) {
				c.errorf(src.Pos(), "task %s: class mismatch for %s: have %s, want %s", t.Name, src.Object, f.Class, field.Class)
				return nil
			}
		}
	case core.CondOutput:
		o := sc.Output(src.CondName)
		if o == nil {
			c.errorf(src.Pos(), "task %s: source task %s has no output %s", t.Name, srcTask.Name, src.CondName)
			return nil
		}
		// Section 4.2: repeat-outcome objects are usable only as the
		// producing task's own feedback inputs.
		if o.Kind == core.RepeatOutcome && srcTask != t {
			c.errorf(src.Pos(), "task %s: repeat outcome %s of task %s is not usable by other tasks", t.Name, src.CondName, srcTask.Name)
			return nil
		}
		if field != nil {
			f, ok := o.Field(src.Object)
			if !ok {
				c.errorf(src.Pos(), "task %s: output %s of task %s carries no object %s", t.Name, src.CondName, srcTask.Name, src.Object)
				return nil
			}
			if !c.schema.AssignableTo(f.Class, field.Class) {
				c.errorf(src.Pos(), "task %s: class mismatch for %s: have %s, want %s", t.Name, src.Object, f.Class, field.Class)
				return nil
			}
		}
	case core.CondNone:
		if field != nil {
			// At least one output (of any kind except repeat) must carry
			// a compatible object of this name.
			found := false
			for _, o := range sc.Outputs {
				if o.Kind == core.RepeatOutcome && srcTask != t {
					continue
				}
				if f, ok := o.Field(src.Object); ok && c.schema.AssignableTo(f.Class, field.Class) {
					found = true
					break
				}
			}
			if !found {
				c.errorf(src.Pos(), "task %s: no output of task %s carries object %s of class %s", t.Name, srcTask.Name, src.Object, field.Class)
				return nil
			}
		}
	}
	return out
}

func condOf(c ast.SourceCond) core.SourceCond {
	switch c {
	case ast.CondInput:
		return core.CondInput
	case ast.CondOutput:
		return core.CondOutput
	default:
		return core.CondNone
	}
}
