package sema_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/script/parser"
	"repro/internal/script/sema"
	"repro/internal/scripts"
)

func compile(t *testing.T, name, src string) *core.Schema {
	t.Helper()
	schema, err := sema.CompileSource(name, []byte(src))
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return schema
}

func TestPaperScriptsCompile(t *testing.T) {
	for name, src := range scripts.All {
		t.Run(name, func(t *testing.T) {
			schema := compile(t, name, src)
			if len(schema.Tasks) == 0 {
				t.Fatalf("schema %s has no top-level tasks", name)
			}
		})
	}
}

func TestProcessOrderStructure(t *testing.T) {
	schema := compile(t, "process_order", scripts.ProcessOrder)
	root, err := schema.Root("")
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "processOrderApplication" || !root.Compound {
		t.Fatalf("root = %q compound=%v, want processOrderApplication compound", root.Name, root.Compound)
	}
	if got := len(root.Constituents); got != 4 {
		t.Fatalf("constituents = %d, want 4", got)
	}
	dispatch := root.Constituent("dispatch")
	if dispatch == nil {
		t.Fatal("no dispatch constituent")
	}
	if !dispatch.Atomic() {
		t.Error("dispatch must be atomic (declares abort outcome dispatchFailed)")
	}
	if dispatch.Code() != "refDispatch" {
		t.Errorf("dispatch code = %q, want refDispatch", dispatch.Code())
	}
	// dispatch waits on paymentAuthorisation (notification) and checkStock
	// (dataflow): two edges into dispatch.
	main := dispatch.InputSet("main")
	if main == nil {
		t.Fatal("dispatch has no input set main")
	}
	if len(main.Notifications) != 1 || len(main.Objects) != 1 {
		t.Fatalf("dispatch main: %d notifications, %d objects; want 1 and 1", len(main.Notifications), len(main.Objects))
	}
	if src := main.Objects[0].Sources[0]; src.Task.Name != "checkStock" || src.CondName != "stockAvailable" {
		t.Errorf("dispatch stockInfo source = %v, want checkStock/stockAvailable", src)
	}
}

func TestBusinessTripStructure(t *testing.T) {
	schema := compile(t, "business_trip", scripts.BusinessTrip)
	trip := schema.Task("tripReservation")
	if trip == nil {
		t.Fatal("no tripReservation")
	}
	br := trip.Constituent("businessReservation")
	if br == nil || !br.Compound {
		t.Fatal("no compound businessReservation")
	}
	// Repeat feedback: BR's input main has two alternatives, the second
	// sourced from its own repeat outcome.
	main := br.InputSet("main")
	if main == nil || len(main.Objects) != 1 {
		t.Fatal("businessReservation must bind input main with one object dep")
	}
	srcs := main.Objects[0].Sources
	if len(srcs) != 2 {
		t.Fatalf("user has %d sources, want 2", len(srcs))
	}
	if srcs[0].Task.Name != "tripReservation" || srcs[0].Cond != core.CondInput {
		t.Errorf("first alternative = %v, want tripReservation if input main", srcs[0])
	}
	if srcs[1].Task != br || srcs[1].CondName != "retry" {
		t.Errorf("second alternative = %v, want self repeat feedback", srcs[1])
	}
	// Mark output on the trip: toPay.
	toPay := trip.OutputBinding("toPay")
	if toPay == nil || toPay.Output.Kind != core.Mark {
		t.Fatal("tripReservation must map mark output toPay")
	}
	// Nested compound checkFlightReservation with three airline queries.
	cfr := br.Constituent("checkFlightReservation")
	if cfr == nil || len(cfr.Constituents) != 3 {
		t.Fatal("checkFlightReservation must contain three airline queries")
	}
	if got := cfr.Path(); got != "tripReservation/businessReservation/checkFlightReservation" {
		t.Errorf("path = %q", got)
	}
}

func TestTemplateExpansion(t *testing.T) {
	schema := compile(t, "payment_template", scripts.PaymentTemplate)
	app := schema.Task("app")
	if app == nil {
		t.Fatal("no app task")
	}
	ca := app.Constituent("captureA")
	cb := app.Constituent("captureB")
	if ca == nil || cb == nil {
		t.Fatalf("expected expanded template instances, have %v", app.Constituents)
	}
	if ca.Code() != "refCapture" {
		t.Errorf("captureA code = %q, want refCapture from template body", ca.Code())
	}
	src := ca.InputSet("main").Objects[0].Sources[0]
	if src.Task.Name != "authA" {
		t.Errorf("captureA source task = %s, want authA (substituted parameter)", src.Task.Name)
	}
	src = cb.InputSet("main").Objects[0].Sources[0]
	if src.Task.Name != "authB" {
		t.Errorf("captureB source task = %s, want authB", src.Task.Name)
	}
}

func TestTemplateArgumentMismatch(t *testing.T) {
	src := scripts.PaymentTemplate
	bad := strings.Replace(src, "captureTemplate(authA)", "captureTemplate(authA, authB)", 1)
	if _, err := sema.CompileSource("bad", []byte(bad)); err == nil {
		t.Fatal("expected arity error for template instantiation")
	}
}

// mustParseErrFree parses and checks src, returning whichever stage's
// diagnostics fire first (some structural rules are enforced by the
// parser, e.g. constituents inside plain tasks).
func mustParseErrFree(t *testing.T, src string) error {
	t.Helper()
	s, err := parser.Parse("test", []byte(src))
	if err != nil {
		return err
	}
	_, err = sema.Compile(s)
	return err
}

const semaPrelude = `
class A;
class B;
taskclass Src
{
    inputs { input main { a of class A } };
    outputs { outcome ok { a of class A }; outcome alt { b of class B } }
};
taskclass Dst
{
    inputs { input main { x of class A } };
    outputs { outcome ok { } }
};
taskclass Wrap
{
    inputs { input main { a of class A } };
    outputs { outcome ok { } }
};
`

func TestSemaDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring expected in the error
	}{
		{
			name: "undeclared class",
			src:  `class A; taskclass T { inputs { input main { x of class Nope } }; outputs { outcome ok { } } };`,
			want: "undeclared class Nope",
		},
		{
			name: "duplicate class",
			src:  `class A; class A;`,
			want: "duplicate class A",
		},
		{
			name: "duplicate taskclass",
			src:  `class A; taskclass T { inputs { } ; outputs { } }; taskclass T { inputs { }; outputs { } };`,
			want: "duplicate taskclass T",
		},
		{
			name: "atomic with mark",
			src: `class A;
taskclass T
{
    inputs { input main { a of class A } };
    outputs { abort outcome ab { }; mark m { a of class A }; outcome ok { } }
};`,
			want: "cannot declare mark",
		},
		{
			name: "unknown taskclass",
			src:  `task t of taskclass Nope { inputs { } };`,
			want: "undeclared taskclass Nope",
		},
		{
			name: "unknown source task",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task d of taskclass Dst
    {
        inputs { input main { inputobject x from { a of task ghost if output ok } } }
    };
    outputs { outcome ok { notification from { task d if output ok } } }
};`,
			want: "unknown source task ghost",
		},
		{
			name: "class mismatch",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src
    {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    task d of taskclass Dst
    {
        inputs { input main { inputobject x from { b of task s if output alt } } }
    };
    outputs { outcome ok { notification from { task d if output ok } } }
};`,
			want: "class mismatch",
		},
		{
			name: "missing object dependency",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task d of taskclass Dst
    {
        inputs { input main { notification from { task w if input main } } }
    };
    outputs { outcome ok { notification from { task d if output ok } } }
};`,
			want: "missing dependency for object x",
		},
		{
			name: "repeat outcome of other task",
			src: `class A;
taskclass R
{
    inputs { input main { a of class A } };
    outputs { outcome ok { }; repeat outcome again { a of class A } }
};
taskclass D
{
    inputs { input main { x of class A } };
    outputs { outcome ok { } }
};
taskclass W
{
    inputs { input main { a of class A } };
    outputs { outcome ok { } }
};
compoundtask w of taskclass W
{
    task r of taskclass R
    {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    task d of taskclass D
    {
        inputs { input main { inputobject x from { a of task r if output again } } }
    };
    outputs { outcome ok { notification from { task d if output ok } } }
};`,
			want: "not usable by other tasks",
		},
		{
			name: "cycle",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s1 of taskclass Dst
    {
        inputs { input main { inputobject x from { a of task s2 if output ok } } }
    };
    task s2 of taskclass Src
    {
        inputs { input main { inputobject a from { a of task w if input main }; notification from { task s1 if output ok } } }
    };
    outputs { outcome ok { notification from { task s1 if output ok } } }
};`,
			want: "cycle",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mustParseErrFree(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSchemaStats(t *testing.T) {
	schema := compile(t, "business_trip", scripts.BusinessTrip)
	st := schema.Stats()
	if st.Tasks != 11 { // trip + BR + DA + CFR + 3 queries + FR + HR + FC + PT
		t.Errorf("tasks = %d, want 11", st.Tasks)
	}
	if st.CompoundTasks != 3 {
		t.Errorf("compound tasks = %d, want 3", st.CompoundTasks)
	}
	if st.MaxDepth != 4 { // trip / BR / CFR / queryAirlineN
		t.Errorf("max depth = %d, want 4", st.MaxDepth)
	}
}

func TestDependentsLocality(t *testing.T) {
	schema := compile(t, "process_order", scripts.ProcessOrder)
	root := schema.Task("processOrderApplication")
	pa := root.Constituent("paymentAuthorisation")
	deps := schema.Dependents(pa)
	// dispatch (notification), paymentCapture (dataflow) and the root
	// compound (orderCancelled notification) depend on paymentAuthorisation.
	if len(deps) != 3 {
		names := make([]string, len(deps))
		for i, d := range deps {
			names[i] = d.Path()
		}
		t.Fatalf("dependents of paymentAuthorisation = %v, want 3", names)
	}
}
