package sema_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/script/parser"
	"repro/internal/script/printer"
	"repro/internal/script/sema"
	"repro/internal/workload"
)

func TestMoreDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "duplicate input set binding",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src
    {
        inputs
        {
            input main { inputobject a from { a of task w if input main } };
            input main { inputobject a from { a of task w if input main } }
        }
    };
    outputs { outcome ok { notification from { task s if output ok } } }
};`,
			want: "duplicate input set binding",
		},
		{
			name: "unknown input set in instance",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src
    {
        inputs { input ghost { inputobject a from { a of task w if input main } } }
    };
    outputs { outcome ok { notification from { task s if output ok } } }
};`,
			want: "has no input set ghost",
		},
		{
			name: "constituent inside plain task",
			src: semaPrelude + `
task outer of taskclass Wrap
{
    task inner of taskclass Src
    {
        inputs { input main { inputobject a from { a of task outer if input main } } }
    }
};`,
			want: "constituent task inside plain task",
		},
		{
			name: "compound without output mappings",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src
    {
        inputs { input main { inputobject a from { a of task w if input main } } }
    }
};`,
			want: "could never terminate",
		},
		{
			name: "output mapping on plain task",
			src: semaPrelude + `
task s of taskclass Src
{
    inputs { input main { inputobject a from { a of task s if input main } } };
    outputs { outcome ok { outputobject a from { a of task s if input main } } }
};`,
			want: "only allowed on compound tasks",
		},
		{
			name: "compound output references non-constituent",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src
    {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs { outcome ok { notification from { task ghost if output ok } } }
};`,
			want: "not a constituent",
		},
		{
			name: "compound output unmapped object",
			src: `class A;
taskclass Out
{
    inputs { input main { a of class A } };
    outputs { outcome ok { x of class A; y of class A } }
};
taskclass Src
{
    inputs { input main { a of class A } };
    outputs { outcome ok { a of class A } }
};
compoundtask w of taskclass Out
{
    task s of taskclass Src
    {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs
    {
        outcome ok { outputobject x from { a of task s if output ok } }
    }
};`,
			want: "is not mapped",
		},
		{
			name: "constituent binds no inputs but class requires them",
			src: semaPrelude + `
compoundtask w of taskclass Wrap
{
    task s of taskclass Src { };
    outputs { outcome ok { notification from { task s if output ok } } }
};`,
			want: "binds no input set",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mustParseErrFree(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v\nwant substring %q", err, tc.want)
			}
		})
	}
}

// TestGeneratedScriptsRoundTripProperty: print(parse(w)) compiles to the
// same statistics for arbitrary generated workloads.
func TestGeneratedScriptsRoundTripProperty(t *testing.T) {
	f := func(rawN uint8, rawAlts uint8, seed int64) bool {
		n := int(rawN%12) + 2
		alts := int(rawAlts % 3)
		src := workload.RandomDAG(n, alts, seed)
		s1, err := parser.Parse("gen", []byte(src))
		if err != nil {
			return false
		}
		printed := printer.Fprint(s1)
		s2, err := parser.Parse("gen2", []byte(printed))
		if err != nil {
			return false
		}
		c1, err := sema.Compile(s1)
		if err != nil {
			return false
		}
		c2, err := sema.Compile(s2)
		if err != nil {
			return false
		}
		return c1.Stats() == c2.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileTaskFragmentErrors(t *testing.T) {
	schema := sema.MustCompileSource("dag", []byte(workload.Chain(3)))
	root, _ := schema.Root("")
	// Duplicate name in scope.
	_, err := sema.CompileTaskFragment(schema, root, []byte(`
task t1 of taskclass Stage
{
    implementation { "code" is "stage" };
    inputs { input main { inputobject in from { seed of task app if input main } } }
};`))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate fragment: %v", err)
	}
	// Unknown taskclass.
	_, err = sema.CompileTaskFragment(schema, root, []byte(`
task tx of taskclass Ghost { inputs { } };`))
	if err == nil {
		t.Fatal("unknown taskclass accepted")
	}
	// Valid fragment resolves against existing siblings.
	frag, err := sema.CompileTaskFragment(schema, root, []byte(`
task t4 of taskclass Stage
{
    implementation { "code" is "stage" };
    inputs { input main { inputobject in from { out of task t3 if output done } } }
};`))
	if err != nil {
		t.Fatal(err)
	}
	if frag.Name != "t4" || frag.InputSets[0].Objects[0].Sources[0].Task.Name != "t3" {
		t.Fatalf("fragment = %+v", frag)
	}
}

func TestResolveSourceSpecErrors(t *testing.T) {
	schema := sema.MustCompileSource("dag", []byte(workload.Chain(3)))
	t2 := schema.Lookup("app/t2")
	if _, err := sema.ResolveSourceSpec(schema, t2, "ghost", "in", "out of task t1 if output done"); err == nil {
		t.Error("unknown set accepted")
	}
	if _, err := sema.ResolveSourceSpec(schema, t2, "main", "ghost", "out of task t1 if output done"); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := sema.ResolveSourceSpec(schema, t2, "main", "in", "task t1 if output done"); err == nil {
		t.Error("notification spec accepted for an object dependency")
	}
	if _, err := sema.ResolveSourceSpec(schema, t2, "main", "", "out of task t1 if output done"); err == nil {
		t.Error("object spec accepted for a notification dependency")
	}
	src, err := sema.ResolveSourceSpec(schema, t2, "main", "in", "out of task t1 if output done")
	if err != nil || src.Task.Name != "t1" {
		t.Fatalf("valid spec: %v, %v", src, err)
	}
}
