package sema_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/store"
	"repro/internal/txn"
)

// Section 7 extension: object sub-typing enables "building block" tasks
// operating on standard super-types. subtypingScript declares a small
// hierarchy (EuroAccount of class Account of class Resource) and feeds a
// sub-class object into a super-typed slot.
const subtypingScript = `
class Resource;
class Account of class Resource;
class EuroAccount of class Account;
class Report;

taskclass OpenEuroAccount
{
    inputs { input main { seed of class Resource } };
    outputs { outcome opened { account of class EuroAccount } }
};

taskclass AuditAccount
{
    inputs { input main { account of class Account } };
    outputs { outcome audited { report of class Report } }
};

taskclass App
{
    inputs { input main { seed of class Resource } };
    outputs { outcome done { report of class Report } }
};

compoundtask app of taskclass App
{
    task open of taskclass OpenEuroAccount
    {
        implementation { "code" is "open" };
        inputs { input main { inputobject seed from { seed of task app if input main } } }
    };
    task audit of taskclass AuditAccount
    {
        implementation { "code" is "audit" };
        inputs
        {
            input main
            {
                inputobject account from { account of task open if output opened }
            }
        }
    };
    outputs { outcome done { outputobject report from { report of task audit if output audited } } }
};
`

func TestSubtypingCompilesAndFlowIsChecked(t *testing.T) {
	schema := compile(t, "subtyping", subtypingScript)
	if !schema.AssignableTo("EuroAccount", "Account") {
		t.Error("EuroAccount must be assignable to Account")
	}
	if !schema.AssignableTo("EuroAccount", "Resource") {
		t.Error("transitive assignability must hold")
	}
	if schema.AssignableTo("Account", "EuroAccount") {
		t.Error("super-to-sub flow must be rejected")
	}
	if schema.AssignableTo("Report", "Resource") {
		t.Error("unrelated classes must not be assignable")
	}
}

func TestSubtypingRejectsDowncastFlow(t *testing.T) {
	bad := strings.Replace(subtypingScript,
		"outcome opened { account of class EuroAccount }",
		"outcome opened { account of class Resource }", 1)
	_, err := sema.CompileSource("bad", []byte(bad))
	if err == nil || !strings.Contains(err.Error(), "class mismatch") {
		t.Fatalf("downcast flow (Resource into Account slot) must fail: %v", err)
	}
}

func TestSubtypingHierarchyErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown super", `class A of class Ghost;`, "undeclared superclass"},
		{"self super", `class A of class A;`, "cannot be its own superclass"},
		{"cycle", `class A of class B; class B of class A;`, "hierarchy cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sema.CompileSource("t", []byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSubtypingAtRuntime(t *testing.T) {
	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{})
	defer eng.Close()

	impls.Bind("open", func(ctx registry.Context) (registry.Result, error) {
		return registry.Result{Output: "opened", Objects: registry.Objects{
			"account": {Class: "EuroAccount", Data: "DE-123"},
		}}, nil
	})
	var auditedClass string
	impls.Bind("audit", func(ctx registry.Context) (registry.Result, error) {
		auditedClass = ctx.Inputs()["account"].Class
		return registry.Result{Output: "audited", Objects: registry.Objects{
			"report": {Class: "Report", Data: "ok"},
		}}, nil
	})

	schema := sema.MustCompileSource("sub", []byte(subtypingScript))
	inst, err := eng.Instantiate("sub-1", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	// Starting with a sub-class object in a super-typed slot is legal.
	if err := inst.Start("main", registry.Objects{
		"seed": {Class: "Account", Data: "seed"},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := inst.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "done" {
		t.Fatalf("outcome = %q", res.Output)
	}
	// The consumer saw the dynamic (sub) class, as reference semantics
	// require.
	if auditedClass != "EuroAccount" {
		t.Fatalf("audited class = %q, want dynamic class EuroAccount", auditedClass)
	}

	// Wrong-direction start input is rejected.
	inst2, err := eng.Instantiate("sub-2", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start("main", registry.Objects{
		"seed": {Class: "Report", Data: "x"},
	}); err == nil {
		t.Fatal("unrelated class accepted at start")
	}
	inst2.Stop()
}
