package sema

import (
	"repro/internal/script/ast"
)

// expandTemplate instantiates a tasktemplate (Section 4.5): the template
// body is deep-cloned, the instance takes the declared name, and every
// occurrence of a template parameter used as a source task name is
// substituted by the corresponding argument. References to the template's
// own name inside the body (self-feedback, constituents referring to the
// enclosing compound) are renamed to the instance name.
func (c *checker) expandTemplate(inst *ast.TemplateInstDecl) *ast.TaskDecl {
	tmpl, ok := c.templates[inst.Template]
	if !ok {
		c.errorf(inst.Pos(), "task %s: unknown tasktemplate %s", inst.Name, inst.Template)
		return nil
	}
	if len(inst.Args) != len(tmpl.Params) {
		c.errorf(inst.Pos(), "task %s: tasktemplate %s expects %d arguments, got %d",
			inst.Name, inst.Template, len(tmpl.Params), len(inst.Args))
		return nil
	}
	subst := make(map[string]string, len(tmpl.Params)+1)
	for i, p := range tmpl.Params {
		subst[p] = inst.Args[i]
	}
	subst[tmpl.Name] = inst.Name

	body := cloneTaskDecl(tmpl.Body, subst)
	body.Name = inst.Name
	body.Start = inst.Pos()
	return body
}

func cloneTaskDecl(d *ast.TaskDecl, subst map[string]string) *ast.TaskDecl {
	out := &ast.TaskDecl{
		Start:    d.Start,
		Compound: d.Compound,
		Name:     rename(d.Name, subst),
		Class:    d.Class,
	}
	for _, p := range d.Implementation {
		out.Implementation = append(out.Implementation, &ast.ImplPair{Start: p.Start, Key: p.Key, Value: p.Value})
	}
	for _, in := range d.Inputs {
		out.Inputs = append(out.Inputs, cloneInputSet(in, subst))
	}
	for _, c := range d.Constituents {
		switch x := c.(type) {
		case *ast.TaskDecl:
			out.Constituents = append(out.Constituents, cloneTaskDecl(x, subst))
		case *ast.TemplateInstDecl:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = rename(a, subst)
			}
			out.Constituents = append(out.Constituents, &ast.TemplateInstDecl{
				Start: x.Start, Name: x.Name, Template: x.Template, Args: args,
			})
		}
	}
	for _, ob := range d.Outputs {
		out.Outputs = append(out.Outputs, cloneOutputBinding(ob, subst))
	}
	return out
}

func cloneInputSet(b *ast.InputSetBinding, subst map[string]string) *ast.InputSetBinding {
	out := &ast.InputSetBinding{Start: b.Start, Name: b.Name}
	for _, d := range b.Deps {
		out.Deps = append(out.Deps, cloneDep(d, subst))
	}
	return out
}

func cloneOutputBinding(b *ast.OutputBinding, subst map[string]string) *ast.OutputBinding {
	out := &ast.OutputBinding{Start: b.Start, Kind: b.Kind, Name: b.Name}
	for _, d := range b.Deps {
		out.Deps = append(out.Deps, cloneDep(d, subst))
	}
	return out
}

func cloneDep(d ast.InputDep, subst map[string]string) ast.InputDep {
	switch x := d.(type) {
	case *ast.ObjectDep:
		out := &ast.ObjectDep{Start: x.Start, Name: x.Name}
		for _, s := range x.Sources {
			out.Sources = append(out.Sources, cloneSource(s, subst))
		}
		return out
	case *ast.NotificationDep:
		out := &ast.NotificationDep{Start: x.Start}
		for _, s := range x.Sources {
			out.Sources = append(out.Sources, cloneSource(s, subst))
		}
		return out
	default:
		return d
	}
}

func cloneSource(s *ast.SourceRef, subst map[string]string) *ast.SourceRef {
	return &ast.SourceRef{
		Start:    s.Start,
		Object:   s.Object,
		Task:     rename(s.Task, subst),
		Cond:     s.Cond,
		CondName: s.CondName,
	}
}

func rename(name string, subst map[string]string) string {
	if to, ok := subst[name]; ok {
		return to
	}
	return name
}
