package sema

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/script/ast"
	"repro/internal/script/parser"
)

// CompileTaskFragment compiles a task/compoundtask declaration against an
// existing schema, for insertion into scope (nil for top level). The
// fragment's dependency sources may name the scope's existing
// constituents, the scope itself, or the new task (self feedback). The
// returned task is fully resolved but NOT yet inserted — pass it to
// Schema.AddTask (or engine.Instance.Reconfigure, which does both
// transactionally).
func CompileTaskFragment(schema *core.Schema, scope *core.Task, src []byte) (*core.Task, error) {
	decl, err := parser.ParseTaskFragment(src)
	if err != nil {
		return nil, fmt.Errorf("parse fragment: %w", err)
	}
	c := &checker{
		script:    &ast.Script{File: "fragment"},
		schema:    schema,
		templates: make(map[string]*ast.TaskTemplateDecl),
	}
	siblings := make(map[string]*core.Task)
	sibs := schema.Tasks
	if scope != nil {
		sibs = scope.Constituents
	}
	for _, t := range sibs {
		siblings[t.Name] = t
	}
	if _, exists := siblings[decl.Name]; exists {
		return nil, fmt.Errorf("compile fragment: task %s already exists in scope", decl.Name)
	}

	tasks := c.compileScopeSeeded(scope, []*ast.TaskDecl{decl}, siblings)
	if err := c.errs.Err(); err != nil {
		return nil, fmt.Errorf("check fragment: %w", err)
	}
	if len(tasks) != 1 {
		return nil, fmt.Errorf("compile fragment: expected one task, got %d", len(tasks))
	}
	return tasks[0], nil
}

// ResolveSourceSpec compiles a source specification string (see
// parser.ParseSourceRef) from the perspective of the consumer task.
// When object is non-empty the source must be able to supply an object of
// the consumer's declared field class for that input object; when empty
// the source is a notification.
func ResolveSourceSpec(schema *core.Schema, consumer *core.Task, setName, object, spec string) (*core.Source, error) {
	ref, err := parser.ParseSourceRef(spec)
	if err != nil {
		return nil, fmt.Errorf("parse source %q: %w", spec, err)
	}
	c := &checker{
		script:    &ast.Script{File: "source"},
		schema:    schema,
		templates: make(map[string]*ast.TaskTemplateDecl),
	}
	siblings := make(map[string]*core.Task)
	sibs := schema.Tasks
	if consumer.Parent != nil {
		sibs = consumer.Parent.Constituents
	}
	for _, t := range sibs {
		siblings[t.Name] = t
	}
	var field *core.Field
	if object != "" {
		b := consumer.InputSet(setName)
		if b == nil {
			return nil, fmt.Errorf("task %s: no input set %q", consumer.Path(), setName)
		}
		f, ok := b.Decl.Field(object)
		if !ok {
			return nil, fmt.Errorf("task %s input %s: no object %q", consumer.Path(), setName, object)
		}
		field = &f
		if ref.Object == "" {
			return nil, fmt.Errorf("source %q: object sources need an object name", spec)
		}
	} else if ref.Object != "" {
		return nil, fmt.Errorf("source %q: notification sources cannot name an object", spec)
	}
	src := c.resolveSource(consumer, siblings, ref, field)
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("source %q did not resolve", spec)
	}
	return src, nil
}

// ResolveOutputSourceSpec compiles a source specification for a compound
// task's output mapping: sources must be constituents of the compound (or
// the compound itself). When object is non-empty it names the mapped
// output object of output outName (class-checked); empty means a
// notification source.
func ResolveOutputSourceSpec(schema *core.Schema, compound *core.Task, outName, object, spec string) (*core.Source, error) {
	if !compound.Compound {
		return nil, fmt.Errorf("task %s is not a compound task", compound.Path())
	}
	ref, err := parser.ParseSourceRef(spec)
	if err != nil {
		return nil, fmt.Errorf("parse source %q: %w", spec, err)
	}
	c := &checker{
		script:    &ast.Script{File: "source"},
		schema:    schema,
		templates: make(map[string]*ast.TaskTemplateDecl),
	}
	var field *core.Field
	if object != "" {
		out := compound.Class.Output(outName)
		if out == nil {
			return nil, fmt.Errorf("task %s: taskclass %s has no output %q", compound.Path(), compound.Class.Name, outName)
		}
		f, ok := out.Field(object)
		if !ok {
			return nil, fmt.Errorf("task %s output %s: no object %q", compound.Path(), outName, object)
		}
		field = &f
		if ref.Object == "" {
			return nil, fmt.Errorf("source %q: object sources need an object name", spec)
		}
	} else if ref.Object != "" {
		return nil, fmt.Errorf("source %q: notification sources cannot name an object", spec)
	}
	src := c.resolveOutputSource(compound, ref, field)
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("source %q did not resolve", spec)
	}
	return src, nil
}
