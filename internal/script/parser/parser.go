// Package parser implements a hand-rolled recursive-descent parser for the
// workflow scripting language. It accepts the concrete syntax used in the
// paper's listings (Section 4 and Section 5), including the typographic
// quote marks, optional trailing semicolons, and the shorthand source form
// used inside tasktemplate bodies.
//
// The parser accumulates diagnostics and recovers at declaration
// boundaries, so a single run reports as many errors as possible.
package parser

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/script/ast"
	"repro/internal/script/lexer"
	"repro/internal/script/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is an ordered collection of parse errors that itself
// implements error.
type ErrorList []*Error

// Error renders up to ten errors, one per line.
func (l ErrorList) Error() string {
	const maxShown = 10
	var b strings.Builder
	for i, e := range l {
		if i == maxShown {
			fmt.Fprintf(&b, "... and %d more errors", len(l)-maxShown)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil if it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// maxErrors bounds diagnostic accumulation so pathological inputs cannot
// allocate unboundedly.
const maxErrors = 100

// errTooMany aborts parsing once maxErrors diagnostics have accumulated.
var errTooMany = errors.New("too many errors")

type parser struct {
	file string
	toks []token.Token
	i    int
	errs ErrorList
}

// Parse parses src as a workflow script. On syntax errors it returns the
// partial AST together with an ErrorList.
func Parse(file string, src []byte) (*ast.Script, error) {
	toks, lexErrs := lexer.ScanAll(file, src)
	p := &parser{file: file, toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	script := p.parseScript()
	return script, p.errs.Err()
}

// MustParse parses src and panics on error; intended for tests and for
// embedding known-good scripts in examples.
func MustParse(file string, src []byte) *ast.Script {
	s, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%s): %v", file, err))
	}
	return s
}

func (p *parser) cur() token.Token { return p.toks[p.i] }
func (p *parser) advance() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) errorf(pos token.Position, format string, args ...any) {
	if len(p.errs) >= maxErrors {
		panic(errTooMany)
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// expect consumes a token of kind k or records an error and leaves the
// cursor unmoved so the caller can attempt recovery.
func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) expectIdent(what string) string {
	if p.at(token.Ident) {
		return p.advance().Lit
	}
	p.errorf(p.cur().Pos, "expected %s name, found %s", what, p.cur())
	return ""
}

// skipSemis consumes any run of semicolons. The paper's listings are
// inconsistent about trailing semicolons, so they are treated as optional
// separators throughout.
func (p *parser) skipSemis() {
	for p.accept(token.Semicolon) {
	}
}

// syncDecl advances to the next plausible declaration start after an
// error, balancing braces so recovery lands at top level.
func (p *parser) syncDecl() {
	depth := 0
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			if depth == 0 {
				p.advance()
				p.skipSemis()
				return
			}
			depth--
		case token.KwClass, token.KwTaskClass, token.KwTask, token.KwCompoundTask, token.KwTaskTemplate:
			if depth == 0 {
				return
			}
		}
		p.advance()
	}
}

func (p *parser) parseScript() *ast.Script {
	script := &ast.Script{File: p.file}
	defer func() {
		if r := recover(); r != nil && r != errTooMany { //nolint:errorlint // sentinel identity
			panic(r)
		}
	}()
	for {
		p.skipSemis()
		if p.at(token.EOF) {
			return script
		}
		before := p.i
		d := p.parseDecl()
		if d != nil {
			script.Decls = append(script.Decls, d)
		}
		if p.i == before { // no progress: force resync
			p.errorf(p.cur().Pos, "unexpected %s at top level", p.cur())
			p.advance()
			p.syncDecl()
		}
	}
}

func (p *parser) parseDecl() ast.Decl {
	switch p.cur().Kind {
	case token.KwClass:
		return p.parseClassDecl()
	case token.KwTaskClass:
		return p.parseTaskClassDecl()
	case token.KwTask:
		return p.parseTaskDecl(false)
	case token.KwCompoundTask:
		return p.parseTaskDecl(true)
	case token.KwTaskTemplate:
		return p.parseTemplateDecl()
	case token.Ident:
		return p.parseTemplateInst()
	default:
		return nil
	}
}

// class Account ;  |  class EuroAccount of class Account ;
func (p *parser) parseClassDecl() ast.Decl {
	start := p.expect(token.KwClass).Pos
	name := p.expectIdent("class")
	super := ""
	if p.accept(token.KwOf) {
		p.expect(token.KwClass)
		super = p.expectIdent("superclass")
	}
	p.skipSemis()
	return &ast.ClassDecl{Start: start, Name: name, Super: super}
}

// taskclass Name { inputs { ... } ; outputs { ... } }
func (p *parser) parseTaskClassDecl() ast.Decl {
	start := p.expect(token.KwTaskClass).Pos
	d := &ast.TaskClassDecl{Start: start}
	d.Name = p.expectIdent("taskclass")
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwInputs:
			p.advance()
			p.expect(token.LBrace)
			for p.at(token.KwInput) {
				d.Inputs = append(d.Inputs, p.parseInputSetDecl())
				p.skipSemis()
			}
			p.expect(token.RBrace)
			p.skipSemis()
		case token.KwOutputs:
			p.advance()
			p.expect(token.LBrace)
			for p.at(token.KwOutcome) || p.at(token.KwAbort) || p.at(token.KwRepeat) || p.at(token.KwMark) {
				d.Outputs = append(d.Outputs, p.parseOutputDecl())
				p.skipSemis()
			}
			p.expect(token.RBrace)
			p.skipSemis()
		default:
			p.errorf(p.cur().Pos, "expected inputs or outputs in taskclass %s, found %s", d.Name, p.cur())
			p.syncDecl()
			return d
		}
	}
	p.expect(token.RBrace)
	p.skipSemis()
	return d
}

// input main { item of class Item; account of class Account }
func (p *parser) parseInputSetDecl() *ast.InputSetDecl {
	start := p.expect(token.KwInput).Pos
	set := &ast.InputSetDecl{Start: start}
	set.Name = p.expectIdent("input set")
	p.expect(token.LBrace)
	for p.at(token.Ident) {
		set.Objects = append(set.Objects, p.parseObjectField())
		p.skipSemis()
	}
	p.expect(token.RBrace)
	return set
}

// item of class Item
func (p *parser) parseObjectField() *ast.ObjectField {
	start := p.cur().Pos
	name := p.expectIdent("object")
	p.expect(token.KwOf)
	p.expect(token.KwClass)
	class := p.expectIdent("class")
	return &ast.ObjectField{Start: start, Name: name, Class: class}
}

func (p *parser) parseOutputKind() (ast.OutputKind, token.Position) {
	start := p.cur().Pos
	switch p.cur().Kind {
	case token.KwOutcome:
		p.advance()
		return ast.Outcome, start
	case token.KwAbort:
		p.advance()
		p.expect(token.KwOutcome)
		return ast.AbortOutcome, start
	case token.KwRepeat:
		p.advance()
		p.expect(token.KwOutcome)
		return ast.RepeatOutcome, start
	case token.KwMark:
		p.advance()
		return ast.Mark, start
	default:
		p.errorf(start, "expected output kind, found %s", p.cur())
		p.advance()
		return ast.Outcome, start
	}
}

// outcome dispatchCompleted { dispatchNote of class DispatchNote }
func (p *parser) parseOutputDecl() *ast.OutputDecl {
	kind, start := p.parseOutputKind()
	d := &ast.OutputDecl{Start: start, Kind: kind}
	d.Name = p.expectIdent("output")
	p.expect(token.LBrace)
	for p.at(token.Ident) {
		d.Objects = append(d.Objects, p.parseObjectField())
		p.skipSemis()
	}
	p.expect(token.RBrace)
	return d
}

// task Name of taskclass Class { implementation {...}; inputs {...};
// [constituents...] [outputs {...}] }
func (p *parser) parseTaskDecl(compound bool) *ast.TaskDecl {
	var start token.Position
	if compound {
		start = p.expect(token.KwCompoundTask).Pos
	} else {
		start = p.expect(token.KwTask).Pos
	}
	d := &ast.TaskDecl{Start: start, Compound: compound}
	d.Name = p.expectIdent("task")
	p.expect(token.KwOf)
	p.expect(token.KwTaskClass)
	d.Class = p.expectIdent("taskclass")
	p.expect(token.LBrace)
	p.parseTaskBody(d, false)
	p.expect(token.RBrace)
	p.skipSemis()
	return d
}

// parseTaskBody parses the members of a task or compoundtask (or template
// body when inTemplate is true, which additionally allows parameters).
// Returns the parameters clause if one was parsed.
func (p *parser) parseTaskBody(d *ast.TaskDecl, inTemplate bool) []string {
	var params []string
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwParameters:
			pos := p.advance().Pos
			if !inTemplate {
				p.errorf(pos, "parameters clause is only allowed in tasktemplate")
			}
			p.expect(token.LBrace)
			for p.at(token.Ident) {
				params = append(params, p.advance().Lit)
				p.skipSemis()
			}
			p.expect(token.RBrace)
			p.skipSemis()
		case token.KwImplementation:
			p.advance()
			p.expect(token.LBrace)
			for p.at(token.String) {
				pair := &ast.ImplPair{Start: p.cur().Pos}
				pair.Key = strings.TrimSpace(p.advance().Lit)
				p.expect(token.KwIs)
				pair.Value = strings.TrimSpace(p.expect(token.String).Lit)
				d.Implementation = append(d.Implementation, pair)
				p.skipSemis()
				if p.accept(token.Comma) {
					p.skipSemis()
				}
			}
			p.expect(token.RBrace)
			p.skipSemis()
		case token.KwInputs:
			p.advance()
			p.expect(token.LBrace)
			for p.at(token.KwInput) {
				d.Inputs = append(d.Inputs, p.parseInputSetBinding())
				p.skipSemis()
			}
			p.expect(token.RBrace)
			p.skipSemis()
		case token.KwTask:
			if !d.Compound && !inTemplate {
				p.errorf(p.cur().Pos, "constituent task inside plain task %s (did you mean compoundtask?)", d.Name)
			}
			d.Constituents = append(d.Constituents, p.parseTaskDecl(false))
		case token.KwCompoundTask:
			if !d.Compound && !inTemplate {
				p.errorf(p.cur().Pos, "constituent compoundtask inside plain task %s", d.Name)
			}
			d.Constituents = append(d.Constituents, p.parseTaskDecl(true))
		case token.Ident:
			// Template instantiation as a constituent.
			d.Constituents = append(d.Constituents, p.parseTemplateInst())
		case token.KwOutputs:
			p.advance()
			p.expect(token.LBrace)
			for p.at(token.KwOutcome) || p.at(token.KwAbort) || p.at(token.KwRepeat) || p.at(token.KwMark) {
				d.Outputs = append(d.Outputs, p.parseOutputBinding())
				p.skipSemis()
			}
			p.expect(token.RBrace)
			p.skipSemis()
		default:
			p.errorf(p.cur().Pos, "unexpected %s in task %s", p.cur(), d.Name)
			p.advance()
		}
	}
	return params
}

// input main { inputobject i1 from {...}; notification from {...}; ... }
func (p *parser) parseInputSetBinding() *ast.InputSetBinding {
	start := p.expect(token.KwInput).Pos
	b := &ast.InputSetBinding{Start: start}
	b.Name = p.expectIdent("input set")
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwInputObject:
			b.Deps = append(b.Deps, p.parseObjectDep(token.KwInputObject))
		case token.KwNotification:
			b.Deps = append(b.Deps, p.parseNotificationDep())
		case token.Ident:
			// Shorthand used inside template bodies:
			//   i1 of task param1 if output success;
			// equivalent to inputobject i1 from { i1 of task param1 ... }.
			start := p.cur().Pos
			src := p.parseSourceRef()
			b.Deps = append(b.Deps, &ast.ObjectDep{
				Start:   start,
				Name:    src.Object,
				Sources: []*ast.SourceRef{src},
			})
			p.skipSemis()
		default:
			p.errorf(p.cur().Pos, "unexpected %s in input set %s", p.cur(), b.Name)
			p.advance()
		}
		p.skipSemis()
	}
	p.expect(token.RBrace)
	return b
}

// inputobject i1 from { src; src; ... }   (or outputobject in outputs)
func (p *parser) parseObjectDep(kw token.Kind) *ast.ObjectDep {
	start := p.expect(kw).Pos
	d := &ast.ObjectDep{Start: start}
	d.Name = p.expectIdent("object")
	p.expect(token.KwFrom)
	p.expect(token.LBrace)
	for p.at(token.Ident) {
		d.Sources = append(d.Sources, p.parseSourceRef())
		p.skipSemis()
	}
	p.expect(token.RBrace)
	p.skipSemis()
	return d
}

// notification from { task t2 if output oc1; ... }
func (p *parser) parseNotificationDep() *ast.NotificationDep {
	start := p.expect(token.KwNotification).Pos
	d := &ast.NotificationDep{Start: start}
	p.expect(token.KwFrom)
	p.expect(token.LBrace)
	for p.at(token.KwTask) {
		d.Sources = append(d.Sources, p.parseNotifSource())
		p.skipSemis()
	}
	p.expect(token.RBrace)
	p.skipSemis()
	return d
}

// obj of task t [if (input|output) name]
func (p *parser) parseSourceRef() *ast.SourceRef {
	start := p.cur().Pos
	s := &ast.SourceRef{Start: start, Cond: ast.CondNone}
	s.Object = p.expectIdent("source object")
	p.expect(token.KwOf)
	p.expect(token.KwTask)
	s.Task = p.expectIdent("source task")
	p.parseSourceCond(s)
	return s
}

// task t [if (input|output) name]
func (p *parser) parseNotifSource() *ast.SourceRef {
	start := p.expect(token.KwTask).Pos
	s := &ast.SourceRef{Start: start, Cond: ast.CondNone}
	s.Task = p.expectIdent("source task")
	p.parseSourceCond(s)
	return s
}

func (p *parser) parseSourceCond(s *ast.SourceRef) {
	if !p.accept(token.KwIf) {
		return
	}
	switch p.cur().Kind {
	case token.KwInput:
		p.advance()
		s.Cond = ast.CondInput
	case token.KwOutput:
		p.advance()
		s.Cond = ast.CondOutput
	default:
		p.errorf(p.cur().Pos, "expected input or output after if, found %s", p.cur())
		s.Cond = ast.CondOutput
	}
	s.CondName = p.expectIdent("condition")
}

// outcome name { outputobject x from {...}; notification from {...} }
func (p *parser) parseOutputBinding() *ast.OutputBinding {
	kind, start := p.parseOutputKind()
	b := &ast.OutputBinding{Start: start, Kind: kind}
	b.Name = p.expectIdent("output")
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwOutputObject:
			b.Deps = append(b.Deps, p.parseObjectDep(token.KwOutputObject))
		case token.KwNotification:
			b.Deps = append(b.Deps, p.parseNotificationDep())
		default:
			p.errorf(p.cur().Pos, "unexpected %s in output binding %s", p.cur(), b.Name)
			p.advance()
		}
		p.skipSemis()
	}
	p.expect(token.RBrace)
	return b
}

// tasktemplate [task|compoundtask] Name of taskclass Class { parameters {...}; body }
func (p *parser) parseTemplateDecl() ast.Decl {
	start := p.expect(token.KwTaskTemplate).Pos
	compound := false
	switch p.cur().Kind {
	case token.KwTask:
		p.advance()
	case token.KwCompoundTask:
		p.advance()
		compound = true
	}
	d := &ast.TaskTemplateDecl{Start: start}
	body := &ast.TaskDecl{Start: start, Compound: compound}
	d.Name = p.expectIdent("tasktemplate")
	body.Name = d.Name
	p.expect(token.KwOf)
	p.expect(token.KwTaskClass)
	body.Class = p.expectIdent("taskclass")
	p.expect(token.LBrace)
	d.Params = p.parseTaskBody(body, true)
	p.expect(token.RBrace)
	p.skipSemis()
	d.Body = body
	return d
}

// name of tasktemplate tmpl(arg1, arg2) ;
func (p *parser) parseTemplateInst() ast.Decl {
	start := p.cur().Pos
	d := &ast.TemplateInstDecl{Start: start}
	d.Name = p.expectIdent("task")
	p.expect(token.KwOf)
	p.expect(token.KwTaskTemplate)
	d.Template = p.expectIdent("tasktemplate")
	p.expect(token.LParen)
	for p.at(token.Ident) || p.at(token.String) {
		d.Args = append(d.Args, p.advance().Lit)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	p.skipSemis()
	return d
}
