package parser_test

import (
	"fmt"
	"testing"

	"repro/internal/script/lexer"
	"repro/internal/script/parser"
	"repro/internal/scripts"
	"repro/internal/workload"
)

func BenchmarkLexPaperScripts(b *testing.B) {
	src := []byte(scripts.BusinessTrip)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		toks, errs := lexer.ScanAll("bench", src)
		if len(errs) > 0 || len(toks) == 0 {
			b.Fatal("lex failed")
		}
	}
}

func BenchmarkParsePaperScripts(b *testing.B) {
	for name, src := range scripts.All {
		b.Run(name, func(b *testing.B) {
			data := []byte(src)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := parser.Parse(name, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParseGenerated(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		src := []byte(workload.Chain(n))
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := parser.Parse("bench", src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
