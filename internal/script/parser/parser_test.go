package parser_test

import (
	"strings"
	"testing"

	"repro/internal/script/ast"
	"repro/internal/script/parser"
	"repro/internal/scripts"
)

func TestParsePaperScripts(t *testing.T) {
	for name, src := range scripts.All {
		t.Run(name, func(t *testing.T) {
			s, err := parser.Parse(name, []byte(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(s.Decls) == 0 {
				t.Fatal("no declarations")
			}
		})
	}
}

// paperVerbatim is the Section 4.3 listing as printed in the paper,
// including typographic quotes and trailing-semicolon quirks.
const paperVerbatim = `
class Item;
class Account;

taskclass PaymentCapture
{
    inputs
    {
        input main
        {
            item of class Item;
            account of class Account
        }
    };
    outputs
    {
        outcome done
        {
        }
    }
}

task paymentCapture of taskclass PaymentCapture
{
    implementation { “code”  is “SETPaymentCapture”};
    inputs
    {
        input main
        {
            inputobject item from
            {
                item of task paymentCapture if input main
            };
            inputobject account from
            {
                account of task paymentCapture if input main
            }
        }
    }
}
`

func TestParseVerbatimPaperSyntax(t *testing.T) {
	s, err := parser.Parse("paper", []byte(paperVerbatim))
	if err != nil {
		t.Fatalf("parse verbatim paper listing: %v", err)
	}
	tasks := s.Tasks()
	if len(tasks) != 1 || tasks[0].Name != "paymentCapture" {
		t.Fatalf("tasks = %v", tasks)
	}
	if code, ok := tasks[0].Impl("code"); !ok || code != "SETPaymentCapture" {
		t.Fatalf("code = %q, %v", code, ok)
	}
}

func TestParseTaskClassShape(t *testing.T) {
	src := `
class A;
taskclass T
{
    inputs
    {
        input main { a of class A };
        input alt { }
    };
    outputs
    {
        outcome ok { a of class A };
        abort outcome ab { };
        repeat outcome again { a of class A };
        mark m { a of class A }
    }
};`
	s, err := parser.Parse("t", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	tcs := s.TaskClasses()
	if len(tcs) != 1 {
		t.Fatalf("taskclasses = %d", len(tcs))
	}
	tc := tcs[0]
	if len(tc.Inputs) != 2 || tc.Inputs[0].Name != "main" || len(tc.Inputs[0].Objects) != 1 {
		t.Fatalf("inputs = %+v", tc.Inputs)
	}
	wantKinds := []ast.OutputKind{ast.Outcome, ast.AbortOutcome, ast.RepeatOutcome, ast.Mark}
	if len(tc.Outputs) != 4 {
		t.Fatalf("outputs = %d", len(tc.Outputs))
	}
	for i, o := range tc.Outputs {
		if o.Kind != wantKinds[i] {
			t.Errorf("output %d kind = %v, want %v", i, o.Kind, wantKinds[i])
		}
	}
}

func TestParseNotificationAlternatives(t *testing.T) {
	// The Section 4.3 example: two notification dependencies, each with
	// alternatives (AND of ORs).
	src := `
task t1 of taskclass tc1
{
    inputs
    {
        input main
        {
            notification from
            {
                task t2 if output oc1;
                task t3 if output oc1
            };
            notification from
            {
                task t2 if output oc2;
                task t4 if output oc2
            }
        }
    }
}`
	s, err := parser.Parse("n", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	in := s.Tasks()[0].Inputs[0]
	notifs := in.Notifications()
	if len(notifs) != 2 {
		t.Fatalf("notifications = %d, want 2", len(notifs))
	}
	if len(notifs[0].Sources) != 2 || len(notifs[1].Sources) != 2 {
		t.Fatal("each notification must keep its 2 alternatives")
	}
	if notifs[0].Sources[0].Task != "t2" || notifs[0].Sources[0].CondName != "oc1" {
		t.Errorf("source = %+v", notifs[0].Sources[0])
	}
}

func TestParseTemplateAndInstantiation(t *testing.T) {
	s, err := parser.Parse("tmpl", []byte(scripts.PaymentTemplate))
	if err != nil {
		t.Fatal(err)
	}
	tmpls := s.Templates()
	if len(tmpls) != 1 || tmpls[0].Name != "captureTemplate" {
		t.Fatalf("templates = %v", tmpls)
	}
	if len(tmpls[0].Params) != 1 || tmpls[0].Params[0] != "upstream" {
		t.Fatalf("params = %v", tmpls[0].Params)
	}
	// The shorthand source inside the template body becomes an ObjectDep.
	deps := tmpls[0].Body.Inputs[0].ObjectDeps()
	if len(deps) != 1 || deps[0].Name != "paymentInfo" {
		t.Fatalf("shorthand dep = %+v", deps)
	}
}

func TestParseErrorsRecoverAndReport(t *testing.T) {
	src := `
class A;
task broken of taskclass { inputs { } }
class B;
`
	s, err := parser.Parse("bad", []byte(src))
	if err == nil {
		t.Fatal("expected syntax errors")
	}
	// Recovery must still collect the surrounding class declarations.
	if got := len(s.Classes()); got != 2 {
		t.Errorf("recovered classes = %d, want 2", got)
	}
}

func TestParseMultipleErrors(t *testing.T) {
	src := "task x of taskclass { } task y of taskclass { }"
	_, err := parser.Parse("bad", []byte(src))
	if err == nil {
		t.Fatal("expected errors")
	}
	var list parser.ErrorList
	if !strings.Contains(err.Error(), "expected") {
		t.Errorf("err = %v", err)
	}
	if el, ok := err.(parser.ErrorList); ok { //nolint:errorlint // direct type check intended
		list = el
	}
	if len(list) < 2 {
		t.Errorf("errors = %d, want >= 2 (multi-error reporting)", len(list))
	}
}

func TestParseTaskFragment(t *testing.T) {
	frag := `
task t5 of taskclass tc5
{
    implementation { "code" is "x" };
    inputs
    {
        input main
        {
            inputobject a from { b of task t2 if output oc1 }
        }
    }
};`
	d, err := parser.ParseTaskFragment([]byte(frag))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "t5" || d.Class != "tc5" {
		t.Fatalf("fragment = %+v", d)
	}
	if _, err := parser.ParseTaskFragment([]byte("class A;")); err == nil {
		t.Fatal("non-task fragment must be rejected")
	}
	if _, err := parser.ParseTaskFragment([]byte(frag + " class A;")); err == nil {
		t.Fatal("trailing declarations must be rejected")
	}
}

func TestParseSourceRef(t *testing.T) {
	s, err := parser.ParseSourceRef("o1 of task t4 if output oc1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Object != "o1" || s.Task != "t4" || s.Cond != ast.CondOutput || s.CondName != "oc1" {
		t.Fatalf("source = %+v", s)
	}
	s, err = parser.ParseSourceRef("task t2 if input main")
	if err != nil {
		t.Fatal(err)
	}
	if s.Object != "" || s.Task != "t2" || s.Cond != ast.CondInput {
		t.Fatalf("notification source = %+v", s)
	}
	s, err = parser.ParseSourceRef("plane of task flightReservation")
	if err != nil {
		t.Fatal(err)
	}
	if s.Cond != ast.CondNone {
		t.Fatalf("unconditioned source = %+v", s)
	}
	if _, err := parser.ParseSourceRef("of task x"); err == nil {
		t.Fatal("malformed source must be rejected")
	}
}

func TestInspectWalksEverything(t *testing.T) {
	s := parser.MustParse("po", []byte(scripts.ProcessOrder))
	var sources int
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.SourceRef); ok {
			sources++
		}
		return true
	})
	if sources < 10 {
		t.Errorf("Inspect found %d sources, want >= 10", sources)
	}
}
