package parser

import (
	"fmt"

	"repro/internal/script/ast"
	"repro/internal/script/lexer"
	"repro/internal/script/token"
)

// ParseTaskFragment parses src as a single task or compoundtask
// declaration — the unit of dynamic reconfiguration ("it should be
// possible to change the structure of a running application by
// adding/deleting tasks", Section 2). The fragment uses exactly the same
// concrete syntax as in a full script.
func ParseTaskFragment(src []byte) (*ast.TaskDecl, error) {
	toks, lexErrs := lexer.ScanAll("fragment", src)
	p := &parser{file: "fragment", toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	var d *ast.TaskDecl
	switch p.cur().Kind {
	case token.KwTask:
		d = p.parseTaskDecl(false)
	case token.KwCompoundTask:
		d = p.parseTaskDecl(true)
	default:
		return nil, fmt.Errorf("task fragment must start with task or compoundtask, found %s", p.cur())
	}
	p.skipSemis()
	if !p.at(token.EOF) {
		p.errorf(p.cur().Pos, "unexpected %s after task declaration", p.cur())
	}
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseSourceRef parses a dependency source specification in the concrete
// syntax of Section 4.3, e.g. "o1 of task t4 if output oc1" (object
// source) or "task t2 if output oc2" (notification source).
func ParseSourceRef(src string) (*ast.SourceRef, error) {
	toks, lexErrs := lexer.ScanAll("source", []byte(src))
	p := &parser{file: "source", toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	var s *ast.SourceRef
	if p.at(token.KwTask) {
		s = p.parseNotifSource()
	} else {
		s = p.parseSourceRef()
	}
	p.skipSemis()
	if !p.at(token.EOF) {
		p.errorf(p.cur().Pos, "unexpected %s after source", p.cur())
	}
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
