// Package token defines the lexical tokens of the workflow scripting
// language described in Ranno, Shrivastava and Wheater (ICDCS'98), together
// with source positions used for diagnostics throughout the toolchain.
package token

import (
	"fmt"
	"strconv"
)

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds mirror the constructs of the paper's grammar
// (class, taskclass, task, compoundtask, tasktemplate, ...).
const (
	// Special tokens.
	Illegal Kind = iota + 1
	EOF
	Comment

	// Literals and identifiers.
	Ident  // alarmCorrelator
	String // "SETPaymentCapture"
	Int    // 42

	// Punctuation.
	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	Semicolon // ;
	Comma     // ,

	// Keywords.
	KwClass
	KwTaskClass
	KwTask
	KwCompoundTask
	KwTaskTemplate
	KwParameters
	KwImplementation
	KwIs
	KwInputs
	KwInput
	KwInputObject
	KwOutputs
	KwOutput
	KwOutputObject
	KwOutcome
	KwAbort
	KwRepeat
	KwMark
	KwNotification
	KwFrom
	KwOf
	KwIf
)

var kindNames = map[Kind]string{
	Illegal:          "illegal",
	EOF:              "eof",
	Comment:          "comment",
	Ident:            "identifier",
	String:           "string",
	Int:              "integer",
	LBrace:           "{",
	RBrace:           "}",
	LParen:           "(",
	RParen:           ")",
	Semicolon:        ";",
	Comma:            ",",
	KwClass:          "class",
	KwTaskClass:      "taskclass",
	KwTask:           "task",
	KwCompoundTask:   "compoundtask",
	KwTaskTemplate:   "tasktemplate",
	KwParameters:     "parameters",
	KwImplementation: "implementation",
	KwIs:             "is",
	KwInputs:         "inputs",
	KwInput:          "input",
	KwInputObject:    "inputobject",
	KwOutputs:        "outputs",
	KwOutput:         "output",
	KwOutputObject:   "outputobject",
	KwOutcome:        "outcome",
	KwAbort:          "abort",
	KwRepeat:         "repeat",
	KwMark:           "mark",
	KwNotification:   "notification",
	KwFrom:           "from",
	KwOf:             "of",
	KwIf:             "if",
}

// String returns the human-readable name of the kind, as used in parser
// diagnostics ("expected '{', found identifier").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// IsKeyword reports whether the kind is a reserved word of the language.
func (k Kind) IsKeyword() bool { return k >= KwClass && k <= KwIf }

var keywords = map[string]Kind{
	"class":          KwClass,
	"taskclass":      KwTaskClass,
	"task":           KwTask,
	"compoundtask":   KwCompoundTask,
	"tasktemplate":   KwTaskTemplate,
	"parameters":     KwParameters,
	"implementation": KwImplementation,
	"is":             KwIs,
	"inputs":         KwInputs,
	"input":          KwInput,
	"inputobject":    KwInputObject,
	"outputs":        KwOutputs,
	"output":         KwOutput,
	"outputobject":   KwOutputObject,
	"outcome":        KwOutcome,
	"abort":          KwAbort,
	"repeat":         KwRepeat,
	"mark":           KwMark,
	"notification":   KwNotification,
	"from":           KwFrom,
	"of":             KwOf,
	"if":             KwIf,
}

// Lookup maps an identifier spelling to its keyword kind, or returns Ident
// if the spelling is not reserved.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Position is a source location (1-based line and column, 0-based byte
// offset) within a named script.
type Position struct {
	File   string
	Offset int
	Line   int
	Column int
}

// IsValid reports whether the position carries real location information.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:column, omitting empty parts.
func (p Position) String() string {
	s := p.File
	if p.IsValid() {
		if s != "" {
			s += ":"
		}
		s += fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Token is a single lexeme with its kind, literal spelling and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, String, Int, Illegal, Comment:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
