// Package ast defines the abstract syntax tree for the workflow scripting
// language of Ranno et al. (ICDCS'98). Each construct of the paper's
// grammar — class, taskclass, task, compoundtask, tasktemplate and their
// dependency clauses — has a corresponding node type carrying source
// positions for diagnostics.
package ast

import "repro/internal/script/token"

// Node is implemented by every AST node.
type Node interface {
	// Pos returns the position of the first token of the node.
	Pos() token.Position
}

// Decl is a top-level or constituent declaration.
type Decl interface {
	Node
	declNode()
}

// InputDep is a dependency clause inside an input set or an output
// binding: either an object (dataflow) dependency or a notification
// (temporal) dependency.
type InputDep interface {
	Node
	inputDepNode()
}

// Script is a parsed workflow script: an ordered list of declarations.
type Script struct {
	File  string
	Decls []Decl
}

// Pos implements Node; it reports the start of the first declaration.
func (s *Script) Pos() token.Position {
	if len(s.Decls) == 0 {
		return token.Position{File: s.File}
	}
	return s.Decls[0].Pos()
}

// ClassDecl introduces an opaque object class: `class Account;`.
// Only the name is declared; member operations are external to the
// script. The optional Super clause (`class EuroAccount of class
// Account;`) declares a sub-type — the extension the paper's Section 7
// names as future work, enabling "building block" tasks that operate on
// standard super-types.
type ClassDecl struct {
	Start token.Position
	Name  string
	// Super names the immediate super-class, empty for a root class.
	Super string
}

// TaskClassDecl declares a task signature: named input sets and named
// outputs of the four kinds.
type TaskClassDecl struct {
	Start   token.Position
	Name    string
	Inputs  []*InputSetDecl
	Outputs []*OutputDecl
}

// InputSetDecl is one alternative input requirement in a taskclass:
// `input main { item of class Item; account of class Account }`.
type InputSetDecl struct {
	Start   token.Position
	Name    string
	Objects []*ObjectField
}

// ObjectField is a typed object reference declaration: `item of class Item`.
type ObjectField struct {
	Start token.Position
	Name  string
	Class string
}

// OutputKind distinguishes the four output types of Section 4.2.
type OutputKind int

// Output kinds. Outcome is a final result; AbortOutcome signals
// side-effect-free termination (and marks the task as atomic);
// RepeatOutcome restarts the task; Mark is an early intermediate release.
const (
	Outcome OutputKind = iota + 1
	AbortOutcome
	RepeatOutcome
	Mark
)

// String returns the concrete-syntax spelling of the kind.
func (k OutputKind) String() string {
	switch k {
	case Outcome:
		return "outcome"
	case AbortOutcome:
		return "abort outcome"
	case RepeatOutcome:
		return "repeat outcome"
	case Mark:
		return "mark"
	default:
		return "outputkind(?)"
	}
}

// OutputDecl is a named output in a taskclass together with the object
// references it carries.
type OutputDecl struct {
	Start   token.Position
	Kind    OutputKind
	Name    string
	Objects []*ObjectField
}

// ImplPair is one `"key" is "value"` entry of an implementation clause.
// Recognised keys include "code", "location", "agent", "deadline" and
// "priority"; the set is open-ended (Section 4.3).
type ImplPair struct {
	Start token.Position
	Key   string
	Value string
}

// TaskDecl declares a task or compound task instance of a task class.
// For a plain task, Constituents and Outputs are empty; for a compound
// task they describe the internal composition and the output mappings.
type TaskDecl struct {
	Start          token.Position
	Compound       bool
	Name           string
	Class          string
	Implementation []*ImplPair
	Inputs         []*InputSetBinding
	Constituents   []Decl
	Outputs        []*OutputBinding
}

// InputSetBinding binds the dependencies of one input set of a task
// instance: ordered object and notification dependencies.
type InputSetBinding struct {
	Start token.Position
	Name  string
	Deps  []InputDep
}

// ObjectDep is a dataflow dependency: `inputobject i1 from { ... }` inside
// an input set, or `outputobject o1 from { ... }` inside a compound-task
// output binding. The alternative sources are ordered; the first available
// wins.
type ObjectDep struct {
	Start   token.Position
	Name    string
	Sources []*SourceRef
}

// NotificationDep is a temporal dependency: `notification from { ... }`
// with ordered alternative sources.
type NotificationDep struct {
	Start   token.Position
	Sources []*SourceRef
}

// SourceCond says how a source is conditioned: on another task's input
// set, on one of its outputs, or unconditioned (any output carrying the
// object).
type SourceCond int

// Source conditions.
const (
	CondNone   SourceCond = iota + 1 // `o of task t` — any producing output
	CondInput                        // `o of task t if input main`
	CondOutput                       // `o of task t if output oc1`
)

// SourceRef is one alternative source: an object (or bare notification,
// when Object is empty) obtained from a task's input set or output.
// Task may name a template parameter inside a tasktemplate body.
type SourceRef struct {
	Start    token.Position
	Object   string // empty for notification sources
	Task     string
	Cond     SourceCond
	CondName string // input-set or output name; empty iff Cond == CondNone
}

// OutputBinding maps one output of a compound task instance to sources
// among its constituents: object mappings (`outputobject x from {...}`)
// and notifications that gate the outcome.
type OutputBinding struct {
	Start token.Position
	Kind  OutputKind
	Name  string
	Deps  []InputDep
}

// TaskTemplateDecl is a parametrised task or compoundtask definition
// (Section 4.5). Body holds the template's implementation, inputs,
// constituents and outputs; parameter names may appear as source task
// names inside Body.
type TaskTemplateDecl struct {
	Start  token.Position
	Name   string
	Params []string
	Body   *TaskDecl
}

// TemplateInstDecl instantiates a template:
// `taskname of tasktemplate templatename(arg1, arg2)`.
type TemplateInstDecl struct {
	Start    token.Position
	Name     string
	Template string
	Args     []string
}

// Pos implementations.

// Pos returns the declaration's start position.
func (d *ClassDecl) Pos() token.Position { return d.Start }

// Pos returns the declaration's start position.
func (d *TaskClassDecl) Pos() token.Position { return d.Start }

// Pos returns the input set's start position.
func (d *InputSetDecl) Pos() token.Position { return d.Start }

// Pos returns the field's start position.
func (d *ObjectField) Pos() token.Position { return d.Start }

// Pos returns the output's start position.
func (d *OutputDecl) Pos() token.Position { return d.Start }

// Pos returns the pair's start position.
func (d *ImplPair) Pos() token.Position { return d.Start }

// Pos returns the declaration's start position.
func (d *TaskDecl) Pos() token.Position { return d.Start }

// Pos returns the binding's start position.
func (d *InputSetBinding) Pos() token.Position { return d.Start }

// Pos returns the dependency's start position.
func (d *ObjectDep) Pos() token.Position { return d.Start }

// Pos returns the dependency's start position.
func (d *NotificationDep) Pos() token.Position { return d.Start }

// Pos returns the source's start position.
func (d *SourceRef) Pos() token.Position { return d.Start }

// Pos returns the binding's start position.
func (d *OutputBinding) Pos() token.Position { return d.Start }

// Pos returns the declaration's start position.
func (d *TaskTemplateDecl) Pos() token.Position { return d.Start }

// Pos returns the declaration's start position.
func (d *TemplateInstDecl) Pos() token.Position { return d.Start }

func (*ClassDecl) declNode()        {}
func (*TaskClassDecl) declNode()    {}
func (*TaskDecl) declNode()         {}
func (*TaskTemplateDecl) declNode() {}
func (*TemplateInstDecl) declNode() {}

func (*ObjectDep) inputDepNode()       {}
func (*NotificationDep) inputDepNode() {}

// Classes returns the class declarations of the script in order.
func (s *Script) Classes() []*ClassDecl {
	var out []*ClassDecl
	for _, d := range s.Decls {
		if c, ok := d.(*ClassDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// TaskClasses returns the taskclass declarations of the script in order.
func (s *Script) TaskClasses() []*TaskClassDecl {
	var out []*TaskClassDecl
	for _, d := range s.Decls {
		if c, ok := d.(*TaskClassDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// Tasks returns the top-level task and compoundtask declarations in order.
func (s *Script) Tasks() []*TaskDecl {
	var out []*TaskDecl
	for _, d := range s.Decls {
		if t, ok := d.(*TaskDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// Templates returns the tasktemplate declarations in order.
func (s *Script) Templates() []*TaskTemplateDecl {
	var out []*TaskTemplateDecl
	for _, d := range s.Decls {
		if t, ok := d.(*TaskTemplateDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// Impl returns the value bound to an implementation key ("code",
// "deadline", ...) and whether the key is present.
func (d *TaskDecl) Impl(key string) (string, bool) {
	for _, p := range d.Implementation {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// InputSet returns the binding for the named input set, or nil.
func (d *TaskDecl) InputSet(name string) *InputSetBinding {
	for _, b := range d.Inputs {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Output returns the output binding with the given name, or nil.
func (d *TaskDecl) Output(name string) *OutputBinding {
	for _, b := range d.Outputs {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// ObjectDeps returns the object dependencies of the binding in order.
func (b *InputSetBinding) ObjectDeps() []*ObjectDep {
	var out []*ObjectDep
	for _, d := range b.Deps {
		if od, ok := d.(*ObjectDep); ok {
			out = append(out, od)
		}
	}
	return out
}

// Notifications returns the notification dependencies of the binding.
func (b *InputSetBinding) Notifications() []*NotificationDep {
	var out []*NotificationDep
	for _, d := range b.Deps {
		if nd, ok := d.(*NotificationDep); ok {
			out = append(out, nd)
		}
	}
	return out
}

// Inspect walks the tree rooted at n in depth-first order, calling f for
// each node; if f returns false the children of that node are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Script:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *TaskClassDecl:
		for _, in := range x.Inputs {
			Inspect(in, f)
		}
		for _, out := range x.Outputs {
			Inspect(out, f)
		}
	case *InputSetDecl:
		for _, o := range x.Objects {
			Inspect(o, f)
		}
	case *OutputDecl:
		for _, o := range x.Objects {
			Inspect(o, f)
		}
	case *TaskDecl:
		for _, p := range x.Implementation {
			Inspect(p, f)
		}
		for _, in := range x.Inputs {
			Inspect(in, f)
		}
		for _, c := range x.Constituents {
			Inspect(c, f)
		}
		for _, out := range x.Outputs {
			Inspect(out, f)
		}
	case *InputSetBinding:
		for _, d := range x.Deps {
			Inspect(d, f)
		}
	case *ObjectDep:
		for _, s := range x.Sources {
			Inspect(s, f)
		}
	case *NotificationDep:
		for _, s := range x.Sources {
			Inspect(s, f)
		}
	case *OutputBinding:
		for _, d := range x.Deps {
			Inspect(d, f)
		}
	case *TaskTemplateDecl:
		Inspect(x.Body, f)
	}
}
