package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/workload"
)

// The fuzzer drives a random deployment through a random action walk —
// kill-anywhere fault injection included — and checks global invariants
// over the resulting trace. Everything derives from one seed: the
// topology, the workloads, every action choice. Running the same seed
// again replays the identical world bit-for-bit (that is itself one of
// the checked properties), so a failure report is just a seed.

// FuzzReport is the outcome of one seeded run.
type FuzzReport struct {
	Seed  int64
	Steps int
	// Insts maps instance IDs to their final status.
	Insts map[string]string
	Trace []string
	Hash  uint64
	// Violations lists invariant breaches (empty on success).
	Violations []string
}

// Failed reports whether the run breached an invariant.
func (r *FuzzReport) Failed() bool { return len(r.Violations) > 0 }

// fuzzWorkloads are the generator choices open to the fuzzer. All are
// repeat-free and deadline-free: the started-after-terminal invariant
// assumes iterations never recur, and activation deadlines are not
// simulable (see Compile).
func fuzzWorkload(rng *rand.Rand) (name, src string, timed bool) {
	switch rng.Intn(6) {
	case 0:
		n := 2 + rng.Intn(3)
		return fmt.Sprintf("chain%d", n), workload.Chain(n), false
	case 1:
		n := 2 + rng.Intn(2)
		return fmt.Sprintf("diamond%d", n), workload.Diamond(n), false
	case 2:
		n := 2 + rng.Intn(2)
		return fmt.Sprintf("fanout%d", n), workload.FanOut(n), false
	case 3:
		n := 1 + rng.Intn(3)
		return fmt.Sprintf("lchain%d", n), workload.LocatedChain(n, "pool"), false
	case 4:
		n := 2 + rng.Intn(2)
		return fmt.Sprintf("lfan%d", n), workload.LocatedFanOut(n, "pool"), false
	default:
		n := 1 + rng.Intn(2)
		d := time.Duration(1+rng.Intn(9)) * time.Second
		return fmt.Sprintf("timer%d_%s", n, d), workload.TimerChain(n, d), true
	}
}

// maxFuzzSteps bounds one run's action walk.
const maxFuzzSteps = 200

// RunFuzz builds a random world from seed, walks it with random
// actions and faults until every instance is terminal (or the step
// budget runs out), and checks the trace invariants. Half the worlds
// are sharded multi-coordinator tiers (2-3 engines over partitioned
// stores), so coordinator kills also exercise the deterministic
// partition-failover and re-materialization paths, and diskfault
// actions (WedgeDisk/DegradeCoordinator) interleave with them: a
// coordinator's store wedges mid-walk and the graceful handoff to a
// healthy peer must preserve the invariants within each ownership
// epoch.
func RunFuzz(seed int64) (*FuzzReport, error) {
	rng := rand.New(rand.NewSource(seed))
	execs := 2 + rng.Intn(2)
	coords := 1
	if rng.Float64() < 0.5 {
		coords = 2 + rng.Intn(2)
	}
	w, err := New(Config{Executors: execs, Coordinators: coords, Partitions: 4})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	rep := &FuzzReport{Seed: seed, Insts: make(map[string]string)}
	nInsts := 1 + rng.Intn(2)
	for i := 0; i < nInsts; i++ {
		name, src, timed := fuzzWorkload(rng)
		schema := fmt.Sprintf("s%d_%s", i, name)
		if err := w.Compile(schema, src); err != nil {
			return nil, fmt.Errorf("seed %d: compile %s: %w", seed, schema, err)
		}
		id := fmt.Sprintf("i%d", i)
		if err := w.Instantiate(id, schema, ""); err != nil {
			return nil, fmt.Errorf("seed %d: instantiate %s: %w", seed, id, err)
		}
		inputs := workload.Seed()
		if timed {
			inputs = workload.TimerSeed()
		}
		if err := w.Start(id, "main", inputs); err != nil {
			return nil, fmt.Errorf("seed %d: start %s: %w", seed, id, err)
		}
		rep.Insts[id] = ""
	}

	coordCrashes := 0
	diskWedges := 0
	for rep.Steps = 0; rep.Steps < maxFuzzSteps; rep.Steps++ {
		if liveCoordinators(w) > 0 && allTerminal(w, rep.Insts) {
			break
		}
		// Rare faults first, so they can hit any frontier shape.
		roll := rng.Float64()
		switch {
		case roll < 0.04 && coordCrashes < 2 && liveCoordinators(w) > 0:
			// Crash only disk-healthy coordinators: a wedged one is on the
			// degrade path, whose at-least-once re-execution the invariant
			// checker scopes via the degrade action lines — a plain crash
			// takeover of its lagging store would replay without leaving
			// that marker.
			if i := pickHealthyCoordinator(w, rng); i >= 0 {
				coordCrashes++
				if err := w.CrashCoordinator(i); err != nil {
					return nil, fmt.Errorf("seed %d step %d: crash: %w", seed, rep.Steps, err)
				}
			}
			continue
		case roll < 0.06 && diskWedges < 1 && liveCoordinators(w) >= 2:
			// diskfault: wedge a live coordinator's partition stores. Only
			// with a live peer around, so a degrade can always hand off.
			if i := pickWedgeTarget(w, rng); i >= 0 {
				diskWedges++
				if err := w.WedgeDisk(i); err != nil {
					return nil, fmt.Errorf("seed %d step %d: diskwedge: %w", seed, rep.Steps, err)
				}
			}
			continue
		case roll < 0.09 && wedgedCoordinator(w) >= 0 && liveCoordinators(w) >= 2:
			// diskfault: gracefully degrade the wedged coordinator, handing
			// its sick partitions to a healthy peer.
			if err := w.DegradeCoordinator(wedgedCoordinator(w)); err != nil {
				return nil, fmt.Errorf("seed %d step %d: degrade: %w", seed, rep.Steps, err)
			}
			continue
		case roll < 0.15:
			if err := toggleExecutor(w, rng, execs); err != nil {
				return nil, fmt.Errorf("seed %d step %d: executor toggle: %w", seed, rep.Steps, err)
			}
			continue
		case roll < 0.17:
			var err error
			if w.NamingUp() {
				err = w.KillNaming()
			} else {
				err = w.RecoverNaming()
			}
			if err != nil {
				return nil, fmt.Errorf("seed %d step %d: naming toggle: %w", seed, rep.Steps, err)
			}
			continue
		}
		if liveCoordinators(w) == 0 {
			if err := w.RecoverCoordinator(deadCoordinator(w)); err != nil {
				return nil, fmt.Errorf("seed %d step %d: recover coordinator: %w", seed, rep.Steps, err)
			}
			continue
		}
		if rs := w.Ready(); len(rs) > 0 {
			r := rs[rng.Intn(len(rs))]
			fail := rng.Float64() < 0.10
			if err := w.Release(r, "", fail); err != nil {
				return nil, fmt.Errorf("seed %d step %d: release %s/%s: %w", seed, rep.Steps, r.Instance, r.Path, err)
			}
			continue
		}
		if w.ArmedDelays() > 0 {
			if _, err := w.AdvanceToNext(); err != nil {
				return nil, fmt.Errorf("seed %d step %d: advance: %w", seed, rep.Steps, err)
			}
			continue
		}
		// Nothing ready, nothing armed: only recovery can change things.
		if !w.NamingUp() {
			if err := w.RecoverNaming(); err != nil {
				return nil, fmt.Errorf("seed %d step %d: recover naming: %w", seed, rep.Steps, err)
			}
			continue
		}
		if i := deadExecutor(w, execs); i >= 0 {
			if err := w.RecoverExecutor(i); err != nil {
				return nil, fmt.Errorf("seed %d step %d: recover executor: %w", seed, rep.Steps, err)
			}
			continue
		}
		if j := deadCoordinator(w); j >= 0 {
			if err := w.RecoverCoordinator(j); err != nil {
				return nil, fmt.Errorf("seed %d step %d: recover coordinator: %w", seed, rep.Steps, err)
			}
			continue
		}
		// A wedged coordinator can wedge the walk itself (a failed flush
		// drops its delay from the armed index); the degrade is then the
		// only unsticking move, exactly as in production.
		if i := wedgedCoordinator(w); i >= 0 && liveCoordinators(w) >= 2 {
			if err := w.DegradeCoordinator(i); err != nil {
				return nil, fmt.Errorf("seed %d step %d: stuck degrade: %w", seed, rep.Steps, err)
			}
			continue
		}
		break // genuinely stuck (e.g. everything stalled): end the walk
	}

	for j := deadCoordinator(w); j >= 0; j = deadCoordinator(w) {
		if err := w.RecoverCoordinator(j); err != nil {
			return nil, fmt.Errorf("seed %d: final recover: %w", seed, err)
		}
	}
	for id := range rep.Insts {
		st, err := w.Status(id)
		if err != nil {
			return nil, fmt.Errorf("seed %d: status %s: %w", seed, id, err)
		}
		rep.Insts[id] = st
	}
	rep.Trace = w.Trace()
	rep.Hash = w.TraceHash()
	rep.Violations = checkInvariants(rep.Trace)
	return rep, nil
}

// allTerminal reports whether every fuzzed instance reached a terminal
// status (completed, or stalled/failed under injected faults).
func allTerminal(w *World, insts map[string]string) bool {
	for id := range insts {
		st, err := w.Status(id)
		if err != nil {
			return false
		}
		if st == "running" {
			return false
		}
	}
	return true
}

// liveCoordinators counts the coordinator slots that are up.
func liveCoordinators(w *World) int {
	n := 0
	for i := 0; i < w.Coordinators(); i++ {
		if w.CoordinatorAlive(i) {
			n++
		}
	}
	return n
}

// pickLiveCoordinator picks a uniformly random live coordinator slot,
// or -1 if none is up.
func pickLiveCoordinator(w *World, rng *rand.Rand) int {
	var live []int
	for i := 0; i < w.Coordinators(); i++ {
		if w.CoordinatorAlive(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[rng.Intn(len(live))]
}

// deadCoordinator returns the lowest dead coordinator slot, or -1.
func deadCoordinator(w *World) int {
	for i := 0; i < w.Coordinators(); i++ {
		if !w.CoordinatorAlive(i) {
			return i
		}
	}
	return -1
}

// pickHealthyCoordinator picks a uniformly random live coordinator
// whose disk is not wedged, or -1.
func pickHealthyCoordinator(w *World, rng *rand.Rand) int {
	var live []int
	for i := 0; i < w.Coordinators(); i++ {
		if w.CoordinatorAlive(i) && !w.DiskWedged(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[rng.Intn(len(live))]
}

// pickWedgeTarget picks a uniformly random live coordinator that mounts
// at least one healthy partition view (so WedgeDisk has something to
// break), or -1.
func pickWedgeTarget(w *World, rng *rand.Rand) int {
	var cands []int
	for i := 0; i < w.Coordinators(); i++ {
		c := w.coords[i]
		if c == nil || !c.alive {
			continue
		}
		for _, v := range c.views {
			if v.Wedged() == nil {
				cands = append(cands, i)
				break
			}
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[rng.Intn(len(cands))]
}

// wedgedCoordinator returns the lowest live coordinator still owning a
// wedged partition, or -1.
func wedgedCoordinator(w *World) int {
	for i := 0; i < w.Coordinators(); i++ {
		if w.DiskWedged(i) {
			return i
		}
	}
	return -1
}

// toggleExecutor kills a random live executor or recovers a random dead
// one.
func toggleExecutor(w *World, rng *rand.Rand, execs int) error {
	i := rng.Intn(execs)
	if w.ExecutorAlive(i) {
		return w.KillExecutor(i)
	}
	return w.RecoverExecutor(i)
}

// deadExecutor returns the lowest dead executor slot, or -1.
func deadExecutor(w *World, execs int) int {
	for i := 0; i < execs; i++ {
		if !w.ExecutorAlive(i) {
			return i
		}
	}
	return -1
}

// checkInvariants scans a rendered trace for global safety violations:
//
//	I1 — a delay fires at most once per (instance, task, iteration),
//	     even across coordinator crash/recovery (the wheel re-arms from
//	     its durable records; a fire must never be replayed).
//	I2 — no task run starts again after its terminal event for the same
//	     (instance, task, iteration). Valid because fuzz workloads are
//	     repeat-free: an iteration never legitimately recurs.
//
// Both are scoped around disk-fault degrades: a wedged store swallows
// flushes while in-memory execution runs ahead, so when a degrade hands
// the partition to a healthy peer, the peer re-materializes from the
// last DURABLE state and legitimately re-runs whatever the wedge
// swallowed (at-least-once, the production handoff contract). The
// degrade action line names the re-materialized instances; their I1/I2
// books reset there, so the invariants still bite within each ownership
// epoch — and globally for every instance a degrade never touched.
func checkInvariants(trace []string) []string {
	var violations []string
	fired := make(map[string]int)
	terminal := make(map[string]bool)
	for _, line := range trace {
		if strings.HasPrefix(line, "> degrade ") {
			for _, id := range degradedInsts(line) {
				for k := range fired {
					if strings.HasPrefix(k, id+"|") {
						delete(fired, k)
					}
				}
				for k := range terminal {
					if strings.HasPrefix(k, id+"|") {
						delete(terminal, k)
					}
				}
			}
			continue
		}
		if strings.HasPrefix(line, "> ") || strings.HasPrefix(line, "  ~ ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 5 {
			continue
		}
		inst, kind, task := f[0], f[3], f[4]
		iter := "0"
		for _, tok := range f[5:] {
			if strings.HasPrefix(tok, "iter=") {
				iter = tok[len("iter="):]
			}
		}
		key := inst + "|" + task + "|" + iter
		switch kind {
		case "timer-fired":
			fired[key]++
			if fired[key] > 1 {
				violations = append(violations, fmt.Sprintf("I1: delay %s fired %d times: %s", key, fired[key], line))
			}
		case "started":
			if terminal[key] {
				violations = append(violations, fmt.Sprintf("I2: %s started after its terminal event: %s", key, line))
			}
		case "completed", "aborted":
			terminal[key] = true
		}
	}
	return violations
}

// degradedInsts parses the re-materialized instance list out of a
// "> degrade cX: partition P -> cY (insts: i0,i1)" action line.
func degradedInsts(line string) []string {
	i := strings.Index(line, "(insts: ")
	if i < 0 {
		return nil
	}
	list := strings.TrimSuffix(line[i+len("(insts: "):], ")")
	var ids []string
	for _, id := range strings.Split(list, ",") {
		id = strings.TrimSpace(id)
		if id != "" && id != "none" {
			ids = append(ids, id)
		}
	}
	return ids
}
