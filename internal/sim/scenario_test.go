package sim

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCatalog runs every checked-in scenario, golden traces
// included — the whole catalog executes on virtual time in
// milliseconds. This is the tier-1 home of the scenario suite; CI also
// runs it through `wfsim run` (make sim).
func TestScenarioCatalog(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.scn")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("scenario catalog too small: %d files (want at least the 4 golden-asserted ones)", len(files))
	}
	for _, path := range files {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".scn")
		t.Run(name, func(t *testing.T) {
			scn, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := scn.Run(false)
			if err != nil {
				t.Fatal(err)
			}
			if res.GoldenPath == "" {
				t.Logf("note: %s declares no golden trace", name)
			}
			// Same scenario, same trace: the replay-determinism check at
			// the scenario level.
			res2, err := scn.Run(false)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if res.Hash != res2.Hash {
				t.Fatalf("scenario replay diverged: %x vs %x", res.Hash, res2.Hash)
			}
		})
	}
}

// TestScenarioParseErrors pins the parser's error surface.
func TestScenarioParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown-directive", "frobnicate x\n", "unknown directive"},
		{"unterminated-heredoc", "schema s <<END\nclass Data;\n", "unterminated heredoc"},
		{"unterminated-quote", "expect trace ~ \"oops\n", "unterminated quote"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseScenario(tc.name, tc.src, ".")
			if err == nil {
				_, err = s.Run(false)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestScenarioLateTopology rejects topology directives after the world
// is built.
func TestScenarioLateTopology(t *testing.T) {
	s, err := ParseScenario("late", "schema d paper:fig1_diamond\nexecutors 2\n", ".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(false); err == nil || !strings.Contains(err.Error(), "topology directive") {
		t.Fatalf("error = %v, want topology-directive rejection", err)
	}
}
