package sim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/registry"
)

// The trace is the harness's observable output: one line per driver
// action ("> ..."), per engine event ("  inst #seq +offset kind ...")
// and per newly gated activation ("  ~ ready ..."). Because the world
// settles between actions and events are ordered by (instance, seq),
// the rendered trace is a pure function of the action sequence — the
// property golden traces and replay assert.

// action appends a driver-action line.
func (w *World) action(format string, args ...any) {
	w.mu.Lock()
	w.trace = append(w.trace, "> "+fmt.Sprintf(format, args...))
	w.mu.Unlock()
}

// settleAndRecord settles the world, then folds everything that
// happened — tapped events, the new gated frontier — into the trace.
// The trace is drained even when settle fails, so a wedge report shows
// how far the world got.
func (w *World) settleAndRecord() error {
	err := w.settle()
	w.drainTrace()
	return err
}

// drainTrace renders the buffered events (ordered by instance, then
// engine sequence number — within one drain all events belong to one
// coordinator generation, so seq order is causal order) and the diff of
// the gated frontier since the last drain.
func (w *World) drainTrace() {
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := w.events
	w.events = nil
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Instance != evs[j].Instance {
			return evs[i].Instance < evs[j].Instance
		}
		return evs[i].Seq < evs[j].Seq
	})
	for _, ev := range evs {
		w.trace = append(w.trace, w.renderEvent(ev))
	}
	ready := w.readyLocked()
	now := make(map[gateKey]bool, len(ready))
	for _, r := range ready {
		k := gateKey{inst: r.Instance, path: r.Path, attempt: r.Attempt, iteration: r.Iteration, where: r.Where}
		now[k] = true
		if w.lastReady[k] {
			continue
		}
		line := fmt.Sprintf("  ~ ready %s %s/%s code=%s", r.Where, r.Instance, r.Path, r.Code)
		if r.Attempt > 0 {
			line += fmt.Sprintf(" attempt=%d", r.Attempt)
		}
		if r.Iteration > 0 {
			line += fmt.Sprintf(" iter=%d", r.Iteration)
		}
		w.trace = append(w.trace, line)
	}
	w.lastReady = now
}

// renderEvent formats one engine event with virtual-time offsets from
// the epoch and scrubbed error text.
func (w *World) renderEvent(ev engine.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s #%d +%s %s", ev.Instance, ev.Seq, ev.Time.Sub(w.epoch), ev.Kind)
	if ev.Task != "" {
		b.WriteString(" " + ev.Task)
	}
	if ev.Output != "" {
		b.WriteString(" output=" + ev.Output)
	}
	if ev.InputSet != "" {
		b.WriteString(" set=" + ev.InputSet)
	}
	if ev.Iteration > 0 {
		fmt.Fprintf(&b, " iter=%d", ev.Iteration)
	}
	if ev.Attempt > 0 {
		fmt.Fprintf(&b, " attempt=%d", ev.Attempt)
	}
	if !ev.Deadline.IsZero() {
		fmt.Fprintf(&b, " deadline=+%s", ev.Deadline.Sub(w.epoch))
	}
	if len(ev.Objects) > 0 {
		b.WriteString(" " + renderObjects(ev.Objects))
	}
	if ev.Err != "" {
		b.WriteString(" err=" + scrubErr(ev.Err))
	}
	return b.String()
}

// renderObjects formats an object map with sorted keys.
func renderObjects(objs registry.Objects) string {
	if len(objs) == 0 {
		return "objs={}"
	}
	keys := make([]string, 0, len(objs))
	for k := range objs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := objs[k]
		parts = append(parts, fmt.Sprintf("%s:%s=%v", k, v.Class, v.Data))
	}
	return "objs={" + strings.Join(parts, ",") + "}"
}

// transportMarkers are substrings of transport-level error text. Which
// exact syscall surfaces a severed in-memory connection (read vs write,
// EOF vs closed-pipe) depends on goroutine interleaving, so any error
// that smells of transport collapses to one canonical token; everything
// else (injected failures, resolver errors) is already deterministic.
var transportMarkers = []string{
	"connection", "EOF", "recv:", "send:", "dial", "closed", "refused", "broken", "pipe",
}

// scrubErr canonicalises nondeterministic transport error text.
func scrubErr(msg string) string {
	for _, m := range transportMarkers {
		if strings.Contains(msg, m) {
			return "<transport-failure>"
		}
	}
	return msg
}

// Trace returns a copy of the rendered trace so far.
func (w *World) Trace() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.trace...)
}

// TraceHash is an FNV-64a digest of the trace, the compact
// bit-identical-replay check the fuzzer and CI use.
func (w *World) TraceHash() uint64 {
	h := fnv.New64a()
	w.mu.Lock()
	for _, line := range w.trace {
		_, _ = h.Write([]byte(line))
		_, _ = h.Write([]byte{'\n'})
	}
	w.mu.Unlock()
	return h.Sum64()
}

// Settle waits for quiescence and records the trace; exposed for tests
// that poke engine handles directly.
func (w *World) Settle() error {
	return w.settleAndRecord()
}
