package sim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/shard"
	"repro/internal/txn"
)

// hostFor resolves the coordinator slot that must run instance id: slot
// 0 in single-coordinator worlds, the live owner of the instance's
// partition in sharded ones.
func (w *World) hostFor(id string) (int, error) {
	if !w.multi {
		if !w.CoordinatorAlive(0) {
			return 0, errors.New("sim: coordinator is down")
		}
		return 0, nil
	}
	p := shard.PartitionOf(id, w.parts)
	o := w.owner[p]
	if o < 0 || !w.CoordinatorAlive(o) {
		return 0, fmt.Errorf("sim: partition %d (instance %q) has no live coordinator", p, id)
	}
	return o, nil
}

// Instantiate creates an engine instance of a schema previously
// registered with Compile. root optionally names the top-level task
// (empty selects the schema's single root). In sharded worlds the
// instance lands on its partition's owning coordinator.
func (w *World) Instantiate(id, schemaName, root string) error {
	w.mu.Lock()
	sch := w.compiled[schemaName]
	_, dup := w.insts[id]
	w.mu.Unlock()
	if sch == nil {
		return fmt.Errorf("sim: instantiate %s: unknown schema %q (Compile it first)", id, schemaName)
	}
	if dup {
		return fmt.Errorf("sim: instantiate %s: duplicate instance id", id)
	}
	host, err := w.hostFor(id)
	if err != nil {
		return err
	}
	w.action("instantiate %s schema=%s", id, schemaName)
	// Track before the engine starts the controller: Park/Wake
	// callbacks must find the entry from the first iteration.
	w.mu.Lock()
	w.insts[id] = &instTrack{host: host}
	w.schemas[id] = sch
	w.order = append(w.order, id)
	w.mu.Unlock()
	inst, err := w.coords[host].eng.Instantiate(id, sch, root)
	if err != nil {
		w.mu.Lock()
		delete(w.insts, id)
		delete(w.schemas, id)
		w.order = w.order[:len(w.order)-1]
		w.mu.Unlock()
		return err
	}
	w.setInstance(id, inst)
	return w.settleAndRecord()
}

// setInstance publishes the engine handle for a tracked instance.
func (w *World) setInstance(id string, inst *engine.Instance) {
	w.mu.Lock()
	w.insts[id].inst = inst
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// tracked returns the live engine instance for id.
func (w *World) tracked(id string) (*engine.Instance, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.insts[id]
	if !ok || t.inst == nil {
		return nil, fmt.Errorf("sim: no live instance %q", id)
	}
	return t.inst, nil
}

// Start starts an instance's root task with the given input set.
func (w *World) Start(id, set string, inputs registry.Objects) error {
	inst, err := w.tracked(id)
	if err != nil {
		return err
	}
	w.action("start %s set=%s %s", id, set, renderObjects(inputs))
	if err := inst.Start(set, inputs); err != nil {
		return err
	}
	return w.settleAndRecord()
}

// Ready returns the gated activations, deterministically ordered by
// (instance, path, iteration, attempt, where).
func (w *World) Ready() []Ready {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.readyLocked()
}

func (w *World) readyLocked() []Ready {
	out := make([]Ready, 0, len(w.gate))
	for k, e := range w.gate {
		out = append(out, Ready{
			Instance: k.inst, Path: k.path, Where: k.where, Code: e.code,
			Attempt: k.attempt, Iteration: k.iteration,
		})
	}
	sortReady(out)
	return out
}

func sortReady(rs []Ready) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Where < b.Where
	})
}

// Release unblocks a gated activation. outcome overrides the scripted
// (Bind) or default outcome; fail injects a system-level failure
// instead, driving the engine's retry/abort mapping.
func (w *World) Release(r Ready, outcome string, fail bool) error {
	key := gateKey{inst: r.Instance, path: r.Path, attempt: r.Attempt, iteration: r.Iteration, where: r.Where}
	w.mu.Lock()
	e, ok := w.gate[key]
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("sim: %s/%s attempt=%d iter=%d is not gated at %s", r.Instance, r.Path, r.Attempt, r.Iteration, r.Where)
	}
	var cmd releaseCmd
	if fail {
		cmd.err = fmt.Errorf("sim: injected system failure (%s)", e.code)
	} else {
		out := outcome
		if out == "" {
			out = w.nextOutcome(e)
		}
		objects, err := w.synthesize(key.inst, key.path, out, e.inputs)
		if err != nil {
			return err
		}
		cmd.outcome, cmd.objects = out, objects
	}
	if got, ok := w.takeGate(key); !ok || got != e {
		return fmt.Errorf("sim: %s/%s is no longer gated", r.Instance, r.Path)
	}
	if fail {
		w.action("release %s %s/%s attempt=%d iter=%d -> FAIL", r.Where, r.Instance, r.Path, r.Attempt, r.Iteration)
	} else {
		w.action("release %s %s/%s attempt=%d iter=%d -> %s", r.Where, r.Instance, r.Path, r.Attempt, r.Iteration, cmd.outcome)
	}
	e.release <- cmd
	return w.settleAndRecord()
}

// nextOutcome picks the outcome for a release: the code's scripted
// sequence if Bind was called, else the first declared plain outcome.
func (w *World) nextOutcome(e *gateEntry) string {
	w.mu.Lock()
	if seq, ok := w.binds[e.code]; ok && len(seq.outcomes) > 0 {
		i := seq.next
		if i >= len(seq.outcomes) {
			i = len(seq.outcomes) - 1
		}
		seq.next++
		w.mu.Unlock()
		return seq.outcomes[i]
	}
	sch := w.schemas[e.key.inst]
	w.mu.Unlock()
	if sch == nil {
		return ""
	}
	task := sch.Lookup(e.key.path)
	if task == nil {
		return ""
	}
	outs := task.Class.Outcomes(core.Outcome)
	if len(outs) == 0 {
		return ""
	}
	return outs[0].Name
}

// synthesize builds the released objects for an outcome from the
// schema's declaration: an input object with the same name (and a
// conforming class) is echoed through, anything else gets a synthetic
// string payload.
func (w *World) synthesize(inst, path, outcome string, inputs registry.Objects) (registry.Objects, error) {
	w.mu.Lock()
	sch := w.schemas[inst]
	w.mu.Unlock()
	if sch == nil {
		return nil, fmt.Errorf("sim: no schema for instance %q", inst)
	}
	task := sch.Lookup(path)
	if task == nil {
		return nil, fmt.Errorf("sim: instance %q has no task %q", inst, path)
	}
	out := task.Class.Output(outcome)
	if out == nil {
		return nil, fmt.Errorf("sim: taskclass %s has no output %q", task.Class.Name, outcome)
	}
	if out.Kind == core.Mark {
		return nil, fmt.Errorf("sim: %q is a mark of taskclass %s, not a releasable outcome", outcome, task.Class.Name)
	}
	objects := make(registry.Objects, len(out.Objects))
	for _, f := range out.Objects {
		if v, ok := inputs[f.Name]; ok && sch.AssignableTo(v.Class, f.Class) {
			objects[f.Name] = v
			continue
		}
		objects[f.Name] = registry.Value{Class: f.Class, Data: "sim:" + f.Name}
	}
	return objects, nil
}

// Drain releases every gated activation, lowest-sorted first, until
// none remain (scripted/default outcomes apply). Armed delay timers are
// left armed; pair with AdvanceToNext.
func (w *World) Drain() error {
	w.action("drain")
	for rounds := 0; rounds < 100000; rounds++ {
		rs := w.Ready()
		if len(rs) == 0 {
			return nil
		}
		if err := w.Release(rs[0], "", false); err != nil {
			return err
		}
	}
	return errors.New("sim: drain did not converge after 100000 releases")
}

// Advance moves virtual time forward and settles: every delay or
// blacklist expiry the move implies has taken effect when it returns.
func (w *World) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("sim: cannot advance by %s", d)
	}
	w.action("advance %s @ +%s", d, w.clock.Now().Add(d).Sub(w.epoch))
	w.clock.Advance(d)
	return w.settleAndRecord()
}

// AdvanceToNext advances exactly to the earliest armed delay deadline
// and returns the distance moved.
func (w *World) AdvanceToNext() (time.Duration, error) {
	w.mu.Lock()
	var next time.Time
	for _, at := range w.armed {
		if next.IsZero() || at.Before(next) {
			next = at
		}
	}
	w.mu.Unlock()
	if next.IsZero() {
		return 0, errors.New("sim: no armed delay timers")
	}
	d := next.Sub(w.clock.Now())
	if d < 0 {
		d = 0
	}
	w.action("advance next (%s) @ +%s", d, next.Sub(w.epoch))
	w.clock.Advance(d)
	return d, w.settleAndRecord()
}

// Now returns the current virtual instant.
func (w *World) Now() time.Time { return w.clock.Now() }

// releaseWhere unblocks every gated activation hosted by a killed
// component with err. Callers must have severed the component's
// connections first so peers observe transport failures, never these
// error replies.
func (w *World) releaseWhere(where string, err error) {
	w.mu.Lock()
	var victims []*gateEntry
	for k, e := range w.gate {
		if k.where == where {
			delete(w.gate, k)
			victims = append(victims, e)
		}
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, e := range victims {
		e.release <- releaseCmd{err: err}
	}
}

// KillExecutor crashes executor i: connections are severed first (every
// in-flight dispatch observes a transport failure and fails over), then
// its gated handlers are unblocked with an error whose reply lands on
// the already-dead connections, then the server is reaped. The naming
// binding stays, as with a real SIGKILLed executor.
func (w *World) KillExecutor(i int) error {
	if i < 0 || i >= len(w.execs) {
		return fmt.Errorf("sim: no executor %d", i)
	}
	ex := w.execs[i]
	if !ex.alive {
		return fmt.Errorf("sim: executor %d is already down", i)
	}
	w.action("kill executor %d (%s)", i, ex.addr)
	ex.srv.Sever()
	w.releaseWhere(ex.name, errors.New("sim: executor crashed"))
	ex.srv.Close()
	ex.alive = false
	ex.srv = nil
	return w.settleAndRecord()
}

// RecoverExecutor restarts a killed executor at its old address; its
// permanent naming membership makes it dispatchable again (after any
// blacklist on it expires with virtual time).
func (w *World) RecoverExecutor(i int) error {
	if i < 0 || i >= len(w.execs) {
		return fmt.Errorf("sim: no executor %d", i)
	}
	if w.execs[i].alive {
		return fmt.Errorf("sim: executor %d is already up", i)
	}
	w.action("recover executor %d", i)
	if err := w.startExecutor(i); err != nil {
		return err
	}
	return w.settleAndRecord()
}

// KillNaming makes location resolution fail (dispatches surface
// system-level failures into the engine's retry/abort mapping) until
// RecoverNaming.
func (w *World) KillNaming() error {
	w.mu.Lock()
	up := w.namingUp
	w.namingUp = false
	w.mu.Unlock()
	if !up {
		return errors.New("sim: naming is already down")
	}
	w.action("kill naming")
	return w.settleAndRecord()
}

// RecoverNaming restores resolution; the registered bindings survived
// (the simulated naming "restarts from its peers").
func (w *World) RecoverNaming() error {
	w.mu.Lock()
	up := w.namingUp
	w.namingUp = true
	w.mu.Unlock()
	if up {
		return errors.New("sim: naming is already up")
	}
	w.action("recover naming")
	return w.settleAndRecord()
}

// stopCoordinator stops coordinator slot i: every instance controller
// it hosts, the engine (and its timing wheel), its pool invoker, and
// the gated activations it owned. The store survives.
func (w *World) stopCoordinator(i int) {
	c := w.coords[i]
	w.mu.Lock()
	var tracked []*engine.Instance
	hosted := make(map[string]bool)
	for id, t := range w.insts {
		if t.host != i {
			continue
		}
		hosted[id] = true
		if t.inst != nil {
			tracked = append(tracked, t.inst)
		}
	}
	for id := range hosted {
		delete(w.insts, id)
		for key := range w.armed {
			if strings.HasPrefix(key, id+"|") {
				delete(w.armed, key)
			}
		}
	}
	w.mu.Unlock()
	for _, inst := range tracked {
		inst.Stop()
	}
	c.eng.Close()
	// Retire the invoker BEFORE unblocking executor-side handlers: the
	// old generation's dispatch workers are still parked inside Invoke,
	// and their wakeup (the release reply, or a transport error if a
	// later kill severs the connection under the reply) must not fail
	// over onto another executor — a zombie re-dispatch would gate an
	// activation nobody tracks, colliding with the recovered
	// coordinator's own dispatch of the same activation.
	if c.inv != nil {
		c.inv.Close()
	}
	// Purge the dead coordinator's slice of the gated frontier
	// synchronously: its own local handlers (where == its name) and the
	// executor-side handlers of the instances it hosted. Local handlers
	// do wake through their cancelled run contexts, but that wakeup is
	// asynchronous — the engine worker does not wait for the
	// implementation goroutine — so leaving their entries to self-clean
	// would race the kill-time frontier snapshot and make the trace's
	// ready-diff depend on goroutine scheduling. Executor-side handlers
	// cannot wake at all (remote contexts never cancel): the release
	// below unblocks them; their replies land on clients nobody is
	// waiting for. Every pre-kill dispatch has already gated (the settle
	// barrier equates in-flight and gated counts before each action), so
	// nothing re-publishes after this purge. Surviving coordinators'
	// entries are untouched.
	w.mu.Lock()
	var victims []*gateEntry
	for k, e := range w.gate {
		if k.where == c.name || hosted[k.inst] {
			delete(w.gate, k)
			victims = append(victims, e)
		}
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, e := range victims {
		e.release <- releaseCmd{err: errors.New("sim: coordinator crashed")}
	}
	c.alive = false
	c.inv = nil
	c.eng = nil
	c.preg = nil
	c.ps = nil
	c.views = nil
}

// takeoverPartition moves partition p onto coordinator slot idx,
// driving the production takeover sequence: per-partition WAL
// roll-forward with a throwaway registry, mount into the owner's
// partitioned store, then re-materialization of every persisted
// instance of the partition through the real engine recovery path.
// Returns how many instances were re-materialized.
func (w *World) takeoverPartition(idx, p int) (int, error) {
	preg := persist.NewRegistry(w.pstores[p], txn.NewManager(w.pstores[p]), nil)
	if _, err := preg.Recover(); err != nil {
		return 0, fmt.Errorf("sim: recover partition %d: %w", p, err)
	}
	c := w.coords[idx]
	// A fresh (healthy) view: the takeover opens the partition's shared
	// durable state anew, even when the adopting coordinator has other
	// wedged mounts.
	w.mountView(c, p)
	w.mu.Lock()
	ids := append([]string(nil), w.order...)
	w.mu.Unlock()
	n := 0
	for _, id := range ids {
		if shard.PartitionOf(id, w.parts) != p {
			continue
		}
		w.mu.Lock()
		_, live := w.insts[id]
		if !live {
			w.insts[id] = &instTrack{host: idx}
		}
		w.mu.Unlock()
		if live {
			continue
		}
		inst, err := c.eng.Recover(id, sema.CompileSource)
		if err != nil {
			return n, fmt.Errorf("sim: recover %s on %s: %w", id, c.name, err)
		}
		w.setInstance(id, inst)
		n++
	}
	return n, nil
}

// failover reassigns every partition the dead coordinator slot owned to
// the rendezvous-preferred survivor, in ascending partition order — the
// deterministic outcome of the production lease race. With no survivor
// the partition is orphaned until a coordinator rejoins.
func (w *World) failover(dead int) error {
	for p := 0; p < w.parts; p++ {
		if w.owner[p] != dead {
			continue
		}
		next := w.preferredOwner(p, nil)
		w.owner[p] = next
		if next < 0 {
			w.action("partition %d orphaned (no live coordinator)", p)
			continue
		}
		n, err := w.takeoverPartition(next, p)
		if err != nil {
			return err
		}
		w.action("takeover partition %d -> %s (%d instances re-materialized)", p, w.coordName(next), n)
	}
	return nil
}

// CrashCoordinator kills coordinator slot i: controllers stop,
// in-flight activations are abandoned (durable state — run states,
// timer records — survives in the store), executors keep running. In
// sharded worlds the survivors immediately take the dead slot's
// partitions over and re-materialize its instances.
func (w *World) CrashCoordinator(i int) error {
	if i < 0 || i >= len(w.coords) {
		return fmt.Errorf("sim: no coordinator %d", i)
	}
	if !w.coords[i].alive {
		return errors.New("sim: coordinator is already down")
	}
	if w.multi {
		w.action("kill coordinator %d (%s)", i, w.coordName(i))
	} else {
		w.action("kill coordinator")
	}
	w.stopCoordinator(i)
	if w.multi {
		if err := w.failover(i); err != nil {
			return err
		}
	}
	return w.settleAndRecord()
}

// RecoverCoordinator reboots coordinator slot i over the surviving
// store and drives the real recovery paths: WAL roll-forward, schema
// recompilation, run-state reload, delay re-arming at original absolute
// deadlines, and re-activation of implementations that were executing.
// In sharded worlds the rejoined coordinator claims only orphaned
// partitions (live owners keep theirs, as with production leases).
func (w *World) RecoverCoordinator(i int) error {
	if i < 0 || i >= len(w.coords) {
		return fmt.Errorf("sim: no coordinator %d", i)
	}
	if w.coords[i].alive {
		return errors.New("sim: coordinator is already up")
	}
	if w.multi {
		w.action("recover coordinator %d (%s)", i, w.coordName(i))
		if err := w.bootCoordinator(i, false); err != nil {
			return err
		}
		for p := 0; p < w.parts; p++ {
			if w.owner[p] != -1 {
				continue
			}
			w.owner[p] = i
			n, err := w.takeoverPartition(i, p)
			if err != nil {
				return err
			}
			w.action("takeover partition %d -> %s (%d instances re-materialized)", p, w.coordName(i), n)
		}
		return w.settleAndRecord()
	}
	w.action("recover coordinator")
	if err := w.bootCoordinator(i, true); err != nil {
		return err
	}
	w.mu.Lock()
	ids := append([]string(nil), w.order...)
	w.mu.Unlock()
	for _, id := range ids {
		w.mu.Lock()
		w.insts[id] = &instTrack{}
		w.mu.Unlock()
		inst, err := w.coords[i].eng.Recover(id, sema.CompileSource)
		if err != nil {
			return fmt.Errorf("sim: recover %s: %w", id, err)
		}
		w.setInstance(id, inst)
	}
	return w.settleAndRecord()
}

// WedgeDisk fail-stops the write path of every partition-store view
// live coordinator slot i currently mounts — "this coordinator's disk
// went bad": reads keep succeeding (the in-memory index survives),
// every flush fails with store.ErrWedged, and execution keeps running
// ahead of an increasingly stale durable state. The shared per-
// partition stores are untouched, so a healthy peer can still
// re-materialize from them once DegradeCoordinator hands the wedged
// partitions over.
func (w *World) WedgeDisk(i int) error {
	if !w.multi {
		return errors.New("sim: disk wedging needs a sharded world (coordinators >= 2)")
	}
	if i < 0 || i >= len(w.coords) {
		return fmt.Errorf("sim: no coordinator %d", i)
	}
	c := w.coords[i]
	if !c.alive {
		return errors.New("sim: coordinator is down")
	}
	var parts []int
	for p, v := range c.views {
		if v.Wedged() == nil {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return fmt.Errorf("sim: %s mounts no healthy partition views to wedge", c.name)
	}
	sort.Ints(parts)
	w.action("diskwedge %s (partitions %s)", c.name, joinInts(parts))
	for _, p := range parts {
		c.views[p].Wedge(nil)
	}
	return w.settleAndRecord()
}

// DiskWedged reports whether live coordinator slot i still owns at
// least one partition whose store view is wedged — the condition
// DegradeCoordinator resolves.
func (w *World) DiskWedged(i int) bool {
	if !w.multi || i < 0 || i >= len(w.coords) {
		return false
	}
	c := w.coords[i]
	if c == nil || !c.alive {
		return false
	}
	for p, v := range c.views {
		if v.Wedged() != nil && w.owner[p] == i {
			return true
		}
	}
	return false
}

// DegradeCoordinator hands every wedged partition of live coordinator
// slot i over to a healthy peer — the simulation twin of the production
// quarantine path (PartitionedStore health sink → shard.Manager
// quarantine → lease release → peer takeover): the sick coordinator
// stays up and keeps any healthy partitions, but each wedged
// partition's instances stop, its view unmounts, ownership moves to the
// rendezvous-preferred healthy peer, and the peer re-materializes the
// in-flight instances from the shared partition store. Writes the
// wedge swallowed are gone: a re-materialized instance resumes from its
// last durable state and may re-run work it already finished in memory
// (at-least-once) — exactly the contract the production handoff offers.
// The degrade action lines name the re-materialized instances so trace
// checkers (see checkInvariants) can scope their exactly-once
// expectations around the handoff.
func (w *World) DegradeCoordinator(i int) error {
	if !w.multi {
		return errors.New("sim: degrade needs a sharded world (coordinators >= 2)")
	}
	if i < 0 || i >= len(w.coords) {
		return fmt.Errorf("sim: no coordinator %d", i)
	}
	c := w.coords[i]
	if !c.alive {
		return errors.New("sim: coordinator is down")
	}
	var parts []int
	for p, v := range c.views {
		if v.Wedged() != nil && w.owner[p] == i {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return fmt.Errorf("sim: %s has no wedged partitions to degrade (WedgeDisk first)", c.name)
	}
	sort.Ints(parts)
	for _, p := range parts {
		ids := w.stopPartition(i, p)
		c.ps.Unmount(p)
		delete(c.views, p)
		// Never hand the partition back to the coordinator being degraded
		// (the production manager's quarantine set refuses re-acquisition
		// even when every peer is also sick).
		next := w.preferredOwner(p, func(j int) bool { return j == i })
		w.owner[p] = next
		if next < 0 {
			w.action("degrade %s: partition %d orphaned (no live coordinator) (insts: %s)", c.name, p, joinIDs(ids))
			continue
		}
		if _, err := w.takeoverPartition(next, p); err != nil {
			return err
		}
		w.action("degrade %s: partition %d -> %s (insts: %s)", c.name, p, w.coordName(next), joinIDs(ids))
	}
	return w.settleAndRecord()
}

// stopPartition stops every instance of partition p hosted on
// coordinator slot i and purges their gate entries and armed-timer
// index entries, returning the stopped instance IDs sorted. The
// instances' durable state survives in the shared partition store; the
// coordinator, its engine and its other partitions keep running.
func (w *World) stopPartition(i, p int) []string {
	w.mu.Lock()
	var ids []string
	var tracked []*engine.Instance
	for id, t := range w.insts {
		if t.host != i || shard.PartitionOf(id, w.parts) != p {
			continue
		}
		ids = append(ids, id)
		if t.inst != nil {
			tracked = append(tracked, t.inst)
		}
	}
	for _, id := range ids {
		delete(w.insts, id)
		for key := range w.armed {
			if strings.HasPrefix(key, id+"|") {
				delete(w.armed, key)
			}
		}
	}
	w.mu.Unlock()
	for _, inst := range tracked {
		inst.Stop()
	}
	// Purge the stopped instances' slice of the gated frontier
	// synchronously, for the same reason stopCoordinator does: local
	// handlers wake only asynchronously through their cancelled run
	// contexts, executor-side handlers not at all. Entries of the
	// coordinator's other instances are untouched.
	stopped := make(map[string]bool, len(ids))
	for _, id := range ids {
		stopped[id] = true
	}
	w.mu.Lock()
	var victims []*gateEntry
	for k, e := range w.gate {
		if stopped[k.inst] {
			delete(w.gate, k)
			victims = append(victims, e)
		}
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, e := range victims {
		e.release <- releaseCmd{err: errors.New("sim: partition degraded")}
	}
	sort.Strings(ids)
	return ids
}

// joinInts renders ints as "0,2,3".
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// joinIDs renders instance IDs as "i0,i1", or "none".
func joinIDs(ids []string) string {
	if len(ids) == 0 {
		return "none"
	}
	return strings.Join(ids, ",")
}

// Abort force-aborts a task run (outcome optionally names the abort
// outcome). An abandoned remote dispatch leaves its executor-side
// handler gated forever (remote contexts cannot observe cancellation),
// so any leftover entry for the task is unblocked here.
func (w *World) Abort(id, path, outcome string) error {
	inst, err := w.tracked(id)
	if err != nil {
		return err
	}
	if outcome != "" {
		w.action("abort %s/%s outcome=%s", id, path, outcome)
	} else {
		w.action("abort %s/%s", id, path)
	}
	if err := inst.AbortTask(path, outcome); err != nil {
		return err
	}
	w.mu.Lock()
	hostName := ""
	if t, ok := w.insts[id]; ok {
		hostName = w.coordName(t.host)
	}
	var victims []*gateEntry
	for k, e := range w.gate {
		if k.inst == id && k.path == path && k.where != hostName {
			delete(w.gate, k)
			victims = append(victims, e)
		}
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, e := range victims {
		e.release <- releaseCmd{err: errors.New("sim: activation abandoned by abort")}
	}
	return w.settleAndRecord()
}

// Status returns the instance status ("running", "completed", ...).
func (w *World) Status(id string) (string, error) {
	inst, err := w.tracked(id)
	if err != nil {
		return "", err
	}
	return inst.Status().String(), nil
}

// ResultOf returns the instance's terminal result, if it has one.
func (w *World) ResultOf(id string) (engine.Result, bool, error) {
	inst, err := w.tracked(id)
	if err != nil {
		return engine.Result{}, false, err
	}
	res, ok := inst.Result()
	return res, ok, nil
}

// ExecutorAlive reports whether executor slot i is up.
func (w *World) ExecutorAlive(i int) bool {
	return i >= 0 && i < len(w.execs) && w.execs[i].alive
}

// CoordinatorAlive reports whether coordinator slot i is up.
func (w *World) CoordinatorAlive(i int) bool {
	return i >= 0 && i < len(w.coords) && w.coords[i] != nil && w.coords[i].alive
}

// Coordinators returns the number of coordinator slots.
func (w *World) Coordinators() int { return len(w.coords) }

// PartitionOwners renders the partition→owner assignment of a sharded
// world ("c0" etc., "-" for orphaned); nil for single-coordinator
// worlds.
func (w *World) PartitionOwners() []string {
	if !w.multi {
		return nil
	}
	out := make([]string, w.parts)
	for p, o := range w.owner {
		if o < 0 {
			out[p] = "-"
		} else {
			out[p] = w.coordName(o)
		}
	}
	return out
}

// NamingUp reports whether the naming service is up.
func (w *World) NamingUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.namingUp
}

// ArmedDelays reports how many delay timers are currently armed.
func (w *World) ArmedDelays() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.armed)
}
