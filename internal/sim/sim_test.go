package sim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// runChain drives a 3-stage local chain to completion and returns the
// world's trace hash.
func runChain(t *testing.T) uint64 {
	t.Helper()
	w, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("chain", workload.Chain(3)); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.Instantiate("i1", "chain", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("i1", "main", workload.Seed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for step := 0; ; step++ {
		if step > 10 {
			t.Fatalf("chain did not finish; trace:\n%s", strings.Join(w.Trace(), "\n"))
		}
		rs := w.Ready()
		if len(rs) == 0 {
			break
		}
		if rs[0].Where != "local" || rs[0].Code != "stage" {
			t.Fatalf("unexpected ready entry %+v", rs[0])
		}
		if err := w.Release(rs[0], "", false); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	st, err := w.Status("i1")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st != "completed" {
		t.Fatalf("status = %s, want completed; trace:\n%s", st, strings.Join(w.Trace(), "\n"))
	}
	res, ok, err := w.ResultOf("i1")
	if err != nil || !ok {
		t.Fatalf("ResultOf: ok=%v err=%v", ok, err)
	}
	if res.Output != "done" {
		t.Fatalf("result output = %q, want done", res.Output)
	}
	return w.TraceHash()
}

func TestChainLocal(t *testing.T) {
	h1 := runChain(t)
	h2 := runChain(t)
	if h1 != h2 {
		t.Fatalf("trace hash differs across identical runs: %x vs %x", h1, h2)
	}
}

func TestRemoteDispatchAndFailover(t *testing.T) {
	w, err := New(Config{Executors: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("lchain", workload.LocatedChain(2, "pool")); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.Instantiate("i1", "lchain", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("i1", "main", workload.Seed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	rs := w.Ready()
	if len(rs) != 1 || rs[0].Where == "local" {
		t.Fatalf("want one remote-gated activation, got %+v", rs)
	}
	// Kill the executor hosting t1 mid-activation: the dispatch must
	// fail over to the survivor and re-gate there.
	victim := 0
	if rs[0].Where == "exec1" {
		victim = 1
	}
	if err := w.KillExecutor(victim); err != nil {
		t.Fatalf("KillExecutor: %v", err)
	}
	rs = w.Ready()
	if len(rs) != 1 {
		t.Fatalf("want activation re-gated after failover, got %+v; trace:\n%s", rs, strings.Join(w.Trace(), "\n"))
	}
	survivor := "exec1"
	if victim == 1 {
		survivor = "exec0"
	}
	if rs[0].Where != survivor {
		t.Fatalf("failover landed on %s, want %s", rs[0].Where, survivor)
	}
	if err := w.Release(rs[0], "", false); err != nil {
		t.Fatalf("Release t1: %v", err)
	}
	if err := w.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, _ := w.Status("i1")
	if st != "completed" {
		t.Fatalf("status = %s, want completed; trace:\n%s", st, strings.Join(w.Trace(), "\n"))
	}
	// Failover is transport-level: the engine must not have counted a
	// retry attempt.
	for _, line := range w.Trace() {
		if strings.Contains(line, "retried") {
			t.Fatalf("engine-level retry leaked into failover: %s", line)
		}
	}
}

// TestCrashMidDelay is the in-process port of scripts/e2e_timers.sh:
// crash the coordinator while a first-class 5s delay is pending, recover,
// and check the delay fires at its original absolute deadline — with
// zero real sleeping.
func TestCrashMidDelay(t *testing.T) {
	w, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("timer", workload.TimerChain(1, 5*time.Second)); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.Instantiate("i1", "timer", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("i1", "main", workload.TimerSeed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if n := w.ArmedDelays(); n != 1 {
		t.Fatalf("armed delays = %d, want 1", n)
	}
	if err := w.Advance(1500 * time.Millisecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if err := w.CrashCoordinator(0); err != nil {
		t.Fatalf("CrashCoordinator: %v", err)
	}
	if err := w.RecoverCoordinator(0); err != nil {
		t.Fatalf("RecoverCoordinator: %v", err)
	}
	if n := w.ArmedDelays(); n != 1 {
		t.Fatalf("armed delays after recovery = %d, want 1; trace:\n%s", n, strings.Join(w.Trace(), "\n"))
	}
	d, err := w.AdvanceToNext()
	if err != nil {
		t.Fatalf("AdvanceToNext: %v", err)
	}
	if d != 3500*time.Millisecond {
		t.Fatalf("advance to fire = %s, want 3.5s (original absolute deadline)", d)
	}
	st, _ := w.Status("i1")
	if st != "completed" {
		t.Fatalf("status = %s, want completed; trace:\n%s", st, strings.Join(w.Trace(), "\n"))
	}
	fired := 0
	for _, line := range w.Trace() {
		if strings.Contains(line, "timer-fired") {
			fired++
			if !strings.Contains(line, "+5s") {
				t.Fatalf("timer fired off its original deadline: %s", line)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("timer-fired count = %d, want exactly 1 across the crash", fired)
	}
}

func TestCoordinatorCrashMidActivation(t *testing.T) {
	w, err := New(Config{Executors: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("lchain", workload.LocatedChain(2, "pool")); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.Instantiate("i1", "lchain", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("i1", "main", workload.Seed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if rs := w.Ready(); len(rs) != 1 {
		t.Fatalf("want t1 gated, got %+v", rs)
	}
	if err := w.CrashCoordinator(0); err != nil {
		t.Fatalf("CrashCoordinator: %v", err)
	}
	if err := w.RecoverCoordinator(0); err != nil {
		t.Fatalf("RecoverCoordinator: %v", err)
	}
	// Recovery must re-dispatch the interrupted activation.
	if err := w.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, _ := w.Status("i1")
	if st != "completed" {
		t.Fatalf("status = %s, want completed; trace:\n%s", st, strings.Join(w.Trace(), "\n"))
	}
}

func TestNamingOutage(t *testing.T) {
	w, err := New(Config{Executors: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("lchain", workload.LocatedChain(1, "pool")); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.KillNaming(); err != nil {
		t.Fatalf("KillNaming: %v", err)
	}
	if err := w.Instantiate("i1", "lchain", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("i1", "main", workload.Seed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Resolution fails; the engine's retry/abort mapping runs the task
	// out of retries with no abort outcome -> task failed.
	if rs := w.Ready(); len(rs) != 0 {
		t.Fatalf("nothing should gate during a naming outage, got %+v", rs)
	}
	found := false
	for _, line := range w.Trace() {
		if strings.Contains(line, "failed") && strings.Contains(line, "t1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want t1 failed during naming outage; trace:\n%s", strings.Join(w.Trace(), "\n"))
	}
}

// runShardedWorld drives a 2-coordinator sharded world (wf1 on c1, wf2
// on c0 at 4 partitions) through a mid-run coordinator kill and returns
// the trace hash.
func runShardedWorld(t *testing.T) uint64 {
	t.Helper()
	w, err := New(Config{Coordinators: 2, Partitions: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("chain", workload.Chain(2)); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, id := range []string{"wf1", "wf2"} {
		if err := w.Instantiate(id, "chain", ""); err != nil {
			t.Fatalf("Instantiate %s: %v", id, err)
		}
		if err := w.Start(id, "main", workload.Seed()); err != nil {
			t.Fatalf("Start %s: %v", id, err)
		}
	}
	hosts := map[string]string{}
	for _, r := range w.Ready() {
		hosts[r.Instance] = r.Where
	}
	if hosts["wf1"] != "c1" || hosts["wf2"] != "c0" {
		t.Fatalf("unexpected placement %v (want wf1 on c1, wf2 on c0)", hosts)
	}
	// Complete wf1's first stage on c1, then kill c1 with its second
	// stage gated: the survivor must re-materialize wf1 mid-flight.
	for _, r := range w.Ready() {
		if r.Instance == "wf1" {
			if err := w.Release(r, "", false); err != nil {
				t.Fatalf("Release: %v", err)
			}
			break
		}
	}
	if err := w.CrashCoordinator(1); err != nil {
		t.Fatalf("CrashCoordinator: %v", err)
	}
	if owners := w.PartitionOwners(); owners[3] != "c0" {
		t.Fatalf("partition 3 owner = %q after failover, want c0 (%v)", owners[3], owners)
	}
	if err := w.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range []string{"wf1", "wf2"} {
		st, err := w.Status(id)
		if err != nil {
			t.Fatalf("Status %s: %v", id, err)
		}
		if st != "completed" {
			t.Fatalf("%s status = %s, want completed; trace:\n%s", id, st, strings.Join(w.Trace(), "\n"))
		}
	}
	return w.TraceHash()
}

func TestShardedFailoverMidRun(t *testing.T) {
	h1 := runShardedWorld(t)
	h2 := runShardedWorld(t)
	if h1 != h2 {
		t.Fatalf("sharded trace hash differs across identical runs: %x vs %x", h1, h2)
	}
}

func TestShardedTotalOutageAndRejoin(t *testing.T) {
	w, err := New(Config{Coordinators: 2, Partitions: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	if err := w.Compile("chain", workload.Chain(2)); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := w.Instantiate("wf1", "chain", ""); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if err := w.Start("wf1", "main", workload.Seed()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Kill the whole tier: wf1's host first (fails over to c0), then
	// the survivor (its partitions orphan — nobody left to take them).
	if err := w.CrashCoordinator(1); err != nil {
		t.Fatalf("CrashCoordinator(1): %v", err)
	}
	if err := w.CrashCoordinator(0); err != nil {
		t.Fatalf("CrashCoordinator(0): %v", err)
	}
	for _, o := range w.PartitionOwners() {
		if o != "-" {
			t.Fatalf("expected every partition orphaned, got %v", w.PartitionOwners())
		}
	}
	if err := w.Instantiate("wf2", "chain", ""); err == nil {
		t.Fatal("Instantiate succeeded with no live coordinator")
	}
	// A rejoining coordinator claims the orphaned partitions and
	// re-materializes the in-flight instance from the partition stores.
	if err := w.RecoverCoordinator(0); err != nil {
		t.Fatalf("RecoverCoordinator: %v", err)
	}
	if err := w.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, err := w.Status("wf1")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st != "completed" {
		t.Fatalf("wf1 status = %s, want completed; trace:\n%s", st, strings.Join(w.Trace(), "\n"))
	}
}
