package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/scripts"
)

// Scenario is a parsed simulation script: topology directives, driver
// actions, trace assertions and an optional golden-trace reference. The
// file format is documented in docs/SCENARIOS.md; one line is one
// directive, '#' starts a comment, schema sources inline as heredocs.
type Scenario struct {
	Name string
	// Dir anchors relative golden paths (the scenario file's directory).
	Dir   string
	steps []scnStep
}

// scnStep is one parsed directive.
type scnStep struct {
	line    int
	words   []string
	heredoc string
}

// ScenarioResult reports one scenario run.
type ScenarioResult struct {
	Trace []string
	Hash  uint64
	// GoldenPath is the resolved golden-trace file, empty if the
	// scenario declares none; GoldenUpdated reports whether this run
	// rewrote it.
	GoldenPath    string
	GoldenUpdated bool
}

// LoadScenario parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ParseScenario(name, string(data), filepath.Dir(path))
}

// ParseScenario parses scenario source. dir anchors relative golden
// paths.
func ParseScenario(name, src, dir string) (*Scenario, error) {
	s := &Scenario{Name: name, Dir: dir}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		text := strings.TrimSpace(lines[i])
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		words, err := splitQuoted(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		step := scnStep{line: lineNo, words: words}
		// schema NAME <<DELIM starts a heredoc running to DELIM.
		if len(words) == 3 && words[0] == "schema" && strings.HasPrefix(words[2], "<<") {
			delim := strings.TrimPrefix(words[2], "<<")
			if delim == "" {
				return nil, fmt.Errorf("%s:%d: empty heredoc delimiter", name, lineNo)
			}
			var body []string
			closed := false
			for i++; i < len(lines); i++ {
				if strings.TrimSpace(lines[i]) == delim {
					closed = true
					break
				}
				body = append(body, lines[i])
			}
			if !closed {
				return nil, fmt.Errorf("%s:%d: unterminated heredoc (missing %s)", name, lineNo, delim)
			}
			step.heredoc = strings.Join(body, "\n")
		}
		s.steps = append(s.steps, step)
	}
	return s, nil
}

// splitQuoted splits on whitespace, keeping double-quoted substrings
// (which may contain spaces) as single words.
func splitQuoted(text string) ([]string, error) {
	var words []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r == '"':
			if inQuote {
				words = append(words, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, errors.New("unterminated quote")
	}
	flush()
	return words, nil
}

// scnRun is the execution state of one scenario run.
type scnRun struct {
	scn    *Scenario
	cfg    Config
	world  *World
	golden string
	update bool
}

// Run executes the scenario against a fresh world. With update, the
// golden trace (if declared) is rewritten instead of compared.
func (s *Scenario) Run(update bool) (*ScenarioResult, error) {
	r := &scnRun{scn: s, update: update}
	defer func() {
		if r.world != nil {
			r.world.Close()
		}
	}()
	for _, step := range s.steps {
		if err := r.exec(step); err != nil {
			return nil, fmt.Errorf("%s:%d (%s): %w", s.Name, step.line, strings.Join(step.words, " "), err)
		}
	}
	res := &ScenarioResult{GoldenPath: r.golden}
	if r.world != nil {
		res.Trace = r.world.Trace()
		res.Hash = r.world.TraceHash()
	}
	if r.golden != "" {
		if update {
			if err := os.MkdirAll(filepath.Dir(r.golden), 0o755); err != nil {
				return nil, err
			}
			if err := os.WriteFile(r.golden, []byte(strings.Join(res.Trace, "\n")+"\n"), 0o644); err != nil {
				return nil, err
			}
			res.GoldenUpdated = true
		} else if err := compareGolden(r.golden, res.Trace); err != nil {
			return res, fmt.Errorf("%s: %w", s.Name, err)
		}
	}
	return res, nil
}

// compareGolden diffs the run's trace against the checked-in golden.
func compareGolden(path string, trace []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden trace unreadable (run `wfsim golden -update`?): %w", err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i := 0; i < len(want) || i < len(trace); i++ {
		w, g := "<missing>", "<missing>"
		if i < len(want) {
			w = want[i]
		}
		if i < len(trace) {
			g = trace[i]
		}
		if w != g {
			return fmt.Errorf("golden mismatch at %s line %d:\n  golden: %s\n  got:    %s", path, i+1, w, g)
		}
	}
	return nil
}

// world returns the lazily built world; topology directives are frozen
// at the first action.
func (r *scnRun) worldRef() (*World, error) {
	if r.world == nil {
		w, err := New(r.cfg)
		if err != nil {
			return nil, err
		}
		r.world = w
	}
	return r.world, nil
}

func (r *scnRun) exec(step scnStep) error {
	words := step.words
	switch words[0] {
	case "executors", "coordinators", "partitions", "location", "epoch":
		if r.world != nil {
			return fmt.Errorf("topology directive %q after the world was built (move it above the first action)", words[0])
		}
		if len(words) != 2 {
			return fmt.Errorf("usage: %s VALUE", words[0])
		}
		switch words[0] {
		case "executors":
			n, err := strconv.Atoi(words[1])
			if err != nil || n < 0 {
				return fmt.Errorf("bad executor count %q", words[1])
			}
			r.cfg.Executors = n
		case "coordinators":
			n, err := strconv.Atoi(words[1])
			if err != nil || n < 0 {
				return fmt.Errorf("bad coordinator count %q", words[1])
			}
			r.cfg.Coordinators = n
		case "partitions":
			n, err := strconv.Atoi(words[1])
			if err != nil || n < 1 {
				return fmt.Errorf("bad partition count %q", words[1])
			}
			r.cfg.Partitions = n
		case "location":
			r.cfg.Location = words[1]
		case "epoch":
			t, err := time.Parse(time.RFC3339, words[1])
			if err != nil {
				return fmt.Errorf("bad epoch (want RFC3339): %v", err)
			}
			r.cfg.Epoch = t
		}
		return nil

	case "schema":
		if len(words) != 3 {
			return errors.New("usage: schema NAME paper:KEY | schema NAME <<DELIM")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		src := step.heredoc
		if key, ok := strings.CutPrefix(words[2], "paper:"); ok {
			src, ok = scripts.All[key]
			if !ok {
				return fmt.Errorf("unknown paper script %q (have: %s)", key, strings.Join(paperKeys(), ", "))
			}
		} else if src == "" {
			return fmt.Errorf("schema source must be paper:KEY or a <<DELIM heredoc, got %q", words[2])
		}
		return w.Compile(words[1], src)

	case "bind":
		if len(words) != 3 {
			return errors.New("usage: bind CODE outcome1,outcome2,...")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		w.Bind(words[1], strings.Split(words[2], ",")...)
		return nil

	case "instantiate":
		if len(words) != 3 && len(words) != 4 {
			return errors.New("usage: instantiate INST SCHEMA [ROOT]")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		root := ""
		if len(words) == 4 {
			root = words[3]
		}
		return w.Instantiate(words[1], words[2], root)

	case "start":
		if len(words) < 3 {
			return errors.New("usage: start INST SET [name=Class:value ...]")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		inputs := make(registry.Objects)
		for _, arg := range words[3:] {
			name, rest, ok := strings.Cut(arg, "=")
			if !ok {
				return fmt.Errorf("bad input %q (want name=Class:value)", arg)
			}
			class, val, ok := strings.Cut(rest, ":")
			if !ok {
				return fmt.Errorf("bad input %q (want name=Class:value)", arg)
			}
			inputs[name] = registry.Value{Class: class, Data: val}
		}
		return w.Start(words[1], words[2], inputs)

	case "release":
		if len(words) < 2 {
			return errors.New("usage: release PATTERN [outcome=X] [fail]")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		outcome, fail := "", false
		for _, arg := range words[2:] {
			switch {
			case arg == "fail":
				fail = true
			case strings.HasPrefix(arg, "outcome="):
				outcome = strings.TrimPrefix(arg, "outcome=")
			default:
				return fmt.Errorf("bad release option %q", arg)
			}
		}
		for _, rd := range w.Ready() {
			id := fmt.Sprintf("%s %s/%s", rd.Where, rd.Instance, rd.Path)
			if strings.Contains(id, words[1]) {
				return w.Release(rd, outcome, fail)
			}
		}
		return fmt.Errorf("no gated activation matches %q (ready: %s)", words[1], readyList(w))

	case "drain":
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		return w.Drain()

	case "advance":
		if len(words) != 2 {
			return errors.New("usage: advance DURATION|next")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		if words[1] == "next" {
			_, err := w.AdvanceToNext()
			return err
		}
		d, err := time.ParseDuration(words[1])
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", words[1], err)
		}
		return w.Advance(d)

	case "kill", "recover":
		if len(words) < 2 {
			return fmt.Errorf("usage: %s coordinator|naming|executor [N]", words[0])
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		kill := words[0] == "kill"
		switch words[1] {
		case "coordinator":
			// Index optional: single-coordinator scenarios omit it.
			idx := 0
			if len(words) == 3 {
				idx, err = strconv.Atoi(words[2])
				if err != nil {
					return fmt.Errorf("bad coordinator index %q", words[2])
				}
			}
			if kill {
				return w.CrashCoordinator(idx)
			}
			return w.RecoverCoordinator(idx)
		case "naming":
			if kill {
				return w.KillNaming()
			}
			return w.RecoverNaming()
		case "executor":
			if len(words) != 3 {
				return fmt.Errorf("usage: %s executor N", words[0])
			}
			n, err := strconv.Atoi(words[2])
			if err != nil {
				return fmt.Errorf("bad executor index %q", words[2])
			}
			if kill {
				return w.KillExecutor(n)
			}
			return w.RecoverExecutor(n)
		default:
			return fmt.Errorf("unknown component %q", words[1])
		}

	case "diskwedge", "degrade":
		if len(words) != 3 || words[1] != "coordinator" {
			return fmt.Errorf("usage: %s coordinator N", words[0])
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		idx, err := strconv.Atoi(words[2])
		if err != nil {
			return fmt.Errorf("bad coordinator index %q", words[2])
		}
		if words[0] == "diskwedge" {
			return w.WedgeDisk(idx)
		}
		return w.DegradeCoordinator(idx)

	case "abort":
		if len(words) != 3 && len(words) != 4 {
			return errors.New("usage: abort INST PATH [OUTCOME]")
		}
		w, err := r.worldRef()
		if err != nil {
			return err
		}
		outcome := ""
		if len(words) == 4 {
			outcome = words[3]
		}
		return w.Abort(words[1], words[2], outcome)

	case "expect":
		return r.expect(words[1:])

	case "golden":
		if len(words) != 2 {
			return errors.New("usage: golden FILE")
		}
		path := words[1]
		if !filepath.IsAbs(path) {
			path = filepath.Join(r.scn.Dir, path)
		}
		r.golden = path
		return nil

	default:
		return fmt.Errorf("unknown directive %q", words[0])
	}
}

// expect evaluates one assertion against the current world state.
func (r *scnRun) expect(words []string) error {
	w, err := r.worldRef()
	if err != nil {
		return err
	}
	if len(words) == 0 {
		return errors.New("usage: expect status|result|trace|metric ...")
	}
	switch words[0] {
	case "status":
		if len(words) != 3 {
			return errors.New("usage: expect status INST STATUS")
		}
		st, err := w.Status(words[1])
		if err != nil {
			return err
		}
		if st != words[2] {
			return fmt.Errorf("instance %s status = %q, want %q", words[1], st, words[2])
		}
		return nil

	case "result":
		if len(words) != 3 {
			return errors.New("usage: expect result INST OUTCOME")
		}
		res, ok, err := w.ResultOf(words[1])
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("instance %s has no result yet", words[1])
		}
		if res.Output != words[2] {
			return fmt.Errorf("instance %s result = %q, want %q", words[1], res.Output, words[2])
		}
		return nil

	case "trace":
		if len(words) < 2 {
			return errors.New("usage: expect trace ~|!|count ...")
		}
		trace := w.Trace()
		switch words[1] {
		case "~":
			if len(words) != 3 {
				return errors.New(`usage: expect trace ~ "p1 ; p2 ; ..."`)
			}
			return traceSubsequence(trace, words[2])
		case "!":
			if len(words) != 3 {
				return errors.New(`usage: expect trace ! "pattern"`)
			}
			for _, line := range trace {
				if strings.Contains(line, words[2]) {
					return fmt.Errorf("trace line matches forbidden pattern %q: %s", words[2], line)
				}
			}
			return nil
		case "count":
			if len(words) != 5 || words[3] != "==" {
				return errors.New(`usage: expect trace count "pattern" == N`)
			}
			want, err := strconv.Atoi(words[4])
			if err != nil {
				return fmt.Errorf("bad count %q", words[4])
			}
			got := 0
			for _, line := range trace {
				if strings.Contains(line, words[2]) {
					got++
				}
			}
			if got != want {
				return fmt.Errorf("trace matches %q %d times, want %d", words[2], got, want)
			}
			return nil
		default:
			return fmt.Errorf("unknown trace assertion %q", words[1])
		}

	case "metric":
		// Metric values are read at the settle barrier, so they are as
		// deterministic as the trace: exact equality is the normal
		// assertion, >= is for series where a floor is the invariant
		// (e.g. fsync counts across store implementations).
		if len(words) != 4 || (words[2] != "==" && words[2] != ">=") {
			return errors.New("usage: expect metric NAME ==|>= N")
		}
		want, err := strconv.ParseInt(words[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad metric value %q", words[3])
		}
		got := w.Metric(words[1])
		switch words[2] {
		case "==":
			if got != want {
				return fmt.Errorf("metric %s = %d, want %d", words[1], got, want)
			}
		case ">=":
			if got < want {
				return fmt.Errorf("metric %s = %d, want >= %d", words[1], got, want)
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown expectation %q", words[0])
	}
}

// traceSubsequence checks the ';'-separated patterns appear as an
// ordered subsequence of trace lines (substring match each).
func traceSubsequence(trace []string, pattern string) error {
	pats := strings.Split(pattern, ";")
	i := 0
	for _, p := range pats {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		found := false
		for ; i < len(trace); i++ {
			if strings.Contains(trace[i], p) {
				found = true
				i++
				break
			}
		}
		if !found {
			return fmt.Errorf("pattern %q not found (in order) in trace", p)
		}
	}
	return nil
}

// readyList renders the gated frontier for error messages.
func readyList(w *World) string {
	rs := w.Ready()
	if len(rs) == 0 {
		return "none"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s %s/%s", r.Where, r.Instance, r.Path)
	}
	return strings.Join(parts, ", ")
}

// paperKeys lists the embedded paper scripts, sorted.
func paperKeys() []string {
	keys := make([]string, 0, len(scripts.All))
	for k := range scripts.All {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
