package sim

import (
	"strings"
	"testing"
)

// TestFuzzKillAnywhere runs the seeded fuzzer across 300 worlds —
// random topology, random workloads, kill-anywhere fault injection —
// and re-runs a sample of seeds to prove bit-identical replay. The
// whole sweep runs on virtual time; the acceptance bound is 10s wall.
//
// The range deliberately covers two regression worlds:
//
//   - Seed 280, the zombie-failover bug: a coordinator crash abandoned
//     a dispatch worker mid-Invoke, a subsequent executor kill severed
//     the connection under its release reply, and the orphaned worker
//     failed over — gating an activation nobody tracked, colliding
//     with the recovered coordinator's own dispatch. Invoker.Close now
//     retires the failover loop (see stopCoordinator and
//     taskexec.Invoker.Close).
//   - Seed 254 (also in the replay stride below), the racy kill-time
//     frontier: local gate entries of a killed coordinator used to
//     self-clean asynchronously, so the trace's ready-diff depended on
//     goroutine scheduling. stopCoordinator now purges the whole gated
//     frontier synchronously.
func TestFuzzKillAnywhere(t *testing.T) {
	const seeds = 300
	hashes := make(map[int64]uint64, seeds)
	for seed := int64(1); seed <= seeds; seed++ {
		rep, err := RunFuzz(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d violations:\n%s\ntrace:\n%s",
				seed, strings.Join(rep.Violations, "\n"), strings.Join(rep.Trace, "\n"))
		}
		hashes[seed] = rep.Hash
	}
	// Replay a spread of seeds: identical seed, identical trace.
	for seed := int64(1); seed <= seeds; seed += 23 {
		rep, err := RunFuzz(seed)
		if err != nil {
			t.Fatalf("replay seed %d: %v", seed, err)
		}
		if rep.Hash != hashes[seed] {
			t.Fatalf("seed %d replay diverged: %x vs %x\ntrace:\n%s",
				seed, rep.Hash, hashes[seed], strings.Join(rep.Trace, "\n"))
		}
	}
}
