// Package sim is the deterministic in-process simulation harness: it
// runs a whole distributed deployment — coordinator engine, a pool of
// remote task executors, the naming service and the persistent store —
// inside one process, against one shared timers.FakeClock and an
// in-memory orb transport (orb.MemNetwork), so a full-stack run
// completes in microseconds and is bit-identically reproducible.
//
// Determinism comes from closing every source of free-running time and
// free-running concurrency:
//
//   - Time is the shared FakeClock; it moves only when the driver calls
//     Advance, and the timing wheel's Sync() gives a happens-before
//     edge from "the clock moved" to "every consequent fire delivered".
//   - Task implementations never run ahead of the driver: every
//     activation — local or dispatched to an executor — blocks on a
//     *gate* until the driver releases it with a chosen outcome (or an
//     injected failure). The set of gated activations is the visible
//     frontier of the computation.
//   - Between driver actions the world *settles*: the harness waits, via
//     the engine's Config.Probe park/wake hooks, until every instance
//     controller is parked with empty queues and every in-flight worker
//     is accounted for by a gate entry. At that point nothing in the
//     system can make progress without another injected action, so the
//     event trace collected so far is a pure function of the action
//     sequence.
//   - Executor selection uses taskexec.BalanceHash, which keys on the
//     activation identity instead of dispatch arrival order.
//
// Fault injection is kill-anywhere: KillExecutor severs an executor's
// connections mid-handshake (dispatches fail over), CrashCoordinator
// stops the engine and RecoverCoordinator drives the real
// persist/engine recovery paths over the surviving store, KillNaming
// makes resolution fail. Each is deterministic by construction: the
// kill sequence cuts connections *before* unblocking gated handlers, so
// a peer always observes a transport failure and never a late reply.
// Sharded worlds additionally inject disk faults: WedgeDisk fail-stops
// a live coordinator's partition-store write path (execution runs ahead
// of an increasingly stale durable state) and DegradeCoordinator drives
// the graceful handoff — the sick coordinator keeps running, its wedged
// partitions move to a healthy peer, and the peer re-materializes their
// instances from the shared partition stores.
//
// On top of the World API sit the scenario layer (scenario.go: a
// documented file format with trace assertions and golden traces — see
// docs/SCENARIOS.md) and the seeded fuzzer (fuzz.go: random
// topology/workload/action walks, replayable from their seed via
// cmd/wfsim).
package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/taskexec"
	"repro/internal/timers"
	"repro/internal/txn"
)

// DefaultEpoch is the virtual instant simulations start at unless the
// config overrides it. A fixed epoch keeps rendered traces (which show
// offsets from it) identical across runs and machines.
var DefaultEpoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// settleTimeout bounds one settle pass in real time. It is a watchdog
// against harness bugs (a release that can never land, a wedged
// barrier) so a broken scenario fails loudly instead of hanging CI; a
// healthy settle takes microseconds.
const settleTimeout = 30 * time.Second

// Config describes a simulated deployment.
type Config struct {
	// Executors is the number of remote task executors in the pool.
	// Zero means a purely local deployment (no remote dispatch).
	Executors int
	// Coordinators is the number of coordinator engines. Zero or one is
	// the classic single-coordinator world (where=local, unchanged
	// traces). More builds a sharded tier: instances hash to partitions
	// (shard.PartitionOf), each partition is owned by the rendezvous-
	// preferred coordinator (shard.Preferred over the live set, the
	// deterministic outcome of the production lease protocol), and
	// CrashCoordinator fails the dead coordinator's partitions over to
	// the survivors, which re-materialize the in-flight instances from
	// the shared per-partition stores.
	Coordinators int
	// Partitions is the sharded tier's partition count. Zero selects
	// shard.DefaultPartitions. Single-coordinator worlds ignore it.
	Partitions int
	// Location is the pool's location name, resolved through the
	// simulated naming service. Default "pool".
	Location string
	// Store is the coordinator's persistent store, shared across
	// coordinator crashes. Nil selects a fresh store.NewMemStore.
	// Multi-coordinator worlds own their per-partition stores; leave it
	// nil there.
	Store store.Store
	// Epoch is the virtual start instant. Zero selects DefaultEpoch.
	Epoch time.Time
	// Engine carries extra engine knobs (MaxRetries, MaxRepeats, ...).
	// Clock, Probe, EventTap, RemoteInvoker, Metrics and Tracer are
	// owned by the harness and must be left nil; Ephemeral,
	// DefaultDeadline and MaxRemoteInflight must be zero (see New).
	Engine engine.Config
}

// Ready identifies one gated activation: an implementation that has
// been dispatched (locally or on an executor) and is blocked waiting
// for the driver to release it.
type Ready struct {
	// Instance and Path locate the task run.
	Instance string
	Path     string
	// Where is "local" for coordinator-side activations or the executor
	// name ("exec0", ...) the activation was dispatched to.
	Where string
	// Code is the implementation code name the activation is bound to.
	Code string
	// Attempt and Iteration snapshot the retry/repeat counters.
	Attempt   int
	Iteration int
}

// gateKey identifies a gate entry. Attempt and iteration are part of
// the key so a retried or repeated activation is a distinct entry.
type gateKey struct {
	inst      string
	path      string
	attempt   int
	iteration int
	where     string
}

// releaseCmd is the driver's verdict for one gated activation.
type releaseCmd struct {
	outcome string
	objects registry.Objects
	err     error
}

// gateEntry is one blocked activation.
type gateEntry struct {
	key     gateKey
	code    string
	inputs  registry.Objects
	release chan releaseCmd
}

// instTrack is the barrier's view of one live engine instance. parked,
// inflight and armed are written by the Probe callbacks (on the
// controller goroutine); inst is set by the driver right after
// Instantiate/Recover returns. host is the coordinator slot the
// instance lives on (always 0 in single-coordinator worlds; updated on
// failover in sharded ones).
type instTrack struct {
	inst     *engine.Instance
	host     int
	parked   bool
	inflight int
	armed    int
}

// executor is one slot of the simulated executor pool.
type executor struct {
	name  string
	addr  string
	srv   *orb.Server
	alive bool
}

// simCoord is one coordinator slot: a persistent registry and engine
// over its view of the store, plus (with executors) its own pool
// invoker. Replaced wholesale by CrashCoordinator/RecoverCoordinator.
// Touched only by the driver goroutine.
type simCoord struct {
	name string
	preg *persist.Registry
	eng  *engine.Engine
	inv  *taskexec.Invoker
	ps   *shard.PartitionedStore // nil in single-coordinator worlds
	// views are the coordinator's fault-injectable windows onto the
	// shared per-partition stores, one per mounted partition: WedgeDisk
	// fail-stops their write paths without disturbing the durable state
	// a healthy peer recovers from. Nil in single-coordinator worlds.
	views map[int]*failure.WedgeStore
	alive bool
}

// World is a simulated deployment. All driver methods (Instantiate,
// Start, Release, Advance, Kill*, ...) must be called from a single
// goroutine; each one settles the world before returning, so after any
// driver call the trace is complete up to that action.
type World struct {
	cfg   Config
	epoch time.Time
	clock *timers.FakeClock
	st    store.Store
	net   *orb.MemNetwork
	nam   *orb.Naming

	// reg/tracer are the world's private observability substrate, shared
	// by every component across its whole life: coordinator crash/recover
	// rebuilds the engine stack wholesale, but the rebuilt generation
	// records into the same registry, so a counter like
	// engine_timer_fires_total aggregates across generations and
	// "== 1 after a crash" is a real exactly-once witness. Private (not
	// obs.Default()) so concurrent worlds in one test process never
	// cross-talk.
	reg    *obs.Registry
	tracer *obs.Tracer

	// Coordinator tier. Single-coordinator worlds have exactly one slot
	// (named "local", backed by w.st directly); sharded worlds have
	// cfg.Coordinators slots ("c0", "c1", ...) over per-partition
	// stores. Touched only by the driver goroutine.
	coords  []*simCoord
	multi   bool
	parts   int
	pstores []store.Store // per-partition stores; survive crashes
	owner   []int         // partition -> coordinator slot, -1 unowned

	execs []*executor

	mu        sync.Mutex
	cond      *sync.Cond
	activity  uint64
	wedged    bool
	namingUp  bool
	insts     map[string]*instTrack
	order     []string                // instance IDs in creation order
	schemas   map[string]*core.Schema // by instance ID
	compiled  map[string]*core.Schema // by schema name
	binds     map[string]*bindSeq     // scripted outcomes by code
	gate      map[gateKey]*gateEntry
	events    []engine.Event       // tapped, pending trace render
	armed     map[string]time.Time // inst|path -> delay deadline
	trace     []string
	lastReady map[gateKey]bool
}

// bindSeq scripts the default outcomes of one implementation code:
// successive activations consume the list; the last element sticks.
type bindSeq struct {
	outcomes []string
	next     int
}

// New builds a simulated deployment: the store, the naming service, the
// executor pool (each executor an orb server on the in-memory network,
// bound permanently under cfg.Location) and the coordinator engine.
func New(cfg Config) (*World, error) {
	if cfg.Engine.Clock != nil || cfg.Engine.Probe != nil || cfg.Engine.EventTap != nil || cfg.Engine.RemoteInvoker != nil {
		return nil, errors.New("sim: Engine.Clock/Probe/EventTap/RemoteInvoker are owned by the harness; leave them nil")
	}
	if cfg.Engine.Metrics != nil || cfg.Engine.Tracer != nil {
		return nil, errors.New("sim: Engine.Metrics/Tracer are owned by the harness (one registry spanning coordinator generations); leave them nil and read World.Metric")
	}
	if cfg.Engine.Ephemeral {
		return nil, errors.New("sim: Ephemeral engines have no recovery paths to exercise; leave it false")
	}
	if cfg.Engine.DefaultDeadline != 0 {
		return nil, errors.New("sim: activation deadlines are not simulable (an abandoned activation would leak its gate entry); leave DefaultDeadline zero")
	}
	if cfg.Engine.MaxRemoteInflight != 0 {
		return nil, errors.New("sim: MaxRemoteInflight would hold workers outside the gate and break the quiescence barrier; leave it zero")
	}
	if cfg.Location == "" {
		cfg.Location = "pool"
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = DefaultEpoch
	}
	nCoords := cfg.Coordinators
	if nCoords <= 0 {
		nCoords = 1
	}
	multi := nCoords > 1
	if multi && cfg.Store != nil {
		return nil, errors.New("sim: multi-coordinator worlds own their per-partition stores; leave Store nil")
	}
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("sim: bad partition count %d", cfg.Partitions)
	}
	parts := cfg.Partitions
	if parts == 0 {
		parts = shard.DefaultPartitions
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemStore()
	}
	w := &World{
		cfg:       cfg,
		epoch:     cfg.Epoch,
		clock:     timers.NewFakeClock(cfg.Epoch),
		st:        st,
		net:       orb.NewMemNetwork(),
		nam:       orb.NewNaming(),
		reg:       obs.NewRegistry(),
		tracer:    obs.NewTracer(4096),
		coords:    make([]*simCoord, nCoords),
		multi:     multi,
		parts:     parts,
		execs:     make([]*executor, cfg.Executors),
		namingUp:  true,
		insts:     make(map[string]*instTrack),
		schemas:   make(map[string]*core.Schema),
		compiled:  make(map[string]*core.Schema),
		binds:     make(map[string]*bindSeq),
		gate:      make(map[gateKey]*gateEntry),
		armed:     make(map[string]time.Time),
		lastReady: make(map[gateKey]bool),
	}
	w.cond = sync.NewCond(&w.mu)
	w.nam.SetClock(w.clock.Now)
	for i := range w.execs {
		if err := w.startExecutor(i); err != nil {
			return nil, err
		}
		// Permanent membership (ttl 0): a killed executor keeps its
		// binding, like the real e2e topology — failover and
		// blacklisting mask it, not naming.
		w.nam.BindMember(cfg.Location, w.execs[i].addr, 0)
	}
	if multi {
		// Shared per-partition stores, rendezvous-preferred initial
		// ownership — the steady state the production lease protocol
		// converges to with every coordinator up.
		w.pstores = make([]store.Store, parts)
		w.owner = make([]int, parts)
		for p := range w.pstores {
			w.pstores[p] = store.NewMemStore()
			w.owner[p] = w.preferredOwner(p, nil)
		}
	}
	for i := range w.coords {
		if err := w.bootCoordinator(i, false); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// coordName is the where-label of coordinator slot i: "local" in
// single-coordinator worlds (keeping classic traces byte-identical),
// "cI" in sharded ones.
func (w *World) coordName(i int) string {
	if !w.multi {
		return "local"
	}
	return fmt.Sprintf("c%d", i)
}

// mountView mounts partition p into coordinator c through a fresh
// fault-injectable view of the shared partition store.
func (w *World) mountView(c *simCoord, p int) {
	v := failure.NewWedgeStore(w.pstores[p])
	c.views[p] = v
	c.ps.Mount(p, v)
}

// preferredOwner returns the rendezvous-preferred live coordinator slot
// for partition p, excluding any slot for which skip returns true. -1
// if no candidate is live. Slots with a wedged disk are avoided as long
// as a healthy candidate exists — the simulation twin of the avoid-
// lease verbs the production lease protocol uses to keep a released
// partition from orbiting back to its sick ex-owner — and chosen only
// as a last resort (wrong placement beats an orphaned partition).
func (w *World) preferredOwner(p int, skip func(int) bool) int {
	pick := func(avoidWedged bool) int {
		var names []string
		for i := range w.coords {
			if skip != nil && skip(i) {
				continue
			}
			if w.coords[i] != nil && !w.coords[i].alive {
				continue
			}
			if avoidWedged && w.DiskWedged(i) {
				continue
			}
			names = append(names, w.coordName(i))
		}
		best := shard.Preferred(names, p)
		for i := range w.coords {
			if w.coordName(i) == best {
				return i
			}
		}
		return -1
	}
	if o := pick(true); o >= 0 {
		return o
	}
	return pick(false)
}

// startExecutor (re)starts executor slot i: a fresh orb server on the
// slot's fixed in-memory address, hosting a task executor whose every
// implementation is the gate.
func (w *World) startExecutor(i int) error {
	name := fmt.Sprintf("exec%d", i)
	addr := "mem:" + name
	ln, err := w.net.Listen(addr)
	if err != nil {
		return fmt.Errorf("sim: start %s: %w", name, err)
	}
	reg := registry.New()
	reg.BindFallback(w.gatedFallback(name))
	srv := orb.NewServerOn(ln)
	ex := taskexec.NewExecutor(reg)
	// Executor-side metrics and spans land in the world's registry and
	// tracer, timestamped on the fake clock, so they are as deterministic
	// as the trace itself.
	ex.SetObservability(w.reg, w.tracer, w.clock)
	srv.Register(taskexec.ObjectName, ex.Servant())
	w.execs[i] = &executor{name: name, addr: addr, srv: srv, alive: true}
	return nil
}

// resolver is the coordinator's location resolver: the in-process
// naming service, gated on naming liveness.
func (w *World) resolver(location string) ([]string, error) {
	w.mu.Lock()
	up := w.namingUp
	w.mu.Unlock()
	if !up {
		return nil, errors.New("sim: naming unavailable")
	}
	return w.nam.ResolveAll(location)
}

// bootCoordinator builds coordinator slot i's stack: persistent
// registry over its store view (the shared store in single mode, a
// PartitionedStore mounting its owned partitions in sharded mode),
// gated local implementations, the hash-balanced pool invoker, and the
// engine wired to the harness's clock, probe and event tap.
func (w *World) bootCoordinator(i int, recovering bool) error {
	c := &simCoord{name: w.coordName(i), alive: true}
	var st store.Store
	if w.multi {
		// Mount only the slot's owned partitions, exactly like a
		// production coordinator holding those partitions' leases. A
		// rejoining coordinator may own nothing; it mounts nothing.
		c.ps = shard.NewPartitionedStore(w.parts)
		c.views = make(map[int]*failure.WedgeStore)
		for p := 0; p < w.parts; p++ {
			if w.owner[p] == i {
				w.mountView(c, p)
			}
		}
		st = c.ps
	} else {
		st = w.st
	}
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	if recovering {
		if _, err := preg.Recover(); err != nil {
			return fmt.Errorf("sim: recover store: %w", err)
		}
	}
	reg := registry.New()
	reg.BindFallback(w.gatedFallback(c.name))
	ecfg := w.cfg.Engine
	ecfg.Clock = w.clock
	ecfg.Probe = (*worldProbe)(w)
	ecfg.EventTap = w.tap
	ecfg.Metrics = w.reg
	ecfg.Tracer = w.tracer
	if w.cfg.Executors > 0 {
		inv, err := taskexec.NewPoolInvoker(w.resolver, taskexec.PoolConfig{
			// No orb-level retries (-1): a retry backoff would park on
			// the shared FakeClock and stall the deterministic drive;
			// failover across members replaces it. No call deadline (-1):
			// a gated activation legitimately holds its call open until
			// the driver releases it, and a wall-time deadline firing
			// under a loaded machine would inject a nondeterministic
			// failover. PerCallConn: concurrent dispatches to one
			// executor must gate concurrently, not queue behind a shared
			// connection (the barrier counts a queued dispatch as
			// in-flight but ungated and would never quiesce).
			Client: orb.ClientConfig{
				Retries: -1, CallTimeout: -1, PerCallConn: true,
				Dialer: w.net.Dial, Clock: w.clock,
			},
			Balance: taskexec.BalanceHash,
			Clock:   w.clock,
			Metrics: w.reg,
			Tracer:  w.tracer,
		})
		if err != nil {
			return err
		}
		c.inv = inv
		ecfg.RemoteInvoker = inv.Invoke
	}
	c.preg = preg
	c.eng = engine.New(preg, reg, ecfg)
	w.coords[i] = c
	return nil
}

// worldProbe adapts World to engine.Probe without exporting Park/Wake
// as driver API.
type worldProbe World

// Park implements engine.Probe.
func (p *worldProbe) Park(id string, inflight, armed int) {
	w := (*World)(p)
	w.mu.Lock()
	if t, ok := w.insts[id]; ok {
		t.parked, t.inflight, t.armed = true, inflight, armed
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Wake implements engine.Probe.
func (p *worldProbe) Wake(id string) {
	w := (*World)(p)
	w.mu.Lock()
	if t, ok := w.insts[id]; ok {
		t.parked = false
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// tap receives every engine event (on the emitting controller
// goroutine) and buffers it for the next trace drain, maintaining the
// armed-delay index AdvanceToNext reads.
func (w *World) tap(ev engine.Event) {
	w.mu.Lock()
	w.events = append(w.events, ev)
	key := ev.Instance + "|" + ev.Task
	switch ev.Kind {
	case engine.EventTimerArmed:
		w.armed[key] = ev.Deadline
	case engine.EventTimerFired, engine.EventTaskCompleted, engine.EventTaskAborted, engine.EventTaskFailed:
		delete(w.armed, key)
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// gatedFallback is the universal implementation: register a gate entry
// and block until the driver releases it (or the engine cancels the
// activation — local activations only; remote contexts cannot observe
// cancellation).
func (w *World) gatedFallback(where string) func(code string) (registry.Func, bool) {
	return func(code string) (registry.Func, bool) {
		return func(ctx registry.Context) (registry.Result, error) {
			e := &gateEntry{
				key: gateKey{
					inst: ctx.Instance(), path: ctx.TaskPath(),
					attempt: ctx.Attempt(), iteration: ctx.Iteration(),
					where: where,
				},
				code:    code,
				inputs:  ctx.Inputs(),
				release: make(chan releaseCmd, 1),
			}
			w.addGate(e)
			defer w.dropGate(e)
			select {
			case cmd := <-e.release:
				if cmd.err != nil {
					return registry.Result{}, cmd.err
				}
				return registry.Result{Output: cmd.outcome, Objects: cmd.objects}, nil
			case <-ctx.Done():
				return registry.Result{}, errors.New("sim: activation cancelled")
			}
		}, true
	}
}

// addGate publishes a gate entry. A stale entry under the same key (a
// zombie from a killed component whose goroutine has not yet noticed)
// is overwritten; its deferred dropGate will no-op.
func (w *World) addGate(e *gateEntry) {
	w.mu.Lock()
	w.gate[e.key] = e
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// dropGate withdraws an entry if it is still the one published.
func (w *World) dropGate(e *gateEntry) {
	w.mu.Lock()
	if w.gate[e.key] == e {
		delete(w.gate, e.key)
	}
	w.activity++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// takeGate atomically claims an entry for release: after takeGate
// returns it, no other release can claim it and the barrier no longer
// counts it as gated (the activation is "in flight, ungated" until its
// completion is consumed).
func (w *World) takeGate(key gateKey) (*gateEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.gate[key]
	if !ok {
		return nil, false
	}
	delete(w.gate, key)
	w.activity++
	w.cond.Broadcast()
	return e, true
}

// syncWheel flushes every live coordinator's timing wheel: after it
// returns, every fire due at the current clock reading has been
// delivered into its instance's timer queue (where QueuedWork sees it).
func (w *World) syncWheel() {
	for _, c := range w.coords {
		if c != nil && c.alive {
			c.eng.Timers().Sync()
		}
	}
}

// quietLocked reports whether the system is provably unable to make
// progress: every tracked controller is parked with empty queues, and
// its in-flight workers are all blocked in gate entries. Callers hold
// w.mu.
//
// Soundness: inflight is loop-owned and frozen while the controller is
// parked. A worker between dispatch and gate registration (or between
// release and completion delivery) keeps inflight > gated; a buffered
// completion keeps QueuedWork > 0; wheel-side work is excluded by
// syncWheel before the check; and no driver action is concurrent with
// settle, so nothing arms or starts behind the barrier's back.
func (w *World) quietLocked() bool {
	gated := make(map[string]int, len(w.gate))
	for k := range w.gate {
		gated[k.inst]++
	}
	for id, t := range w.insts {
		if t.inst == nil || !t.parked {
			return false
		}
		if t.inst.QueuedWork() != 0 {
			return false
		}
		if t.inflight != gated[id] {
			return false
		}
	}
	return true
}

// settle blocks until the world is quiescent: wheel synced, every
// controller parked, every in-flight activation gated, and no activity
// observed across a full re-check (the double scan closes the window
// where a wheel fire was in flight during the first check).
func (w *World) settle() error {
	stop := make(chan struct{})
	go func() {
		// Watchdog against harness bugs; wall time by definition.
		wall := timers.WallClock{}
		select {
		case <-wall.Wake(wall.Now().Add(settleTimeout)):
			w.mu.Lock()
			w.wedged = true
			w.cond.Broadcast()
			w.mu.Unlock()
		case <-stop:
		}
	}()
	defer close(stop)
	for {
		w.syncWheel()
		w.mu.Lock()
		for !w.quietLocked() && !w.wedged {
			w.cond.Wait()
		}
		if w.wedged {
			w.mu.Unlock()
			return errors.New("sim: settle watchdog expired: the world did not quiesce (wedged harness or blocked implementation)")
		}
		c := w.activity
		w.mu.Unlock()
		w.syncWheel()
		w.mu.Lock()
		ok := w.activity == c && w.quietLocked()
		w.mu.Unlock()
		if ok {
			return nil
		}
	}
}

// Metric returns the summed value of the named metric series across
// every label set (histograms contribute their observation count).
// Every driver method settles the world before returning, so between
// actions the registry is frozen: a Metric read is a property of the
// action sequence, not of scheduling — which is what lets scenario
// files assert on it (`expect metric NAME == N`).
func (w *World) Metric(name string) int64 { return w.reg.Total(name) }

// MetricsSnapshot returns the full registry snapshot at the last settle
// barrier (every series with labels, values and histogram buckets).
func (w *World) MetricsSnapshot() []obs.Series { return w.reg.Snapshot() }

// Spans returns the world's recorded spans for one instance, stitched
// across coordinators, executors and crash/recover generations (the
// whole world shares one tracer).
func (w *World) Spans(instance string) []obs.Span { return w.tracer.ByInstance(instance) }

// Compile registers a schema under name for Instantiate. Schemas using
// per-activation deadlines are rejected: the engine abandons a
// deadline-expired activation without cancelling it, which would leak
// its gate entry and wedge the barrier.
func (w *World) Compile(name, src string) error {
	sch, err := sema.CompileSource(name, []byte(src))
	if err != nil {
		return err
	}
	var bad string
	for _, t := range sch.AllTasks() {
		if t.Implementation["deadline"] != "" {
			bad = t.Path()
		}
	}
	if bad != "" {
		return fmt.Errorf("sim: schema %s: task %s sets a \"deadline\" implementation property; activation deadlines are not simulable", name, bad)
	}
	w.mu.Lock()
	w.compiled[name] = sch
	w.mu.Unlock()
	return nil
}

// Bind scripts the outcomes of an implementation code: successive
// released activations of code take the next outcome in the list, and
// the last one sticks. Unscripted codes default to the first declared
// plain outcome of their task class.
func (w *World) Bind(code string, outcomes ...string) {
	w.mu.Lock()
	w.binds[code] = &bindSeq{outcomes: outcomes}
	w.mu.Unlock()
}

// Close tears the world down: coordinators first (so no dispatches are
// in flight), then the executors. Safe to call once at the end of a
// run; not concurrent with driver actions.
func (w *World) Close() {
	for i, c := range w.coords {
		if c != nil && c.alive {
			w.stopCoordinator(i)
		}
	}
	for _, ex := range w.execs {
		if ex != nil && ex.alive {
			ex.srv.Sever()
			w.releaseWhere(ex.name, errors.New("sim: executor crashed"))
			ex.srv.Close()
			ex.alive = false
		}
	}
}
