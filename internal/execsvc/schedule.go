package execsvc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/timers"
)

// Scheduled instantiation: the execution service's third temporal
// primitive (after the engine's delays and deadlines). A Schedule names
// a stored schema and an input set and asks the service to instantiate
// and start it after a delay, optionally on a recurring period — the
// cron of the workflow world, with the same durability contract as the
// engine's delays: every schedule is persisted through the store with
// its ABSOLUTE next-fire instant, and a restarted service re-arms it
// from that instant. A window missed while the service was down fires
// once at recovery (catch-up), then the cadence realigns to its original
// phase.

// Schedule describes one scheduled instantiation and carries its
// persisted progress.
type Schedule struct {
	// Name identifies the schedule; instances are named Name-1, Name-2, …
	Name string
	// Schema and Root select what to instantiate (as Instantiate).
	Schema string
	Root   string
	// Set and Inputs are handed to Start for every spawned instance.
	Set    string
	Inputs registry.Objects
	// After delays the first run. Zero with a period: first run after
	// one period. Zero without a period: run immediately.
	After time.Duration
	// Every is the recurrence period; zero makes the schedule one-shot.
	Every time.Duration
	// MaxRuns stops the schedule after that many runs; zero means
	// unlimited (one-shot schedules always stop after one).
	MaxRuns int

	// NextAt is the absolute instant of the next fire (persisted; this
	// is what survives a crash).
	NextAt time.Time
	// Fired counts the runs spawned so far.
	Fired int
	// Done marks an exhausted (or one-shot, fired) schedule.
	Done bool
	// LastErr records the most recent spawn failure, for diagnostics.
	LastErr string
}

// schedKey is the store ID of a schedule's persistent record.
func schedKey(name string) store.ID {
	return store.ID("sched/" + strings.ReplaceAll(name, "/", "%2F"))
}

// schedPrefix lists every persisted schedule.
const schedPrefix = store.ID("sched/")

// ErrScheduleExists is returned when adding a duplicate schedule name.
var ErrScheduleExists = errors.New("schedule already exists")

// ErrScheduleNotFound is returned when removing an unknown schedule.
var ErrScheduleNotFound = errors.New("schedule not found")

// Scheduler persists and fires schedules on the engine's shared timing
// wheel. Construct with NewScheduler and attach to the service with
// SetScheduler.
type Scheduler struct {
	svc   *Service
	tm    *timers.Service
	clock timers.Clock
	st    store.Store

	mu      sync.Mutex
	entries map[string]*Schedule
	closed  bool
}

// NewScheduler returns a scheduler over the service's engine (whose
// clock and timing wheel it shares) and st, the store its records
// persist in.
func NewScheduler(svc *Service, st store.Store) *Scheduler {
	return &Scheduler{
		svc:     svc,
		tm:      svc.eng.Timers(),
		clock:   svc.eng.Clock(),
		st:      st,
		entries: make(map[string]*Schedule),
	}
}

// Add validates, persists and arms a new schedule.
func (s *Scheduler) Add(spec Schedule) error {
	if spec.Name == "" || spec.Schema == "" {
		return errors.New("schedule: name and schema are required")
	}
	if spec.After < 0 || spec.Every < 0 || spec.MaxRuns < 0 {
		return errors.New("schedule: after, every and maxruns must be non-negative")
	}
	// Fail fast on a schema that does not resolve or compile.
	if _, err := s.svc.schemas.Compile(spec.Schema); err != nil {
		return fmt.Errorf("schedule %s: %w", spec.Name, err)
	}
	now := s.clock.Now()
	switch {
	case spec.After > 0:
		spec.NextAt = now.Add(spec.After)
	case spec.Every > 0:
		spec.NextAt = now.Add(spec.Every)
	default:
		spec.NextAt = now
	}
	if spec.Every == 0 {
		spec.MaxRuns = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("scheduler is closed")
	}
	if _, dup := s.entries[spec.Name]; dup {
		return fmt.Errorf("schedule %s: %w", spec.Name, ErrScheduleExists)
	}
	e := spec
	if err := s.persistLocked(&e); err != nil {
		return err
	}
	s.entries[e.Name] = &e
	s.armLocked(&e)
	return nil
}

// Remove disarms and deletes a schedule.
func (s *Scheduler) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; !ok {
		return fmt.Errorf("schedule %s: %w", name, ErrScheduleNotFound)
	}
	delete(s.entries, name)
	s.tm.Cancel("sched|" + name)
	if err := s.st.Delete(schedKey(name)); err != nil && !errors.Is(err, store.ErrNotFound) {
		return err
	}
	return nil
}

// List returns a snapshot of every schedule, sorted by name.
func (s *Scheduler) List() []Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Schedule, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Recover reloads persisted schedules after a restart and re-arms the
// live ones at their absolute NextAt instants (instants already past
// fire once immediately — the catch-up run for the window missed while
// the service was down).
func (s *Scheduler) Recover() (int, error) {
	ids, err := s.st.List(schedPrefix)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range ids {
		data, err := s.st.Read(id)
		if err != nil {
			return n, fmt.Errorf("schedule %s: %w", id, err)
		}
		var e Schedule
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
			return n, fmt.Errorf("schedule %s: %w", id, err)
		}
		s.entries[e.Name] = &e
		if e.Done {
			continue
		}
		s.armLocked(&e)
		n++
	}
	return n, nil
}

// Close stops firing. Persisted records remain for the next Recover.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for name := range s.entries {
		s.tm.Cancel("sched|" + name)
	}
}

// armLocked puts the schedule's next fire on the wheel. Callers hold mu.
func (s *Scheduler) armLocked(e *Schedule) {
	name := e.Name
	s.tm.Arm("sched|"+name, e.NextAt, func() {
		// Instantiating compiles schemas and commits store transactions;
		// keep that off the wheel goroutine. One-shot and self-limiting:
		// fire re-checks s.closed under the mutex before doing anything.
		//wflint:allow goroutinestop one-shot; fire() checks s.closed and returns, so it cannot outlive Close by more than one call
		go s.fire(name)
	})
}

// persistLocked writes the schedule record to the store (schedules are
// service state, not instance state: one atomic Write each).
func (s *Scheduler) persistLocked(e *Schedule) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return fmt.Errorf("encode schedule %s: %w", e.Name, err)
	}
	if err := s.st.Write(schedKey(e.Name), buf.Bytes()); err != nil {
		return fmt.Errorf("persist schedule %s: %w", e.Name, err)
	}
	return nil
}

// fire spawns one scheduled run, advances (or finishes) the schedule,
// and re-arms it.
func (s *Scheduler) fire(name string) {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok || e.Done || s.closed {
		s.mu.Unlock()
		return
	}
	// Spawn BEFORE advancing the persisted record: a crash in between
	// replays this fire after recovery and the ErrInstanceExists dedup
	// below absorbs the duplicate (at-least-once). Persisting first
	// would silently LOSE the run to a crash landing between the
	// persist and the spawn.
	run := e.Fired + 1
	instance := fmt.Sprintf("%s-%d", e.Name, run)
	spec := *e
	s.mu.Unlock()

	err := s.svc.Instantiate(instance, spec.Schema, spec.Root)
	if err == nil {
		err = s.svc.Start(instance, spec.Set, spec.Inputs.Clone())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok = s.entries[name]
	if !ok || s.closed {
		return // removed (or shut down) while spawning; no timer is armed
	}
	e.Fired = run
	if e.Every > 0 && (e.MaxRuns == 0 || e.Fired < e.MaxRuns) {
		// Fixed cadence: the next fire keeps the original phase. Windows
		// missed while down collapse into the one catch-up run that just
		// fired.
		e.NextAt = e.NextAt.Add(e.Every)
		if now := s.clock.Now(); !e.NextAt.After(now) {
			missed := now.Sub(e.NextAt)/e.Every + 1
			e.NextAt = e.NextAt.Add(missed * e.Every)
		}
	} else {
		e.Done = true
	}
	switch {
	case errors.Is(err, engine.ErrInstanceExists):
		// Either the benign recovery replay (the crash landed between
		// the spawn and this persist) or a collision with an older
		// schedule's leftover instances — the run may not have spawned,
		// so say so on the row instead of dropping it silently.
		e.LastErr = fmt.Sprintf("run %d: instance %s already exists (recovery replay, or collision with an older instance)", run, instance)
	case err != nil:
		e.LastErr = fmt.Sprintf("run %d: %v", run, err)
	}
	if perr := s.persistLocked(e); perr != nil {
		e.LastErr = perr.Error()
	}
	if !e.Done {
		s.armLocked(e)
	}
}
