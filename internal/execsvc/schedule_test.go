package execsvc_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/repository"
	"repro/internal/store"
	"repro/internal/timers"
	"repro/internal/txn"
	"repro/internal/workload"
)

var schedEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// schedRig is a local (no orb) execution service with a fake clock and
// an attached scheduler, over a shared store so it can be "restarted".
type schedRig struct {
	clock *timers.FakeClock
	eng   *engine.Engine
	sched *execsvc.Scheduler
}

func newSchedRig(t *testing.T, st *store.MemStore, clock *timers.FakeClock) *schedRig {
	t.Helper()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	if _, err := preg.Recover(); err != nil {
		t.Fatal(err)
	}
	impls := registry.New()
	workload.Bind(impls)
	eng := engine.New(preg, impls, engine.Config{Clock: clock})
	t.Cleanup(eng.Close)
	repo := repository.New(preg)
	svc := execsvc.New(eng, repo)
	sched := execsvc.NewScheduler(svc, st)
	svc.SetScheduler(sched)
	t.Cleanup(sched.Close)
	if _, err := repo.Put("chain", workload.Chain(3)); err != nil {
		t.Fatal(err)
	}
	return &schedRig{clock: clock, eng: eng, sched: sched}
}

// waitFired polls until the named schedule reports n fires.
func (r *schedRig) waitFired(t *testing.T, name string, n int) execsvc.Schedule {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, e := range r.sched.List() {
			if e.Name == name && e.Fired >= n {
				return e
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedule %s never reached %d fires: %+v", name, n, r.sched.List())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitCompleted polls until the instance exists and reports completed.
func (r *schedRig) waitCompleted(t *testing.T, instance string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if inst, err := r.eng.Instance(instance); err == nil {
			if inst.Status() == engine.StatusCompleted {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance %s never completed (instances: %v)", instance, r.eng.Instances())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScheduleRecurring(t *testing.T) {
	rig := newSchedRig(t, store.NewMemStore(), timers.NewFakeClock(schedEpoch))
	err := rig.sched.Add(execsvc.Schedule{
		Name: "nightly", Schema: "chain", Set: "main",
		Inputs: workload.Seed(), Every: 10 * time.Second, MaxRuns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		rig.clock.Advance(10 * time.Second)
		e := rig.waitFired(t, "nightly", i)
		rig.waitCompleted(t, fmt.Sprintf("%s-%d", e.Name, i))
	}
	e := rig.waitFired(t, "nightly", 3)
	if !e.Done {
		t.Fatalf("schedule not done after MaxRuns: %+v", e)
	}
	// Further advances must not spawn a fourth run.
	rig.clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond)
	if _, err := rig.eng.Instance("nightly-4"); err == nil {
		t.Fatal("exhausted schedule fired again")
	}
}

func TestScheduleOneShotDelayed(t *testing.T) {
	rig := newSchedRig(t, store.NewMemStore(), timers.NewFakeClock(schedEpoch))
	err := rig.sched.Add(execsvc.Schedule{
		Name: "once", Schema: "chain", Set: "main",
		Inputs: workload.Seed(), After: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if len(rig.eng.Instances()) != 0 {
		t.Fatal("one-shot fired before its delay")
	}
	rig.clock.Advance(5 * time.Second)
	rig.waitCompleted(t, "once-1")
	if e := rig.waitFired(t, "once", 1); !e.Done {
		t.Fatalf("one-shot not done after firing: %+v", e)
	}
}

// TestScheduleSurvivesRestart is the crash-safety contract: the schedule
// record (with its absolute NextAt) survives, a missed window fires once
// at recovery, and the cadence stays on its original phase.
func TestScheduleSurvivesRestart(t *testing.T) {
	st := store.NewMemStore()
	clock := timers.NewFakeClock(schedEpoch)
	rig1 := newSchedRig(t, st, clock)
	err := rig1.sched.Add(execsvc.Schedule{
		Name: "daily", Schema: "chain", Set: "main",
		Inputs: workload.Seed(), Every: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig1.clock.Advance(10 * time.Second)
	rig1.waitFired(t, "daily", 1)
	rig1.waitCompleted(t, "daily-1")
	// "Crash": scheduler and engine go away; the store survives. 25s
	// pass while down — the t=20s and t=30s windows are missed.
	rig1.sched.Close()
	rig1.eng.Close()
	clock.Advance(25 * time.Second) // now t=35s

	rig2 := newSchedRig(t, st, clock)
	n, err := rig2.sched.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d schedules, want 1", n)
	}
	// The persisted NextAt (t=20s) is past: one catch-up run fires.
	rig2.waitFired(t, "daily", 2)
	rig2.waitCompleted(t, "daily-2")
	// The cadence realigns to the original phase: next at t=40s, not
	// t=35s+10s.
	e := rig2.waitFired(t, "daily", 2)
	if want := schedEpoch.Add(40 * time.Second); !e.NextAt.Equal(want) {
		t.Fatalf("NextAt = %v, want the original phase %v", e.NextAt, want)
	}
	clock.Advance(5 * time.Second) // t=40s
	rig2.waitFired(t, "daily", 3)
	rig2.waitCompleted(t, "daily-3")
}

func TestScheduleValidationAndRemove(t *testing.T) {
	rig := newSchedRig(t, store.NewMemStore(), timers.NewFakeClock(schedEpoch))
	if err := rig.sched.Add(execsvc.Schedule{Name: "x", Schema: "no-such-schema", Set: "main"}); err == nil {
		t.Fatal("Add accepted an unknown schema")
	}
	spec := execsvc.Schedule{Name: "x", Schema: "chain", Set: "main", Inputs: workload.Seed(), Every: time.Hour}
	if err := rig.sched.Add(spec); err != nil {
		t.Fatal(err)
	}
	if err := rig.sched.Add(spec); !errors.Is(err, execsvc.ErrScheduleExists) {
		t.Fatalf("duplicate Add: %v", err)
	}
	if err := rig.sched.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if err := rig.sched.Remove("x"); !errors.Is(err, execsvc.ErrScheduleNotFound) {
		t.Fatalf("second Remove: %v", err)
	}
	rig.clock.Advance(2 * time.Hour)
	time.Sleep(20 * time.Millisecond)
	if len(rig.eng.Instances()) != 0 {
		t.Fatal("removed schedule fired")
	}
}

// TestScheduleOverOrb drives the schedule verbs through the wire stubs.
func TestScheduleOverOrb(t *testing.T) {
	s := newStack(t)
	sched := execsvc.NewScheduler(s.exec, s.st)
	s.exec.SetScheduler(sched)
	t.Cleanup(sched.Close)
	workload.Bind(s.impls)
	if _, err := s.repoC.Put("chain", workload.Chain(2)); err != nil {
		t.Fatal(err)
	}
	err := s.execC.ScheduleAdd(execsvc.Schedule{
		Name: "wire", Schema: "chain", Set: "main",
		Inputs: workload.Seed(), After: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		list, err := s.execC.Schedules()
		if err != nil {
			t.Fatal(err)
		}
		if len(list) == 1 && list[0].Done && list[0].LastErr == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedule never fired over the orb: %+v", list)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.execC.ScheduleRemove("wire"); err != nil {
		t.Fatal(err)
	}
}
