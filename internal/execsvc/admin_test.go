package execsvc_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/orb"
	"repro/internal/registry"
	"repro/internal/scripts"
)

// The paper (Section 3): "application control and management tools
// required for functions such as instantiating workflow applications,
// monitoring and dynamic reconfiguration etc. (collectively referred to
// as administrative applications) themselves can be implemented as
// workflow applications. Thus the administrative applications can be made
// fault-tolerant without any extra effort."
//
// adminScript is such an administrative application: a supervisor
// workflow whose tasks drive the execution service itself — instantiate a
// target workflow, start it, supervise it to completion and report.
const adminScript = `
class Request;
class Ticket;
class Report;

taskclass Launch
{
    inputs { input main { request of class Request } };
    outputs
    {
        outcome launched { ticket of class Ticket };
        outcome launchFailed { }
    }
};

taskclass Supervise
{
    inputs { input main { ticket of class Ticket } };
    outputs
    {
        outcome targetCompleted { report of class Report };
        outcome targetFailed { report of class Report }
    }
};

taskclass AdminApp
{
    inputs { input main { request of class Request } };
    outputs
    {
        outcome done { report of class Report };
        outcome failed { }
    }
};

compoundtask adminApp of taskclass AdminApp
{
    task launch of taskclass Launch
    {
        implementation { "code" is "adminLaunch" };
        inputs { input main { inputobject request from { request of task adminApp if input main } } }
    };
    task supervise of taskclass Supervise
    {
        implementation { "code" is "adminSupervise" };
        inputs { input main { inputobject ticket from { ticket of task launch if output launched } } }
    };
    outputs
    {
        outcome done { outputobject report from { report of task supervise if output targetCompleted } };
        outcome failed
        {
            notification from
            {
                task launch if output launchFailed;
                task supervise if output targetFailed
            }
        }
    }
};
`

func TestAdminApplicationIsAWorkflow(t *testing.T) {
	s := newStack(t)
	bindOrderImpls(s.impls)

	// Deploy both the target application and the administrative
	// application into the same repository.
	if _, err := s.repo.Put("process-order", scripts.ProcessOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := s.repo.Put("admin-app", adminScript); err != nil {
		t.Fatal(err)
	}

	// The admin tasks drive the execution service through their own
	// client connection — the workflow manages workflows.
	execC := execsvc.NewClient(orb.Dial(s.server.Addr(), orb.ClientConfig{}))
	var launches int
	s.impls.Bind("adminLaunch", func(ctx registry.Context) (registry.Result, error) {
		launches++
		target := fmt.Sprintf("managed-%d", launches)
		if err := execC.Instantiate(target, "process-order", ""); err != nil {
			return registry.Result{Output: "launchFailed"}, nil //nolint:nilerr // app-level failure outcome
		}
		if err := execC.Start(target, "main", registry.Objects{"order": {Class: "Order", Data: target}}); err != nil {
			return registry.Result{Output: "launchFailed"}, nil //nolint:nilerr // app-level failure outcome
		}
		return registry.Result{Output: "launched", Objects: registry.Objects{
			"ticket": {Class: "Ticket", Data: target},
		}}, nil
	})
	s.impls.Bind("adminSupervise", func(ctx registry.Context) (registry.Result, error) {
		target := ctx.Inputs()["ticket"].Data.(string)
		status, res, err := execC.WaitSettled(target, 10*time.Second)
		if err != nil || status != engine.StatusCompleted {
			return registry.Result{Output: "targetFailed", Objects: registry.Objects{
				"report": {Class: "Report", Data: fmt.Sprintf("target %s: status %v err %v", target, status, err)},
			}}, nil
		}
		return registry.Result{Output: "targetCompleted", Objects: registry.Objects{
			"report": {Class: "Report", Data: fmt.Sprintf("target %s -> %s", target, res.Output)},
		}}, nil
	})

	// Run the administrative application itself through the service.
	if err := s.execC.Instantiate("admin-1", "admin-app", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.execC.Start("admin-1", "main", registry.Objects{
		"request": {Class: "Request", Data: "run one order"},
	}); err != nil {
		t.Fatal(err)
	}
	status, res, err := s.execC.WaitSettled("admin-1", 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status != engine.StatusCompleted || res.Output != "done" {
		t.Fatalf("admin workflow: status=%v res=%+v", status, res)
	}
	report := res.Objects["report"].Data.(string)
	if report != "target managed-1 -> orderCompleted" {
		t.Fatalf("report = %q", report)
	}
	// Both the admin instance and the managed instance ran on the same
	// execution service.
	ids, err := s.execC.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("instances = %v, want admin + managed", ids)
	}
}
