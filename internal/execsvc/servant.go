package execsvc

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/registry"
	"repro/internal/script/sema"
	"repro/internal/timers"
)

// ObjectName is the execution service's well-known servant name.
const ObjectName = "workflow-execution"

// compileSource is the schema compiler used for remote sources and
// recovery (kept in one place so the servant does not import the front
// end twice).
func compileSource(name, src string) (*core.Schema, error) {
	return sema.CompileSource(name, []byte(src))
}

// Wire types.
type instantiateReq struct {
	Instance string
	Schema   string
	Root     string
}

type startReq struct {
	Instance string
	Set      string
	Inputs   registry.Objects
}

type instanceReq struct {
	Instance string
}

type statusResp struct {
	Status engine.InstanceStatus
	Tasks  []engine.TaskStatus
}

type eventsReq struct {
	Instance string
	Since    int
}

type eventsResp struct {
	Events []engine.Event
}

type waitReq struct {
	Instance  string
	TimeoutMS int
}

type waitResp struct {
	Status engine.InstanceStatus
	Result engine.Result
}

type abortReq struct {
	Instance string
	Path     string
	Outcome  string
}

type reconfigReq struct {
	Instance string
	Ops      []engine.Op
}

type instancesResp struct {
	Instances []string
}

type scheduleAddReq struct {
	Spec Schedule
}

type scheduleNameReq struct {
	Name string
}

type schedulesResp struct {
	Schedules []Schedule
}

type shardHealthResp struct {
	Partitions []PartitionHealth
}

type metricsResp struct {
	// Text is the registry snapshot in Prometheus text exposition
	// format (the same bytes the -debug-addr /metrics endpoint serves).
	Text string
}

type traceReq struct {
	Instance string
}

type traceResp struct {
	Spans []obs.Span
}

// method registers a typed servant method with a per-method request
// counter (execsvc_requests_total{method=...}) resolved once at
// registration.
func method[Req, Resp any](s *Service, sv *orb.Servant, name string, f func(Req) (Resp, error)) {
	hits := s.eng.Metrics().Counter(obs.MExecRequests, "method", name)
	orb.Method(sv, name, func(req Req) (Resp, error) {
		hits.Inc()
		return f(req)
	})
}

// Servant exports the execution service over the orb.
func (s *Service) Servant() *orb.Servant {
	sv := orb.NewServant()
	method(s, sv, "instantiate", func(req instantiateReq) (struct{}, error) {
		return struct{}{}, s.Instantiate(req.Instance, req.Schema, req.Root)
	})
	method(s, sv, "start", func(req startReq) (struct{}, error) {
		return struct{}{}, s.Start(req.Instance, req.Set, req.Inputs)
	})
	method(s, sv, "status", func(req instanceReq) (statusResp, error) {
		status, tasks, err := s.Status(req.Instance)
		return statusResp{Status: status, Tasks: tasks}, err
	})
	method(s, sv, "events", func(req eventsReq) (eventsResp, error) {
		ev, err := s.Events(req.Instance, req.Since)
		return eventsResp{Events: ev}, err
	})
	method(s, sv, "wait", func(req waitReq) (waitResp, error) {
		status, res, err := s.WaitSettled(req.Instance, time.Duration(req.TimeoutMS)*time.Millisecond)
		return waitResp{Status: status, Result: res}, err
	})
	method(s, sv, "abortTask", func(req abortReq) (struct{}, error) {
		return struct{}{}, s.AbortTask(req.Instance, req.Path, req.Outcome)
	})
	method(s, sv, "reconfigure", func(req reconfigReq) (struct{}, error) {
		return struct{}{}, s.Reconfigure(req.Instance, req.Ops...)
	})
	method(s, sv, "stop", func(req instanceReq) (struct{}, error) {
		return struct{}{}, s.Stop(req.Instance)
	})
	method(s, sv, "recover", func(req instanceReq) (struct{}, error) {
		return struct{}{}, s.Recover(req.Instance)
	})
	method(s, sv, "instances", func(struct{}) (instancesResp, error) {
		return instancesResp{Instances: s.Instances()}, nil
	})
	method(s, sv, "scheduleAdd", func(req scheduleAddReq) (struct{}, error) {
		return struct{}{}, s.ScheduleAdd(req.Spec)
	})
	method(s, sv, "scheduleRemove", func(req scheduleNameReq) (struct{}, error) {
		return struct{}{}, s.ScheduleRemove(req.Name)
	})
	method(s, sv, "schedules", func(struct{}) (schedulesResp, error) {
		list, err := s.Schedules()
		return schedulesResp{Schedules: list}, err
	})
	method(s, sv, "shardHealth", func(struct{}) (shardHealthResp, error) {
		if s.health == nil {
			return shardHealthResp{}, nil
		}
		m := s.health()
		rows := make([]PartitionHealth, 0, len(m))
		for p, state := range m {
			rows = append(rows, PartitionHealth{Partition: p, State: state})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Partition < rows[j].Partition })
		return shardHealthResp{Partitions: rows}, nil
	})
	method(s, sv, "metrics", func(struct{}) (metricsResp, error) {
		return metricsResp{Text: s.eng.Metrics().PrometheusText()}, nil
	})
	method(s, sv, "trace", func(req traceReq) (traceResp, error) {
		// No ownership guard: a trace is observability, and after a
		// failover the spans of interest live on whichever coordinator
		// imported them — ask the one you can reach.
		return traceResp{Spans: s.eng.Tracer().ByInstance(req.Instance)}, nil
	})
	return sv
}

// Client is the typed stub of the execution service.
type Client struct {
	c *orb.Client
	// clock anchors WaitSettled's client-side deadline; replaceable so
	// tests drive the poll loop on a fake clock.
	clock timers.Clock
}

// NewClient wraps an orb client connected to the execution endpoint.
func NewClient(c *orb.Client) *Client { return &Client{c: c, clock: timers.WallClock{}} }

// SetClock replaces the deadline clock (tests).
func (ec *Client) SetClock(clk timers.Clock) { ec.clock = clk }

// Instantiate creates an instance of a stored schema.
func (ec *Client) Instantiate(instance, schemaName, rootName string) error {
	return ec.c.Invoke(ObjectName, "instantiate", instantiateReq{Instance: instance, Schema: schemaName, Root: rootName}, nil)
}

// Start begins execution of an instance.
func (ec *Client) Start(instance, set string, inputs registry.Objects) error {
	return ec.c.Invoke(ObjectName, "start", startReq{Instance: instance, Set: set, Inputs: inputs}, nil)
}

// Status reports status and per-task rows.
func (ec *Client) Status(instance string) (engine.InstanceStatus, []engine.TaskStatus, error) {
	resp, err := orb.Call[instanceReq, statusResp](ec.c, ObjectName, "status", instanceReq{Instance: instance})
	return resp.Status, resp.Tasks, err
}

// Events fetches the trace after sequence number since.
func (ec *Client) Events(instance string, since int) ([]engine.Event, error) {
	resp, err := orb.Call[eventsReq, eventsResp](ec.c, ObjectName, "events", eventsReq{Instance: instance, Since: since})
	return resp.Events, err
}

// WaitSettled polls until the instance settles or the timeout ends. The
// wait is chunked into short server-side slices so it works under any
// per-call transport deadline, and so concurrent users of one client are
// not starved by a long-poll holding the connection.
func (ec *Client) WaitSettled(instance string, timeout time.Duration) (engine.InstanceStatus, engine.Result, error) {
	const slice = 500 * time.Millisecond
	deadline := ec.clock.Now().Add(timeout)
	for {
		remaining := deadline.Sub(ec.clock.Now())
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if remaining > slice {
			remaining = slice
		}
		status, res, err := ec.waitSlice(instance, remaining)
		if err != nil {
			return status, res, err
		}
		if Settled(status) || ec.clock.Now().After(deadline) {
			return status, res, nil
		}
	}
}

// waitSlice issues one bounded server-side wait (the building block of
// WaitSettled's poll loop, also used by ShardedClient so it can
// re-resolve the owning coordinator between slices).
func (ec *Client) waitSlice(instance string, timeout time.Duration) (engine.InstanceStatus, engine.Result, error) {
	resp, err := orb.Call[waitReq, waitResp](ec.c, ObjectName, "wait", waitReq{Instance: instance, TimeoutMS: int(timeout / time.Millisecond)})
	return resp.Status, resp.Result, err
}

// Close drops the client's transport connection.
func (ec *Client) Close() { ec.c.Close() }

// AbortTask force-aborts a task.
func (ec *Client) AbortTask(instance, path, outcome string) error {
	return ec.c.Invoke(ObjectName, "abortTask", abortReq{Instance: instance, Path: path, Outcome: outcome}, nil)
}

// Reconfigure applies reconfiguration operations.
func (ec *Client) Reconfigure(instance string, ops ...engine.Op) error {
	return ec.c.Invoke(ObjectName, "reconfigure", reconfigReq{Instance: instance, Ops: ops}, nil)
}

// Stop halts an instance.
func (ec *Client) Stop(instance string) error {
	return ec.c.Invoke(ObjectName, "stop", instanceReq{Instance: instance}, nil)
}

// Recover rebuilds a persisted instance.
func (ec *Client) Recover(instance string) error {
	return ec.c.Invoke(ObjectName, "recover", instanceReq{Instance: instance}, nil)
}

// Instances lists live instances.
func (ec *Client) Instances() ([]string, error) {
	resp, err := orb.Call[struct{}, instancesResp](ec.c, ObjectName, "instances", struct{}{})
	return resp.Instances, err
}

// ScheduleAdd registers a scheduled instantiation on the service.
func (ec *Client) ScheduleAdd(spec Schedule) error {
	return ec.c.Invoke(ObjectName, "scheduleAdd", scheduleAddReq{Spec: spec}, nil)
}

// ScheduleRemove deletes a schedule.
func (ec *Client) ScheduleRemove(name string) error {
	return ec.c.Invoke(ObjectName, "scheduleRemove", scheduleNameReq{Name: name}, nil)
}

// Schedules lists the service's schedules.
func (ec *Client) Schedules() ([]Schedule, error) {
	resp, err := orb.Call[struct{}, schedulesResp](ec.c, ObjectName, "schedules", struct{}{})
	return resp.Schedules, err
}

// ShardHealth reports the coordinator's per-partition store health
// (empty on a single-coordinator deployment).
func (ec *Client) ShardHealth() ([]PartitionHealth, error) {
	resp, err := orb.Call[struct{}, shardHealthResp](ec.c, ObjectName, "shardHealth", struct{}{})
	return resp.Partitions, err
}

// Metrics fetches the coordinator's metrics registry in Prometheus text
// format.
func (ec *Client) Metrics() (string, error) {
	resp, err := orb.Call[struct{}, metricsResp](ec.c, ObjectName, "metrics", struct{}{})
	return resp.Text, err
}

// Trace fetches the coordinator's recorded spans for one instance.
func (ec *Client) Trace(instance string) ([]obs.Span, error) {
	resp, err := orb.Call[traceReq, traceResp](ec.c, ObjectName, "trace", traceReq{Instance: instance})
	return resp.Spans, err
}
