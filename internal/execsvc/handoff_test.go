package execsvc_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/repository"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

// TestWaitSettledHandoffRedirects guards the graceful-handoff window: a
// WaitSettled already past the ownership guard and blocked on a running
// instance observes StatusStopped when the partition is handed off
// (the manager drops ownership, then stops the partition's instances).
// That stop is a relocation, not an outcome — the servant must answer
// with the ownership refusal so the routing client re-resolves the new
// owner, rather than reporting the instance as terminally stopped.
func TestWaitSettledHandoffRedirects(t *testing.T) {
	st := store.NewMemStore()
	mgr := txn.NewManager(st)
	preg := persist.NewRegistry(st, mgr, nil)
	impls := registry.New()
	eng := engine.New(preg, impls, engine.Config{})
	t.Cleanup(eng.Close)
	svc := execsvc.New(eng, repository.New(preg))

	var owned atomic.Bool
	owned.Store(true)
	svc.SetOwnership(func(string) (bool, string) { return owned.Load(), "10.0.0.9:7" })

	gate := make(chan struct{})
	impls.Bind("stage", func(ctx registry.Context) (registry.Result, error) {
		select {
		case <-gate:
			return registry.Result{Output: "done", Objects: registry.Objects{"out": ctx.Inputs()["in"]}}, nil
		case <-ctx.Done():
			return registry.Result{}, errors.New("cancelled")
		}
	})
	schema := workload.MustCompile("ho", workload.Chain(1))
	inst, err := eng.Instantiate("ho", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}

	type settled struct {
		status engine.InstanceStatus
		err    error
	}
	ch := make(chan settled, 1)
	go func() {
		status, _, werr := svc.WaitSettled("ho", 10*time.Second)
		ch <- settled{status, werr}
	}()
	// Let the wait block on the gated stage, then hand the partition
	// off in the manager's order: ownership first, teardown second.
	time.Sleep(50 * time.Millisecond)
	owned.Store(false)
	eng.StopMatching(nil)
	got := <-ch
	if addr, ok := execsvc.NotOwnerAddr(got.err); !ok || addr != "10.0.0.9:7" {
		t.Fatalf("want not-owner redirect, got status %v err %v", got.status, got.err)
	}

	// An administrative Stop with ownership retained still reports
	// StatusStopped as a settled outcome.
	owned.Store(true)
	inst2, err := eng.Instantiate("ho2", schema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start("main", workload.Seed()); err != nil {
		t.Fatal(err)
	}
	go func() {
		status, _, werr := svc.WaitSettled("ho2", 10*time.Second)
		ch <- settled{status, werr}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := svc.Stop("ho2"); err != nil {
		t.Fatal(err)
	}
	got = <-ch
	if got.err != nil || got.status != engine.StatusStopped {
		t.Fatalf("administrative stop: status %v err %v, want stopped/nil", got.status, got.err)
	}
	close(gate)
}
