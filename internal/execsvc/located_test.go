package execsvc_test

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/execsvc"
	"repro/internal/orb"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/repository"
	"repro/internal/store"
	"repro/internal/taskexec"
	"repro/internal/txn"
)

// locatedScript pins its two stages to different executor nodes.
const locatedScript = `
class D;

taskclass Stage
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D } }
};

taskclass App
{
    inputs { input main { in of class D } };
    outputs { outcome done { out of class D } }
};

compoundtask app of taskclass App
{
    task east of taskclass Stage
    {
        implementation { "code" is "tag"; "location" is "node-east" };
        inputs { input main { inputobject in from { in of task app if input main } } }
    };
    task west of taskclass Stage
    {
        implementation { "code" is "tag"; "location" is "node-west" };
        inputs { input main { inputobject in from { out of task east if output done } } }
    };
    outputs { outcome done { outputobject out from { out of task west if output done } } }
};
`

// TestLocatedTasksAcrossExecutors deploys the complete distributed
// picture: naming + repository + execution services plus two task
// executor nodes, with the script's "location" properties routing each
// stage to its node.
func TestLocatedTasksAcrossExecutors(t *testing.T) {
	naming := orb.NewNaming()

	// Two executor nodes, each tagging payloads with its identity.
	newNode := func(name string) *orb.Server {
		impls := registry.New()
		impls.Bind("tag", func(ctx registry.Context) (registry.Result, error) {
			in := ctx.Inputs()["in"].Data.(string)
			return registry.Result{Output: "done", Objects: registry.Objects{
				"out": {Class: "D", Data: in + "->" + name},
			}}, nil
		})
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		srv.Register(taskexec.ObjectName, taskexec.NewExecutor(impls).Servant())
		naming.BindEntry(name, srv.Addr())
		return srv
	}
	newNode("node-east")
	newNode("node-west")

	// The execution service, wired to dispatch located tasks via naming.
	invoker := taskexec.NewInvoker(naming.Resolve, orb.ClientConfig{})
	t.Cleanup(invoker.Close)
	st := store.NewMemStore()
	preg := persist.NewRegistry(st, txn.NewManager(st), nil)
	eng := engine.New(preg, registry.New(), engine.Config{RemoteInvoker: invoker.Invoke})
	t.Cleanup(eng.Close)
	repo := repository.New(preg)
	svc := execsvc.New(eng, repo)

	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.Register(repository.ObjectName, repo.Servant())
	srv.Register(execsvc.ObjectName, svc.Servant())

	client := orb.Dial(srv.Addr(), orb.ClientConfig{})
	t.Cleanup(client.Close)
	repoC := repository.NewClient(client)
	execC := execsvc.NewClient(client)

	if _, err := repoC.Put("located", locatedScript); err != nil {
		t.Fatal(err)
	}
	if err := execC.Instantiate("loc-1", "located", ""); err != nil {
		t.Fatal(err)
	}
	if err := execC.Start("loc-1", "main", registry.Objects{"in": {Class: "D", Data: "seed"}}); err != nil {
		t.Fatal(err)
	}
	status, res, err := execC.WaitSettled("loc-1", 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status != engine.StatusCompleted {
		t.Fatalf("status = %v", status)
	}
	// The payload crossed both nodes in dependency order.
	if got := res.Objects["out"].Data.(string); got != "seed->node-east->node-west" {
		t.Fatalf("payload = %q, want it tagged by east then west", got)
	}
}
